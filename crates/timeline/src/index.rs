//! The immutable per-rank interval index.
//!
//! A viewer session asks for one rank's row at a time; the container's
//! single global [`FrameTree`] answers that by scanning every rank's
//! drawables in the window. This index is built once at load: each
//! rank's states and events get their own frame tree, and arrows (which
//! belong to two ranks) live in one shared tree filtered per query.
//! The index never mutates after construction, so the query service can
//! share it across worker threads with no locking.

use slog2::{ArrowDrawable, Drawable, FrameTree, Preview, Query, Slog2File, TimeWindow};

/// Frame capacity for the per-rank trees. Per-rank trees hold fewer
/// drawables than the whole file, so a smaller frame keeps the tree
/// deep enough for preview pruning to pay off.
const RANK_FRAME_CAPACITY: usize = 64;
const RANK_MAX_DEPTH: u32 = 16;

/// Per-rank interval index over one loaded SLOG2 file.
#[derive(Debug)]
pub struct TimelineIndex {
    /// The file's global time range.
    pub range: TimeWindow,
    /// `ranks[r]` holds rank r's states and events.
    ranks: Vec<FrameTree>,
    /// All message arrows, shared across ranks.
    arrows: FrameTree,
}

impl TimelineIndex {
    /// Build the index by scanning `file` once.
    pub fn build(file: &Slog2File) -> TimelineIndex {
        let nranks = file.timelines.len();
        let mut per_rank: Vec<Vec<Drawable>> = vec![Vec::new(); nranks];
        let mut arrows: Vec<Drawable> = Vec::new();
        for d in file.drawables_in(TimeWindow::ALL) {
            match d {
                Drawable::State(s) => {
                    if let Some(v) = per_rank.get_mut(s.timeline.as_usize()) {
                        v.push(d.clone());
                    }
                }
                Drawable::Event(e) => {
                    if let Some(v) = per_rank.get_mut(e.timeline.as_usize()) {
                        v.push(d.clone());
                    }
                }
                Drawable::Arrow(_) => arrows.push(d.clone()),
            }
        }
        let w = file.range;
        TimelineIndex {
            range: w,
            ranks: per_rank
                .into_iter()
                .map(|ds| FrameTree::build(ds, w.t0, w.t1, RANK_FRAME_CAPACITY, RANK_MAX_DEPTH))
                .collect(),
            arrows: FrameTree::build(arrows, w.t0, w.t1, RANK_FRAME_CAPACITY, RANK_MAX_DEPTH),
        }
    }

    /// Number of indexed ranks.
    pub fn nranks(&self) -> usize {
        self.ranks.len()
    }

    /// Rank `r`'s states and events overlapping `w`. Empty for an
    /// unknown rank.
    pub fn rank_drawables(&self, rank: u32, w: TimeWindow) -> Vec<&Drawable> {
        match self.ranks.get(rank as usize) {
            Some(tree) => tree.query(w),
            None => Vec::new(),
        }
    }

    /// How many of rank `r`'s states/events overlap `w` — the detail
    /// vs. preview decision input.
    pub fn rank_count(&self, rank: u32, w: TimeWindow) -> usize {
        match self.ranks.get(rank as usize) {
            Some(tree) => tree.count_in(w),
            None => 0,
        }
    }

    /// Rank `r`'s preview aggregate over `w`, from frame-tree node
    /// previews where the window fully covers a node.
    pub fn rank_preview(&self, rank: u32, w: TimeWindow) -> Preview {
        match self.ranks.get(rank as usize) {
            Some(tree) => tree.window_preview(w),
            None => Preview::default(),
        }
    }

    /// Arrows overlapping `w` that touch rank `r` (as sender or
    /// receiver).
    pub fn rank_arrows(&self, rank: u32, w: TimeWindow) -> Vec<&ArrowDrawable> {
        self.arrows
            .query(w)
            .into_iter()
            .filter_map(|d| match d {
                Drawable::Arrow(a)
                    if a.from_timeline.as_u32() == rank || a.to_timeline.as_u32() == rank =>
                {
                    Some(a)
                }
                _ => None,
            })
            .collect()
    }

    /// All arrows overlapping `w`, regardless of rank.
    pub fn arrows_in(&self, w: TimeWindow) -> Vec<&Drawable> {
        self.arrows.query(w)
    }
}

impl Query for TimelineIndex {
    fn drawables_in(&self, w: TimeWindow) -> Vec<&Drawable> {
        let mut out = Vec::new();
        for tree in &self.ranks {
            out.extend(tree.query(w));
        }
        out.extend(self.arrows.query(w));
        out
    }

    fn preview_in(&self, w: TimeWindow) -> Preview {
        let mut p = Preview::default();
        for tree in &self.ranks {
            p.merge(&tree.window_preview(w));
        }
        p.merge(&self.arrows.window_preview(w));
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpelog::Color;
    use slog2::{
        ArrowDrawable, Category, CategoryId, CategoryKind, EventDrawable, StateDrawable, TimelineId,
    };

    fn file() -> Slog2File {
        let categories = vec![
            Category {
                index: CategoryId(0),
                name: "Compute".into(),
                color: Color::GRAY,
                kind: CategoryKind::State,
            },
            Category {
                index: CategoryId(1),
                name: "msg arrival".into(),
                color: Color::YELLOW,
                kind: CategoryKind::Event,
            },
            Category {
                index: CategoryId(2),
                name: "message".into(),
                color: Color::WHITE,
                kind: CategoryKind::Arrow,
            },
        ];
        let mut ds = Vec::new();
        for r in 0..3u32 {
            for i in 0..4 {
                ds.push(Drawable::State(StateDrawable {
                    category: CategoryId(0),
                    timeline: TimelineId(r),
                    start: i as f64,
                    end: i as f64 + 0.75,
                    nest_level: 0,
                    text: String::new(),
                }));
            }
        }
        ds.push(Drawable::Event(EventDrawable {
            category: CategoryId(1),
            timeline: TimelineId(1),
            time: 2.5,
            text: String::new(),
        }));
        ds.push(Drawable::Arrow(ArrowDrawable {
            category: CategoryId(2),
            from_timeline: TimelineId(0),
            to_timeline: TimelineId(2),
            start: 1.0,
            end: 1.5,
            tag: 7,
            size: 8,
        }));
        let range = TimeWindow::new(0.0, 4.0);
        Slog2File {
            timelines: vec!["PI_MAIN".into(), "P1".into(), "P2".into()],
            categories,
            range,
            warnings: vec![],
            tree: FrameTree::build(ds, range.t0, range.t1, 8, 8),
        }
    }

    #[test]
    fn per_rank_queries_are_disjoint_and_complete() {
        let f = file();
        let idx = TimelineIndex::build(&f);
        assert_eq!(idx.nranks(), 3);
        let total: usize = (0..3)
            .map(|r| idx.rank_drawables(r, TimeWindow::ALL).len())
            .sum();
        // 12 states + 1 event; the arrow lives in the shared tree.
        assert_eq!(total, 13);
        assert_eq!(idx.arrows_in(TimeWindow::ALL).len(), 1);
        assert_eq!(idx.drawables_in(TimeWindow::ALL).len(), 14);
    }

    #[test]
    fn index_matches_file_query() {
        let f = file();
        let idx = TimelineIndex::build(&f);
        for w in [
            TimeWindow::new(0.0, 4.0),
            TimeWindow::new(1.2, 1.4),
            TimeWindow::new(2.5, 2.5),
            TimeWindow::new(9.0, 10.0),
        ] {
            let mut a: Vec<String> = idx
                .drawables_in(w)
                .iter()
                .map(|d| format!("{d:?}"))
                .collect();
            let mut b: Vec<String> = f.drawables_in(w).iter().map(|d| format!("{d:?}")).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "window {w:?}");
        }
    }

    #[test]
    fn arrows_match_either_endpoint() {
        let f = file();
        let idx = TimelineIndex::build(&f);
        assert_eq!(idx.rank_arrows(0, TimeWindow::ALL).len(), 1);
        assert_eq!(idx.rank_arrows(1, TimeWindow::ALL).len(), 0);
        assert_eq!(idx.rank_arrows(2, TimeWindow::ALL).len(), 1);
        assert!(idx.rank_arrows(0, TimeWindow::new(3.0, 4.0)).is_empty());
    }

    #[test]
    fn unknown_rank_is_empty() {
        let idx = TimelineIndex::build(&file());
        assert!(idx.rank_drawables(99, TimeWindow::ALL).is_empty());
        assert_eq!(idx.rank_count(99, TimeWindow::ALL), 0);
        assert!(idx.rank_preview(99, TimeWindow::ALL).entries.is_empty());
    }

    #[test]
    fn preview_counts_match_detail_counts() {
        let f = file();
        let idx = TimelineIndex::build(&f);
        let w = TimeWindow::new(0.5, 3.5);
        for r in 0..3 {
            let detail = idx.rank_count(r, w);
            let preview: u64 = idx.rank_preview(r, w).entries.iter().map(|e| e.count).sum();
            assert_eq!(detail as u64, preview, "rank {r}");
        }
    }
}
