//! The sharded LRU tile cache.
//!
//! Tile responses are deterministic functions of (file digest, rank,
//! zoom level, tile number), so they cache perfectly: invalidation is
//! by key — a different file has a different digest and simply never
//! collides. Keys hash to one of 16 shards, each an independently
//! locked LRU map, so concurrent clients replaying the same zoom path
//! rarely contend on the same lock.
//!
//! Misses are *two-phase single-flight*: the shard lock is held only
//! long enough to look up the key and register an in-flight marker;
//! the tile computes **outside** the lock, and racers for the same key
//! wait on the marker's condvar instead of recomputing (or blocking
//! unrelated keys — holding the shard lock across compute was the old
//! design's tail-latency wart: a cold tile stalled every other key in
//! its shard).
//!
//! Hit / miss / eviction / single-flight-wait counts and a per-shard
//! occupancy gauge go to an [`obs`] registry — one metric shard per
//! cache shard, merged at snapshot time. The cache lookup and any
//! single-flight wait are timed as the active request's `cache` phase;
//! the compute itself is timed by the compute path (`index`/`render`).

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Condvar, Mutex};

use obs::{ObsHandle, Phase};

use crate::obsplane::PhaseTimer;

/// Number of independently locked cache shards.
pub const CACHE_SHARDS: usize = 16;

/// Key of one cached tile. The digest pins the file version: a reload
/// of a changed file yields new keys, and stale entries age out of the
/// LRU instead of being served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileKey {
    /// FNV-1a digest of the file bytes.
    pub digest: u64,
    /// Rank (timeline) the tile describes.
    pub rank: u32,
    /// Zoom level: the file range divides into `2^zoom` tiles.
    pub zoom: u8,
    /// Tile number within the zoom level, `0 .. 2^zoom`.
    pub tile: u32,
}

impl TileKey {
    fn shard(&self) -> usize {
        // FNV-1a over the key fields; cheap and well-spread for the
        // small dense key space.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in self
            .digest
            .to_le_bytes()
            .into_iter()
            .chain(self.rank.to_le_bytes())
            .chain([self.zoom])
            .chain(self.tile.to_le_bytes())
        {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % CACHE_SHARDS as u64) as usize
    }
}

/// State of one in-flight tile compute, shared between the computing
/// thread and any single-flight waiters.
#[derive(Default)]
enum FlightState {
    #[default]
    Pending,
    Done(Arc<String>),
    /// The computing thread unwound; waiters retry from scratch.
    Failed,
}

#[derive(Default)]
struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

impl Flight {
    fn wait(&self) -> Option<Arc<String>> {
        let mut st = self.state.lock().expect("flight poisoned");
        while matches!(*st, FlightState::Pending) {
            st = self.cv.wait(st).expect("flight poisoned");
        }
        match &*st {
            FlightState::Done(body) => Some(Arc::clone(body)),
            _ => None,
        }
    }

    fn resolve(&self, outcome: FlightState) {
        *self.state.lock().expect("flight poisoned") = outcome;
        self.cv.notify_all();
    }
}

#[derive(Default)]
struct ShardState {
    /// key -> (recency stamp, body).
    map: HashMap<TileKey, (u64, Arc<String>)>,
    /// recency stamp -> key; the smallest stamp is the LRU victim.
    order: BTreeMap<u64, TileKey>,
    next_stamp: u64,
    /// Keys currently being computed by some thread.
    in_flight: HashMap<TileKey, Arc<Flight>>,
}

impl ShardState {
    fn stamp(&mut self) -> u64 {
        let s = self.next_stamp;
        self.next_stamp += 1;
        s
    }

    /// Move an existing entry to the most-recent end of the order.
    fn touch(&mut self, key: TileKey) {
        let stamp = self.stamp();
        if let Some((old, _)) = self.map.get_mut(&key) {
            let prev = *old;
            *old = stamp;
            self.order.remove(&prev);
            self.order.insert(stamp, key);
        }
    }
}

/// The sharded LRU cache of rendered tile bodies.
pub struct TileCache {
    shards: Vec<Mutex<ShardState>>,
    per_shard_capacity: usize,
    obs: ObsHandle,
}

/// Deregisters an in-flight marker if the compute unwinds, so waiters
/// wake up and retry instead of blocking forever.
struct FlightGuard<'a> {
    shard: &'a Mutex<ShardState>,
    key: TileKey,
    flight: &'a Arc<Flight>,
    armed: bool,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        if let Ok(mut shard) = self.shard.lock() {
            shard.in_flight.remove(&self.key);
        }
        self.flight.resolve(FlightState::Failed);
    }
}

impl TileCache {
    /// A cache holding at most `capacity` tiles total (rounded up to a
    /// multiple of [`CACHE_SHARDS`]), reporting to `obs`.
    pub fn new(capacity: usize, obs: ObsHandle) -> TileCache {
        TileCache {
            shards: (0..CACHE_SHARDS).map(|_| Mutex::default()).collect(),
            per_shard_capacity: capacity.div_ceil(CACHE_SHARDS).max(1),
            obs,
        }
    }

    /// Fetch the tile, computing it with `f` on a miss. Concurrent
    /// requests for the same missing tile compute it exactly once: the
    /// first registers an in-flight marker and computes outside the
    /// shard lock; the rest wait on the marker (counted as
    /// `singleflight_wait` *and* as hits, since they are served a body
    /// someone else computed).
    pub fn get_or_compute(&self, key: TileKey, f: impl FnOnce() -> String) -> Arc<String> {
        let shard_idx = key.shard();
        let metrics = self.obs.shard(shard_idx);
        loop {
            enum Action {
                Hit(Arc<String>),
                Wait(Arc<Flight>),
                Compute(Arc<Flight>),
            }
            let action = {
                let _cache_phase = PhaseTimer::start(Phase::Cache);
                let mut shard = self.shards[shard_idx].lock().expect("cache shard poisoned");
                if let Some((_, body)) = shard.map.get(&key) {
                    let body = Arc::clone(body);
                    shard.touch(key);
                    metrics.counter("serve.cache.hit").inc();
                    Action::Hit(body)
                } else if let Some(flight) = shard.in_flight.get(&key) {
                    metrics.counter("serve.cache.singleflight_wait").inc();
                    Action::Wait(Arc::clone(flight))
                } else {
                    metrics.counter("serve.cache.miss").inc();
                    let flight = Arc::new(Flight::default());
                    shard.in_flight.insert(key, Arc::clone(&flight));
                    Action::Compute(flight)
                }
            };
            match action {
                Action::Hit(body) => return body,
                Action::Wait(flight) => {
                    let waited = {
                        let _cache_phase = PhaseTimer::start(Phase::Cache);
                        flight.wait()
                    };
                    match waited {
                        Some(body) => {
                            metrics.counter("serve.cache.hit").inc();
                            return body;
                        }
                        None => continue, // the computing thread unwound
                    }
                }
                Action::Compute(flight) => {
                    let mut guard = FlightGuard {
                        shard: &self.shards[shard_idx],
                        key,
                        flight: &flight,
                        armed: true,
                    };
                    // Compute outside both the shard lock and the cache
                    // phase: this is where index/render time belongs.
                    let body = Arc::new(f());
                    {
                        let mut shard =
                            self.shards[shard_idx].lock().expect("cache shard poisoned");
                        let stamp = shard.stamp();
                        shard.map.insert(key, (stamp, Arc::clone(&body)));
                        shard.order.insert(stamp, key);
                        while shard.map.len() > self.per_shard_capacity {
                            let (&stamp, &victim) =
                                shard.order.iter().next().expect("order tracks map");
                            shard.order.remove(&stamp);
                            shard.map.remove(&victim);
                            metrics.counter("serve.cache.eviction").inc();
                        }
                        shard.in_flight.remove(&key);
                        metrics
                            .gauge("serve.cache.occupancy")
                            .set(shard.map.len() as i64);
                    }
                    guard.armed = false;
                    flight.resolve(FlightState::Done(Arc::clone(&body)));
                    return body;
                }
            }
        }
    }

    /// Merged (hit, miss, eviction) counts across every shard.
    pub fn counters(&self) -> (u64, u64, u64) {
        let snap = self.obs.snapshot();
        (
            snap.counter("serve.cache.hit"),
            snap.counter("serve.cache.miss"),
            snap.counter("serve.cache.eviction"),
        )
    }

    /// How many lookups waited on another thread's in-flight compute.
    pub fn singleflight_waits(&self) -> u64 {
        self.obs.snapshot().counter("serve.cache.singleflight_wait")
    }

    /// Current per-shard entry counts, in shard order.
    pub fn shard_occupancy(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .collect()
    }

    /// High-water mark of any single shard's occupancy (gauge highs
    /// max under merge, so the merged snapshot reports the busiest
    /// shard's peak).
    pub fn shard_occupancy_high(&self) -> i64 {
        self.obs
            .snapshot()
            .gauges
            .get("serve.cache.occupancy")
            .map(|g| g.high)
            .unwrap_or(0)
    }

    /// Number of cached tiles right now.
    pub fn len(&self) -> usize {
        self.shard_occupancy().iter().sum()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tile: u32) -> TileKey {
        TileKey {
            digest: 42,
            rank: 0,
            zoom: 4,
            tile,
        }
    }

    #[test]
    fn hit_after_miss_returns_same_body() {
        let cache = TileCache::new(64, obs::Obs::handle());
        let a = cache.get_or_compute(key(1), || "body".to_string());
        let b = cache.get_or_compute(key(1), || panic!("must not recompute"));
        assert_eq!(a, b);
        let (hit, miss, evict) = cache.counters();
        assert_eq!((hit, miss, evict), (1, 1, 0));
        assert_eq!(cache.singleflight_waits(), 0);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = TileCache::new(1024, obs::Obs::handle());
        for t in 0..100 {
            cache.get_or_compute(key(t), || format!("tile {t}"));
        }
        for t in 0..100 {
            let body = cache.get_or_compute(key(t), || panic!("must be cached"));
            assert_eq!(*body, format!("tile {t}"));
        }
        assert_eq!(cache.len(), 100);
    }

    #[test]
    fn lru_evicts_oldest_first() {
        // Capacity 16 total = 1 per shard; keys landing in the same
        // shard evict each other oldest-first.
        let cache = TileCache::new(16, obs::Obs::handle());
        let mut by_shard: HashMap<usize, Vec<u32>> = HashMap::new();
        for t in 0..64 {
            by_shard.entry(key(t).shard()).or_default().push(t);
        }
        let (_, crowded) = by_shard
            .iter()
            .max_by_key(|(_, v)| v.len())
            .expect("some shard");
        let (a, b) = (crowded[0], crowded[1]);
        cache.get_or_compute(key(a), || "a".into());
        cache.get_or_compute(key(b), || "b".into());
        // `a` was evicted to make room for `b`; recomputing it is a miss.
        let again = cache.get_or_compute(key(a), || "a2".into());
        assert_eq!(*again, "a2");
        let (_, _, evictions) = cache.counters();
        assert!(evictions >= 2, "evictions {evictions}");
    }

    #[test]
    fn digest_isolates_file_versions() {
        let cache = TileCache::new(64, obs::Obs::handle());
        let old = TileKey {
            digest: 1,
            ..key(0)
        };
        let new = TileKey {
            digest: 2,
            ..key(0)
        };
        cache.get_or_compute(old, || "old".into());
        let body = cache.get_or_compute(new, || "new".into());
        assert_eq!(*body, "new");
    }

    #[test]
    fn concurrent_same_key_computes_once() {
        let cache = Arc::new(TileCache::new(64, obs::Obs::handle()));
        let computes = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let computes = Arc::clone(&computes);
            handles.push(std::thread::spawn(move || {
                cache.get_or_compute(key(7), move || {
                    computes.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    "once".to_string()
                })
            }));
        }
        for h in handles {
            assert_eq!(*h.join().unwrap(), "once");
        }
        assert_eq!(computes.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn waiters_are_counted_and_served_without_recomputing() {
        let cache = Arc::new(TileCache::new(64, obs::Obs::handle()));
        let gate = Arc::new(std::sync::Barrier::new(2));
        let computer = {
            let cache = Arc::clone(&cache);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                cache.get_or_compute(key(9), move || {
                    gate.wait(); // the waiter is about to look up
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    "slow".to_string()
                })
            })
        };
        gate.wait();
        // Give the computer a beat so the in-flight marker is visible.
        std::thread::sleep(std::time::Duration::from_millis(2));
        let body = cache.get_or_compute(key(9), || panic!("single flight must serve this"));
        assert_eq!(*body, "slow");
        assert_eq!(*computer.join().unwrap(), "slow");
        assert_eq!(cache.singleflight_waits(), 1);
        let (hits, misses, _) = cache.counters();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn unrelated_keys_are_not_blocked_by_a_slow_compute() {
        // The two-phase design's point: a cold tile computing must not
        // stall other keys (even same-shard ones). Start a slow compute,
        // then fetch every other key; total time far below the sleep
        // proves no one queued behind it.
        let cache = Arc::new(TileCache::new(1024, obs::Obs::handle()));
        let gate = Arc::new(std::sync::Barrier::new(2));
        let slow = {
            let cache = Arc::clone(&cache);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                cache.get_or_compute(key(0), move || {
                    gate.wait();
                    std::thread::sleep(std::time::Duration::from_millis(200));
                    "slow".to_string()
                })
            })
        };
        gate.wait();
        let start = std::time::Instant::now();
        for t in 1..64 {
            cache.get_or_compute(key(t), || format!("tile {t}"));
        }
        assert!(
            start.elapsed() < std::time::Duration::from_millis(150),
            "other keys stalled behind the slow compute: {:?}",
            start.elapsed()
        );
        assert_eq!(*slow.join().unwrap(), "slow");
    }

    #[test]
    fn panicked_compute_releases_waiters_to_retry() {
        let cache = Arc::new(TileCache::new(64, obs::Obs::handle()));
        let gate = Arc::new(std::sync::Barrier::new(2));
        let dead = {
            let cache = Arc::clone(&cache);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                cache.get_or_compute(key(3), move || {
                    gate.wait();
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    panic!("injected compute failure");
                })
            })
        };
        gate.wait();
        std::thread::sleep(std::time::Duration::from_millis(2));
        // This call waits on the doomed flight, then retries and
        // computes the tile itself.
        let body = cache.get_or_compute(key(3), || "recovered".to_string());
        assert_eq!(*body, "recovered");
        assert!(dead.join().is_err());
    }

    #[test]
    fn occupancy_tracks_entries_per_shard() {
        let cache = TileCache::new(1024, obs::Obs::handle());
        for t in 0..32 {
            cache.get_or_compute(key(t), || "x".into());
        }
        let occ = cache.shard_occupancy();
        assert_eq!(occ.len(), CACHE_SHARDS);
        assert_eq!(occ.iter().sum::<usize>(), 32);
        let high = cache.shard_occupancy_high();
        assert_eq!(high, *occ.iter().max().unwrap() as i64);
    }
}
