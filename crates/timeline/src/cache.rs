//! The sharded LRU tile cache.
//!
//! Tile responses are deterministic functions of (file digest, rank,
//! zoom level, tile number), so they cache perfectly: invalidation is
//! by key — a different file has a different digest and simply never
//! collides. Keys hash to one of 16 shards, each an independently
//! locked LRU map, so concurrent clients replaying the same zoom path
//! rarely contend on the same lock. A shard's lock is held across the
//! compute of a missing tile (single flight): when 32 clients race for
//! the same cold tile, one computes it and 31 hit.
//!
//! Hit / miss / eviction counts go to an [`obs`] registry — one metric
//! shard per cache shard, merged at snapshot time.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

use obs::ObsHandle;

/// Number of independently locked cache shards.
pub const CACHE_SHARDS: usize = 16;

/// Key of one cached tile. The digest pins the file version: a reload
/// of a changed file yields new keys, and stale entries age out of the
/// LRU instead of being served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileKey {
    /// FNV-1a digest of the file bytes.
    pub digest: u64,
    /// Rank (timeline) the tile describes.
    pub rank: u32,
    /// Zoom level: the file range divides into `2^zoom` tiles.
    pub zoom: u8,
    /// Tile number within the zoom level, `0 .. 2^zoom`.
    pub tile: u32,
}

impl TileKey {
    fn shard(&self) -> usize {
        // FNV-1a over the key fields; cheap and well-spread for the
        // small dense key space.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in self
            .digest
            .to_le_bytes()
            .into_iter()
            .chain(self.rank.to_le_bytes())
            .chain([self.zoom])
            .chain(self.tile.to_le_bytes())
        {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % CACHE_SHARDS as u64) as usize
    }
}

#[derive(Default)]
struct ShardState {
    /// key -> (recency stamp, body).
    map: HashMap<TileKey, (u64, Arc<String>)>,
    /// recency stamp -> key; the smallest stamp is the LRU victim.
    order: BTreeMap<u64, TileKey>,
    next_stamp: u64,
}

impl ShardState {
    fn stamp(&mut self) -> u64 {
        let s = self.next_stamp;
        self.next_stamp += 1;
        s
    }

    /// Move an existing entry to the most-recent end of the order.
    fn touch(&mut self, key: TileKey) {
        let stamp = self.stamp();
        if let Some((old, _)) = self.map.get_mut(&key) {
            let prev = *old;
            *old = stamp;
            self.order.remove(&prev);
            self.order.insert(stamp, key);
        }
    }
}

/// The sharded LRU cache of rendered tile bodies.
pub struct TileCache {
    shards: Vec<Mutex<ShardState>>,
    per_shard_capacity: usize,
    obs: ObsHandle,
}

impl TileCache {
    /// A cache holding at most `capacity` tiles total (rounded up to a
    /// multiple of [`CACHE_SHARDS`]), reporting to `obs`.
    pub fn new(capacity: usize, obs: ObsHandle) -> TileCache {
        TileCache {
            shards: (0..CACHE_SHARDS).map(|_| Mutex::default()).collect(),
            per_shard_capacity: capacity.div_ceil(CACHE_SHARDS).max(1),
            obs,
        }
    }

    /// Fetch the tile, computing it with `f` on a miss. The shard lock
    /// is held across `f`, so concurrent requests for the same missing
    /// tile compute it exactly once.
    pub fn get_or_compute(&self, key: TileKey, f: impl FnOnce() -> String) -> Arc<String> {
        let shard_idx = key.shard();
        let metrics = self.obs.shard(shard_idx);
        let mut shard = self.shards[shard_idx].lock().expect("cache shard poisoned");
        if let Some((_, body)) = shard.map.get(&key) {
            let body = Arc::clone(body);
            shard.touch(key);
            metrics.counter("serve.cache.hit").inc();
            return body;
        }
        metrics.counter("serve.cache.miss").inc();
        let body = Arc::new(f());
        let stamp = shard.stamp();
        shard.map.insert(key, (stamp, Arc::clone(&body)));
        shard.order.insert(stamp, key);
        while shard.map.len() > self.per_shard_capacity {
            let (&stamp, &victim) = shard.order.iter().next().expect("order tracks map");
            shard.order.remove(&stamp);
            shard.map.remove(&victim);
            metrics.counter("serve.cache.eviction").inc();
        }
        body
    }

    /// Merged (hit, miss, eviction) counts across every shard.
    pub fn counters(&self) -> (u64, u64, u64) {
        let snap = self.obs.snapshot();
        (
            snap.counter("serve.cache.hit"),
            snap.counter("serve.cache.miss"),
            snap.counter("serve.cache.eviction"),
        )
    }

    /// Number of cached tiles right now.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tile: u32) -> TileKey {
        TileKey {
            digest: 42,
            rank: 0,
            zoom: 4,
            tile,
        }
    }

    #[test]
    fn hit_after_miss_returns_same_body() {
        let cache = TileCache::new(64, obs::Obs::handle());
        let a = cache.get_or_compute(key(1), || "body".to_string());
        let b = cache.get_or_compute(key(1), || panic!("must not recompute"));
        assert_eq!(a, b);
        let (hit, miss, evict) = cache.counters();
        assert_eq!((hit, miss, evict), (1, 1, 0));
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = TileCache::new(1024, obs::Obs::handle());
        for t in 0..100 {
            cache.get_or_compute(key(t), || format!("tile {t}"));
        }
        for t in 0..100 {
            let body = cache.get_or_compute(key(t), || panic!("must be cached"));
            assert_eq!(*body, format!("tile {t}"));
        }
        assert_eq!(cache.len(), 100);
    }

    #[test]
    fn lru_evicts_oldest_first() {
        // Capacity 16 total = 1 per shard; keys landing in the same
        // shard evict each other oldest-first.
        let cache = TileCache::new(16, obs::Obs::handle());
        let mut by_shard: HashMap<usize, Vec<u32>> = HashMap::new();
        for t in 0..64 {
            by_shard.entry(key(t).shard()).or_default().push(t);
        }
        let (_, crowded) = by_shard
            .iter()
            .max_by_key(|(_, v)| v.len())
            .expect("some shard");
        let (a, b) = (crowded[0], crowded[1]);
        cache.get_or_compute(key(a), || "a".into());
        cache.get_or_compute(key(b), || "b".into());
        // `a` was evicted to make room for `b`; recomputing it is a miss.
        let again = cache.get_or_compute(key(a), || "a2".into());
        assert_eq!(*again, "a2");
        let (_, _, evictions) = cache.counters();
        assert!(evictions >= 2, "evictions {evictions}");
    }

    #[test]
    fn digest_isolates_file_versions() {
        let cache = TileCache::new(64, obs::Obs::handle());
        let old = TileKey {
            digest: 1,
            ..key(0)
        };
        let new = TileKey {
            digest: 2,
            ..key(0)
        };
        cache.get_or_compute(old, || "old".into());
        let body = cache.get_or_compute(new, || "new".into());
        assert_eq!(*body, "new");
    }

    #[test]
    fn concurrent_same_key_computes_once() {
        let cache = Arc::new(TileCache::new(64, obs::Obs::handle()));
        let computes = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let computes = Arc::clone(&computes);
            handles.push(std::thread::spawn(move || {
                cache.get_or_compute(key(7), move || {
                    computes.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    "once".to_string()
                })
            }));
        }
        for h in handles {
            assert_eq!(*h.join().unwrap(), "once");
        }
        assert_eq!(computes.load(std::sync::atomic::Ordering::SeqCst), 1);
    }
}
