//! The multi-trace server state: a byte-budgeted trace registry plus
//! the per-server plumbing (`App`) that `pilotd` and the tests share.
//!
//! [`TraceRegistry`] holds every loaded trace behind an ID. The trace
//! named `default` is the one `pilotd serve` was started with: it is
//! pinned — never evicted, never deletable — so a drained registry
//! always has something to serve. Everything else arrives over
//! `POST /v1/traces` and lives under a byte budget:
//!
//! * **Admission.** An upload's cost is its wire size. Uploads larger
//!   than the whole budget (minus the pinned default) are rejected with
//!   413 before any parsing state is kept.
//! * **Eviction.** When an admitted upload doesn't fit, the registry
//!   evicts the least-recently-hit unpinned trace until it does. An
//!   evicted trace's tile cache goes with it — tiles are keyed by file
//!   digest, so a re-upload rebuilds from cold, correctly.
//! * **In-flight safety.** Requests resolve a trace to an
//!   `Arc<TraceEntry>` before touching it; eviction only removes the
//!   registry's reference. A trace being queried while evicted finishes
//!   serving that request from its own `Arc` — eviction never tears a
//!   response.
//!
//! Upload validation goes through the salvage-tolerant readers: a
//! whole-or-torn CLOG2 body is salvaged and converted (torn inputs
//! register as salvaged-with-warnings), a SLOG2 body is parsed and
//! validated strictly. Malformed bodies are a client error (400),
//! never a 500.
//!
//! [`App`] bundles the registry with the request-level
//! [`ObsPlane`](crate::obsplane::ObsPlane), the shared obs registry,
//! the server [`Limits`], and the drain flag. The HTTP layer serves an
//! `Arc<App>`; one-trace embedders (tests, benches) use
//! [`App::single`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use mpelog::Clog2File;
use obs::{Counter, Gauge, ObsHandle};
use pilot_vis::json::Json;
use slog2::{
    Converter, FailureKind, RankVerdict, SalvageReport, Slog2File, TornPolicy, TraceSource,
};

use crate::obsplane::ObsPlane;
use crate::service::{fnv1a, TimelineService};

/// The registry ID of the trace the server was started with.
pub const DEFAULT_TRACE: &str = "default";

/// Every operator-tunable limit of the server, in one place. The
/// defaults suit an interactive viewer behind a handful of clients;
/// `pilotd serve` exposes the load-bearing ones as flags.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Per-request deadline (`--deadline-ms`); a request that can't
    /// finish in time answers 503 + `Retry-After`.
    pub deadline: Duration,
    /// A connection that waited longer than this in the accept queue is
    /// answered 429 + `Retry-After` without reading its request —
    /// load-shedding work that queue wait has already made stale.
    pub queue_shed: Duration,
    /// Accept-queue capacity; connections beyond it are answered 429
    /// straight from the accept thread.
    pub queue_cap: usize,
    /// Longest accepted request line (431 beyond it).
    pub max_request_line: usize,
    /// Most header bytes accepted per request (431 beyond it).
    pub max_header_bytes: usize,
    /// Largest accepted request body / upload (413 beyond it).
    pub max_body_bytes: usize,
    /// How long a client may dawdle mid-request (slow-loris) before the
    /// connection is answered 408 and closed.
    pub header_deadline: Duration,
    /// How long a graceful drain waits for in-flight work.
    pub drain_deadline: Duration,
    /// Registry byte budget (`--budget-mb`): resident traces' wire
    /// bytes stay under this, by LRU eviction.
    pub budget_bytes: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            deadline: Duration::from_millis(2000),
            queue_shed: Duration::from_millis(500),
            queue_cap: 256,
            max_request_line: 8 * 1024,
            max_header_bytes: 16 * 1024,
            max_body_bytes: 64 * 1024 * 1024,
            header_deadline: Duration::from_secs(2),
            drain_deadline: Duration::from_secs(5),
            budget_bytes: 256 * 1024 * 1024,
        }
    }
}

/// One resident trace: its service (index + tile cache) plus the
/// registry bookkeeping admission needs.
pub struct TraceEntry {
    /// Registry ID (`default` for the boot trace).
    pub id: String,
    /// The loaded trace behind the full query/render API.
    pub service: TimelineService,
    /// Wire size — the admission cost this entry holds of the budget.
    pub bytes: usize,
    /// Whether the upload was torn and went through salvage.
    pub salvaged: bool,
    /// Pinned entries (the default trace) are never evicted or deleted.
    pub pinned: bool,
    /// Logical-clock value of the last request that resolved this
    /// entry; the LRU eviction key.
    last_hit: AtomicU64,
}

/// Why an upload was refused.
#[derive(Debug)]
pub enum UploadError {
    /// Admitting the upload can never fit the budget (413).
    OverBudget { bytes: usize, budget: usize },
    /// The body is not a loadable trace in any accepted format (400).
    Invalid(String),
}

/// What [`TraceRegistry::upload`] admitted.
#[derive(Debug)]
pub struct UploadOutcome {
    /// Registry ID (supplied or derived from the content digest).
    pub id: String,
    /// Admission cost.
    pub bytes: usize,
    /// Whether the body was torn and recovered by salvage.
    pub salvaged: bool,
    /// Warning count on the loaded file (salvage forensics included).
    pub warnings: usize,
    /// IDs evicted to make room, in eviction order.
    pub evicted: Vec<String>,
    /// Whether an existing trace under this ID was replaced.
    pub replaced: bool,
}

/// Why a delete was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum RemoveError {
    /// No trace under that ID (404).
    NotFound,
    /// The default trace is pinned (409).
    Pinned,
}

/// Registry occupancy, for `/v1/stats` and the chaos invariants.
#[derive(Debug, Clone, Copy)]
pub struct Occupancy {
    /// Resident traces (the pinned default included).
    pub traces: usize,
    /// Bytes of budget in use.
    pub bytes: usize,
    /// The budget.
    pub budget: usize,
    /// Lifetime evictions.
    pub evictions: u64,
}

struct RegistryInner {
    traces: BTreeMap<String, Arc<TraceEntry>>,
    bytes: usize,
    evictions: u64,
}

/// The byte-budgeted trace map. All mutation is behind one mutex —
/// uploads are rare next to queries, and the hot path (resolving a
/// trace ID) holds it only long enough to clone an `Arc` and bump a
/// logical clock.
pub struct TraceRegistry {
    inner: Mutex<RegistryInner>,
    budget: usize,
    clock: AtomicU64,
    obs: ObsHandle,
    uploads: Counter,
    rejects: Counter,
    evictions: Counter,
    bytes_gauge: Gauge,
}

impl TraceRegistry {
    /// A registry holding `default_svc` as the pinned `default` trace.
    pub fn new(default_svc: TimelineService, budget: usize, obs: ObsHandle) -> TraceRegistry {
        let bytes = default_svc.file().to_bytes().len();
        let shard = obs.shard(0);
        let reg = TraceRegistry {
            inner: Mutex::new(RegistryInner {
                traces: BTreeMap::new(),
                bytes: 0,
                evictions: 0,
            }),
            budget,
            clock: AtomicU64::new(0),
            uploads: shard.counter("serve.registry.uploads"),
            rejects: shard.counter("serve.registry.rejects"),
            evictions: shard.counter("serve.registry.evictions"),
            bytes_gauge: shard.gauge("serve.registry.bytes"),
            obs,
        };
        {
            let mut inner = reg.inner.lock().expect("registry poisoned");
            inner.traces.insert(
                DEFAULT_TRACE.into(),
                Arc::new(TraceEntry {
                    id: DEFAULT_TRACE.into(),
                    service: default_svc,
                    bytes,
                    salvaged: false,
                    pinned: true,
                    last_hit: AtomicU64::new(0),
                }),
            );
            inner.bytes = bytes;
        }
        reg.bytes_gauge.set(bytes as i64);
        reg
    }

    /// Resolve a trace ID (`None` means `default`), bumping its LRU
    /// clock. `None` when no such trace is resident — evicted traces
    /// are indistinguishable from never-uploaded ones, by design.
    pub fn get(&self, id: Option<&str>) -> Option<Arc<TraceEntry>> {
        let id = id.unwrap_or(DEFAULT_TRACE);
        let inner = self.inner.lock().expect("registry poisoned");
        let entry = inner.traces.get(id)?;
        entry.last_hit.store(
            self.clock.fetch_add(1, Ordering::Relaxed) + 1,
            Ordering::Relaxed,
        );
        Some(Arc::clone(entry))
    }

    /// The pinned default trace.
    pub fn default_trace(&self) -> Arc<TraceEntry> {
        self.get(None).expect("default trace is pinned")
    }

    /// Validate, convert, and admit an upload. Parsing and index
    /// construction happen outside the registry lock; only admission
    /// (budget check, eviction, insert) holds it.
    pub fn upload(&self, id: Option<&str>, bytes: &[u8]) -> Result<UploadOutcome, UploadError> {
        let digest = fnv1a(bytes);
        let id = match id {
            Some(DEFAULT_TRACE) => {
                return Err(UploadError::Invalid(format!(
                    "trace id {DEFAULT_TRACE:?} is reserved for the boot trace"
                )))
            }
            Some(given) if !given.is_empty() => {
                if !given
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
                {
                    return Err(UploadError::Invalid(format!("bad trace id {given:?}")));
                }
                given.to_string()
            }
            _ => format!("t{digest:016x}"),
        };

        let (file, salvaged) = load_upload(bytes)?;
        let warnings = file.warnings.len();
        let service = TimelineService::with_obs(file, digest, self.obs.clone());
        let cost = bytes.len();

        let mut inner = self.inner.lock().expect("registry poisoned");
        let pinned_bytes: usize = inner
            .traces
            .values()
            .filter(|e| e.pinned)
            .map(|e| e.bytes)
            .sum();
        if cost.saturating_add(pinned_bytes) > self.budget {
            drop(inner);
            self.rejects.inc();
            return Err(UploadError::OverBudget {
                bytes: cost,
                budget: self.budget,
            });
        }
        let replaced = if let Some(old) = inner.traces.remove(&id) {
            inner.bytes -= old.bytes;
            true
        } else {
            false
        };
        let mut evicted = Vec::new();
        while inner.bytes + cost > self.budget {
            let victim = inner
                .traces
                .values()
                .filter(|e| !e.pinned)
                .min_by_key(|e| e.last_hit.load(Ordering::Relaxed))
                .map(|e| e.id.clone())
                .expect("unpinned entry exists while over budget");
            let gone = inner.traces.remove(&victim).expect("victim resident");
            inner.bytes -= gone.bytes;
            inner.evictions += 1;
            evicted.push(victim);
        }
        inner.traces.insert(
            id.clone(),
            Arc::new(TraceEntry {
                id: id.clone(),
                service,
                bytes: cost,
                salvaged,
                pinned: false,
                last_hit: AtomicU64::new(self.clock.fetch_add(1, Ordering::Relaxed) + 1),
            }),
        );
        inner.bytes += cost;
        let bytes_now = inner.bytes;
        drop(inner);

        self.uploads.inc();
        self.evictions.add(evicted.len() as u64);
        self.bytes_gauge.set(bytes_now as i64);
        Ok(UploadOutcome {
            id,
            bytes: cost,
            salvaged,
            warnings,
            evicted,
            replaced,
        })
    }

    /// Delete a trace by ID.
    pub fn remove(&self, id: &str) -> Result<(), RemoveError> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        match inner.traces.get(id) {
            None => return Err(RemoveError::NotFound),
            Some(e) if e.pinned => return Err(RemoveError::Pinned),
            Some(_) => {}
        }
        let gone = inner.traces.remove(id).expect("checked resident");
        inner.bytes -= gone.bytes;
        let bytes_now = inner.bytes;
        drop(inner);
        self.bytes_gauge.set(bytes_now as i64);
        Ok(())
    }

    /// Current occupancy.
    pub fn occupancy(&self) -> Occupancy {
        let inner = self.inner.lock().expect("registry poisoned");
        Occupancy {
            traces: inner.traces.len(),
            bytes: inner.bytes,
            budget: self.budget,
            evictions: inner.evictions,
        }
    }

    /// `GET /v1/traces` — resident traces in ID order plus occupancy.
    pub fn list_json(&self) -> String {
        let inner = self.inner.lock().expect("registry poisoned");
        let traces: Vec<Json> = inner
            .traces
            .values()
            .map(|e| {
                Json::Obj(vec![
                    ("id".into(), Json::Str(e.id.clone())),
                    ("bytes".into(), Json::Num(e.bytes as f64)),
                    ("pinned".into(), Json::Bool(e.pinned)),
                    ("salvaged".into(), Json::Bool(e.salvaged)),
                    (
                        "warnings".into(),
                        Json::Num(e.service.file().warnings.len() as f64),
                    ),
                    (
                        "ranks".into(),
                        Json::Num(e.service.file().timelines.len() as f64),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("budget_bytes".into(), Json::Num(self.budget as f64)),
            ("bytes".into(), Json::Num(inner.bytes as f64)),
            ("evictions".into(), Json::Num(inner.evictions as f64)),
            ("traces".into(), Json::Arr(traces)),
        ])
        .compact()
    }

    /// Registry occupancy as `/v1/stats` fields.
    pub fn stats_fields(&self) -> Vec<(String, Json)> {
        let o = self.occupancy();
        vec![(
            "registry".into(),
            Json::Obj(vec![
                ("traces".into(), Json::Num(o.traces as f64)),
                ("bytes".into(), Json::Num(o.bytes as f64)),
                ("budget_bytes".into(), Json::Num(o.budget as f64)),
                ("evictions".into(), Json::Num(o.evictions as f64)),
            ]),
        )]
    }
}

/// Parse an upload through the tolerant readers: strict SLOG2, or
/// salvage-converted CLOG2 (whole or torn). Anything else — and any
/// SLOG2 body that fails strict validation — is a client error.
fn load_upload(bytes: &[u8]) -> Result<(Slog2File, bool), UploadError> {
    if Slog2File::sniff(bytes) {
        let file = Slog2File::from_bytes(bytes)
            .map_err(|e| UploadError::Invalid(format!("bad SLOG2 body: {e}")))?;
        let defects = slog2::validate(&file);
        if !defects.is_empty() {
            return Err(UploadError::Invalid(format!(
                "SLOG2 body fails validation: {} defect(s), first: {:?}",
                defects.len(),
                defects[0]
            )));
        }
        return Ok((file, false));
    }
    if Clog2File::sniff(bytes) {
        let s = Clog2File::salvage_bytes(bytes);
        let records: usize = s.file.blocks.values().map(Vec::len).sum();
        if records == 0 {
            return Err(UploadError::Invalid(
                "CLOG2 body torn before any complete record".into(),
            ));
        }
        let mut report = SalvageReport {
            records_recovered: s.records_recovered,
            bytes_recovered: s.bytes_recovered,
            truncated: s.truncated,
            ..Default::default()
        };
        if let Some(rank) = s.torn_rank {
            report.verdicts.push(RankVerdict {
                rank,
                kind: FailureKind::Aborted,
                detail: "upload truncated mid-block".into(),
            });
        }
        let truncated = s.truncated;
        let file = Converter::new()
            .on_torn(TornPolicy::Salvage(report))
            .convert(TraceSource::InMemory(&s.file))
            .expect("in-memory source cannot fail")
            .file;
        return Ok((file, truncated));
    }
    Err(UploadError::Invalid(
        "body is neither SLOG2 nor CLOG2 (unknown magic)".into(),
    ))
}

/// Everything one running server shares: the trace registry, the
/// request observability plane, the obs registry they both report
/// into, the limits, and the drain flag.
pub struct App {
    limits: Limits,
    obs: ObsHandle,
    plane: ObsPlane,
    registry: TraceRegistry,
    draining: AtomicBool,
}

impl App {
    /// Wrap `default_svc` (which becomes the pinned `default` trace)
    /// under `limits`. The service's obs registry becomes the server's:
    /// the plane, the tile caches of every uploaded trace, and the
    /// registry counters all report into it.
    pub fn new(default_svc: TimelineService, limits: Limits) -> App {
        let obs = default_svc.obs_handle().clone();
        App {
            plane: ObsPlane::new(obs.clone()),
            registry: TraceRegistry::new(default_svc, limits.budget_bytes, obs.clone()),
            obs,
            limits,
            draining: AtomicBool::new(false),
        }
    }

    /// The one-trace default-limits wrapper most tests want.
    pub fn single(default_svc: TimelineService) -> Arc<App> {
        Arc::new(App::new(default_svc, Limits::default()))
    }

    /// The trace registry.
    pub fn registry(&self) -> &TraceRegistry {
        &self.registry
    }

    /// The request observability plane.
    pub fn plane(&self) -> &ObsPlane {
        &self.plane
    }

    /// The server limits.
    pub fn limits(&self) -> &Limits {
        &self.limits
    }

    /// The shared obs registry.
    pub fn obs_handle(&self) -> &ObsHandle {
        &self.obs
    }

    /// Turn on request tracing (trace IDs, phase timings, the flight
    /// recorder). Response bodies are unaffected.
    pub fn enable_tracing(&self) {
        self.plane.set_enabled(true);
    }

    /// Whether the server is draining: still answering, but telling
    /// clients to go away (503 + `Connection: close`).
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Enter drain mode. One-way; a drained server is shutting down.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// `/metrics` — Prometheus-style text of the shared registry.
    pub fn metrics_text(&self) -> String {
        self.obs.snapshot().to_prometheus_text()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpelog::Color;
    use slog2::{
        Category, CategoryId, CategoryKind, Drawable, FrameTree, StateDrawable, TimeWindow,
        TimelineId,
    };

    fn small_file(states: usize) -> Slog2File {
        let mut ds = Vec::new();
        for i in 0..states {
            ds.push(Drawable::State(StateDrawable {
                category: CategoryId(0),
                timeline: TimelineId(0),
                start: i as f64,
                end: i as f64 + 0.5,
                nest_level: 0,
                text: String::new(),
            }));
        }
        let range = TimeWindow::new(0.0, states as f64);
        Slog2File {
            timelines: vec!["PI_MAIN".into()],
            categories: vec![Category {
                index: CategoryId(0),
                name: "Compute".into(),
                color: Color::GRAY,
                kind: CategoryKind::State,
            }],
            range,
            warnings: vec![],
            tree: FrameTree::build(ds, range.t0, range.t1, 16, 8),
        }
    }

    fn registry_with_budget(budget: usize) -> TraceRegistry {
        TraceRegistry::new(
            TimelineService::from_file(small_file(4)),
            budget,
            obs::Obs::handle(),
        )
    }

    #[test]
    fn default_trace_is_pinned_and_undeletable() {
        let reg = registry_with_budget(1 << 20);
        assert!(reg.get(None).unwrap().pinned);
        assert!(reg.get(Some(DEFAULT_TRACE)).unwrap().pinned);
        assert_eq!(reg.remove(DEFAULT_TRACE), Err(RemoveError::Pinned));
        assert_eq!(reg.remove("ghost"), Err(RemoveError::NotFound));
    }

    #[test]
    fn upload_roundtrips_a_valid_slog2_body() {
        let reg = registry_with_budget(1 << 20);
        let body = small_file(6).to_bytes();
        let out = reg.upload(Some("exp1"), &body).unwrap();
        assert_eq!(out.id, "exp1");
        assert!(!out.salvaged);
        assert!(!out.replaced);
        let entry = reg.get(Some("exp1")).unwrap();
        assert_eq!(entry.bytes, body.len());
        assert_eq!(entry.service.file().timelines.len(), 1);
        // Replacement under the same ID is flagged.
        assert!(reg.upload(Some("exp1"), &body).unwrap().replaced);
        reg.remove("exp1").unwrap();
        assert!(reg.get(Some("exp1")).is_none());
    }

    #[test]
    fn garbage_and_reserved_ids_are_client_errors() {
        let reg = registry_with_budget(1 << 20);
        assert!(matches!(
            reg.upload(None, b"not a trace at all"),
            Err(UploadError::Invalid(_))
        ));
        let body = small_file(2).to_bytes();
        assert!(matches!(
            reg.upload(Some(DEFAULT_TRACE), &body),
            Err(UploadError::Invalid(_))
        ));
        assert!(matches!(
            reg.upload(Some("../etc"), &body),
            Err(UploadError::Invalid(_))
        ));
    }

    #[test]
    fn torn_clog2_upload_salvages_with_warnings() {
        let clog = workloads::synthetic_clog(2, 40);
        let whole = clog.to_bytes();
        let torn = &whole[..whole.len() - whole.len() / 4];
        let reg = registry_with_budget(1 << 20);
        let out = reg.upload(Some("torn"), torn).unwrap();
        assert!(out.salvaged);
        assert!(out.warnings > 0, "salvage forensics should leave warnings");
        let entry = reg.get(Some("torn")).unwrap();
        assert!(entry.salvaged);
        assert!(!entry.service.file().warnings.is_empty());
    }

    #[test]
    fn over_budget_uploads_get_413_and_cold_traces_evict() {
        let default_bytes = small_file(4).to_bytes().len();
        let body = small_file(64).to_bytes();
        // Budget fits the default plus ~2 uploads.
        let reg = registry_with_budget(default_bytes + body.len() * 2 + body.len() / 2);
        assert!(matches!(
            reg.upload(Some("huge"), &vec![0u8; 1 << 22]).err().unwrap(),
            UploadError::Invalid(_) // bad magic wins before budget
        ));
        let giant = {
            // Valid but over budget: pad warnings to inflate the body.
            let mut f = small_file(2);
            f.warnings = vec!["x".repeat(1 << 10); 1 << 10];
            f.to_bytes()
        };
        assert!(matches!(
            reg.upload(Some("big"), &giant),
            Err(UploadError::OverBudget { .. })
        ));

        reg.upload(Some("a"), &body).unwrap();
        reg.upload(Some("b"), &body).unwrap();
        // Touch `a` so `b` is the LRU victim.
        reg.get(Some("a")).unwrap();
        let out = reg.upload(Some("c"), &body).unwrap();
        assert_eq!(out.evicted, vec!["b".to_string()]);
        assert!(reg.get(Some("b")).is_none());
        assert!(reg.get(Some("a")).is_some());
        let o = reg.occupancy();
        assert_eq!(o.evictions, 1);
        assert!(o.bytes <= o.budget);
        // The pinned default never evicts no matter how cold.
        assert!(reg.get(None).is_some());
    }

    #[test]
    fn eviction_does_not_tear_in_flight_queries() {
        let reg = registry_with_budget(1 << 20);
        let body = small_file(8).to_bytes();
        reg.upload(Some("live"), &body).unwrap();
        let held = reg.get(Some("live")).unwrap();
        reg.remove("live").unwrap();
        // The Arc keeps the evicted trace fully usable.
        assert!(!held.service.query_json(TimeWindow::ALL, None).is_empty());
        assert!(reg.get(Some("live")).is_none());
    }

    #[test]
    fn list_json_is_deterministic_and_ordered() {
        let reg = registry_with_budget(1 << 20);
        let body = small_file(3).to_bytes();
        reg.upload(Some("zz"), &body).unwrap();
        reg.upload(Some("aa"), &body).unwrap();
        let v = pilot_vis::json::Json::parse(&reg.list_json()).unwrap();
        let ids: Vec<&str> = v
            .get("traces")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|t| t.get("id").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(ids, vec!["aa", "default", "zz"]);
        assert_eq!(reg.list_json(), reg.list_json());
    }
}
