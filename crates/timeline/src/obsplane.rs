//! The request-level observability plane.
//!
//! One [`ObsPlane`] rides inside a [`TimelineService`]: when enabled,
//! every HTTP request carries a trace ID (the client's `X-Trace-Id` or
//! a generated `req-<hex>`), and the serving path records timed phases
//! — queue wait, parse, cache lookup, index scan, render, response
//! write — into a thread-local active-request slot. On completion the
//! request becomes a [`RequestTrace`]: its total and per-phase times go
//! to per-endpoint log2 histograms in the shared [`obs`] registry (for
//! `/metrics`), to a bounded exact-latency window (for the stable
//! p50/p99 of `/v1/obs/endpoints`), and to the [`FlightRecorder`] (the
//! N slowest + N most recent traces, dumpable as Chrome trace-event
//! JSON at `/v1/obs/flight`).
//!
//! Everything here is bounded and off the response path: phases are
//! timed with [`Instant`]s, never wall clocks, and no trace ID or
//! timestamp ever reaches a response body — `/v1/tile` and `/v1/render`
//! bytes are identical with tracing on or off (pinned by a test).
//!
//! [`TimelineService`]: crate::service::TimelineService

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use obs::{
    next_trace_id, FlightRecorder, Gauge, Histogram, ObsHandle, Phase, PhaseSpan, RequestTrace,
    RingBuffer,
};
use pilot_vis::json::Json;

/// Endpoint classes, in reporting order. Every request target maps to
/// exactly one (unknown paths land in `other`).
pub const ENDPOINTS: [&str; 13] = [
    "tile", "query", "render", "info", "legend", "warnings", "stats", "diagnose", "diff",
    "metrics", "obs", "traces", "other",
];

/// How many completed requests each endpoint's exact-latency window
/// holds. Percentiles over the window are exact (unlike the log2
/// histograms), which keeps the bench-gated p50/p99 stable.
pub const WINDOW_CAPACITY: usize = 4096;

/// Index into [`ENDPOINTS`] for a request target (path before `?`).
pub fn endpoint_class(target: &str) -> usize {
    let path = target.split('?').next().unwrap_or(target);
    match path {
        "/v1/tile" => 0,
        "/v1/query" => 1,
        "/v1/render" => 2,
        "/v1/info" => 3,
        "/v1/legend" => 4,
        "/v1/warnings" => 5,
        "/v1/stats" => 6,
        "/v1/diagnose" => 7,
        "/v1/diff" => 8,
        "/metrics" => 9,
        "/v1/obs/endpoints" | "/v1/obs/flight" => 10,
        p if p == "/v1/traces" || p.starts_with("/v1/traces/") => 11,
        _ => 12,
    }
}

/// The in-progress request on this worker thread.
struct ActiveRequest {
    trace_id: String,
    endpoint_idx: usize,
    target: String,
    worker: u32,
    start: Instant,
    /// (phase, offset from start, duration) — nanoseconds internally,
    /// converted to µs only at the flight-recorder boundary.
    phases: Vec<(Phase, u64, u64)>,
    /// This worker's pre-registered registry handles, resolved in
    /// `begin` so `finish` touches no registry locks.
    handles: Arc<WorkerHandles>,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveRequest>> = const { RefCell::new(None) };
}

/// RAII timer for one phase of the active request. A no-op (not even a
/// clock read) when no traced request is active on this thread, so
/// instrumented code paths cost nothing for in-process callers and for
/// servers with tracing disabled.
#[must_use = "the phase is recorded when the timer drops"]
pub struct PhaseTimer {
    phase: Phase,
    start: Option<Instant>,
}

impl PhaseTimer {
    /// Start timing `phase`; armed only when a request is active.
    pub fn start(phase: Phase) -> PhaseTimer {
        let armed = ACTIVE.with(|a| a.borrow().is_some());
        PhaseTimer {
            phase,
            start: armed.then(Instant::now),
        }
    }
}

impl Drop for PhaseTimer {
    fn drop(&mut self) {
        let Some(started) = self.start else {
            return;
        };
        let dur = started.elapsed();
        ACTIVE.with(|a| {
            if let Some(req) = a.borrow_mut().as_mut() {
                let off = started.saturating_duration_since(req.start);
                req.phases.push((self.phase, as_ns(off), as_ns(dur).max(1)));
            }
        });
    }
}

/// Record a phase with externally measured times (the HTTP layer times
/// queue wait and header parsing before the request officially begins).
pub fn note_phase(phase: Phase, offset: Duration, dur: Duration) {
    ACTIVE.with(|a| {
        if let Some(req) = a.borrow_mut().as_mut() {
            req.phases.push((phase, as_ns(offset), as_ns(dur).max(1)));
        }
    });
}

fn as_ns(d: Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

/// One completed request's contribution to an endpoint window.
#[derive(Clone, Copy)]
struct ReqSample {
    total_ns: u64,
    phase_ns: [u64; Phase::ALL.len()],
}

struct EndpointWindow {
    ring: RingBuffer<ReqSample>,
    /// All-time completed requests for this endpoint (window + aged out).
    total: u64,
}

/// Pre-formatted metric names for one endpoint, built once so the
/// per-request finish path does no string formatting.
struct EndpointNames {
    total: String,
    phases: [String; Phase::ALL.len()],
}

/// Pre-registered registry handles for one worker's shard. Looked up by
/// name exactly once (registration takes the shard's map lock); after
/// that every per-request update is a plain relaxed atomic, so the
/// finish path takes no registry locks at all.
struct WorkerHandles {
    in_flight: Gauge,
    /// Per-endpoint total-latency histograms.
    totals: Vec<Histogram>,
    /// Per-endpoint, per-phase latency histograms.
    phases: Vec<[Histogram; Phase::ALL.len()]>,
}

/// The per-service observability plane. Created disabled: phase timers
/// and begin/finish are no-ops until [`set_enabled`](Self::set_enabled),
/// so embedded services (tests, the serve-bench oracle) pay nothing.
pub struct ObsPlane {
    enabled: AtomicBool,
    obs: ObsHandle,
    flight: FlightRecorder,
    epoch: Instant,
    windows: Vec<Mutex<EndpointWindow>>,
    names: Vec<EndpointNames>,
    /// Registry handles per worker index, built on each worker's first
    /// request and read-locked (uncontended) afterwards.
    handles: RwLock<Vec<Option<Arc<WorkerHandles>>>>,
    queue_depth: Gauge,
}

impl ObsPlane {
    /// A disabled plane reporting into `obs` (the service's registry,
    /// so request histograms appear in `/metrics`).
    pub fn new(obs: ObsHandle) -> ObsPlane {
        let queue_depth = obs.shard(0).gauge("serve.http.queue_depth");
        ObsPlane {
            enabled: AtomicBool::new(false),
            obs,
            flight: FlightRecorder::default(),
            epoch: Instant::now(),
            windows: ENDPOINTS
                .iter()
                .map(|_| {
                    Mutex::new(EndpointWindow {
                        ring: RingBuffer::new(WINDOW_CAPACITY),
                        total: 0,
                    })
                })
                .collect(),
            names: ENDPOINTS
                .iter()
                .map(|ep| EndpointNames {
                    total: format!("serve.req.{ep}.total_ns"),
                    phases: std::array::from_fn(|i| {
                        format!("serve.req.{ep}.{}_ns", Phase::ALL[i].name())
                    }),
                })
                .collect(),
            handles: RwLock::new(Vec::new()),
            queue_depth,
        }
    }

    /// The registry handles for `worker`, registering them on first use.
    fn worker_handles(&self, worker: u32) -> Arc<WorkerHandles> {
        let worker = worker as usize;
        if let Some(Some(h)) = self.handles.read().expect("handles").get(worker) {
            return Arc::clone(h);
        }
        let shard = self.obs.shard(worker);
        let built = Arc::new(WorkerHandles {
            in_flight: shard.gauge("serve.http.in_flight"),
            totals: self
                .names
                .iter()
                .map(|n| shard.histogram(&n.total))
                .collect(),
            phases: self
                .names
                .iter()
                .map(|n| std::array::from_fn(|i| shard.histogram(&n.phases[i])))
                .collect(),
        });
        let mut w = self.handles.write().expect("handles");
        if w.len() <= worker {
            w.resize(worker + 1, None);
        }
        // Another thread may have built this worker's handles while we
        // weren't holding the lock; same names, either copy is fine.
        w[worker].get_or_insert(built).clone()
    }

    /// Whether request tracing is on.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn request tracing on or off. Requests already in flight
    /// complete under the setting they began with.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// The flight recorder (the slowest + most recent request traces).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// A connection was queued for the worker pool.
    pub fn note_enqueued(&self) {
        if self.enabled() {
            self.queue_depth.add(1);
        }
    }

    /// A worker picked a queued connection up.
    pub fn note_dequeued(&self) {
        if self.enabled() {
            self.queue_depth.add(-1);
        }
    }

    /// Begin a traced request on this thread. Returns the trace ID in
    /// use (the client's `X-Trace-Id` if supplied) or `None` when
    /// tracing is disabled. `start` is when the request's clock began:
    /// the accept-queue enqueue instant for a connection's first
    /// request (so queue wait is inside the total), the request-line
    /// read for subsequent keep-alive requests.
    pub fn begin(
        &self,
        target: &str,
        trace_id: Option<String>,
        worker: u32,
        start: Instant,
    ) -> Option<String> {
        if !self.enabled() {
            return None;
        }
        let trace_id = trace_id.unwrap_or_else(next_trace_id);
        let handles = self.worker_handles(worker);
        handles.in_flight.add(1);
        ACTIVE.with(|a| {
            *a.borrow_mut() = Some(ActiveRequest {
                trace_id: trace_id.clone(),
                endpoint_idx: endpoint_class(target),
                target: target.to_string(),
                worker,
                start,
                phases: Vec::with_capacity(8),
                handles,
            });
        });
        Some(trace_id)
    }

    /// Complete the active request (no-op when none): fold it into the
    /// endpoint window, the registry histograms, and the flight
    /// recorder.
    pub fn finish(&self, status: u16, bytes: u64) {
        let Some(req) = ACTIVE.with(|a| a.borrow_mut().take()) else {
            return;
        };
        let total_ns = as_ns(req.start.elapsed()).max(1);
        let mut sample = ReqSample {
            total_ns,
            phase_ns: [0; Phase::ALL.len()],
        };
        for &(phase, _, dur_ns) in &req.phases {
            sample.phase_ns[phase_idx(phase)] += dur_ns;
        }
        {
            let mut w = self.windows[req.endpoint_idx]
                .lock()
                .expect("endpoint window poisoned");
            w.total += 1;
            w.ring.push(sample);
        }
        req.handles.totals[req.endpoint_idx].record(total_ns);
        for (i, ns) in sample.phase_ns.iter().enumerate() {
            if *ns > 0 {
                req.handles.phases[req.endpoint_idx][i].record(*ns);
            }
        }
        req.handles.in_flight.add(-1);

        let start_us = as_ns(req.start.saturating_duration_since(self.epoch)) / 1_000;
        self.flight.record(RequestTrace {
            trace_id: req.trace_id,
            endpoint: ENDPOINTS[req.endpoint_idx],
            target: req.target,
            status,
            worker: req.worker,
            start_us,
            total_us: (total_ns / 1_000).max(1),
            bytes,
            // into_iter + collect reuses the phases Vec's allocation
            // (same element size/alignment), so this converts in place.
            phases: req
                .phases
                .into_iter()
                .map(|(phase, off_ns, dur_ns)| PhaseSpan {
                    phase,
                    start_us: off_ns / 1_000,
                    dur_us: (dur_ns / 1_000).max(1),
                })
                .collect(),
        });
    }

    /// Discard this thread's active request without recording it — the
    /// worker-panic path, where `finish` will never run. Keeps the
    /// in-flight gauge honest; the unwound request leaves no trace.
    pub fn abandon(&self) {
        if let Some(req) = ACTIVE.with(|a| a.borrow_mut().take()) {
            req.handles.in_flight.add(-1);
        }
    }

    /// `/v1/obs/endpoints` — per-endpoint counts and exact p50/p99 for
    /// totals and every phase, computed over each endpoint's latency
    /// window. Endpoints with no traffic are omitted; values are µs.
    pub fn endpoints_json(&self) -> String {
        let mut endpoints = Vec::new();
        let mut requests = 0u64;
        for (idx, ep) in ENDPOINTS.iter().enumerate() {
            let (samples, total) = {
                let w = self.windows[idx].lock().expect("endpoint window poisoned");
                (w.ring.to_vec(), w.total)
            };
            requests += total;
            if samples.is_empty() {
                continue;
            }
            let mut fields = vec![
                ("endpoint".into(), Json::Str((*ep).to_string())),
                ("count".into(), Json::Num(total as f64)),
                ("window".into(), Json::Num(samples.len() as f64)),
            ];
            fields.extend(dist_fields("", samples.iter().map(|s| s.total_ns)));

            // Which phase owns the p99: among the samples whose totals
            // sit just at the 99th percentile (ranks p98–p99). The
            // top 1% is deliberately excluded — those are the beyond-
            // p99 outliers (e.g. connection-accept queue waits), whose
            // totals are so large they would hijack the verdict about
            // what a *p99* request spends its time on; the flight
            // recorder's slowest ring is where they show up instead.
            let mut by_total: Vec<&ReqSample> = samples.iter().collect();
            by_total.sort_unstable_by_key(|s| s.total_ns);
            let n = by_total.len();
            let hi = ((0.99 * n as f64).ceil() as usize).clamp(1, n);
            let lo = ((0.98 * n as f64) as usize).min(hi - 1);
            let band = &by_total[lo..hi];
            let mut phase_sums = [0u64; Phase::ALL.len()];
            for s in band {
                for (i, ns) in s.phase_ns.iter().enumerate() {
                    phase_sums[i] += ns;
                }
            }
            let band_total: u64 = band.iter().map(|s| s.total_ns).sum();
            let (owner_idx, owner_ns) = phase_sums
                .iter()
                .enumerate()
                .max_by_key(|(_, ns)| **ns)
                .expect("Phase::ALL is non-empty");
            let owner = if *owner_ns == 0 {
                "untracked"
            } else {
                Phase::ALL[owner_idx].name()
            };
            fields.push(("p99_owner".into(), Json::Str(owner.to_string())));
            fields.push((
                "p99_owner_share".into(),
                Json::Num(*owner_ns as f64 / band_total.max(1) as f64),
            ));

            let mut phases = Vec::new();
            for (pi, phase) in Phase::ALL.iter().enumerate() {
                let observed: Vec<u64> = samples
                    .iter()
                    .map(|s| s.phase_ns[pi])
                    .filter(|&ns| ns > 0)
                    .collect();
                if observed.is_empty() {
                    continue;
                }
                let mut pf = vec![("observed".into(), Json::Num(observed.len() as f64))];
                pf.extend(dist_fields("", observed.iter().copied()));
                phases.push((phase.name().to_string(), Json::Obj(pf)));
            }
            fields.push(("phases".into(), Json::Obj(phases)));
            endpoints.push(Json::Obj(fields));
        }
        Json::Obj(vec![
            ("enabled".into(), Json::Bool(self.enabled())),
            ("requests".into(), Json::Num(requests as f64)),
            (
                "flight".into(),
                Json::Obj(vec![
                    ("recorded".into(), Json::Num(self.flight.recorded() as f64)),
                    ("capacity".into(), Json::Num(self.flight.capacity() as f64)),
                ]),
            ),
            ("endpoints".into(), Json::Arr(endpoints)),
        ])
        .compact()
    }

    /// `/v1/obs/flight` — the flight dump as Chrome trace-event JSON.
    pub fn flight_json(&self) -> String {
        self.flight.to_chrome_json()
    }
}

fn phase_idx(phase: Phase) -> usize {
    Phase::ALL
        .iter()
        .position(|p| *p == phase)
        .expect("phase in ALL")
}

/// `{prefix}p50_us` / `p99_us` / `max_us` / `mean_us` fields over a set
/// of nanosecond observations.
fn dist_fields(prefix: &str, obs_ns: impl Iterator<Item = u64>) -> Vec<(String, Json)> {
    let mut sorted: Vec<u64> = obs_ns.collect();
    sorted.sort_unstable();
    let us = |ns: u64| ns as f64 / 1_000.0;
    let pct = |q: f64| -> f64 {
        // Nearest-rank on the sorted window; exact, no bucketing.
        let n = sorted.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        us(sorted[idx])
    };
    let mean_ns = sorted.iter().sum::<u64>() as f64 / sorted.len().max(1) as f64;
    vec![
        (format!("{prefix}p50_us"), Json::Num(pct(0.50))),
        (format!("{prefix}p99_us"), Json::Num(pct(0.99))),
        (
            format!("{prefix}max_us"),
            Json::Num(us(*sorted.last().expect("non-empty"))),
        ),
        (format!("{prefix}mean_us"), Json::Num(mean_ns / 1_000.0)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane() -> ObsPlane {
        let p = ObsPlane::new(obs::Obs::handle());
        p.set_enabled(true);
        p
    }

    /// Not a regression gate (wall-clock on shared runners is noisy) —
    /// run with `--ignored` to re-measure the per-request budget. The
    /// full begin + 6-phase + finish sequence costs ~0.8µs on the dev
    /// box, the figure the <5% serve-bench overhead gate is sized from.
    #[test]
    #[ignore]
    fn hotpath_cost() {
        let p = plane();
        let n = 100_000u32;
        let t0 = Instant::now();
        for i in 0..n {
            p.begin("/v1/tile?rank=0&zoom=3&tile=1", None, i % 8, Instant::now());
            for phase in [Phase::Cache, Phase::Index, Phase::Render, Phase::Write] {
                let _t = PhaseTimer::start(phase);
            }
            note_phase(Phase::Queue, Duration::ZERO, Duration::from_nanos(100));
            note_phase(Phase::Parse, Duration::ZERO, Duration::from_nanos(100));
            p.finish(200, 4096);
        }
        println!(
            "plane hot path: {:.0} ns/request",
            t0.elapsed().as_nanos() as f64 / n as f64
        );
    }

    /// Companion to `hotpath_cost`: the same sequence under worker-pool
    /// concurrency (8 threads sharing one plane), the shape the
    /// serve-bench overhead gate actually measures.
    #[test]
    #[ignore]
    fn hotpath_cost_concurrent() {
        let p = std::sync::Arc::new(plane());
        let threads = 8;
        let n = 20_000u32;
        let t0 = Instant::now();
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let p = std::sync::Arc::clone(&p);
                std::thread::spawn(move || {
                    for _ in 0..n {
                        p.begin("/v1/tile?rank=0&zoom=3&tile=1", None, w, Instant::now());
                        for phase in [Phase::Cache, Phase::Index, Phase::Render, Phase::Write] {
                            let _t = PhaseTimer::start(phase);
                        }
                        note_phase(Phase::Queue, Duration::ZERO, Duration::from_nanos(100));
                        note_phase(Phase::Parse, Duration::ZERO, Duration::from_nanos(100));
                        p.finish(200, 4096);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = u64::from(threads) * u64::from(n);
        println!(
            "plane hot path (8 threads): {:.0} ns/request wall",
            t0.elapsed().as_nanos() as f64 / total as f64
        );
    }

    #[test]
    fn endpoint_classes_cover_all_routes() {
        assert_eq!(ENDPOINTS[endpoint_class("/v1/tile?rank=0&zoom=1")], "tile");
        assert_eq!(ENDPOINTS[endpoint_class("/v1/query")], "query");
        assert_eq!(ENDPOINTS[endpoint_class("/metrics")], "metrics");
        assert_eq!(ENDPOINTS[endpoint_class("/v1/obs/flight")], "obs");
        assert_eq!(ENDPOINTS[endpoint_class("/v1/traces")], "traces");
        assert_eq!(ENDPOINTS[endpoint_class("/v1/traces/exp1")], "traces");
        assert_eq!(ENDPOINTS[endpoint_class("/nowhere")], "other");
    }

    #[test]
    fn disabled_plane_records_nothing() {
        let p = ObsPlane::new(obs::Obs::handle());
        assert!(p.begin("/v1/info", None, 0, Instant::now()).is_none());
        {
            let _t = PhaseTimer::start(Phase::Render);
        }
        p.finish(200, 10);
        assert_eq!(p.flight().recorded(), 0);
        let v = Json::parse(&p.endpoints_json()).unwrap();
        assert_eq!(v.get("requests").unwrap().as_u64().unwrap(), 0);
    }

    #[test]
    fn begin_phase_finish_lands_in_window_and_flight() {
        let p = plane();
        let id = p
            .begin("/v1/tile?rank=0", Some("my-id".into()), 3, Instant::now())
            .unwrap();
        assert_eq!(id, "my-id");
        {
            let _t = PhaseTimer::start(Phase::Cache);
        }
        {
            let _t = PhaseTimer::start(Phase::Render);
            std::thread::sleep(Duration::from_millis(2));
        }
        p.finish(200, 99);

        assert_eq!(p.flight().recorded(), 1);
        let t = &p.flight().slowest()[0];
        assert_eq!(t.trace_id, "my-id");
        assert_eq!(t.endpoint, "tile");
        assert_eq!(t.worker, 3);
        assert_eq!(t.bytes, 99);
        assert!(t.phase_us(Phase::Render) >= 1_000, "{t:?}");

        let v = Json::parse(&p.endpoints_json()).unwrap();
        let eps = v.get("endpoints").unwrap().as_arr().unwrap();
        assert_eq!(eps.len(), 1);
        let tile = &eps[0];
        assert_eq!(tile.get("endpoint").unwrap().as_str().unwrap(), "tile");
        assert_eq!(tile.get("count").unwrap().as_u64().unwrap(), 1);
        let render = tile.get("phases").unwrap().get("render").unwrap();
        assert!(render.get("p50_us").unwrap().as_f64().unwrap() >= 1_000.0);
    }

    #[test]
    fn generated_ids_fill_in_when_client_sends_none() {
        let p = plane();
        let id = p.begin("/v1/info", None, 0, Instant::now()).unwrap();
        assert!(id.starts_with("req-"), "{id}");
        p.finish(200, 0);
    }

    #[test]
    fn phase_timer_is_inert_without_active_request() {
        // No request on this thread: timers must not panic or record.
        let _t = PhaseTimer::start(Phase::Index);
        drop(_t);
        note_phase(Phase::Queue, Duration::ZERO, Duration::from_millis(1));
    }

    #[test]
    fn histograms_reach_the_shared_registry() {
        let obs = obs::Obs::handle();
        let p = ObsPlane::new(obs.clone());
        p.set_enabled(true);
        p.begin("/v1/query", None, 1, Instant::now());
        p.finish(200, 5);
        let snap = obs.snapshot();
        let h = snap.hists.get("serve.req.query.total_ns").unwrap();
        assert_eq!(h.count, 1);
        let g = snap.gauges.get("serve.http.in_flight").unwrap();
        assert_eq!(g.value, 0);
        assert_eq!(g.high, 1);
    }
}
