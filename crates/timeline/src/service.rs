//! The timeline query service: one loaded SLOG2 file behind a unified
//! query/render API.
//!
//! Every HTTP endpoint of `pilotd serve` is a thin wrapper over a
//! method here, and every method is a deterministic pure function of
//! the loaded file — which is what makes responses cacheable and lets
//! the `serve-bench` parity oracle compare HTTP bodies byte-for-byte
//! against direct in-process calls.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use analysis::TraceAnalyzer;
use jumpshot::{renderer_by_name, PathOverlay, RenderOptions};
use obs::{ObsHandle, Phase};
use pilot_vis::json::Json;
use slog2::{Drawable, Query, Slog2Error, Slog2File, TimeWindow};

use crate::cache::{TileCache, TileKey};
use crate::index::TimelineIndex;
use crate::obsplane::PhaseTimer;

/// Deepest zoom level the tile endpoint accepts (`2^24` tiles is far
/// below a second per tile on any real trace).
pub const MAX_ZOOM: u8 = 24;

/// FNV-1a 64-bit digest — the cache key's file-version component.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One loaded SLOG2 file plus its interval index and tile cache.
pub struct TimelineService {
    file: Slog2File,
    index: TimelineIndex,
    cache: TileCache,
    obs: ObsHandle,
    digest: u64,
    /// Windows with at most this many per-rank drawables answer in
    /// detail; denser windows answer with preview aggregates.
    pub detail_limit: usize,
    queries: AtomicU64,
    diagnosis: OnceLock<String>,
    baseline: Option<Baseline>,
    /// Test-only: stretch every tile compute by this much (under the
    /// `render` phase) so integration tests can force a slow request
    /// into the flight recorder.
    test_tile_delay: Option<std::time::Duration>,
}

/// A registered before-trace for `/v1/diff`: the comparison is a pure
/// function of the two immutable files, so its JSON is computed once
/// and cached like the diagnosis.
struct Baseline {
    file: Slog2File,
    label: String,
    diff: OnceLock<String>,
}

impl TimelineService {
    /// Load and validate a `.pslog2` file from disk.
    pub fn load(path: &Path) -> Result<TimelineService, Slog2Error> {
        let bytes = std::fs::read(path)?;
        let digest = fnv1a(&bytes);
        let file = Slog2File::from_bytes(&bytes)?;
        let defects = slog2::validate(&file);
        if !defects.is_empty() {
            return Err(Slog2Error::Validate(defects));
        }
        Ok(Self::with_digest(file, digest))
    }

    /// Serve an already-loaded file (digest computed from its bytes).
    pub fn from_file(file: Slog2File) -> TimelineService {
        let digest = fnv1a(&file.to_bytes());
        Self::with_digest(file, digest)
    }

    fn with_digest(file: Slog2File, digest: u64) -> TimelineService {
        Self::with_obs(file, digest, obs::Obs::handle())
    }

    /// Build a service reporting into an existing obs registry — the
    /// multi-trace path: every trace in one
    /// [`App`](crate::registry::App) shares the server's registry, so
    /// `/metrics` aggregates cache and query counters across tenants.
    pub fn with_obs(file: Slog2File, digest: u64, obs: ObsHandle) -> TimelineService {
        TimelineService {
            index: TimelineIndex::build(&file),
            cache: TileCache::new(4096, obs.clone()),
            obs,
            digest,
            detail_limit: 512,
            queries: AtomicU64::new(0),
            diagnosis: OnceLock::new(),
            baseline: None,
            test_tile_delay: None,
            file,
        }
    }

    /// The obs registry this service reports into.
    pub fn obs_handle(&self) -> &ObsHandle {
        &self.obs
    }

    /// Test-only hook: make every tile compute sleep for `delay` so a
    /// request is guaranteed to be slow enough to land in the flight
    /// recorder's slowest ring.
    #[doc(hidden)]
    pub fn set_test_tile_delay(&mut self, delay: std::time::Duration) {
        self.test_tile_delay = Some(delay);
    }

    /// Register a baseline trace for `/v1/diff` (call before wrapping
    /// the service in an `Arc`). `label` names the before side in the
    /// report — typically the baseline's file path.
    pub fn set_baseline(&mut self, file: Slog2File, label: impl Into<String>) {
        self.baseline = Some(Baseline {
            file,
            label: label.into(),
            diff: OnceLock::new(),
        });
    }

    /// Whether a baseline is registered.
    pub fn has_baseline(&self) -> bool {
        self.baseline.is_some()
    }

    /// `/v1/diff` — the baseline-vs-served comparison in `DIFF.json`
    /// form. `None` when no baseline is registered; otherwise computed
    /// once and served from cache.
    pub fn diff_json(&self) -> Option<&str> {
        self.count_query();
        let b = self.baseline.as_ref()?;
        Some(
            b.diff.get_or_init(|| {
                diff::diff_traces(&b.file, &self.file, (&b.label, "served")).to_json()
            }),
        )
    }

    /// The loaded file.
    pub fn file(&self) -> &Slog2File {
        &self.file
    }

    /// The per-rank interval index.
    pub fn index(&self) -> &TimelineIndex {
        &self.index
    }

    /// FNV-1a digest of the file bytes.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The time window tile `tile` covers at `zoom` (the file range
    /// divides into `2^zoom` equal tiles). `None` when out of range.
    pub fn tile_window(&self, zoom: u8, tile: u32) -> Option<TimeWindow> {
        if zoom > MAX_ZOOM || u64::from(tile) >= 1u64 << zoom {
            return None;
        }
        let n = (1u64 << zoom) as f64;
        let span = self.file.range.span();
        let t0 = self.file.range.t0 + span * tile as f64 / n;
        let t1 = self.file.range.t0 + span * (tile + 1) as f64 / n;
        Some(TimeWindow::new(t0, t1))
    }

    /// `/v1/info` — file identity and shape.
    pub fn info_json(&self) -> String {
        self.count_query();
        Json::Obj(vec![
            ("digest".into(), Json::Str(format!("{:016x}", self.digest))),
            (
                "ranks".into(),
                Json::Arr(
                    self.file
                        .timelines
                        .iter()
                        .map(|n| Json::Str(n.clone()))
                        .collect(),
                ),
            ),
            ("range".into(), window_json(self.file.range)),
            (
                "drawables".into(),
                Json::Num(self.file.total_drawables() as f64),
            ),
            (
                "categories".into(),
                Json::Num(self.file.categories.len() as f64),
            ),
            ("detail_limit".into(), Json::Num(self.detail_limit as f64)),
            ("max_zoom".into(), Json::Num(MAX_ZOOM as f64)),
        ])
        .compact()
    }

    /// `/v1/legend` — per-category stats, the legend window's table.
    pub fn legend_json(&self) -> String {
        self.count_query();
        let stats = slog2::legend_stats(&self.file);
        Json::Arr(
            self.file
                .categories
                .iter()
                .map(|c| {
                    let s = stats.get(&c.index).copied().unwrap_or_default();
                    Json::Obj(vec![
                        ("index".into(), Json::Num(f64::from(c.index.as_u32()))),
                        ("name".into(), Json::Str(c.name.clone())),
                        ("color".into(), Json::Str(c.color.to_hex())),
                        ("kind".into(), Json::Str(format!("{:?}", c.kind))),
                        ("count".into(), Json::Num(s.count as f64)),
                        ("inclusive".into(), Json::Num(s.inclusive)),
                        ("exclusive".into(), Json::Num(s.exclusive)),
                    ])
                })
                .collect(),
        )
        .compact()
    }

    /// `/v1/warnings` — converter warnings plus crash-forensics
    /// verdicts (terminal `ABORTED` / `DEADLOCKED` states per rank).
    pub fn warnings_json(&self) -> String {
        self.count_query();
        let mut verdicts = Vec::new();
        for d in self.file.drawables_in(TimeWindow::ALL) {
            if let Drawable::State(s) = d {
                let name = self
                    .file
                    .categories
                    .get(s.category.as_usize())
                    .map(|c| c.name.as_str())
                    .unwrap_or("");
                if name == "ABORTED" || name == "DEADLOCKED" {
                    verdicts.push(Json::Obj(vec![
                        ("rank".into(), Json::Num(f64::from(s.timeline.as_u32()))),
                        ("kind".into(), Json::Str(name.to_string())),
                        ("start".into(), Json::Num(s.start)),
                        ("end".into(), Json::Num(s.end)),
                        ("detail".into(), Json::Str(s.text.clone())),
                    ]));
                }
            }
        }
        Json::Obj(vec![
            (
                "warnings".into(),
                Json::Arr(
                    self.file
                        .warnings
                        .iter()
                        .map(|w| Json::Str(w.clone()))
                        .collect(),
                ),
            ),
            ("verdicts".into(), Json::Arr(verdicts)),
        ])
        .compact()
    }

    /// `/v1/query` — the window query: per requested rank, either full
    /// detail (every state/event/arrow overlapping the window) or, past
    /// [`detail_limit`](Self::detail_limit), the preview aggregate the
    /// frame tree keeps per node — the zoomed-out colour-stripe data.
    pub fn query_json(&self, w: TimeWindow, ranks: Option<&[u32]>) -> String {
        self.query_json_impl(w, ranks, false)
            .expect("unbounded query never aborts")
    }

    /// [`query_json`](Self::query_json) with the request deadline
    /// enforced between ranks — the phase boundary of the heaviest
    /// endpoint. Returns `None` when the armed
    /// [`deadline`](crate::deadline) passes mid-query, so the router
    /// can answer 503 without ever emitting a truncated body. Tile
    /// computes must NOT use this: a cached tile has to be complete.
    pub fn query_json_bounded(&self, w: TimeWindow, ranks: Option<&[u32]>) -> Option<String> {
        self.query_json_impl(w, ranks, true)
    }

    fn query_json_impl(
        &self,
        w: TimeWindow,
        ranks: Option<&[u32]>,
        bounded: bool,
    ) -> Option<String> {
        self.count_query();
        // Infinite endpoints (`TimeWindow::ALL`) clamp to the file
        // range in the echo — JSON has no infinity literal.
        let echo = TimeWindow {
            t0: if w.t0.is_finite() {
                w.t0
            } else {
                self.file.range.t0
            },
            t1: if w.t1.is_finite() {
                w.t1
            } else {
                self.file.range.t1
            },
        };
        let all: Vec<u32> = (0..self.index.nranks() as u32).collect();
        let ranks = ranks.unwrap_or(&all);
        let mut rows: Vec<Json> = Vec::with_capacity(ranks.len());
        for &r in ranks {
            if bounded && crate::deadline::expired() {
                return None;
            }
            rows.push(self.rank_json(r, w));
        }
        // Serializing the assembled tree is response-building work.
        let _render = PhaseTimer::start(Phase::Render);
        Some(
            Json::Obj(vec![
                ("window".into(), window_json(echo)),
                ("ranks".into(), Json::Arr(rows)),
            ])
            .compact(),
        )
    }

    fn rank_json(&self, rank: u32, w: TimeWindow) -> Json {
        // Index phase: every interval-index scan for this rank.
        let index_phase = PhaseTimer::start(Phase::Index);
        let arrows = self.index.rank_arrows(rank, w);
        let count = self.index.rank_count(rank, w);
        let detail = (count <= self.detail_limit).then(|| self.index.rank_drawables(rank, w));
        let preview = if detail.is_none() {
            Some(self.index.rank_preview(rank, w))
        } else {
            None
        };
        drop(index_phase);

        // Render phase: assembling the JSON tree from the gathered data.
        let _render = PhaseTimer::start(Phase::Render);
        let name = self
            .file
            .timelines
            .get(rank as usize)
            .cloned()
            .unwrap_or_default();
        let arrows: Vec<Json> = arrows
            .into_iter()
            .map(|a| {
                Json::Obj(vec![
                    ("category".into(), Json::Num(f64::from(a.category.as_u32()))),
                    (
                        "from".into(),
                        Json::Num(f64::from(a.from_timeline.as_u32())),
                    ),
                    ("to".into(), Json::Num(f64::from(a.to_timeline.as_u32()))),
                    ("start".into(), Json::Num(a.start)),
                    ("end".into(), Json::Num(a.end)),
                    ("tag".into(), Json::Num(a.tag as f64)),
                    ("size".into(), Json::Num(a.size as f64)),
                ])
            })
            .collect();
        let mut fields = vec![
            ("rank".into(), Json::Num(rank as f64)),
            ("name".into(), Json::Str(name)),
            ("count".into(), Json::Num(count as f64)),
        ];
        if let Some(drawables) = detail {
            let mut states = Vec::new();
            let mut events = Vec::new();
            for d in drawables {
                match d {
                    Drawable::State(s) => states.push(Json::Obj(vec![
                        ("category".into(), Json::Num(f64::from(s.category.as_u32()))),
                        ("start".into(), Json::Num(s.start.max(w.t0))),
                        ("end".into(), Json::Num(s.end.min(w.t1))),
                        ("nest".into(), Json::Num(s.nest_level as f64)),
                        ("text".into(), Json::Str(s.text.clone())),
                    ])),
                    Drawable::Event(e) => events.push(Json::Obj(vec![
                        ("category".into(), Json::Num(f64::from(e.category.as_u32()))),
                        ("time".into(), Json::Num(e.time)),
                        ("text".into(), Json::Str(e.text.clone())),
                    ])),
                    Drawable::Arrow(_) => {}
                }
            }
            fields.push(("mode".into(), Json::Str("detail".into())));
            fields.push(("states".into(), Json::Arr(states)));
            fields.push(("events".into(), Json::Arr(events)));
        } else {
            let preview = preview.expect("preview gathered when not detail");
            fields.push(("mode".into(), Json::Str("preview".into())));
            fields.push((
                "preview".into(),
                Json::Arr(
                    preview
                        .entries
                        .iter()
                        .map(|e| {
                            Json::Obj(vec![
                                ("category".into(), Json::Num(f64::from(e.category.as_u32()))),
                                ("count".into(), Json::Num(e.count as f64)),
                                ("coverage".into(), Json::Num(e.coverage)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        fields.push(("arrows".into(), Json::Arr(arrows)));
        Json::Obj(fields)
    }

    /// `/v1/tile` — the cached form of [`query_json`](Self::query_json)
    /// for one rank over one tile of the zoom pyramid. `None` when the
    /// zoom or tile number is out of range.
    pub fn tile_json(&self, rank: u32, zoom: u8, tile: u32) -> Option<std::sync::Arc<String>> {
        let w = self.tile_window(zoom, tile)?;
        let key = TileKey {
            digest: self.digest,
            rank,
            zoom,
            tile,
        };
        Some(self.cache.get_or_compute(key, || {
            if let Some(delay) = self.test_tile_delay {
                let _render = PhaseTimer::start(Phase::Render);
                std::thread::sleep(delay);
            }
            self.query_json(w, Some(&[rank]))
        }))
    }

    /// `/v1/render` — dispatch to a [`jumpshot::Renderer`] backend by
    /// wire name; returns `(content_type, document)`. With `overlay`,
    /// the critical path is highlighted and off-path drawables dimmed.
    pub fn render(
        &self,
        backend: &str,
        window: Option<TimeWindow>,
        width: u32,
        overlay: bool,
    ) -> Option<(&'static str, String)> {
        self.count_query();
        let r = renderer_by_name(backend)?;
        let mut opts = RenderOptions::default().with_width(width.max(1));
        opts.window = window;
        if overlay {
            let _index = PhaseTimer::start(Phase::Index);
            opts.overlay = Some(self.critical_overlay());
        }
        let _render = PhaseTimer::start(Phase::Render);
        Some((r.content_type(), r.render(&self.file, &opts)))
    }

    /// `/v1/diagnose` — the automated bottleneck diagnosis. The file is
    /// immutable for the lifetime of the service, so the verdicts are
    /// computed once and cached.
    pub fn diagnose_json(&self) -> &str {
        self.count_query();
        self.diagnosis.get_or_init(|| {
            TraceAnalyzer::new(&self.file)
                .diagnose("serve")
                .to_json(&self.file)
        })
    }

    fn critical_overlay(&self) -> PathOverlay {
        let cp = analysis::critical_path(&self.file);
        PathOverlay {
            segments: cp
                .segments
                .iter()
                .map(|s| (s.timeline, s.start, s.end))
                .collect(),
            hops: cp
                .hops
                .iter()
                .map(|h| (h.from, h.to, h.send, h.recv))
                .collect(),
            dim_others: true,
        }
    }

    /// `/v1/stats` — query and cache counters, including single-flight
    /// waits and per-shard occupancy (current + busiest shard's peak).
    pub fn stats_json(&self) -> String {
        Json::Obj(self.stats_fields()).compact()
    }

    /// The fields of [`stats_json`](Self::stats_json), exposed so the
    /// multi-trace router can append registry occupancy to them.
    pub fn stats_fields(&self) -> Vec<(String, Json)> {
        let (hit, miss, eviction) = self.cache.counters();
        let occupancy = self.cache.shard_occupancy();
        vec![
            (
                "queries".into(),
                Json::Num(self.queries.load(Ordering::Relaxed) as f64),
            ),
            ("cache_hits".into(), Json::Num(hit as f64)),
            ("cache_misses".into(), Json::Num(miss as f64)),
            ("cache_evictions".into(), Json::Num(eviction as f64)),
            (
                "cache_entries".into(),
                Json::Num(occupancy.iter().sum::<usize>() as f64),
            ),
            (
                "cache_singleflight_waits".into(),
                Json::Num(self.cache.singleflight_waits() as f64),
            ),
            (
                "cache_shard_occupancy".into(),
                Json::Arr(occupancy.iter().map(|&n| Json::Num(n as f64)).collect()),
            ),
            (
                "cache_shard_occupancy_high".into(),
                Json::Num(self.cache.shard_occupancy_high() as f64),
            ),
        ]
    }

    /// `/metrics` — the Prometheus-style text of the obs registry.
    pub fn metrics_text(&self) -> String {
        self.obs.snapshot().to_prometheus_text()
    }

    fn count_query(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
    }
}

fn window_json(w: TimeWindow) -> Json {
    Json::Arr(vec![Json::Num(w.t0), Json::Num(w.t1)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpelog::Color;
    use slog2::{Category, CategoryId, CategoryKind, FrameTree, StateDrawable, TimelineId};

    fn service(states_per_rank: usize) -> TimelineService {
        let categories = vec![
            Category {
                index: CategoryId(0),
                name: "Compute".into(),
                color: Color::GRAY,
                kind: CategoryKind::State,
            },
            Category {
                index: CategoryId(1),
                name: "ABORTED".into(),
                color: Color::DARK_RED,
                kind: CategoryKind::State,
            },
        ];
        let mut ds = Vec::new();
        for r in 0..2u32 {
            for i in 0..states_per_rank {
                ds.push(Drawable::State(StateDrawable {
                    category: CategoryId(0),
                    timeline: TimelineId(r),
                    start: i as f64,
                    end: i as f64 + 0.5,
                    nest_level: 0,
                    text: String::new(),
                }));
            }
        }
        ds.push(Drawable::State(StateDrawable {
            category: CategoryId(1),
            timeline: TimelineId(1),
            start: states_per_rank as f64,
            end: states_per_rank as f64 + 1.0,
            nest_level: 0,
            text: "aborted mid-read".into(),
        }));
        let range = TimeWindow::new(0.0, states_per_rank as f64 + 1.0);
        TimelineService::from_file(Slog2File {
            timelines: vec!["PI_MAIN".into(), "P1".into()],
            categories,
            range,
            warnings: vec!["Equal Drawables: demo".into()],
            tree: FrameTree::build(ds, range.t0, range.t1, 32, 12),
        })
    }

    #[test]
    fn info_and_legend_are_valid_json() {
        let svc = service(4);
        let info = Json::parse(&svc.info_json()).unwrap();
        assert_eq!(info.get("ranks").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(
            info.get("digest").unwrap().as_str().unwrap(),
            format!("{:016x}", svc.digest())
        );
        let legend = Json::parse(&svc.legend_json()).unwrap();
        assert_eq!(legend.as_arr().unwrap().len(), 2);
    }

    #[test]
    fn warnings_carry_forensics_verdicts() {
        let svc = service(4);
        let v = Json::parse(&svc.warnings_json()).unwrap();
        assert_eq!(v.get("warnings").unwrap().as_arr().unwrap().len(), 1);
        let verdicts = v.get("verdicts").unwrap().as_arr().unwrap();
        assert_eq!(verdicts.len(), 1);
        assert_eq!(
            verdicts[0].get("kind").unwrap().as_str().unwrap(),
            "ABORTED"
        );
        assert_eq!(verdicts[0].get("rank").unwrap().as_u64().unwrap(), 1);
    }

    #[test]
    fn sparse_window_answers_in_detail() {
        let svc = service(4);
        let v = Json::parse(&svc.query_json(TimeWindow::new(0.0, 2.0), Some(&[0]))).unwrap();
        let rank = &v.get("ranks").unwrap().as_arr().unwrap()[0];
        assert_eq!(rank.get("mode").unwrap().as_str().unwrap(), "detail");
        // States at 0..0.5, 1..1.5, 2..2.5 overlap the closed window.
        assert_eq!(rank.get("states").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn dense_window_answers_with_preview() {
        let mut svc = service(100);
        svc.detail_limit = 10;
        let v = Json::parse(&svc.query_json(TimeWindow::ALL, Some(&[0]))).unwrap();
        let rank = &v.get("ranks").unwrap().as_arr().unwrap()[0];
        assert_eq!(rank.get("mode").unwrap().as_str().unwrap(), "preview");
        let preview = rank.get("preview").unwrap().as_arr().unwrap();
        assert_eq!(preview[0].get("count").unwrap().as_u64().unwrap(), 100);
    }

    #[test]
    fn tile_windows_partition_the_range() {
        let svc = service(4);
        let full = svc.file().range;
        for zoom in [0u8, 1, 3] {
            let n = 1u32 << zoom;
            let first = svc.tile_window(zoom, 0).unwrap();
            let last = svc.tile_window(zoom, n - 1).unwrap();
            assert!((first.t0 - full.t0).abs() < 1e-12);
            assert!((last.t1 - full.t1).abs() < 1e-9);
            assert!(svc.tile_window(zoom, n).is_none());
        }
        assert!(svc.tile_window(MAX_ZOOM + 1, 0).is_none());
    }

    #[test]
    fn tiles_cache_and_stay_byte_identical() {
        let svc = service(4);
        let cold = svc.tile_json(0, 2, 1).unwrap();
        let warm = svc.tile_json(0, 2, 1).unwrap();
        assert_eq!(cold, warm);
        let stats = Json::parse(&svc.stats_json()).unwrap();
        assert_eq!(stats.get("cache_hits").unwrap().as_u64().unwrap(), 1);
        assert_eq!(stats.get("cache_misses").unwrap().as_u64().unwrap(), 1);
    }

    #[test]
    fn render_dispatches_all_backends() {
        let svc = service(4);
        for (name, ct_prefix) in [
            ("svg", "image/svg"),
            ("ascii", "text/plain"),
            ("html", "text/html"),
            ("hist", "image/svg"),
        ] {
            let (ct, body) = svc.render(name, None, 640, false).unwrap();
            assert!(ct.starts_with(ct_prefix), "{name}");
            assert!(!body.is_empty(), "{name}");
        }
        assert!(svc.render("nope", None, 640, false).is_none());
    }

    #[test]
    fn load_rejects_garbage_and_missing_files() {
        let dir = std::env::temp_dir().join("timeline-svc-test");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.pslog2");
        std::fs::write(&bad, b"not a slog2 file").unwrap();
        assert!(matches!(
            TimelineService::load(&bad),
            Err(Slog2Error::Wire(_))
        ));
        assert!(matches!(
            TimelineService::load(&dir.join("missing.pslog2")),
            Err(Slog2Error::Io(_))
        ));
    }

    #[test]
    fn load_roundtrips_a_written_file() {
        let svc = service(4);
        let dir = std::env::temp_dir().join("timeline-svc-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ok.pslog2");
        svc.file().write_to(&path).unwrap();
        let loaded = TimelineService::load(&path).unwrap();
        assert_eq!(loaded.digest(), fnv1a(&svc.file().to_bytes()));
        assert_eq!(loaded.info_json(), svc.info_json());
    }
}
