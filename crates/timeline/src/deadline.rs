//! Per-request deadline propagation.
//!
//! The HTTP worker arms a thread-local deadline when a request begins
//! and clears it when the response is written. Service code and the
//! router consult [`expired`] at phase boundaries — between ranks in a
//! window query, after parameter parsing, after a handler returns — and
//! bail out with 503 + `Retry-After` instead of finishing work the
//! client has already given up on.
//!
//! Two rules keep the cache honest:
//!
//! * Tile computes under the single-flight cache **ignore** the
//!   deadline: a cached body must always be complete, and the finished
//!   compute warms the cache for the client's retry.
//! * A deadline abort never truncates a body. The request either
//!   returns a full response or a 503 — there is no partial-JSON state.
//!
//! Like the [`PhaseTimer`](crate::obsplane::PhaseTimer) thread-local,
//! the slot costs nothing to in-process callers: with no deadline armed,
//! [`expired`] is a single thread-local read.

use std::cell::Cell;
use std::time::{Duration, Instant};

thread_local! {
    static DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// Arm the calling thread's request deadline.
pub fn arm(at: Instant) {
    DEADLINE.with(|d| d.set(Some(at)));
}

/// Disarm the calling thread's request deadline.
pub fn clear() {
    DEADLINE.with(|d| d.set(None));
}

/// Whether the armed deadline has passed. `false` when none is armed,
/// so library callers outside the server never see spurious aborts.
pub fn expired() -> bool {
    DEADLINE
        .with(|d| d.get())
        .is_some_and(|at| Instant::now() >= at)
}

/// Time left before the armed deadline (`None` when disarmed; zero when
/// already past).
pub fn remaining() -> Option<Duration> {
    DEADLINE
        .with(|d| d.get())
        .map(|at| at.saturating_duration_since(Instant::now()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_thread_never_expires() {
        clear();
        assert!(!expired());
        assert!(remaining().is_none());
    }

    #[test]
    fn armed_deadline_expires_and_clears() {
        arm(Instant::now() + Duration::from_secs(60));
        assert!(!expired());
        assert!(remaining().unwrap() > Duration::from_secs(50));
        arm(Instant::now() - Duration::from_millis(1));
        assert!(expired());
        assert_eq!(remaining().unwrap(), Duration::ZERO);
        clear();
        assert!(!expired());
    }
}
