//! A minimal HTTP/1.1 front end for [`TimelineService`].
//!
//! Standard library only: a `TcpListener` accept thread hands
//! connections to a fixed pool of worker threads over an `mpsc`
//! channel. Connections are keep-alive — a viewer replaying a zoom path
//! issues hundreds of tile requests on one socket — and every response
//! carries `Content-Length`, so the bundled [`Client`] can pipeline
//! request/response pairs without chunked-encoding parsing.
//!
//! Routes:
//!
//! | path           | answer                                            |
//! |----------------|---------------------------------------------------|
//! | `/v1/info`     | file digest, ranks, range, shape                  |
//! | `/v1/legend`   | per-category legend statistics                    |
//! | `/v1/warnings` | converter warnings + crash-forensics verdicts     |
//! | `/v1/query`    | window query (`t0`,`t1`,`ranks=0,2`)              |
//! | `/v1/tile`     | cached tile (`rank`,`zoom`,`tile`)                |
//! | `/v1/render`   | full document (`backend`,`t0`,`t1`,`width`,`overlay`) |
//! | `/v1/diagnose` | automated bottleneck verdicts (cached)            |
//! | `/v1/diff`     | baseline-vs-served trace diff (cached; 404 until a baseline is registered) |
//! | `/v1/stats`    | query + cache counters                            |
//! | `/metrics`     | Prometheus text of the obs registry               |
//! | `/v1/obs/endpoints` | per-endpoint per-phase p50/p99 summary       |
//! | `/v1/obs/flight` | flight-recorder dump (Chrome trace-event JSON)  |
//!
//! When the service's [`ObsPlane`](crate::obsplane::ObsPlane) is
//! enabled, every request is traced: the `X-Trace-Id` header (or a
//! generated ID, echoed back in the response) names the request, and
//! the worker records queue/parse/cache/index/render/write phases into
//! the flight recorder. Tracing never touches response bodies.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use obs::Phase;
use slog2::TimeWindow;

use crate::obsplane::{note_phase, PhaseTimer};
use crate::service::TimelineService;

/// Default worker-pool size for `pilotd serve`.
pub const DEFAULT_WORKERS: usize = 8;

/// A running server; dropping it (or calling [`stop`](Server::stop))
/// shuts the listener and workers down.
pub struct Server {
    port: u16,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serve
/// `svc` on `workers` threads.
pub fn serve(svc: Arc<TimelineService>, addr: &str, workers: usize) -> std::io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    let port = listener.local_addr()?.port();
    let shutdown = Arc::new(AtomicBool::new(false));
    // Each queued connection carries its enqueue instant so the worker
    // can attribute the wait to the first request's `queue` phase.
    let (tx, rx) = channel::<(TcpStream, Instant)>();
    let rx = Arc::new(Mutex::new(rx));

    let mut pool = Vec::with_capacity(workers.max(1));
    for worker_idx in 0..workers.max(1) {
        let svc = Arc::clone(&svc);
        let rx: Arc<Mutex<Receiver<(TcpStream, Instant)>>> = Arc::clone(&rx);
        let shutdown = Arc::clone(&shutdown);
        pool.push(std::thread::spawn(move || loop {
            let conn = rx.lock().expect("worker queue poisoned").recv();
            match conn {
                Ok((stream, enqueued)) => {
                    svc.plane().note_dequeued();
                    handle_connection(&svc, stream, &shutdown, worker_idx as u32, enqueued);
                }
                Err(_) => break, // sender gone: server stopped
            }
        }));
    }

    let accept_shutdown = Arc::clone(&shutdown);
    let accept_svc = Arc::clone(&svc);
    let accept = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_shutdown.load(Ordering::SeqCst) {
                break;
            }
            if let Ok(stream) = stream {
                // A full queue just delays the connection; drop errors
                // only happen after stop().
                accept_svc.plane().note_enqueued();
                let _ = tx.send((stream, Instant::now()));
            }
        }
    });

    Ok(Server {
        port,
        shutdown,
        accept: Some(accept),
        workers: pool,
    })
}

impl Server {
    /// The bound port (useful with `127.0.0.1:0`).
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Signal shutdown and join every thread.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(("127.0.0.1", self.port));
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn handle_connection(
    svc: &TimelineService,
    stream: TcpStream,
    shutdown: &AtomicBool,
    worker: u32,
    enqueued: Instant,
) {
    let _ = stream.set_nodelay(true);
    // A short read timeout lets idle keep-alive workers notice stop().
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = write_half;
    // The pool-queue wait belongs to the connection's first request;
    // keep-alive successors never waited in the accept queue.
    let mut queue_wait = Some(Instant::now().saturating_duration_since(enqueued));
    // Line buffers live across requests: keep-alive connections serve
    // hundreds of requests, and per-line String churn is measurable in
    // the serve bench.
    let mut request_line = String::new();
    let mut header_line = String::new();
    loop {
        request_line.clear();
        match reader.read_line(&mut request_line) {
            Ok(0) => return, // client closed
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        // The request clock: for the first request it started back at
        // the accept queue (so queue wait is inside the total); for
        // later keep-alive requests it starts once the request line is
        // in (client think time must not count).
        let parse_start = Instant::now();
        let req_start = if queue_wait.is_some() {
            enqueued
        } else {
            parse_start
        };
        let mut close = false;
        let mut trace_header: Option<String> = None;
        // Drain headers; we care about Connection and X-Trace-Id.
        // Matching is allocation-free (no lowercased copies).
        loop {
            header_line.clear();
            match reader.read_line(&mut header_line) {
                Ok(0) => return,
                Ok(_) if header_line.trim_end().is_empty() => break,
                Ok(_) => {
                    if let Some((name, value)) = header_line.trim_end().split_once(':') {
                        if name.eq_ignore_ascii_case("connection")
                            && value
                                .split(',')
                                .any(|v| v.trim().eq_ignore_ascii_case("close"))
                        {
                            close = true;
                        } else if name.eq_ignore_ascii_case("x-trace-id") {
                            let v = value.trim();
                            if !v.is_empty() {
                                trace_header = Some(v.to_string());
                            }
                        }
                    }
                }
                Err(_) => return,
            }
        }
        let parse_dur = parse_start.elapsed();
        let mut parts = request_line.split_whitespace();
        let method = parts.next().unwrap_or("");
        let target = parts.next().unwrap_or("/");

        let trace_id = svc.plane().begin(target, trace_header, worker, req_start);
        if trace_id.is_some() {
            if let Some(wait) = queue_wait {
                note_phase(Phase::Queue, Duration::ZERO, wait);
            }
            note_phase(
                Phase::Parse,
                parse_start.saturating_duration_since(req_start),
                parse_dur,
            );
        }
        queue_wait = None;

        let (status, content_type, body) = if method == "GET" {
            route(svc, target)
        } else {
            (405, "text/plain", "method not allowed\n".to_string())
        };
        let reason = match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            _ => "Error",
        };
        let connection = if close { "close" } else { "keep-alive" };
        let head = match trace_id.as_deref() {
            Some(id) => format!(
                "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nX-Trace-Id: {id}\r\nConnection: {connection}\r\n\r\n",
                body.len(),
            ),
            None => format!(
                "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
                body.len(),
            ),
        };
        let write_phase = PhaseTimer::start(Phase::Write);
        let wrote =
            writer.write_all(head.as_bytes()).is_ok() && writer.write_all(body.as_bytes()).is_ok();
        drop(write_phase);
        svc.plane().finish(status, body.len() as u64);
        if !wrote || close || shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Dispatch one request target to the service. Split out from the
/// connection loop so tests can exercise routing without sockets.
pub fn route(svc: &TimelineService, target: &str) -> (u16, &'static str, String) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let params: Vec<(&str, &str)> = query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| kv.split_once('=').unwrap_or((kv, "")))
        .collect();
    let get = |k: &str| params.iter().find(|(key, _)| *key == k).map(|(_, v)| *v);

    macro_rules! param {
        ($name:literal as $ty:ty, default $default:expr) => {
            match get($name) {
                None => $default,
                Some(raw) => match raw.parse::<$ty>() {
                    Ok(v) => v,
                    Err(_) => return (400, "text/plain", format!("bad {}: {raw:?}\n", $name)),
                },
            }
        };
    }

    match path {
        "/v1/info" => (200, "application/json", svc.info_json()),
        "/v1/legend" => (200, "application/json", svc.legend_json()),
        "/v1/warnings" => (200, "application/json", svc.warnings_json()),
        "/v1/stats" => (200, "application/json", svc.stats_json()),
        "/v1/diagnose" => (200, "application/json", svc.diagnose_json().to_string()),
        "/v1/diff" => match svc.diff_json() {
            Some(body) => (200, "application/json", body.to_string()),
            None => (
                404,
                "text/plain",
                "no baseline registered (start pilotd with --baseline)\n".to_string(),
            ),
        },
        "/metrics" => (200, "text/plain; version=0.0.4", svc.metrics_text()),
        "/v1/obs/endpoints" => (200, "application/json", svc.plane().endpoints_json()),
        "/v1/obs/flight" => (200, "application/json", svc.plane().flight_json()),
        "/v1/query" => {
            let range = svc.file().range;
            let t0 = param!("t0" as f64, default range.t0);
            let t1 = param!("t1" as f64, default range.t1);
            let ranks: Option<Vec<u32>> = match get("ranks") {
                None | Some("") => None,
                Some(raw) => {
                    let mut out = Vec::new();
                    for piece in raw.split(',') {
                        match piece.parse::<u32>() {
                            Ok(r) => out.push(r),
                            Err(_) => return (400, "text/plain", format!("bad ranks: {raw:?}\n")),
                        }
                    }
                    Some(out)
                }
            };
            (
                200,
                "application/json",
                svc.query_json(TimeWindow::new(t0, t1), ranks.as_deref()),
            )
        }
        "/v1/tile" => {
            let rank = param!("rank" as u32, default 0);
            let zoom = param!("zoom" as u8, default 0);
            let tile = param!("tile" as u32, default 0);
            match svc.tile_json(rank, zoom, tile) {
                Some(body) => (200, "application/json", body.as_ref().clone()),
                None => (
                    404,
                    "text/plain",
                    format!("no tile {tile} at zoom {zoom}\n"),
                ),
            }
        }
        "/v1/render" => {
            let backend = get("backend").unwrap_or("svg");
            let width = param!("width" as u32, default 1280);
            let window = match (get("t0"), get("t1")) {
                (None, None) => None,
                _ => {
                    let range = svc.file().range;
                    let t0 = param!("t0" as f64, default range.t0);
                    let t1 = param!("t1" as f64, default range.t1);
                    Some(TimeWindow::new(t0, t1))
                }
            };
            let overlay = matches!(get("overlay"), Some("1") | Some("critical") | Some("true"));
            match svc.render(backend, window, width, overlay) {
                Some((ct, body)) => (200, ct, body),
                None => (404, "text/plain", format!("unknown backend {backend:?}\n")),
            }
        }
        _ => (404, "text/plain", format!("no route {path:?}\n")),
    }
}

/// A keep-alive HTTP/1.1 client for one pilotd connection. Used by the
/// server tests and by `repro serve-bench`.
pub struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to `addr` (e.g. `127.0.0.1:8080`).
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream),
        })
    }

    /// Issue `GET path` on the persistent connection; returns
    /// `(status, body)`.
    pub fn get(&mut self, path: &str) -> std::io::Result<(u16, String)> {
        self.request(path, None)
    }

    /// Like [`get`](Self::get) but with an `X-Trace-Id` header, so the
    /// request is findable in `/v1/obs/flight` by name.
    pub fn get_traced(&mut self, path: &str, trace_id: &str) -> std::io::Result<(u16, String)> {
        self.request(path, Some(trace_id))
    }

    fn request(&mut self, path: &str, trace_id: Option<&str>) -> std::io::Result<(u16, String)> {
        let trace = trace_id
            .map(|id| format!("X-Trace-Id: {id}\r\n"))
            .unwrap_or_default();
        let request =
            format!("GET {path} HTTP/1.1\r\nHost: pilotd\r\n{trace}Connection: keep-alive\r\n\r\n");
        self.reader.get_mut().write_all(request.as_bytes())?;

        let mut status_line = String::new();
        self.reader.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;

        let mut content_length = 0usize;
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::ErrorKind::UnexpectedEof.into());
            }
            let trimmed = line.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, v)) = trimmed.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = v.trim().parse().map_err(|_| {
                        std::io::Error::new(std::io::ErrorKind::InvalidData, "bad content-length")
                    })?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        String::from_utf8(body)
            .map(|b| (status, b))
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-utf8 body"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpelog::Color;
    use slog2::{
        Category, CategoryId, CategoryKind, Drawable, FrameTree, Slog2File, StateDrawable,
        TimelineId,
    };

    fn service() -> Arc<TimelineService> {
        let mut ds = Vec::new();
        for r in 0..2u32 {
            for i in 0..8 {
                ds.push(Drawable::State(StateDrawable {
                    category: CategoryId(0),
                    timeline: TimelineId(r),
                    start: i as f64,
                    end: i as f64 + 0.5,
                    nest_level: 0,
                    text: String::new(),
                }));
            }
        }
        let range = TimeWindow::new(0.0, 8.0);
        Arc::new(TimelineService::from_file(Slog2File {
            timelines: vec!["PI_MAIN".into(), "P1".into()],
            categories: vec![Category {
                index: CategoryId(0),
                name: "Compute".into(),
                color: Color::GRAY,
                kind: CategoryKind::State,
            }],
            range,
            warnings: vec![],
            tree: FrameTree::build(ds, range.t0, range.t1, 16, 8),
        }))
    }

    #[test]
    fn serves_info_over_a_socket() {
        let svc = service();
        let mut server = serve(Arc::clone(&svc), "127.0.0.1:0", 2).unwrap();
        let mut client = Client::connect(&format!("127.0.0.1:{}", server.port())).unwrap();
        let (status, body) = client.get("/v1/info").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, svc.info_json());
        server.stop();
    }

    #[test]
    fn keep_alive_serves_many_requests_per_connection() {
        let svc = service();
        let mut server = serve(Arc::clone(&svc), "127.0.0.1:0", 2).unwrap();
        let mut client = Client::connect(&format!("127.0.0.1:{}", server.port())).unwrap();
        for path in [
            "/v1/legend",
            "/v1/warnings",
            "/v1/stats",
            "/v1/query?t0=1&t1=2",
        ] {
            let (status, body) = client.get(path).unwrap();
            assert_eq!(status, 200, "{path}");
            assert!(!body.is_empty(), "{path}");
        }
        server.stop();
    }

    #[test]
    fn socket_bodies_match_in_process_calls() {
        let svc = service();
        let mut server = serve(Arc::clone(&svc), "127.0.0.1:0", 4).unwrap();
        let mut client = Client::connect(&format!("127.0.0.1:{}", server.port())).unwrap();
        let (_, over_wire) = client.get("/v1/query?t0=0.5&t1=3.5&ranks=1").unwrap();
        assert_eq!(
            over_wire,
            svc.query_json(TimeWindow::new(0.5, 3.5), Some(&[1]))
        );
        let (_, tile) = client.get("/v1/tile?rank=0&zoom=2&tile=1").unwrap();
        assert_eq!(tile, *svc.tile_json(0, 2, 1).unwrap());
        server.stop();
    }

    #[test]
    fn diagnose_route_returns_cached_verdict_json() {
        let svc = service();
        let (status, ct, body) = route(&svc, "/v1/diagnose");
        assert_eq!(status, 200);
        assert_eq!(ct, "application/json");
        let v = pilot_vis::json::Json::parse(&body).unwrap();
        assert!(v.get("verdicts").is_some(), "{body}");
        // Cached: the second call returns the identical string.
        let (_, _, again) = route(&svc, "/v1/diagnose");
        assert_eq!(body, again);
    }

    #[test]
    fn diff_route_is_404_until_a_baseline_is_registered() {
        let svc = service();
        let (status, _, body) = route(&svc, "/v1/diff");
        assert_eq!(status, 404);
        assert!(body.contains("no baseline"), "{body}");
    }

    #[test]
    fn diff_route_serves_cached_verdict_json_with_baseline() {
        let mut inner = Arc::try_unwrap(service()).ok().expect("sole owner");
        let baseline = service();
        inner.set_baseline(baseline.file().clone(), "baseline.pslog2");
        let svc = Arc::new(inner);
        let (status, ct, body) = route(&svc, "/v1/diff");
        assert_eq!(status, 200);
        assert_eq!(ct, "application/json");
        let v = pilot_vis::json::Json::parse(&body).unwrap();
        assert_eq!(
            v.get("schema").and_then(pilot_vis::json::Json::as_str),
            Some("pilot-vis-diff-v1")
        );
        assert_eq!(
            v.get("before")
                .and_then(|b| b.get("label"))
                .and_then(pilot_vis::json::Json::as_str),
            Some("baseline.pslog2")
        );
        // Cached: byte-identical on repeat.
        let (_, _, again) = route(&svc, "/v1/diff");
        assert_eq!(body, again);
    }

    #[test]
    fn render_route_accepts_critical_overlay() {
        let svc = service();
        let (status, _, body) = route(&svc, "/v1/render?backend=svg&overlay=critical");
        assert_eq!(status, 200);
        assert!(body.contains("class=\"critical-path\""), "{body}");
        let (_, _, plain) = route(&svc, "/v1/render?backend=svg");
        assert!(!plain.contains("class=\"critical-path\""));
    }

    #[test]
    fn routes_reject_bad_input() {
        let svc = service();
        assert_eq!(route(&svc, "/v1/query?t0=potato").0, 400);
        assert_eq!(route(&svc, "/v1/query?ranks=1,x").0, 400);
        assert_eq!(route(&svc, "/v1/tile?rank=0&zoom=30&tile=0").0, 404);
        assert_eq!(route(&svc, "/v1/render?backend=nope").0, 404);
        assert_eq!(route(&svc, "/nowhere").0, 404);
    }

    #[test]
    fn render_route_serves_every_backend() {
        let svc = service();
        for backend in ["svg", "ascii", "html", "hist"] {
            let (status, _, body) = route(&svc, &format!("/v1/render?backend={backend}&width=320"));
            assert_eq!(status, 200, "{backend}");
            assert!(!body.is_empty(), "{backend}");
        }
        let (status, _, windowed) = route(&svc, "/v1/render?backend=svg&t0=1&t1=2");
        assert_eq!(status, 200);
        assert!(windowed.contains("<svg"));
    }

    #[test]
    fn concurrent_clients_get_consistent_tiles() {
        let svc = service();
        let mut server = serve(Arc::clone(&svc), "127.0.0.1:0", 4).unwrap();
        let addr = format!("127.0.0.1:{}", server.port());
        let expected = svc.tile_json(0, 3, 5).unwrap();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut c = Client::connect(&addr).unwrap();
                    c.get("/v1/tile?rank=0&zoom=3&tile=5").unwrap()
                })
            })
            .collect();
        for h in handles {
            let (status, body) = h.join().unwrap();
            assert_eq!(status, 200);
            assert_eq!(body, *expected);
        }
        server.stop();
    }
}
