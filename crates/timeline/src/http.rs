//! A hardened, multi-trace HTTP/1.1 front end for [`App`].
//!
//! Standard library only: a `TcpListener` accept thread hands
//! connections to a fixed pool of worker threads over a **bounded**
//! `mpsc` channel. Connections are keep-alive — a viewer replaying a
//! zoom path issues hundreds of tile requests on one socket — and every
//! response carries `Content-Length`, so the bundled [`Client`] can
//! pipeline request/response pairs without chunked-encoding parsing.
//!
//! Routes (all `/v1/*` query routes accept a `?trace=` selector; the
//! default is the trace the server was started with):
//!
//! | path           | answer                                            |
//! |----------------|---------------------------------------------------|
//! | `/v1/info`     | file digest, ranks, range, shape                  |
//! | `/v1/legend`   | per-category legend statistics                    |
//! | `/v1/warnings` | converter warnings + crash-forensics verdicts     |
//! | `/v1/query`    | window query (`t0`,`t1`,`ranks=0,2`)              |
//! | `/v1/tile`     | cached tile (`rank`,`zoom`,`tile`)                |
//! | `/v1/render`   | full document (`backend`,`t0`,`t1`,`width`,`overlay`) |
//! | `/v1/diagnose` | automated bottleneck verdicts (cached)            |
//! | `/v1/diff`     | baseline-vs-served trace diff (cached; 404 until a baseline is registered) |
//! | `/v1/stats`    | query + cache counters + registry occupancy       |
//! | `/v1/traces`   | GET list / POST upload (`?id=NAME`)               |
//! | `/v1/traces/{id}` | DELETE evictable trace                         |
//! | `/metrics`     | Prometheus text of the obs registry               |
//! | `/v1/obs/endpoints` | per-endpoint per-phase p50/p99 summary       |
//! | `/v1/obs/flight` | flight-recorder dump (Chrome trace-event JSON)  |
//!
//! # Overload and abuse defenses
//!
//! Every limit lives in [`Limits`](crate::registry::Limits):
//!
//! * **Bounded accept queue.** Connections beyond `queue_cap` are
//!   answered `429` straight from the accept thread; a connection that
//!   waited in the queue longer than `queue_shed` is answered `429` by
//!   the worker *without reading its request* — its client has likely
//!   timed out already, so parsing it would be pure waste.
//! * **Per-request deadline.** Armed at request start, checked at phase
//!   boundaries (post-parse, between ranks of a window query, and
//!   before the response write). Expired requests answer `503` +
//!   `Retry-After`; a finished-but-late tile compute still lands in the
//!   cache, warming the client's retry. Bodies are never truncated.
//! * **Size caps.** Request lines and headers past their caps answer
//!   `431`; `POST` without `Content-Length` answers `411`; bodies past
//!   `max_body_bytes` answer `413`. All three close the connection.
//! * **Slow-loris kill.** A client stalled mid-request past
//!   `header_deadline` answers `408` and is disconnected.
//! * **Panic isolation.** A worker panic is caught, counted
//!   (`serve.http.worker_panic`), and the connection dropped; the
//!   worker lives on to serve the next connection.
//! * **Graceful drain.** [`Server::drain`] stops accepting, answers
//!   `503` + `Connection: close` to new requests, waits up to a
//!   deadline for in-flight work, and reports what it had to abandon.
//!
//! When the app's [`ObsPlane`](crate::obsplane::ObsPlane) is enabled,
//! every request is traced: the `X-Trace-Id` header (or a generated ID,
//! echoed back in the response) names the request, and the worker
//! records queue/parse/cache/index/render/write phases into the flight
//! recorder. Tracing never touches response bodies.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use obs::Phase;
use pilot_vis::json::Json;
use slog2::TimeWindow;

use crate::deadline;
use crate::obsplane::{note_phase, PhaseTimer};
use crate::registry::{App, RemoveError, UploadError};

/// Default worker-pool size for `pilotd serve`.
pub const DEFAULT_WORKERS: usize = 8;

/// A running server; dropping it (or calling [`stop`](Server::stop))
/// shuts the listener and workers down.
pub struct Server {
    port: u16,
    app: Arc<App>,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// What a graceful [`Server::drain`] managed.
#[derive(Debug, Clone, Copy)]
pub struct DrainReport {
    /// Every worker finished inside the drain deadline.
    pub drained: bool,
    /// Workers still busy when the deadline passed (their threads are
    /// left to die with the process).
    pub abandoned: usize,
}

/// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serve
/// `app` on `workers` threads.
pub fn serve(app: Arc<App>, addr: &str, workers: usize) -> std::io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    let port = listener.local_addr()?.port();
    let shutdown = Arc::new(AtomicBool::new(false));
    // Each queued connection carries its enqueue instant so the worker
    // can attribute the wait to the first request's `queue` phase, and
    // shed connections whose wait already exceeds the limit.
    let (tx, rx) = sync_channel::<(TcpStream, Instant)>(app.limits().queue_cap.max(1));
    let rx = Arc::new(Mutex::new(rx));

    let mut pool = Vec::with_capacity(workers.max(1));
    for worker_idx in 0..workers.max(1) {
        let app = Arc::clone(&app);
        let rx: Arc<Mutex<Receiver<(TcpStream, Instant)>>> = Arc::clone(&rx);
        let shutdown = Arc::clone(&shutdown);
        pool.push(std::thread::spawn(move || {
            let shard = app.obs_handle().shard(worker_idx);
            let open_conns = shard.gauge("serve.http.open_conns");
            let panics = shard.counter("serve.http.worker_panic");
            let shed = shard.counter("serve.http.shed_429");
            loop {
                let conn = rx.lock().expect("worker queue poisoned").recv();
                let Ok((stream, enqueued)) = conn else {
                    break; // sender gone: server stopped
                };
                app.plane().note_dequeued();
                open_conns.add(1);
                if enqueued.elapsed() > app.limits().queue_shed {
                    // The client queued too long; its request is stale.
                    // Shed without reading a byte.
                    shed.inc();
                    reject_connection(stream, 429, "server overloaded, request shed\n");
                } else {
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        handle_connection(&app, stream, &shutdown, worker_idx as u32, enqueued);
                    }));
                    if result.is_err() {
                        // The worker survives a handler panic; scrub
                        // the thread-locals the unwound request leaked.
                        panics.inc();
                        deadline::clear();
                        app.plane().abandon();
                    }
                }
                open_conns.add(-1);
            }
        }));
    }

    let accept_shutdown = Arc::clone(&shutdown);
    let accept_app = Arc::clone(&app);
    let accept = std::thread::spawn(move || {
        let full_429 = accept_app
            .obs_handle()
            .shard(0)
            .counter("serve.http.queue_full_429");
        for stream in listener.incoming() {
            if accept_shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            accept_app.plane().note_enqueued();
            match tx.try_send((stream, Instant::now())) {
                Ok(()) => {}
                Err(TrySendError::Full((stream, _))) => {
                    accept_app.plane().note_dequeued();
                    full_429.inc();
                    reject_connection(stream, 429, "accept queue full\n");
                }
                Err(TrySendError::Disconnected(_)) => break,
            }
        }
    });

    Ok(Server {
        port,
        app,
        shutdown,
        accept: Some(accept),
        workers: pool,
    })
}

impl Server {
    /// The bound port (useful with `127.0.0.1:0`).
    pub fn port(&self) -> u16 {
        self.port
    }

    /// The served app.
    pub fn app(&self) -> &Arc<App> {
        &self.app
    }

    /// Signal shutdown and join every thread. In-flight requests finish
    /// (their connections close after the current response); this call
    /// blocks until every worker exits.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(("127.0.0.1", self.port));
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// Graceful drain: stop accepting, answer `503` + `Connection:
    /// close` to requests that arrive on kept-alive connections, give
    /// in-flight work up to `deadline` to finish, then abandon whatever
    /// is still running. Idempotent with [`stop`](Server::stop) — after
    /// a drain, `stop` has nothing left to join.
    pub fn drain(&mut self, deadline: Duration) -> DrainReport {
        self.app.begin_drain();
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(("127.0.0.1", self.port));
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let started = Instant::now();
        while !self.workers.iter().all(JoinHandle::is_finished) && started.elapsed() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut abandoned = 0usize;
        for h in self.workers.drain(..) {
            if h.is_finished() {
                let _ = h.join();
            } else {
                abandoned += 1;
                // Dropping the handle detaches the thread; it dies with
                // the process.
            }
        }
        DrainReport {
            drained: abandoned == 0,
            abandoned,
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Content Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Error",
    }
}

/// Whether `status` carries a `Retry-After` header — every reject that
/// a well-behaved client should simply retry later.
fn retryable(status: u16) -> bool {
    matches!(status, 429 | 503)
}

/// Write a minimal closing response directly to a raw stream (the shed
/// and reject paths, where no request was parsed).
fn reject_connection(stream: TcpStream, status: u16, body: &str) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let mut stream = stream;
    let _ = stream.write_all(simple_response(status, body).as_bytes());
    let _ = stream.shutdown(Shutdown::Both);
}

fn simple_response(status: u16, body: &str) -> String {
    let retry = if retryable(status) {
        "Retry-After: 1\r\n"
    } else {
        ""
    };
    format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: text/plain\r\nContent-Length: {}\r\n{retry}Connection: close\r\n\r\n{body}",
        reason(status),
        body.len(),
    )
}

/// One line-read attempt against a capped buffer.
enum LineRead {
    /// A full `\n`-terminated line is in the buffer.
    Line,
    /// Clean close: EOF with nothing buffered.
    Eof,
    /// The read timeout fired; partial data (if any) stays buffered.
    Timeout,
    /// The line exceeds the cap.
    TooLong,
    /// Stream error, non-UTF-8 bytes, or EOF mid-line.
    Err,
}

/// Read one line into `buf`, never holding more than `cap + 1` bytes.
/// Partial data survives timeouts, so slow senders accumulate across
/// calls instead of corrupting the stream.
fn read_capped_line(reader: &mut BufReader<TcpStream>, buf: &mut String, cap: usize) -> LineRead {
    loop {
        if buf.len() > cap {
            return LineRead::TooLong;
        }
        let remaining = (cap + 1 - buf.len()) as u64;
        let before = buf.len();
        match reader.by_ref().take(remaining).read_line(buf) {
            Ok(0) => {
                return if buf.is_empty() {
                    LineRead::Eof
                } else {
                    LineRead::Err // EOF mid-line
                };
            }
            Ok(_) => {
                if buf.ends_with('\n') {
                    return LineRead::Line;
                }
                if buf.len() > cap {
                    return LineRead::TooLong;
                }
                if buf.len() == before {
                    return LineRead::Err;
                }
                // No newline yet and under the cap: the stream hit EOF
                // mid-line (next loop sees Ok(0)) or the take limit
                // (next loop sees TooLong).
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return LineRead::Timeout;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return LineRead::Err,
        }
    }
}

/// Read exactly `len` body bytes, tolerating read-timeout wakeups until
/// `stall` has elapsed with the body still incomplete.
fn read_body(
    reader: &mut BufReader<TcpStream>,
    out: &mut Vec<u8>,
    len: usize,
    stall: Duration,
) -> bool {
    out.reserve(len.min(1 << 20));
    let started = Instant::now();
    let mut buf = [0u8; 8192];
    while out.len() < len {
        let want = (len - out.len()).min(buf.len());
        match reader.read(&mut buf[..want]) {
            Ok(0) => return false,
            Ok(n) => out.extend_from_slice(&buf[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if started.elapsed() >= stall {
                    return false;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    true
}

fn handle_connection(
    app: &App,
    stream: TcpStream,
    shutdown: &AtomicBool,
    worker: u32,
    enqueued: Instant,
) {
    let limits = app.limits().clone();
    let _ = stream.set_nodelay(true);
    // The read timeout doubles as the shutdown/stall poll interval, so
    // it must not exceed the stall deadline it enforces.
    let poll = limits
        .header_deadline
        .min(Duration::from_millis(500))
        .max(Duration::from_millis(10));
    let _ = stream.set_read_timeout(Some(poll));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = write_half;
    // The pool-queue wait belongs to the connection's first request;
    // keep-alive successors never waited in the accept queue.
    let mut queue_wait = Some(Instant::now().saturating_duration_since(enqueued));
    // Line buffers live across requests: keep-alive connections serve
    // hundreds of requests, and per-line String churn is measurable in
    // the serve bench.
    let mut request_line = String::new();
    let mut header_line = String::new();
    let mut body: Vec<u8> = Vec::new();
    loop {
        request_line.clear();
        // --- request line -------------------------------------------
        let mut stalled_since: Option<Instant> = None;
        loop {
            match read_capped_line(&mut reader, &mut request_line, limits.max_request_line) {
                LineRead::Line => break,
                LineRead::Eof => return, // client closed between requests
                LineRead::TooLong => {
                    let _ = writer
                        .write_all(simple_response(431, "request line too long\n").as_bytes());
                    return;
                }
                LineRead::Err => return,
                LineRead::Timeout => {
                    if request_line.is_empty() {
                        // Idle keep-alive: only shutdown/drain matter.
                        if shutdown.load(Ordering::SeqCst) || app.draining() {
                            return;
                        }
                    } else {
                        // Mid-request-line: a slow (or slow-loris)
                        // sender gets `header_deadline` of grace.
                        let since = *stalled_since.get_or_insert_with(Instant::now);
                        if since.elapsed() >= limits.header_deadline {
                            let _ = writer.write_all(
                                simple_response(408, "timed out reading request\n").as_bytes(),
                            );
                            return;
                        }
                    }
                }
            }
        }
        // The request clock: for the first request it started back at
        // the accept queue (so queue wait is inside the total); for
        // later keep-alive requests it starts once the request line is
        // in (client think time must not count).
        let parse_start = Instant::now();
        let req_start = if queue_wait.is_some() {
            enqueued
        } else {
            parse_start
        };
        let mut close = false;
        let mut trace_header: Option<String> = None;
        let mut content_length: Option<usize> = None;
        let mut header_bytes = 0usize;
        // Drain headers; we care about Connection, X-Trace-Id, and
        // Content-Length. Matching is allocation-free (no lowercased
        // copies). Total header bytes are capped.
        let mut stalled_since: Option<Instant> = None;
        loop {
            header_line.clear();
            let line_cap = limits.max_header_bytes.saturating_sub(header_bytes);
            loop {
                match read_capped_line(&mut reader, &mut header_line, line_cap) {
                    LineRead::Line => break,
                    LineRead::Eof | LineRead::Err => return,
                    LineRead::TooLong => {
                        let _ = writer
                            .write_all(simple_response(431, "headers too large\n").as_bytes());
                        return;
                    }
                    LineRead::Timeout => {
                        let since = *stalled_since.get_or_insert_with(Instant::now);
                        if since.elapsed() >= limits.header_deadline {
                            let _ = writer.write_all(
                                simple_response(408, "timed out reading headers\n").as_bytes(),
                            );
                            return;
                        }
                    }
                }
            }
            header_bytes += header_line.len();
            let trimmed = header_line.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                if name.eq_ignore_ascii_case("connection")
                    && value
                        .split(',')
                        .any(|v| v.trim().eq_ignore_ascii_case("close"))
                {
                    close = true;
                } else if name.eq_ignore_ascii_case("x-trace-id") {
                    let v = value.trim();
                    if !v.is_empty() {
                        trace_header = Some(v.to_string());
                    }
                } else if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse::<usize>().ok();
                }
            }
        }
        let mut parts = request_line.split_whitespace();
        let method = parts.next().unwrap_or("");
        let target = parts.next().unwrap_or("/");

        // --- body ----------------------------------------------------
        body.clear();
        if method == "POST" {
            let Some(len) = content_length else {
                let _ = writer
                    .write_all(simple_response(411, "POST requires Content-Length\n").as_bytes());
                return;
            };
            if len > limits.max_body_bytes {
                let _ = writer.write_all(
                    simple_response(
                        413,
                        &format!("body of {len} bytes exceeds {}\n", limits.max_body_bytes),
                    )
                    .as_bytes(),
                );
                return;
            }
            if !read_body(&mut reader, &mut body, len, limits.header_deadline) {
                let _ =
                    writer.write_all(simple_response(408, "timed out reading body\n").as_bytes());
                return;
            }
        } else if let Some(len) = content_length {
            // Bodies on GET/DELETE are read and discarded to keep the
            // keep-alive framing intact — but still capped.
            if len > limits.max_body_bytes {
                let _ = writer
                    .write_all(simple_response(413, "unexpected oversized body\n").as_bytes());
                return;
            }
            if !read_body(&mut reader, &mut body, len, limits.header_deadline) {
                return;
            }
            body.clear();
        }
        let parse_dur = parse_start.elapsed();

        // A draining server answers every new request with a closing
        // 503; in-flight requests (already past this point) finish.
        if app.draining() {
            let _ = writer.write_all(simple_response(503, "server draining\n").as_bytes());
            return;
        }

        let trace_id = app.plane().begin(target, trace_header, worker, req_start);
        if trace_id.is_some() {
            if let Some(wait) = queue_wait {
                note_phase(Phase::Queue, Duration::ZERO, wait);
            }
            note_phase(
                Phase::Parse,
                parse_start.saturating_duration_since(req_start),
                parse_dur,
            );
        }
        queue_wait = None;

        deadline::arm(req_start + limits.deadline);
        let (status, content_type, resp_body) = route_request(app, method, target, &body);
        deadline::clear();

        let connection = if close { "close" } else { "keep-alive" };
        let retry = if retryable(status) {
            "Retry-After: 1\r\n"
        } else {
            ""
        };
        let head = match trace_id.as_deref() {
            Some(id) => format!(
                "HTTP/1.1 {status} {} \r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n{retry}X-Trace-Id: {id}\r\nConnection: {connection}\r\n\r\n",
                reason(status),
                resp_body.len(),
            ),
            None => format!(
                "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n{retry}Connection: {connection}\r\n\r\n",
                reason(status),
                resp_body.len(),
            ),
        };
        let write_phase = PhaseTimer::start(Phase::Write);
        let wrote = writer.write_all(head.as_bytes()).is_ok()
            && writer.write_all(resp_body.as_bytes()).is_ok();
        drop(write_phase);
        app.plane().finish(status, resp_body.len() as u64);
        if !wrote || close || shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Dispatch one GET target against `app` — the old single-trace entry
/// point, kept so routing tests run without sockets.
pub fn route(app: &App, target: &str) -> (u16, &'static str, String) {
    route_request(app, "GET", target, &[])
}

fn retry_503() -> (u16, &'static str, String) {
    (503, "text/plain", "deadline exceeded\n".to_string())
}

/// Dispatch one request to the app: trace registry management under
/// `/v1/traces`, observability routes, and per-trace query routes
/// (selected by `?trace=`, defaulting to the boot trace). Split out
/// from the connection loop so tests can exercise routing without
/// sockets.
pub fn route_request(
    app: &App,
    method: &str,
    target: &str,
    body: &[u8],
) -> (u16, &'static str, String) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let params: Vec<(&str, &str)> = query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| kv.split_once('=').unwrap_or((kv, "")))
        .collect();
    let get = |k: &str| params.iter().find(|(key, _)| *key == k).map(|(_, v)| *v);

    // Registry management is the one method-sensitive corner.
    if path == "/v1/traces" {
        return match method {
            "GET" => (200, "application/json", app.registry().list_json()),
            "POST" => match app.registry().upload(get("id"), body) {
                Ok(out) => (
                    201,
                    "application/json",
                    Json::Obj(vec![
                        ("id".into(), Json::Str(out.id)),
                        ("bytes".into(), Json::Num(out.bytes as f64)),
                        ("salvaged".into(), Json::Bool(out.salvaged)),
                        ("warnings".into(), Json::Num(out.warnings as f64)),
                        ("replaced".into(), Json::Bool(out.replaced)),
                        (
                            "evicted".into(),
                            Json::Arr(out.evicted.into_iter().map(Json::Str).collect()),
                        ),
                    ])
                    .compact(),
                ),
                Err(UploadError::OverBudget { bytes, budget }) => (
                    413,
                    "text/plain",
                    format!("upload of {bytes} bytes exceeds registry budget of {budget}\n"),
                ),
                Err(UploadError::Invalid(why)) => (400, "text/plain", format!("{why}\n")),
            },
            _ => (405, "text/plain", "method not allowed\n".to_string()),
        };
    }
    if let Some(id) = path.strip_prefix("/v1/traces/") {
        return match method {
            "DELETE" => match app.registry().remove(id) {
                Ok(()) => (
                    200,
                    "application/json",
                    Json::Obj(vec![("deleted".into(), Json::Str(id.to_string()))]).compact(),
                ),
                Err(RemoveError::NotFound) => (404, "text/plain", format!("no trace {id:?}\n")),
                Err(RemoveError::Pinned) => (
                    409,
                    "text/plain",
                    format!("trace {id:?} is pinned and cannot be deleted\n"),
                ),
            },
            _ => (405, "text/plain", "method not allowed\n".to_string()),
        };
    }
    if method != "GET" {
        return (405, "text/plain", "method not allowed\n".to_string());
    }

    // Phase boundary: don't start work for a request that already blew
    // its deadline waiting in the queue.
    if deadline::expired() {
        return retry_503();
    }

    // App-level routes need no trace resolution.
    match path {
        "/metrics" => return (200, "text/plain; version=0.0.4", app.metrics_text()),
        "/v1/obs/endpoints" => return (200, "application/json", app.plane().endpoints_json()),
        "/v1/obs/flight" => return (200, "application/json", app.plane().flight_json()),
        _ => {}
    }

    let trace_sel = get("trace");
    let Some(entry) = app.registry().get(trace_sel) else {
        return (
            404,
            "text/plain",
            format!("no trace {:?}\n", trace_sel.unwrap_or("default")),
        );
    };
    let svc = &entry.service;

    macro_rules! param {
        ($name:literal as $ty:ty, default $default:expr) => {
            match get($name) {
                None => $default,
                Some(raw) => match raw.parse::<$ty>() {
                    Ok(v) => v,
                    Err(_) => return (400, "text/plain", format!("bad {}: {raw:?}\n", $name)),
                },
            }
        };
    }

    let resp = match path {
        "/v1/info" => (200, "application/json", svc.info_json()),
        "/v1/legend" => (200, "application/json", svc.legend_json()),
        "/v1/warnings" => (200, "application/json", svc.warnings_json()),
        "/v1/stats" => {
            let mut fields = svc.stats_fields();
            fields.extend(app.registry().stats_fields());
            (200, "application/json", Json::Obj(fields).compact())
        }
        "/v1/diagnose" => (200, "application/json", svc.diagnose_json().to_string()),
        "/v1/diff" => match svc.diff_json() {
            Some(body) => (200, "application/json", body.to_string()),
            None => (
                404,
                "text/plain",
                "no baseline registered (start pilotd with --baseline)\n".to_string(),
            ),
        },
        "/v1/query" => {
            let range = svc.file().range;
            let t0 = param!("t0" as f64, default range.t0);
            let t1 = param!("t1" as f64, default range.t1);
            let ranks: Option<Vec<u32>> = match get("ranks") {
                None | Some("") => None,
                Some(raw) => {
                    let mut out = Vec::new();
                    for piece in raw.split(',') {
                        match piece.parse::<u32>() {
                            Ok(r) => out.push(r),
                            Err(_) => return (400, "text/plain", format!("bad ranks: {raw:?}\n")),
                        }
                    }
                    Some(out)
                }
            };
            // The bounded variant aborts between ranks once the
            // deadline passes — no truncated bodies, just a 503.
            match svc.query_json_bounded(TimeWindow::new(t0, t1), ranks.as_deref()) {
                Some(body) => (200, "application/json", body),
                None => return retry_503(),
            }
        }
        "/v1/tile" => {
            let rank = param!("rank" as u32, default 0);
            let zoom = param!("zoom" as u8, default 0);
            let tile = param!("tile" as u32, default 0);
            match svc.tile_json(rank, zoom, tile) {
                Some(body) => (200, "application/json", body.as_ref().clone()),
                None => (
                    404,
                    "text/plain",
                    format!("no tile {tile} at zoom {zoom}\n"),
                ),
            }
        }
        "/v1/render" => {
            let backend = get("backend").unwrap_or("svg");
            let width = param!("width" as u32, default 1280);
            let window = match (get("t0"), get("t1")) {
                (None, None) => None,
                _ => {
                    let range = svc.file().range;
                    let t0 = param!("t0" as f64, default range.t0);
                    let t1 = param!("t1" as f64, default range.t1);
                    Some(TimeWindow::new(t0, t1))
                }
            };
            let overlay = matches!(get("overlay"), Some("1") | Some("critical") | Some("true"));
            match svc.render(backend, window, width, overlay) {
                Some((ct, body)) => (200, ct, body),
                None => (404, "text/plain", format!("unknown backend {backend:?}\n")),
            }
        }
        _ => (404, "text/plain", format!("no route {path:?}\n")),
    };
    // Phase boundary: a response computed past its deadline is thrown
    // away (the compute still warmed the cache for the retry).
    if resp.0 == 200 && deadline::expired() {
        return retry_503();
    }
    resp
}

/// A parsed HTTP response, headers included.
#[derive(Debug)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Response headers in arrival order (names lowercased).
    pub headers: Vec<(String, String)>,
    /// The body (responses here are always text).
    pub body: String,
    /// Whether the server signalled `Connection: close`.
    pub closed: bool,
}

impl HttpResponse {
    /// First header value under `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A keep-alive HTTP/1.1 client for one pilotd connection. Used by the
/// server tests, `repro serve-bench`, and the chaos harness.
pub struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to `addr` (e.g. `127.0.0.1:8080`).
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream),
        })
    }

    /// Issue `GET path` on the persistent connection; returns
    /// `(status, body)`.
    pub fn get(&mut self, path: &str) -> std::io::Result<(u16, String)> {
        self.send("GET", path, &[], None)
            .map(|r| (r.status, r.body))
    }

    /// Like [`get`](Self::get) but with an `X-Trace-Id` header, so the
    /// request is findable in `/v1/obs/flight` by name.
    pub fn get_traced(&mut self, path: &str, trace_id: &str) -> std::io::Result<(u16, String)> {
        self.send("GET", path, &[("X-Trace-Id", trace_id)], None)
            .map(|r| (r.status, r.body))
    }

    /// `GET` returning the full response, headers included.
    pub fn get_full(&mut self, path: &str) -> std::io::Result<HttpResponse> {
        self.send("GET", path, &[], None)
    }

    /// `POST path` with a binary body (`Content-Length` framing).
    pub fn post(&mut self, path: &str, body: &[u8]) -> std::io::Result<HttpResponse> {
        self.send("POST", path, &[], Some(body))
    }

    /// `DELETE path`.
    pub fn delete(&mut self, path: &str) -> std::io::Result<HttpResponse> {
        self.send("DELETE", path, &[], None)
    }

    /// Issue one request and parse the response.
    pub fn send(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: Option<&[u8]>,
    ) -> std::io::Result<HttpResponse> {
        let mut request = format!("{method} {path} HTTP/1.1\r\nHost: pilotd\r\n");
        for (name, value) in headers {
            request.push_str(&format!("{name}: {value}\r\n"));
        }
        if let Some(body) = body {
            request.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        request.push_str("Connection: keep-alive\r\n\r\n");
        self.reader.get_mut().write_all(request.as_bytes())?;
        if let Some(body) = body {
            self.reader.get_mut().write_all(body)?;
        }

        let mut status_line = String::new();
        self.reader.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;

        let mut content_length = 0usize;
        let mut headers = Vec::new();
        let mut closed = false;
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::ErrorKind::UnexpectedEof.into());
            }
            let trimmed = line.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, v)) = trimmed.split_once(':') {
                let name = name.to_ascii_lowercase();
                let v = v.trim().to_string();
                if name == "content-length" {
                    content_length = v.parse().map_err(|_| {
                        std::io::Error::new(std::io::ErrorKind::InvalidData, "bad content-length")
                    })?;
                } else if name == "connection" && v.eq_ignore_ascii_case("close") {
                    closed = true;
                }
                headers.push((name, v));
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body)
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-utf8 body"))?;
        Ok(HttpResponse {
            status,
            headers,
            body,
            closed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Limits;
    use crate::service::TimelineService;
    use mpelog::Color;
    use slog2::{
        Category, CategoryId, CategoryKind, Drawable, FrameTree, Slog2File, StateDrawable,
        TimelineId,
    };

    fn demo_file(ranks: u32, states: usize) -> Slog2File {
        let mut ds = Vec::new();
        for r in 0..ranks {
            for i in 0..states {
                ds.push(Drawable::State(StateDrawable {
                    category: CategoryId(0),
                    timeline: TimelineId(r),
                    start: i as f64,
                    end: i as f64 + 0.5,
                    nest_level: 0,
                    text: String::new(),
                }));
            }
        }
        let range = TimeWindow::new(0.0, states as f64);
        Slog2File {
            timelines: (0..ranks)
                .map(|r| {
                    if r == 0 {
                        "PI_MAIN".into()
                    } else {
                        format!("P{r}")
                    }
                })
                .collect(),
            categories: vec![Category {
                index: CategoryId(0),
                name: "Compute".into(),
                color: Color::GRAY,
                kind: CategoryKind::State,
            }],
            range,
            warnings: vec![],
            tree: FrameTree::build(ds, range.t0, range.t1, 16, 8),
        }
    }

    fn service() -> TimelineService {
        TimelineService::from_file(demo_file(2, 8))
    }

    fn app() -> Arc<App> {
        App::single(service())
    }

    #[test]
    fn serves_info_over_a_socket() {
        let app = app();
        let expected = app.registry().default_trace().service.info_json();
        let mut server = serve(Arc::clone(&app), "127.0.0.1:0", 2).unwrap();
        let mut client = Client::connect(&format!("127.0.0.1:{}", server.port())).unwrap();
        let (status, body) = client.get("/v1/info").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, expected);
        server.stop();
    }

    #[test]
    fn keep_alive_serves_many_requests_per_connection() {
        let mut server = serve(app(), "127.0.0.1:0", 2).unwrap();
        let mut client = Client::connect(&format!("127.0.0.1:{}", server.port())).unwrap();
        for path in [
            "/v1/legend",
            "/v1/warnings",
            "/v1/stats",
            "/v1/query?t0=1&t1=2",
        ] {
            let (status, body) = client.get(path).unwrap();
            assert_eq!(status, 200, "{path}");
            assert!(!body.is_empty(), "{path}");
        }
        server.stop();
    }

    #[test]
    fn socket_bodies_match_in_process_calls() {
        let app = app();
        let mut server = serve(Arc::clone(&app), "127.0.0.1:0", 4).unwrap();
        let mut client = Client::connect(&format!("127.0.0.1:{}", server.port())).unwrap();
        let svc = app.registry().default_trace();
        let (_, over_wire) = client.get("/v1/query?t0=0.5&t1=3.5&ranks=1").unwrap();
        assert_eq!(
            over_wire,
            svc.service
                .query_json(TimeWindow::new(0.5, 3.5), Some(&[1]))
        );
        let (_, tile) = client.get("/v1/tile?rank=0&zoom=2&tile=1").unwrap();
        assert_eq!(tile, *svc.service.tile_json(0, 2, 1).unwrap());
        server.stop();
    }

    #[test]
    fn diagnose_route_returns_cached_verdict_json() {
        let app = app();
        let (status, ct, body) = route(&app, "/v1/diagnose");
        assert_eq!(status, 200);
        assert_eq!(ct, "application/json");
        let v = pilot_vis::json::Json::parse(&body).unwrap();
        assert!(v.get("verdicts").is_some(), "{body}");
        // Cached: the second call returns the identical string.
        let (_, _, again) = route(&app, "/v1/diagnose");
        assert_eq!(body, again);
    }

    #[test]
    fn diff_route_is_404_until_a_baseline_is_registered() {
        let app = app();
        let (status, _, body) = route(&app, "/v1/diff");
        assert_eq!(status, 404);
        assert!(body.contains("no baseline"), "{body}");
    }

    #[test]
    fn diff_route_serves_cached_verdict_json_with_baseline() {
        let mut inner = service();
        inner.set_baseline(demo_file(2, 8), "baseline.pslog2");
        let app = App::single(inner);
        let (status, ct, body) = route(&app, "/v1/diff");
        assert_eq!(status, 200);
        assert_eq!(ct, "application/json");
        let v = pilot_vis::json::Json::parse(&body).unwrap();
        assert_eq!(
            v.get("schema").and_then(pilot_vis::json::Json::as_str),
            Some("pilot-vis-diff-v1")
        );
        assert_eq!(
            v.get("before")
                .and_then(|b| b.get("label"))
                .and_then(pilot_vis::json::Json::as_str),
            Some("baseline.pslog2")
        );
        // Cached: byte-identical on repeat.
        let (_, _, again) = route(&app, "/v1/diff");
        assert_eq!(body, again);
    }

    #[test]
    fn render_route_accepts_critical_overlay() {
        let app = app();
        let (status, _, body) = route(&app, "/v1/render?backend=svg&overlay=critical");
        assert_eq!(status, 200);
        assert!(body.contains("class=\"critical-path\""), "{body}");
        let (_, _, plain) = route(&app, "/v1/render?backend=svg");
        assert!(!plain.contains("class=\"critical-path\""));
    }

    #[test]
    fn routes_reject_bad_input() {
        let app = app();
        assert_eq!(route(&app, "/v1/query?t0=potato").0, 400);
        assert_eq!(route(&app, "/v1/query?ranks=1,x").0, 400);
        assert_eq!(route(&app, "/v1/tile?rank=0&zoom=30&tile=0").0, 404);
        assert_eq!(route(&app, "/v1/render?backend=nope").0, 404);
        assert_eq!(route(&app, "/nowhere").0, 404);
        assert_eq!(route(&app, "/v1/info?trace=ghost").0, 404);
    }

    #[test]
    fn render_route_serves_every_backend() {
        let app = app();
        for backend in ["svg", "ascii", "html", "hist"] {
            let (status, _, body) = route(&app, &format!("/v1/render?backend={backend}&width=320"));
            assert_eq!(status, 200, "{backend}");
            assert!(!body.is_empty(), "{backend}");
        }
        let (status, _, windowed) = route(&app, "/v1/render?backend=svg&t0=1&t1=2");
        assert_eq!(status, 200);
        assert!(windowed.contains("<svg"));
    }

    #[test]
    fn concurrent_clients_get_consistent_tiles() {
        let app = app();
        let mut server = serve(Arc::clone(&app), "127.0.0.1:0", 4).unwrap();
        let addr = format!("127.0.0.1:{}", server.port());
        let expected = app
            .registry()
            .default_trace()
            .service
            .tile_json(0, 3, 5)
            .unwrap();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut c = Client::connect(&addr).unwrap();
                    c.get("/v1/tile?rank=0&zoom=3&tile=5").unwrap()
                })
            })
            .collect();
        for h in handles {
            let (status, body) = h.join().unwrap();
            assert_eq!(status, 200);
            assert_eq!(body, *expected);
        }
        server.stop();
    }

    #[test]
    fn upload_select_query_delete_roundtrip_over_sockets() {
        let app = app();
        let mut server = serve(Arc::clone(&app), "127.0.0.1:0", 2).unwrap();
        let mut client = Client::connect(&format!("127.0.0.1:{}", server.port())).unwrap();

        let upload = demo_file(3, 5).to_bytes();
        let resp = client.post("/v1/traces?id=exp1", &upload).unwrap();
        assert_eq!(resp.status, 201, "{}", resp.body);
        let v = pilot_vis::json::Json::parse(&resp.body).unwrap();
        assert_eq!(v.get("id").unwrap().as_str().unwrap(), "exp1");

        let (status, listing) = client.get("/v1/traces").unwrap();
        assert_eq!(status, 200);
        assert!(listing.contains("\"exp1\""), "{listing}");

        // The ?trace= selector reaches the uploaded trace; the default
        // answers without it.
        let (status, info) = client.get("/v1/info?trace=exp1").unwrap();
        assert_eq!(status, 200);
        assert!(info.contains("\"P2\""), "{info}");
        let (status, tile) = client
            .get("/v1/tile?trace=exp1&rank=2&zoom=1&tile=0")
            .unwrap();
        assert_eq!(status, 200);
        assert!(!tile.is_empty());
        let (status, _) = client.get("/v1/info").unwrap();
        assert_eq!(status, 200);

        let resp = client.delete("/v1/traces/exp1").unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
        let (status, _) = client.get("/v1/info?trace=exp1").unwrap();
        assert_eq!(status, 404);
        let resp = client.delete("/v1/traces/default").unwrap();
        assert_eq!(resp.status, 409);
        let resp = client.delete("/v1/traces/ghost").unwrap();
        assert_eq!(resp.status, 404);
        server.stop();
    }

    #[test]
    fn post_without_content_length_is_411() {
        let app = app();
        let mut server = serve(Arc::clone(&app), "127.0.0.1:0", 2).unwrap();
        let mut stream = TcpStream::connect(format!("127.0.0.1:{}", server.port())).unwrap();
        stream
            .write_all(b"POST /v1/traces HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut resp = String::new();
        BufReader::new(&stream).read_line(&mut resp).unwrap();
        assert!(resp.contains("411"), "{resp}");
        server.stop();
    }

    #[test]
    fn oversized_request_line_is_431() {
        let app = app();
        let mut server = serve(Arc::clone(&app), "127.0.0.1:0", 2).unwrap();
        let mut stream = TcpStream::connect(format!("127.0.0.1:{}", server.port())).unwrap();
        let long = format!(
            "GET /{} HTTP/1.1\r\n\r\n",
            "x".repeat(app.limits().max_request_line + 10)
        );
        stream.write_all(long.as_bytes()).unwrap();
        let mut resp = String::new();
        BufReader::new(&stream).read_line(&mut resp).unwrap();
        assert!(resp.contains("431"), "{resp}");
        server.stop();
    }

    #[test]
    fn oversized_headers_are_431() {
        let app = app();
        let mut server = serve(Arc::clone(&app), "127.0.0.1:0", 2).unwrap();
        let mut stream = TcpStream::connect(format!("127.0.0.1:{}", server.port())).unwrap();
        let mut req = String::from("GET /v1/info HTTP/1.1\r\n");
        for i in 0..40 {
            req.push_str(&format!("X-Pad-{i}: {}\r\n", "y".repeat(1024)));
        }
        req.push_str("\r\n");
        stream.write_all(req.as_bytes()).unwrap();
        let mut resp = String::new();
        BufReader::new(&stream).read_line(&mut resp).unwrap();
        assert!(resp.contains("431"), "{resp}");
        server.stop();
    }

    #[test]
    fn slow_loris_is_cut_off_with_408() {
        let limits = Limits {
            header_deadline: Duration::from_millis(80),
            ..Limits::default()
        };
        let app = Arc::new(App::new(service(), limits));
        let mut server = serve(Arc::clone(&app), "127.0.0.1:0", 2).unwrap();
        let mut stream = TcpStream::connect(format!("127.0.0.1:{}", server.port())).unwrap();
        stream.write_all(b"GET /v1/inf").unwrap(); // ...and never finish
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut resp = String::new();
        BufReader::new(&stream).read_line(&mut resp).unwrap();
        assert!(resp.contains("408"), "{resp}");
        server.stop();
    }

    #[test]
    fn expired_deadline_yields_503_with_retry_after() {
        let limits = Limits {
            deadline: Duration::ZERO, // every request is already late
            ..Limits::default()
        };
        let app = Arc::new(App::new(service(), limits));
        let mut server = serve(Arc::clone(&app), "127.0.0.1:0", 2).unwrap();
        let mut client = Client::connect(&format!("127.0.0.1:{}", server.port())).unwrap();
        let resp = client.get_full("/v1/query").unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("1"));
        server.stop();
    }

    #[test]
    fn drain_rejects_new_requests_and_reports() {
        let app = app();
        let mut server = serve(Arc::clone(&app), "127.0.0.1:0", 2).unwrap();
        let mut client = Client::connect(&format!("127.0.0.1:{}", server.port())).unwrap();
        let (status, _) = client.get("/v1/info").unwrap();
        assert_eq!(status, 200);
        let report = server.drain(Duration::from_secs(2));
        assert!(report.drained, "{report:?}");
        assert_eq!(report.abandoned, 0);
        // The kept-alive connection gets a closing 503 on its next
        // request (or a clean close if the worker exited first).
        if let Ok(resp) = client.get_full("/v1/info") {
            assert_eq!(resp.status, 503);
            assert!(resp.closed);
        } // Err: worker already gone, clean close — also fine.
    }
}
