//! `pilotd` — the timeline query daemon.
//!
//! ```text
//! pilotd serve trace.pslog2 [--addr 127.0.0.1:7007] [--workers 8] [--baseline before.pslog2]
//! pilotd info  trace.pslog2
//! ```
//!
//! With `--baseline`, `/v1/diff` serves the baseline-vs-served trace
//! comparison (verdict deltas, alignment, per-timeline deltas) as
//! cached JSON; without it the route answers 404.

use std::sync::Arc;

use timeline::TimelineService;

fn usage() -> ! {
    eprintln!("usage: pilotd <serve|info> <trace.pslog2> [--addr HOST:PORT] [--workers N] [--baseline before.pslog2]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, path) = match (args.first(), args.get(1)) {
        (Some(c), Some(p)) => (c.as_str(), p.as_str()),
        _ => usage(),
    };
    let flag = |name: &str, default: &str| -> String {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| default.to_string())
    };

    let mut svc = match TimelineService::load(std::path::Path::new(path)) {
        Ok(svc) => svc,
        Err(e) => {
            eprintln!("pilotd: cannot load {path}: {e}");
            std::process::exit(1);
        }
    };
    if let Some(bp) = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1))
    {
        match slog2::Slog2File::read_validated(std::path::Path::new(bp)) {
            Ok(file) => svc.set_baseline(file, bp.as_str()),
            Err(e) => {
                eprintln!("pilotd: cannot load baseline {bp}: {e:?}");
                std::process::exit(1);
            }
        }
    }
    let svc = Arc::new(svc);

    match cmd {
        "info" => {
            println!("{}", svc.info_json());
        }
        "serve" => {
            let addr = flag("--addr", "127.0.0.1:7007");
            let workers: usize = flag("--workers", &timeline::DEFAULT_WORKERS.to_string())
                .parse()
                .unwrap_or_else(|_| usage());
            let server = match timeline::serve(Arc::clone(&svc), &addr, workers) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("pilotd: cannot bind {addr}: {e}");
                    std::process::exit(1);
                }
            };
            eprintln!(
                "pilotd: serving {path} ({} ranks) on port {} with {workers} workers",
                svc.file().timelines.len(),
                server.port()
            );
            eprintln!(
                "pilotd: try  curl http://127.0.0.1:{}/v1/info",
                server.port()
            );
            // Serve until killed.
            loop {
                std::thread::park();
            }
        }
        _ => usage(),
    }
}
