//! `pilotd` — the timeline query daemon.
//!
//! ```text
//! pilotd serve trace.pslog2 [--addr 127.0.0.1:7007] [--workers 8]
//!        [--baseline before.pslog2] [--no-trace] [--flight-dump flight.json]
//! pilotd info  trace.pslog2
//! ```
//!
//! With `--baseline`, `/v1/diff` serves the baseline-vs-served trace
//! comparison (verdict deltas, alignment, per-timeline deltas) as
//! cached JSON; without it the route answers 404.
//!
//! `serve` enables request tracing by default: every request gets a
//! trace ID (echoed as `X-Trace-Id`), per-endpoint phase timings feed
//! `/metrics` and `/v1/obs/endpoints`, and the flight recorder keeps
//! the slowest and most recent requests for `/v1/obs/flight`. Pass
//! `--no-trace` to serve with the plane disabled. With `--flight-dump
//! PATH`, a graceful shutdown (EOF or `quit` on stdin) writes the
//! flight recorder as Chrome trace-event JSON to PATH — load it at
//! `chrome://tracing` or Perfetto.

use std::io::BufRead;
use std::sync::Arc;

use timeline::TimelineService;

fn usage() -> ! {
    eprintln!(
        "usage: pilotd <serve|info> <trace.pslog2> [--addr HOST:PORT] [--workers N] \
         [--baseline before.pslog2] [--no-trace] [--flight-dump PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, path) = match (args.first(), args.get(1)) {
        (Some(c), Some(p)) => (c.as_str(), p.as_str()),
        _ => usage(),
    };
    let flag = |name: &str, default: &str| -> String {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| default.to_string())
    };

    let mut svc = match TimelineService::load(std::path::Path::new(path)) {
        Ok(svc) => svc,
        Err(e) => {
            eprintln!("pilotd: cannot load {path}: {e}");
            std::process::exit(1);
        }
    };
    if let Some(bp) = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1))
    {
        match slog2::Slog2File::read_validated(std::path::Path::new(bp)) {
            Ok(file) => svc.set_baseline(file, bp.as_str()),
            Err(e) => {
                eprintln!("pilotd: cannot load baseline {bp}: {e:?}");
                std::process::exit(1);
            }
        }
    }
    let svc = Arc::new(svc);

    match cmd {
        "info" => {
            println!("{}", svc.info_json());
        }
        "serve" => {
            let addr = flag("--addr", "127.0.0.1:7007");
            let workers: usize = flag("--workers", &timeline::DEFAULT_WORKERS.to_string())
                .parse()
                .unwrap_or_else(|_| usage());
            let trace = !args.iter().any(|a| a == "--no-trace");
            let flight_dump = args
                .iter()
                .position(|a| a == "--flight-dump")
                .and_then(|i| args.get(i + 1))
                .cloned();
            if trace {
                svc.enable_tracing();
            } else if flight_dump.is_some() {
                eprintln!("pilotd: --flight-dump needs tracing; drop --no-trace");
                std::process::exit(2);
            }
            let mut server = match timeline::serve(Arc::clone(&svc), &addr, workers) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("pilotd: cannot bind {addr}: {e}");
                    std::process::exit(1);
                }
            };
            eprintln!(
                "pilotd: serving {path} ({} ranks) on port {} with {workers} workers (tracing {})",
                svc.file().timelines.len(),
                server.port(),
                if trace { "on" } else { "off" }
            );
            eprintln!(
                "pilotd: try  curl http://127.0.0.1:{}/v1/info",
                server.port()
            );
            if trace {
                eprintln!(
                    "pilotd: obs  curl http://127.0.0.1:{}/v1/obs/endpoints",
                    server.port()
                );
            }
            // Serve until stdin closes (or `quit`), then shut down in
            // order: stop accepting, drain workers, dump the flight
            // recorder if asked.
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                match line {
                    Ok(l) if l.trim() == "quit" => break,
                    Ok(_) => continue,
                    Err(_) => break,
                }
            }
            server.stop();
            if let Some(dump_path) = flight_dump {
                let json = svc.plane().flight_json();
                match std::fs::write(&dump_path, &json) {
                    Ok(()) => eprintln!(
                        "pilotd: wrote flight recorder to {dump_path} ({} requests observed)",
                        svc.plane().flight().recorded()
                    ),
                    Err(e) => {
                        eprintln!("pilotd: cannot write {dump_path}: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
        _ => usage(),
    }
}
