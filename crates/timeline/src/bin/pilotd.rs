//! `pilotd` — the timeline query daemon.
//!
//! ```text
//! pilotd serve trace.pslog2 [--addr 127.0.0.1:7007] [--workers 8]
//!        [--baseline before.pslog2] [--no-trace] [--flight-dump flight.json]
//!        [--deadline-ms 2000] [--budget-mb 256] [--queue-cap 256]
//!        [--drain-ms 5000]
//! pilotd info  trace.pslog2
//! ```
//!
//! The served trace becomes the pinned `default` in a multi-trace
//! registry: clients upload more traces with `POST /v1/traces?id=NAME`
//! and select them on any query route with `?trace=NAME`. Resident
//! traces live under `--budget-mb` of wire bytes; cold ones are evicted
//! LRU, the default never. See the README's "Operating pilotd" section
//! for the full limit/status-code table.
//!
//! With `--baseline`, `/v1/diff` serves the baseline-vs-served trace
//! comparison (verdict deltas, alignment, per-timeline deltas) as
//! cached JSON; without it the route answers 404.
//!
//! `serve` enables request tracing by default: every request gets a
//! trace ID (echoed as `X-Trace-Id`), per-endpoint phase timings feed
//! `/metrics` and `/v1/obs/endpoints`, and the flight recorder keeps
//! the slowest and most recent requests for `/v1/obs/flight`. Pass
//! `--no-trace` to serve with the plane disabled. With `--flight-dump
//! PATH`, shutdown writes the flight recorder as Chrome trace-event
//! JSON to PATH — load it at `chrome://tracing` or Perfetto.
//!
//! Shutdown is graceful: on stdin EOF, `quit`, or SIGTERM, pilotd stops
//! accepting, answers in-flight and kept-alive requests with closing
//! 503s, waits up to `--drain-ms` for workers to finish, and only then
//! exits (dumping the flight recorder if asked).

use std::io::BufRead;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use timeline::{App, Limits, TimelineService};

fn usage() -> ! {
    eprintln!(
        "usage: pilotd <serve|info> <trace.pslog2> [--addr HOST:PORT] [--workers N] \
         [--baseline before.pslog2] [--no-trace] [--flight-dump PATH] \
         [--deadline-ms N] [--budget-mb N] [--queue-cap N] [--drain-ms N]"
    );
    std::process::exit(2);
}

static SIGTERM: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_sigterm_handler() {
    extern "C" fn on_sigterm(_sig: i32) {
        SIGTERM.store(true, Ordering::SeqCst);
    }
    // Raw libc signal(2) binding — enough for a drain flag, and it
    // keeps the build dependency-free.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGTERM_NO: i32 = 15;
    unsafe {
        signal(SIGTERM_NO, on_sigterm);
    }
}

#[cfg(not(unix))]
fn install_sigterm_handler() {}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, path) = match (args.first(), args.get(1)) {
        (Some(c), Some(p)) => (c.as_str(), p.as_str()),
        _ => usage(),
    };
    let flag = |name: &str, default: &str| -> String {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| default.to_string())
    };
    let num_flag = |name: &str, default: u64| -> u64 {
        flag(name, &default.to_string())
            .parse()
            .unwrap_or_else(|_| usage())
    };

    let mut svc = match TimelineService::load(std::path::Path::new(path)) {
        Ok(svc) => svc,
        Err(e) => {
            eprintln!("pilotd: cannot load {path}: {e}");
            std::process::exit(1);
        }
    };
    if let Some(bp) = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1))
    {
        match slog2::Slog2File::read_validated(std::path::Path::new(bp)) {
            Ok(file) => svc.set_baseline(file, bp.as_str()),
            Err(e) => {
                eprintln!("pilotd: cannot load baseline {bp}: {e:?}");
                std::process::exit(1);
            }
        }
    }

    match cmd {
        "info" => {
            println!("{}", svc.info_json());
        }
        "serve" => {
            let addr = flag("--addr", "127.0.0.1:7007");
            let workers: usize = flag("--workers", &timeline::DEFAULT_WORKERS.to_string())
                .parse()
                .unwrap_or_else(|_| usage());
            let trace = !args.iter().any(|a| a == "--no-trace");
            let flight_dump = args
                .iter()
                .position(|a| a == "--flight-dump")
                .and_then(|i| args.get(i + 1))
                .cloned();
            if !trace && flight_dump.is_some() {
                eprintln!("pilotd: --flight-dump needs tracing; drop --no-trace");
                std::process::exit(2);
            }

            let mut limits = Limits::default();
            limits.deadline = Duration::from_millis(num_flag("--deadline-ms", 2000));
            limits.budget_bytes = (num_flag("--budget-mb", 256) as usize) * 1024 * 1024;
            limits.queue_cap = num_flag("--queue-cap", limits.queue_cap as u64) as usize;
            limits.drain_deadline = Duration::from_millis(num_flag("--drain-ms", 5000));
            let drain_deadline = limits.drain_deadline;

            let app = Arc::new(App::new(svc, limits));
            if trace {
                app.enable_tracing();
            }
            let mut server = match timeline::serve(Arc::clone(&app), &addr, workers) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("pilotd: cannot bind {addr}: {e}");
                    std::process::exit(1);
                }
            };
            install_sigterm_handler();
            eprintln!(
                "pilotd: serving {path} ({} ranks) on port {} with {workers} workers (tracing {})",
                app.registry()
                    .default_trace()
                    .service
                    .file()
                    .timelines
                    .len(),
                server.port(),
                if trace { "on" } else { "off" }
            );
            eprintln!(
                "pilotd: try  curl http://127.0.0.1:{}/v1/info",
                server.port()
            );
            if trace {
                eprintln!(
                    "pilotd: obs  curl http://127.0.0.1:{}/v1/obs/endpoints",
                    server.port()
                );
            }
            // Serve until stdin closes (or `quit`) or SIGTERM arrives,
            // then drain: stop accepting, let in-flight work finish up
            // to the drain deadline, dump the flight recorder if asked.
            let stdin_done = Arc::new(AtomicBool::new(false));
            {
                let stdin_done = Arc::clone(&stdin_done);
                std::thread::spawn(move || {
                    let stdin = std::io::stdin();
                    for line in stdin.lock().lines() {
                        match line {
                            Ok(l) if l.trim() == "quit" => break,
                            Ok(_) => continue,
                            Err(_) => break,
                        }
                    }
                    stdin_done.store(true, Ordering::SeqCst);
                });
            }
            while !stdin_done.load(Ordering::SeqCst) && !SIGTERM.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(50));
            }
            let why = if SIGTERM.load(Ordering::SeqCst) {
                "SIGTERM"
            } else {
                "stdin"
            };
            eprintln!("pilotd: draining ({why})...");
            let report = server.drain(drain_deadline);
            if report.drained {
                eprintln!("pilotd: drained cleanly");
            } else {
                eprintln!(
                    "pilotd: drain deadline passed with {} worker(s) still busy; abandoning",
                    report.abandoned
                );
            }
            if let Some(dump_path) = flight_dump {
                let json = app.plane().flight_json();
                match std::fs::write(&dump_path, &json) {
                    Ok(()) => eprintln!(
                        "pilotd: wrote flight recorder to {dump_path} ({} requests observed)",
                        app.plane().flight().recorded()
                    ),
                    Err(e) => {
                        eprintln!("pilotd: cannot write {dump_path}: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
        _ => usage(),
    }
}
