//! Timeline query service for SLOG-2 traces.
//!
//! The viewer crates (`jumpshot`, `pilot-vis`) render whole documents
//! from a file loaded in-process. This crate turns a loaded `.pslog2`
//! into a *service*: a per-rank interval index answers window queries
//! without rescanning the file, a sharded LRU cache memoises tile
//! responses along a viewer's zoom path, and `pilotd serve` exposes the
//! whole thing over plain HTTP/1.1 with JSON bodies — standard library
//! sockets and threads only.
//!
//! - [`index`] — immutable per-rank interval index ([`TimelineIndex`]),
//!   one frame tree per rank plus a shared arrow tree.
//! - [`cache`] — sharded LRU tile cache ([`TileCache`]) keyed by
//!   (file digest, rank, zoom, tile), two-phase single-flight on
//!   misses (compute happens outside the shard lock).
//! - [`service`] — [`TimelineService`], the unified query/render API;
//!   every HTTP endpoint is a deterministic method here.
//! - [`registry`] — the multi-trace server state: a byte-budgeted
//!   [`TraceRegistry`] (admission, LRU eviction, salvage-tolerant
//!   uploads) plus [`App`], the bundle of registry + obs plane +
//!   [`Limits`] + drain flag that one running server shares.
//! - [`http`] — the `pilotd` HTTP front end ([`serve`], [`Server`]):
//!   bounded accept queue with load shedding, request deadlines, size
//!   caps, slow-loris kill, panic isolation, graceful drain — and a
//!   keep-alive [`Client`] used by tests, `repro serve-bench`, and
//!   `repro serve-chaos`.
//! - [`deadline`] — the per-request soft deadline (thread-local),
//!   checked at phase boundaries; expiry means 503 + `Retry-After`,
//!   never a truncated body.
//! - [`obsplane`] — the request-level observability plane
//!   ([`ObsPlane`]): per-request trace IDs and phase timings, endpoint
//!   latency histograms, and the tail-latency flight recorder behind
//!   `/v1/obs/endpoints` and `/v1/obs/flight`.

pub mod cache;
pub mod deadline;
pub mod http;
pub mod index;
pub mod obsplane;
pub mod registry;
pub mod service;

pub use cache::{TileCache, TileKey, CACHE_SHARDS};
pub use http::{
    route, route_request, serve, Client, DrainReport, HttpResponse, Server, DEFAULT_WORKERS,
};
pub use index::TimelineIndex;
pub use obsplane::{endpoint_class, note_phase, ObsPlane, PhaseTimer, ENDPOINTS, WINDOW_CAPACITY};
pub use registry::{
    App, Limits, Occupancy, RemoveError, TraceEntry, TraceRegistry, UploadError, UploadOutcome,
    DEFAULT_TRACE,
};
pub use service::{fnv1a, TimelineService, MAX_ZOOM};
