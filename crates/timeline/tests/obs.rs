//! End-to-end tests of the request observability plane: a forced-slow
//! request must surface in the flight recorder with its phases
//! accounted for, `/v1/obs/endpoints` must report per-phase
//! percentiles, and — the determinism guard — response bodies must be
//! byte-identical with tracing on or off.

use std::sync::Arc;
use std::time::Duration;

use mpelog::Color;
use pilot_vis::json::Json;
use slog2::{
    Category, CategoryId, CategoryKind, Drawable, FrameTree, Slog2File, StateDrawable, TimeWindow,
    TimelineId,
};
use timeline::{serve, App, Client, TimelineService};

fn test_file() -> Slog2File {
    let mut ds = Vec::new();
    for r in 0..3u32 {
        for i in 0..16 {
            ds.push(Drawable::State(StateDrawable {
                category: CategoryId(0),
                timeline: TimelineId(r),
                start: i as f64,
                end: i as f64 + 0.5,
                nest_level: 0,
                text: String::new(),
            }));
        }
    }
    let range = TimeWindow::new(0.0, 16.0);
    Slog2File {
        timelines: vec!["PI_MAIN".into(), "P1".into(), "P2".into()],
        categories: vec![Category {
            index: CategoryId(0),
            name: "Compute".into(),
            color: Color::GRAY,
            kind: CategoryKind::State,
        }],
        range,
        warnings: vec![],
        tree: FrameTree::build(ds, range.t0, range.t1, 32, 12),
    }
}

fn service() -> TimelineService {
    TimelineService::from_file(test_file())
}

/// The tentpole acceptance: a forced-slow tile request shows up in
/// `/v1/obs/flight` under its client-supplied trace ID, with queue,
/// cache, and render phases whose sum is ≈ the request total.
#[test]
fn slow_request_lands_in_flight_with_phases_summing_to_total() {
    let mut svc = service();
    svc.set_test_tile_delay(Duration::from_millis(40));
    let app = App::single(svc);
    app.enable_tracing();
    let mut server = serve(Arc::clone(&app), "127.0.0.1:0", 2).unwrap();
    let mut client = Client::connect(&format!("127.0.0.1:{}", server.port())).unwrap();

    let (status, _) = client
        .get_traced("/v1/tile?rank=0&zoom=2&tile=1", "slow-tile-req")
        .unwrap();
    assert_eq!(status, 200);
    let (_, flight_body) = client.get("/v1/obs/flight").unwrap();
    server.stop();

    // The dump is valid JSON (Chrome trace-event array form).
    let events = Json::parse(&flight_body).expect("flight dump parses");
    let events = events.as_arr().expect("array form");
    let request_ev = events
        .iter()
        .find(|e| {
            e.get("args")
                .and_then(|a| a.get("trace_id"))
                .and_then(Json::as_str)
                == Some("slow-tile-req")
                && e.get("cat").and_then(Json::as_str) == Some("request")
        })
        .expect("slow request present in flight dump");
    assert_eq!(
        request_ev.get("ph").and_then(Json::as_str),
        Some("X"),
        "complete-event phase"
    );
    let total_us = request_ev.get("dur").and_then(Json::as_u64).unwrap();
    assert!(total_us >= 40_000, "forced 40ms delay, got {total_us}us");

    // Its phase events: the forced delay runs under `render`, and the
    // serving path adds queue/parse/cache/write.
    let phases: Vec<(&str, u64)> = events
        .iter()
        .filter(|e| {
            e.get("cat").and_then(Json::as_str) == Some("phase")
                && e.get("args")
                    .and_then(|a| a.get("trace_id"))
                    .and_then(Json::as_str)
                    == Some("slow-tile-req")
        })
        .map(|e| {
            (
                e.get("name").and_then(Json::as_str).unwrap(),
                e.get("dur").and_then(Json::as_u64).unwrap(),
            )
        })
        .collect();
    let sum_of = |name: &str| -> u64 {
        phases
            .iter()
            .filter(|(n, _)| *n == name)
            .map(|(_, d)| d)
            .sum()
    };
    for required in ["queue", "parse", "cache", "render", "write"] {
        assert!(sum_of(required) > 0, "missing phase {required}: {phases:?}");
    }
    assert!(
        sum_of("render") >= 40_000,
        "the forced delay is render time: {phases:?}"
    );
    // Instrumented phases must explain (almost) the whole request; the
    // uncovered remainder is routing glue. The cache phase overlaps the
    // computing thread's render phase only on single-flight waits, and
    // this request had none, so the phase sum is also bounded above.
    let covered: u64 = phases.iter().map(|(_, d)| d).sum();
    assert!(
        covered >= total_us * 9 / 10,
        "phases {covered}us must cover >=90% of total {total_us}us: {phases:?}"
    );
    assert!(
        covered <= total_us * 11 / 10 + 2_000,
        "phase sum {covered}us cannot exceed total {total_us}us by >10%: {phases:?}"
    );
}

/// `/v1/obs/endpoints` aggregates per-endpoint, per-phase percentiles.
#[test]
fn endpoint_summary_reports_phase_percentiles() {
    let app = App::single(service());
    app.enable_tracing();
    let mut server = serve(Arc::clone(&app), "127.0.0.1:0", 2).unwrap();
    let mut client = Client::connect(&format!("127.0.0.1:{}", server.port())).unwrap();
    for tile in 0..4 {
        let (status, _) = client
            .get(&format!("/v1/tile?rank=0&zoom=3&tile={tile}"))
            .unwrap();
        assert_eq!(status, 200);
    }
    let (_, body) = client.get("/v1/obs/endpoints").unwrap();
    server.stop();

    let v = Json::parse(&body).expect("endpoints json");
    assert_eq!(v.get("enabled").unwrap(), &Json::Bool(true));
    let eps = v.get("endpoints").unwrap().as_arr().unwrap();
    let tile = eps
        .iter()
        .find(|e| e.get("endpoint").and_then(Json::as_str) == Some("tile"))
        .expect("tile endpoint summarized");
    assert_eq!(tile.get("count").unwrap().as_u64().unwrap(), 4);
    assert!(tile.get("p50_us").unwrap().as_f64().unwrap() > 0.0);
    assert!(
        tile.get("p99_us").unwrap().as_f64().unwrap()
            >= tile.get("p50_us").unwrap().as_f64().unwrap()
    );
    let phases = tile.get("phases").unwrap();
    for phase in ["parse", "cache", "index", "render", "write"] {
        let p = phases
            .get(phase)
            .unwrap_or_else(|| panic!("phase {phase} in {body}"));
        assert!(p.get("p99_us").unwrap().as_f64().unwrap() > 0.0, "{phase}");
    }
}

/// The determinism guard: tile and render bodies are byte-identical
/// with tracing enabled and disabled, and untraced responses carry no
/// `X-Trace-Id`.
#[test]
fn responses_are_byte_identical_with_and_without_tracing() {
    let app_off = App::single(service());
    let app_on = App::single(service());
    app_on.enable_tracing();

    let mut server_off = serve(Arc::clone(&app_off), "127.0.0.1:0", 2).unwrap();
    let mut server_on = serve(Arc::clone(&app_on), "127.0.0.1:0", 2).unwrap();
    let mut off = Client::connect(&format!("127.0.0.1:{}", server_off.port())).unwrap();
    let mut on = Client::connect(&format!("127.0.0.1:{}", server_on.port())).unwrap();

    for path in [
        "/v1/tile?rank=0&zoom=2&tile=1",
        "/v1/tile?rank=1&zoom=4&tile=7",
        "/v1/query?t0=1&t1=9&ranks=0,2",
        "/v1/render?backend=svg&width=640",
        "/v1/render?backend=ascii&width=100",
        "/v1/info",
        "/v1/legend",
    ] {
        let (s_off, b_off) = off.get(path).unwrap();
        let (s_on, b_on) = on.get_traced(path, "determinism-probe").unwrap();
        assert_eq!(s_off, s_on, "{path}");
        assert_eq!(b_off, b_on, "{path}: body must not depend on tracing");
        assert!(
            !b_on.contains("determinism-probe"),
            "{path}: trace id leaked into the body"
        );
    }
    // The traced side really did trace.
    assert!(app_on.plane().flight().recorded() > 0);
    assert_eq!(app_off.plane().flight().recorded(), 0);
    server_off.stop();
    server_on.stop();
}

/// Single-flight waits surface in `/v1/stats` when concurrent clients
/// race for the same cold tile.
#[test]
fn stats_expose_singleflight_and_occupancy() {
    let mut svc = service();
    svc.set_test_tile_delay(Duration::from_millis(30));
    let app = App::single(svc);
    let mut server = serve(Arc::clone(&app), "127.0.0.1:0", 4).unwrap();
    let addr = format!("127.0.0.1:{}", server.port());

    let handles: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                c.get("/v1/tile?rank=0&zoom=1&tile=0").unwrap()
            })
        })
        .collect();
    let bodies: Vec<String> = handles
        .into_iter()
        .map(|h| {
            let (status, body) = h.join().unwrap();
            assert_eq!(status, 200);
            body
        })
        .collect();
    assert!(bodies.windows(2).all(|w| w[0] == w[1]));

    let mut probe = Client::connect(&addr).unwrap();
    let (_, stats) = probe.get("/v1/stats").unwrap();
    server.stop();
    let v = Json::parse(&stats).unwrap();
    let n = |k: &str| v.get(k).and_then(Json::as_u64).unwrap_or(0);
    assert_eq!(n("cache_misses"), 1, "{stats}");
    assert!(
        n("cache_singleflight_waits") >= 1,
        "4 racers on one cold 30ms tile must produce waits: {stats}"
    );
    assert_eq!(n("cache_hits") + 1, 4, "{stats}");
    assert_eq!(n("cache_entries"), 1);
    assert_eq!(n("cache_shard_occupancy_high"), 1);
    let occ = v.get("cache_shard_occupancy").unwrap().as_arr().unwrap();
    assert_eq!(occ.len(), timeline::CACHE_SHARDS);
}
