//! Integration tests of the hardened server: per-request deadlines
//! surfacing as 503 + `Retry-After` with the dying phase visible in the
//! flight recorder, registry occupancy in `/v1/stats`, and — the fuzz
//! backstop — arbitrary byte garbage at the socket never killing a
//! worker: every outcome is a well-formed 4xx/5xx or a clean close,
//! and the server keeps serving.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use mpelog::Color;
use pilot_vis::json::Json;
use proptest::prelude::*;
use slog2::{
    Category, CategoryId, CategoryKind, Drawable, FrameTree, Slog2File, StateDrawable, TimeWindow,
    TimelineId,
};
use timeline::{serve, App, Client, Limits, TimelineService};

fn test_file(ranks: u32, states: usize) -> Slog2File {
    let mut ds = Vec::new();
    for r in 0..ranks {
        for i in 0..states {
            ds.push(Drawable::State(StateDrawable {
                category: CategoryId(0),
                timeline: TimelineId(r),
                start: i as f64,
                end: i as f64 + 0.5,
                nest_level: 0,
                text: String::new(),
            }));
        }
    }
    let range = TimeWindow::new(0.0, states as f64);
    Slog2File {
        timelines: (0..ranks)
            .map(|r| {
                if r == 0 {
                    "PI_MAIN".into()
                } else {
                    format!("P{r}")
                }
            })
            .collect(),
        categories: vec![Category {
            index: CategoryId(0),
            name: "Compute".into(),
            color: Color::GRAY,
            kind: CategoryKind::State,
        }],
        range,
        warnings: vec![],
        tree: FrameTree::build(ds, range.t0, range.t1, 16, 8),
    }
}

/// The satellite acceptance: a request that blows its deadline answers
/// 503 with `Retry-After`, its flight trace shows which phase it died
/// in, the compute still warmed the cache (so the retry is admitted),
/// and the worker goes on serving.
#[test]
fn deadline_exceeded_is_503_with_flight_evidence_and_warm_retry() {
    let mut svc = TimelineService::from_file(test_file(2, 8));
    svc.set_test_tile_delay(Duration::from_millis(60));
    let limits = Limits {
        deadline: Duration::from_millis(25),
        ..Limits::default()
    };
    let app = Arc::new(App::new(svc, limits));
    app.enable_tracing();
    let mut server = serve(Arc::clone(&app), "127.0.0.1:0", 2).unwrap();
    let mut client = Client::connect(&format!("127.0.0.1:{}", server.port())).unwrap();

    // First hit: cold tile, 60ms forced compute under a 25ms deadline.
    let resp = client
        .send(
            "GET",
            "/v1/tile?rank=0&zoom=2&tile=1",
            &[("X-Trace-Id", "deadline-victim")],
            None,
        )
        .unwrap();
    assert_eq!(resp.status, 503, "{}", resp.body);
    assert_eq!(resp.header("retry-after"), Some("1"));

    // The flight recorder names the phase the request died in: the
    // forced delay runs under `render` (inside the cache-miss compute),
    // so the victim's trace must carry cache and render phase spans.
    let (_, flight) = client.get("/v1/obs/flight").unwrap();
    let events = Json::parse(&flight).unwrap();
    let events = events.as_arr().unwrap();
    let victim = events
        .iter()
        .find(|e| {
            e.get("cat").and_then(Json::as_str) == Some("request")
                && e.get("args")
                    .and_then(|a| a.get("trace_id"))
                    .and_then(Json::as_str)
                    == Some("deadline-victim")
        })
        .expect("timed-out request lands in the flight recorder");
    assert_eq!(
        victim
            .get("args")
            .and_then(|a| a.get("status"))
            .and_then(Json::as_u64),
        Some(503)
    );
    let victim_phases: Vec<&str> = events
        .iter()
        .filter(|e| {
            e.get("cat").and_then(Json::as_str) == Some("phase")
                && e.get("args")
                    .and_then(|a| a.get("trace_id"))
                    .and_then(Json::as_str)
                    == Some("deadline-victim")
        })
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    assert!(
        victim_phases.contains(&"render"),
        "the dying phase must be visible: {victim_phases:?}"
    );

    // The same worker pool keeps serving...
    let (status, _) = client.get("/v1/info").unwrap();
    assert_eq!(status, 200);
    // ...and the late compute warmed the cache: the retry now fits the
    // 25ms deadline and is admitted.
    let retry = client.get_full("/v1/tile?rank=0&zoom=2&tile=1").unwrap();
    assert_eq!(retry.status, 200, "{}", retry.body);
    assert!(!retry.body.is_empty());
    server.stop();
}

/// `/v1/stats` reports registry occupancy alongside the cache counters.
#[test]
fn stats_report_registry_occupancy() {
    let app = App::single(TimelineService::from_file(test_file(1, 4)));
    let (status, _, stats) = timeline::route(&app, "/v1/stats");
    assert_eq!(status, 200);
    let v = Json::parse(&stats).unwrap();
    let reg = v.get("registry").expect("registry occupancy in stats");
    assert_eq!(reg.get("traces").and_then(Json::as_u64), Some(1));
    assert!(reg.get("bytes").and_then(Json::as_u64).unwrap() > 0);
    assert!(reg.get("budget_bytes").and_then(Json::as_u64).unwrap() > 0);
    assert_eq!(reg.get("evictions").and_then(Json::as_u64), Some(0));
}

/// One shared server for the whole fuzz run: the point is precisely
/// that state (a worker that just ate garbage) carries over to the next
/// case, so a leaked-thread or poisoned-lock bug compounds and shows.
fn fuzz_server() -> (u16, &'static Arc<App>) {
    static SERVER: OnceLock<(u16, Arc<App>)> = OnceLock::new();
    let (port, app) = SERVER.get_or_init(|| {
        let app = App::single(TimelineService::from_file(test_file(2, 6)));
        let server = serve(Arc::clone(&app), "127.0.0.1:0", 2).unwrap();
        let port = server.port();
        // Leak the server on purpose: it must outlive every proptest
        // case, and the process exit reaps the threads.
        std::mem::forget(server);
        (port, app)
    });
    (*port, app)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary bytes at the socket never panic a worker and never get
    /// a 2xx: the connection either closes cleanly or answers a
    /// well-formed 4xx/5xx — and the server still serves real clients.
    #[test]
    fn byte_garbage_never_kills_the_worker(
        garbage in proptest::collection::vec(any::<u8>(), 0..1500),
    ) {
        let (port, app) = fuzz_server();
        let addr = format!("127.0.0.1:{port}");
        let mut s = TcpStream::connect(&addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.write_all(&garbage).unwrap();
        s.shutdown(Shutdown::Write).unwrap();
        let mut resp = Vec::new();
        let _ = s.read_to_end(&mut resp);
        if !resp.is_empty() {
            let line = resp.split(|&b| b == b'\n').next().unwrap_or(&resp);
            let line = String::from_utf8_lossy(line);
            prop_assert!(
                line.starts_with("HTTP/1.1 4") || line.starts_with("HTTP/1.1 5"),
                "garbage must never be admitted: {line:?}"
            );
        }
        drop(s);

        // No worker died, and the pool still answers.
        prop_assert_eq!(
            app.obs_handle().snapshot().counter("serve.http.worker_panic"),
            0
        );
        let mut probe = Client::connect(&addr).unwrap();
        let (status, _) = probe.get("/v1/info").unwrap();
        prop_assert_eq!(status, 200);
    }
}
