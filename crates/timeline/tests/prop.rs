//! Property tests for the timeline query service: the per-rank index
//! and the tile cache must be invisible — every answer byte-identical
//! to what a brute-force scan of the raw drawable list produces.

use mpelog::Color;
use proptest::prelude::*;
use slog2::{
    ArrowDrawable, Category, CategoryId, CategoryKind, Drawable, EventDrawable, FrameTree, Query,
    Slog2File, StateDrawable, TimeWindow, TimelineId,
};
use timeline::{TimelineIndex, TimelineService};

const T_MAX: f64 = 100.0;
const NRANKS: u32 = 4;

fn arb_drawable() -> impl Strategy<Value = Drawable> {
    prop_oneof![
        (0u32..3, 0u32..NRANKS, 0f64..90.0, 0f64..8.0).prop_map(|(cat, tl, start, dur)| {
            Drawable::State(StateDrawable {
                category: CategoryId(cat),
                timeline: TimelineId(tl),
                start,
                end: start + dur,
                nest_level: 0,
                text: String::new(),
            })
        }),
        (0u32..NRANKS, 0f64..T_MAX).prop_map(|(tl, t)| {
            Drawable::Event(EventDrawable {
                category: CategoryId(3),
                timeline: TimelineId(tl),
                time: t,
                text: String::new(),
            })
        }),
        (
            0u32..NRANKS,
            0u32..NRANKS,
            0f64..90.0,
            0f64..8.0,
            0u32..100,
            1u32..4096
        )
            .prop_map(|(from, to, start, dur, tag, size)| {
                Drawable::Arrow(ArrowDrawable {
                    category: CategoryId(4),
                    from_timeline: TimelineId(from),
                    to_timeline: TimelineId(to),
                    start,
                    end: start + dur,
                    tag,
                    size,
                })
            }),
    ]
}

fn file(ds: Vec<Drawable>) -> Slog2File {
    let kinds = [
        ("Compute", CategoryKind::State, Color::GRAY),
        ("PI_Read", CategoryKind::State, Color::GREEN),
        ("PI_Write", CategoryKind::State, Color::STEEL_BLUE),
        ("msg arrival", CategoryKind::Event, Color::YELLOW),
        ("message", CategoryKind::Arrow, Color::WHITE),
    ];
    Slog2File {
        timelines: (0..NRANKS).map(|r| format!("P{r}")).collect(),
        categories: kinds
            .iter()
            .enumerate()
            .map(|(i, (name, kind, color))| Category {
                index: CategoryId(i as u32),
                name: (*name).into(),
                color: *color,
                kind: *kind,
            })
            .collect(),
        range: TimeWindow::new(0.0, T_MAX),
        warnings: vec![],
        tree: FrameTree::build(ds, 0.0, T_MAX, 16, 12),
    }
}

fn sorted_dbg(ds: &[&Drawable]) -> Vec<String> {
    let mut v: Vec<String> = ds.iter().map(|d| format!("{d:?}")).collect();
    v.sort();
    v
}

proptest! {
    /// The index answers any window exactly like a naive filter over
    /// the flat drawable list — states, events, and arrows alike.
    #[test]
    fn index_query_equals_naive_filter(
        ds in proptest::collection::vec(arb_drawable(), 0..250),
        a in 0f64..T_MAX,
        span in 0f64..60.0,
    ) {
        let f = file(ds.clone());
        let idx = TimelineIndex::build(&f);
        let w = TimeWindow::new(a, a + span);
        let want: Vec<&Drawable> = ds.iter().filter(|d| w.overlaps(d)).collect();
        prop_assert_eq!(sorted_dbg(&idx.drawables_in(w)), sorted_dbg(&want));
        prop_assert_eq!(idx.preview_in(w).entries.iter().map(|e| e.count).sum::<u64>(),
                        want.len() as u64);
    }

    /// Per-rank queries partition the naive filter by timeline; arrow
    /// queries match either endpoint.
    #[test]
    fn rank_queries_equal_naive_rank_filter(
        ds in proptest::collection::vec(arb_drawable(), 0..250),
        a in 0f64..T_MAX,
        span in 0f64..60.0,
        rank in 0u32..NRANKS,
    ) {
        let f = file(ds.clone());
        let idx = TimelineIndex::build(&f);
        let w = TimeWindow::new(a, a + span);
        let want: Vec<&Drawable> = ds
            .iter()
            .filter(|d| w.overlaps(d))
            .filter(|d| match d {
                Drawable::State(s) => s.timeline.as_u32() == rank,
                Drawable::Event(e) => e.timeline.as_u32() == rank,
                Drawable::Arrow(_) => false,
            })
            .collect();
        prop_assert_eq!(sorted_dbg(&idx.rank_drawables(rank, w)), sorted_dbg(&want));
        prop_assert_eq!(idx.rank_count(rank, w), want.len());
        let want_arrows = ds
            .iter()
            .filter(|d| w.overlaps(d))
            .filter(|d| matches!(d, Drawable::Arrow(x)
                if x.from_timeline.as_u32() == rank || x.to_timeline.as_u32() == rank))
            .count();
        prop_assert_eq!(idx.rank_arrows(rank, w).len(), want_arrows);
    }

    /// A cache hit returns the byte-identical body a cold service
    /// computes for the same tile — the cache is invisible.
    #[test]
    fn cached_tiles_are_byte_identical_to_cold_queries(
        ds in proptest::collection::vec(arb_drawable(), 0..150),
        zoom in 0u8..6,
        tile_seed in 0u32..64,
        rank in 0u32..NRANKS,
    ) {
        let tile = tile_seed % (1u32 << zoom);
        let warm_svc = TimelineService::from_file(file(ds.clone()));
        let cold_svc = TimelineService::from_file(file(ds));
        let first = warm_svc.tile_json(rank, zoom, tile).unwrap();
        let second = warm_svc.tile_json(rank, zoom, tile).unwrap();
        prop_assert_eq!(&*first, &*second);
        // An entirely separate service (its own empty cache) computes
        // the same bytes from scratch.
        let cold = cold_svc.tile_json(rank, zoom, tile).unwrap();
        prop_assert_eq!(&*first, &*cold);
        // And the tile body is exactly the uncached window query.
        let w = warm_svc.tile_window(zoom, tile).unwrap();
        prop_assert_eq!(&*first, &warm_svc.query_json(w, Some(&[rank])));
    }

    /// The HTTP route layer adds nothing: a routed query body equals
    /// the in-process call with the same parameters.
    #[test]
    fn routed_queries_equal_in_process_calls(
        ds in proptest::collection::vec(arb_drawable(), 0..150),
        a in 0f64..T_MAX,
        span in 0f64..60.0,
        rank in 0u32..NRANKS,
    ) {
        let app = timeline::App::single(TimelineService::from_file(file(ds)));
        let svc = app.registry().default_trace();
        let w = TimeWindow::new(a, a + span);
        let (status, _, body) =
            timeline::route(&app, &format!("/v1/query?t0={}&t1={}&ranks={rank}", w.t0, w.t1));
        prop_assert_eq!(status, 200);
        prop_assert_eq!(body, svc.service.query_json(w, Some(&[rank])));
        let (status, _, tile) = timeline::route(&app, "/v1/tile?rank=0&zoom=3&tile=2");
        prop_assert_eq!(status, 200);
        prop_assert_eq!(&tile, &*svc.service.tile_json(0, 3, 2).unwrap());
    }
}
