//! Property tests: viewport arithmetic, popup substitution, and
//! renderer robustness over random logs.

use jumpshot::popup::{correct_display, is_workaround_safe, jumpshot_display, InfoArg};
use jumpshot::{RenderOptions, Renderer, SvgRenderer, Viewport};
use mpelog::Color;
use proptest::prelude::*;
use slog2::{
    Category, CategoryId, CategoryKind, Drawable, EventDrawable, FrameTree, Slog2File,
    StateDrawable, TimeWindow, TimelineId,
};

proptest! {
    #[test]
    fn viewport_time_pixel_roundtrip(
        t0 in -1e3f64..1e3,
        span in 1e-6f64..1e3,
        width in 1u32..4000,
        frac in 0f64..1.0,
    ) {
        let vp = Viewport::new(t0, t0 + span, width);
        let t = t0 + span * frac;
        let back = vp.t_of(vp.x_of(t));
        prop_assert!((back - t).abs() < span * 1e-9 + 1e-12);
    }

    #[test]
    fn zoom_preserves_center_pixel(
        t0 in -100f64..100.0,
        span in 1e-3f64..100.0,
        factor in 0.1f64..10.0,
        frac in 0.0f64..1.0,
    ) {
        let vp = Viewport::new(t0, t0 + span, 1000);
        let center = t0 + span * frac;
        let z = vp.zoom(factor, center);
        prop_assert!((z.span() - span / factor).abs() < 1e-9 * span);
        prop_assert!((z.x_of(center) - vp.x_of(center)).abs() < 1e-6);
    }

    #[test]
    fn zoom_in_then_out_is_identity(
        t0 in -100f64..100.0,
        span in 1e-3f64..100.0,
        factor in 0.5f64..4.0,
        frac in 0.0f64..1.0,
    ) {
        let vp = Viewport::new(t0, t0 + span, 800);
        let center = t0 + span * frac;
        let back = vp.zoom(factor, center).zoom(1.0 / factor, center);
        prop_assert!((back.t0 - vp.t0).abs() < 1e-9 * (1.0 + span));
        prop_assert!((back.t1 - vp.t1).abs() < 1e-9 * (1.0 + span));
    }

    #[test]
    fn clamp_stays_inside_bounds(
        t0 in -200f64..200.0,
        span in 1e-3f64..100.0,
        lo in -100f64..0.0,
        hi_extra in 1e-3f64..200.0,
    ) {
        let hi = lo + hi_extra;
        let c = Viewport::new(t0, t0 + span, 100).clamp_to(TimeWindow::new(lo, hi));
        prop_assert!(c.t0 >= lo - 1e-9);
        prop_assert!(c.t1 <= hi + 1e-9);
        prop_assert!(c.span() <= span + 1e-9);
    }

    #[test]
    fn literal_prefix_templates_always_display_correctly(
        prefix in "[a-zA-Z][a-zA-Z ]{0,10}",
        n in any::<i64>(),
    ) {
        let template = format!("{prefix}: %d");
        prop_assert!(is_workaround_safe(&template));
        let args = [InfoArg::Int(n)];
        prop_assert_eq!(
            jumpshot_display(&template, &args),
            correct_display(&template, &args)
        );
    }

    #[test]
    fn substitution_first_templates_are_garbled(
        suffix in "[a-z]{1,10}",
        n in any::<i64>(),
    ) {
        let template = format!("%d {suffix}");
        prop_assert!(!is_workaround_safe(&template));
        let args = [InfoArg::Int(n)];
        let buggy = jumpshot_display(&template, &args);
        let right = correct_display(&template, &args);
        prop_assert_ne!(&buggy, &right);
        // The bug loses no information, just order.
        prop_assert!(buggy.contains(&suffix));
        prop_assert!(buggy.contains(&n.to_string()));
    }
}

/// Minimal XML tag-balance check: every opened element is closed in
/// LIFO order; `<x ... />` self-closes.
fn xml_balanced(doc: &str) -> bool {
    let mut stack: Vec<String> = Vec::new();
    let bytes = doc.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'<' {
            i += 1;
            continue;
        }
        let close = bytes.get(i + 1) == Some(&b'/');
        let name_start = if close { i + 2 } else { i + 1 };
        let mut j = name_start;
        while j < bytes.len() && (bytes[j] as char).is_ascii_alphanumeric() {
            j += 1;
        }
        let name = doc[name_start..j].to_string();
        // Find the end of this tag.
        let mut k = j;
        while k < bytes.len() && bytes[k] != b'>' {
            k += 1;
        }
        if k >= bytes.len() {
            return false;
        }
        let self_closing = bytes[k - 1] == b'/';
        if close {
            if stack.pop().as_deref() != Some(name.as_str()) {
                return false;
            }
        } else if !self_closing {
            stack.push(name);
        }
        i = k + 1;
    }
    stack.is_empty()
}

fn arb_file() -> impl Strategy<Value = Slog2File> {
    proptest::collection::vec(
        prop_oneof![
            (0u32..2, 0u32..3, 0f64..10.0, 0f64..1.0).prop_map(|(cat, tl, s, d)| {
                Drawable::State(StateDrawable {
                    category: CategoryId(cat),
                    timeline: TimelineId(tl),
                    start: s,
                    end: s + d,
                    nest_level: 0,
                    text: "Line: 1".into(),
                })
            }),
            (0u32..3, 0f64..11.0).prop_map(|(tl, t)| {
                Drawable::Event(EventDrawable {
                    category: CategoryId(2),
                    timeline: TimelineId(tl),
                    time: t,
                    text: String::new(),
                })
            }),
        ],
        0..120,
    )
    .prop_map(|ds| {
        let categories = vec![
            Category {
                index: CategoryId(0),
                name: "PI_Read".into(),
                color: Color::RED,
                kind: CategoryKind::State,
            },
            Category {
                index: CategoryId(1),
                name: "PI_Write".into(),
                color: Color::GREEN,
                kind: CategoryKind::State,
            },
            Category {
                index: CategoryId(2),
                name: "tick".into(),
                color: Color::YELLOW,
                kind: CategoryKind::Event,
            },
        ];
        Slog2File {
            timelines: vec!["PI_MAIN".into(), "P1".into(), "P2".into()],
            categories,
            range: TimeWindow::new(0.0, 11.0),
            warnings: vec![],
            tree: FrameTree::build(ds, 0.0, 11.0, 8, 10),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn renderer_output_is_well_formed_svg(
        file in arb_file(),
        w0 in 0f64..11.0,
        span in 1e-3f64..11.0,
        width in 50u32..2000,
    ) {
        let opts = RenderOptions::default()
            .with_window(TimeWindow::new(w0, w0 + span))
            .with_width(width);
        let svg = SvgRenderer.render(&file, &opts);
        prop_assert!(svg.starts_with("<svg"));
        prop_assert!(svg.ends_with("</svg>\n"));
        prop_assert!(xml_balanced(&svg), "unbalanced tags");
        // Determinism.
        prop_assert_eq!(SvgRenderer.render(&file, &opts), svg);
    }

    #[test]
    fn search_never_returns_out_of_window_matches(
        file in arb_file(),
        from in 0f64..11.0,
    ) {
        let q = jumpshot::SearchQuery::default();
        if let Some(d) = jumpshot::find_next(&file, from, &q) {
            prop_assert!(d.start() > from);
        }
        if let Some(d) = jumpshot::find_prev(&file, from, &q) {
            prop_assert!(d.start() < from);
        }
    }
}
