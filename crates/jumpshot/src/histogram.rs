//! The duration-statistics view.
//!
//! Jumpshot "can also draw a picture from user-selected duration which
//! allows for ease of data analysis on the statistics of a logfile. For
//! example, it enables easy detection of load imbalance across
//! processes among timelines." This module reproduces that histogram
//! window: for a selected `[t0, t1]`, per-timeline stacked bars of each
//! category's clipped state coverage, rendered to SVG and available as
//! data for tests and analyses.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use slog2::{CategoryId, Drawable, Slog2File, TimeWindow, TimelineId};

use crate::render::RenderOptions;

/// One timeline's per-category coverage within the selected duration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimelineHistogram {
    /// `category index -> clipped seconds` (states only).
    pub coverage: BTreeMap<CategoryId, f64>,
}

impl TimelineHistogram {
    /// Total covered seconds on this timeline.
    pub fn total(&self) -> f64 {
        self.coverage.values().sum()
    }
}

/// Compute the per-timeline, per-category state coverage clipped to
/// the window `w`.
pub fn duration_stats(file: &Slog2File, w: TimeWindow) -> BTreeMap<TimelineId, TimelineHistogram> {
    let mut out: BTreeMap<TimelineId, TimelineHistogram> = BTreeMap::new();
    for tl in file.timeline_ids() {
        out.insert(tl, TimelineHistogram::default());
    }
    for d in file.tree.query(w) {
        if let Drawable::State(s) = d {
            let clipped = w.clip_span(s.start, s.end);
            if clipped > 0.0 {
                *out.entry(s.timeline)
                    .or_default()
                    .coverage
                    .entry(s.category)
                    .or_insert(0.0) += clipped;
            }
        }
    }
    out
}

/// The load-imbalance indicator the paper mentions: the ratio between
/// the busiest and the least-busy timeline's coverage of `category`
/// within the window (1.0 = perfectly balanced; `f64::INFINITY` when a
/// timeline has none). Timelines listed in `among` only.
pub fn load_imbalance(
    file: &Slog2File,
    category: CategoryId,
    among: &[TimelineId],
    w: TimeWindow,
) -> f64 {
    let stats = duration_stats(file, w);
    let loads: Vec<f64> = among
        .iter()
        .map(|tl| {
            stats
                .get(tl)
                .and_then(|h| h.coverage.get(&category))
                .copied()
                .unwrap_or(0.0)
        })
        .collect();
    let max = loads.iter().cloned().fold(0.0f64, f64::max);
    let min = loads.iter().cloned().fold(f64::INFINITY, f64::min);
    if min <= 0.0 {
        if max <= 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        max / min
    }
}

pub(crate) fn histogram_string(file: &Slog2File, w: TimeWindow, opts: &RenderOptions) -> String {
    let width_px = opts.width.max(1);
    let overlay = opts.overlay.as_ref();
    let (t0, t1) = (w.t0, w.t1);
    let stats = duration_stats(file, w);
    let row_h = 24.0;
    let gutter = 90.0;
    let bar_w = width_px as f64 - gutter - 80.0;
    let height = stats.len() as f64 * row_h + 30.0;
    let max_total = stats
        .values()
        .map(TimelineHistogram::total)
        .fold(1e-12, f64::max);

    let mut svg = String::new();
    let _ = write!(
        svg,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{height}\" \
         viewBox=\"0 0 {w} {height}\" font-family=\"monospace\" font-size=\"11\">\n\
         <rect x=\"0\" y=\"0\" width=\"{w}\" height=\"{height}\" fill=\"#101018\"/>\n\
         <text x=\"4\" y=\"14\" fill=\"#ddd\">Duration statistics [{t0:.6}s, {t1:.6}s]</text>\n",
        w = width_px
    );
    for (i, (tl, hist)) in stats.iter().enumerate() {
        let y = 22.0 + i as f64 * row_h;
        // Two-lane layouts get a divider above the "after" lane.
        if opts.lane_split == Some(i as u32) && i > 0 {
            let _ = writeln!(
                svg,
                "<line x1=\"0\" y1=\"{ly:.2}\" x2=\"{w}\" y2=\"{ly:.2}\" stroke=\"#ff9800\" \
                 stroke-width=\"1.5\" stroke-dasharray=\"8 4\" class=\"lane-split\"/>",
                ly = y - 2.0,
                w = width_px
            );
        }
        let name = file.timeline_name(*tl).unwrap_or("?");
        let _ = writeln!(
            svg,
            "<text x=\"4\" y=\"{ty}\" fill=\"#ddd\">{name}</text>",
            ty = y + row_h / 2.0 + 4.0
        );
        let mut x = gutter;
        for (cat, secs) in &hist.coverage {
            let wpx = secs / max_total * bar_w;
            let color = file
                .category(*cat)
                .map(|c| c.color.to_hex())
                .unwrap_or_else(|| "#888888".into());
            let cname = file.category(*cat).map(|c| c.name.as_str()).unwrap_or("?");
            let _ = writeln!(
                svg,
                "<rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{wpx:.2}\" height=\"{h:.2}\" \
                 fill=\"{color}\" class=\"histbar\"><title>{cname}: {secs:.6}s</title></rect>",
                h = row_h - 6.0
            );
            x += wpx;
        }
        let crit = overlay.map(|ov| ov.seconds_on(*tl, t0, t1)).unwrap_or(0.0);
        let note = opts
            .row_note(*tl)
            .map(|n| format!(" {}", crate::render::esc(n)))
            .unwrap_or_default();
        if crit > 0.0 {
            let _ = writeln!(
                svg,
                "<text x=\"{tx:.2}\" y=\"{ty}\" fill=\"#ff4081\" class=\"critical-path\">\
                 {total:.4}s (crit {crit:.4}s){note}</text>",
                tx = x + 6.0,
                ty = y + row_h / 2.0 + 4.0,
                total = hist.total()
            );
        } else {
            let _ = writeln!(
                svg,
                "<text x=\"{tx:.2}\" y=\"{ty}\" fill=\"#aaa\">{total:.4}s{note}</text>",
                tx = x + 6.0,
                ty = y + row_h / 2.0 + 4.0,
                total = hist.total()
            );
        }
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::PathOverlay;
    use mpelog::Color;
    use slog2::{Category, CategoryKind, FrameTree, StateDrawable};

    fn file() -> Slog2File {
        let categories = vec![
            Category {
                index: CategoryId(0),
                name: "Compute".into(),
                color: Color::GRAY,
                kind: CategoryKind::State,
            },
            Category {
                index: CategoryId(1),
                name: "PI_Read".into(),
                color: Color::RED,
                kind: CategoryKind::State,
            },
        ];
        let ds = vec![
            Drawable::State(StateDrawable {
                category: CategoryId(0),
                timeline: TimelineId(0),
                start: 0.0,
                end: 10.0,
                nest_level: 0,
                text: String::new(),
            }),
            Drawable::State(StateDrawable {
                category: CategoryId(0),
                timeline: TimelineId(1),
                start: 0.0,
                end: 4.0,
                nest_level: 0,
                text: String::new(),
            }),
            Drawable::State(StateDrawable {
                category: CategoryId(1),
                timeline: TimelineId(1),
                start: 4.0,
                end: 6.0,
                nest_level: 0,
                text: String::new(),
            }),
        ];
        Slog2File {
            timelines: vec!["PI_MAIN".into(), "P1".into()],
            categories,
            range: TimeWindow::new(0.0, 10.0),
            warnings: vec![],
            tree: FrameTree::build(ds, 0.0, 10.0, 8, 8),
        }
    }

    #[test]
    fn duration_stats_clip_to_window() {
        let stats = duration_stats(&file(), TimeWindow::new(2.0, 5.0));
        // Timeline 0: Compute clipped to [2,5] = 3s.
        assert!((stats[&TimelineId(0)].coverage[&CategoryId(0)] - 3.0).abs() < 1e-12);
        // Timeline 1: Compute [2,4] = 2s, Read [4,5] = 1s.
        assert!((stats[&TimelineId(1)].coverage[&CategoryId(0)] - 2.0).abs() < 1e-12);
        assert!((stats[&TimelineId(1)].coverage[&CategoryId(1)] - 1.0).abs() < 1e-12);
        assert!((stats[&TimelineId(1)].total() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn full_window_matches_raw_durations() {
        let stats = duration_stats(&file(), TimeWindow::new(0.0, 10.0));
        assert!((stats[&TimelineId(0)].coverage[&CategoryId(0)] - 10.0).abs() < 1e-12);
        assert!((stats[&TimelineId(1)].coverage[&CategoryId(0)] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_detects_uneven_compute() {
        let f = file();
        let both = [TimelineId(0), TimelineId(1)];
        // Compute: 10s on timeline 0 vs 4s on timeline 1 -> 2.5x.
        let imb = load_imbalance(&f, CategoryId(0), &both, TimeWindow::new(0.0, 10.0));
        assert!((imb - 2.5).abs() < 1e-12);
        // Reads: only timeline 1 has any -> infinite imbalance vs 0.
        assert!(load_imbalance(&f, CategoryId(1), &both, TimeWindow::new(0.0, 10.0)).is_infinite());
        // Nobody has category 99 -> balanced by convention.
        assert_eq!(
            load_imbalance(&f, CategoryId(99), &both, TimeWindow::new(0.0, 10.0)),
            1.0
        );
    }

    #[test]
    fn histogram_svg_contains_bars_and_labels() {
        let opts = RenderOptions::default().with_width(800);
        let svg = histogram_string(&file(), TimeWindow::new(0.0, 10.0), &opts);
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("class=\"histbar\""));
        assert!(svg.contains("PI_MAIN"));
        assert!(svg.contains("Compute: 10.000000s"));
        assert!(svg.contains("#808080"));
    }

    #[test]
    fn empty_window_renders_without_bars() {
        let opts = RenderOptions::default().with_width(800);
        let svg = histogram_string(&file(), TimeWindow::new(20.0, 30.0), &opts);
        assert!(!svg.contains("class=\"histbar\""));
    }

    #[test]
    fn lane_split_and_row_notes_annotate_histogram() {
        let opts = RenderOptions::default()
            .with_width(800)
            .with_lane_split(1)
            .with_row_notes(vec![(TimelineId(1), "Δ +2.0s".to_string())]);
        let svg = histogram_string(&file(), TimeWindow::new(0.0, 10.0), &opts);
        assert_eq!(svg.matches("class=\"lane-split\"").count(), 1, "{svg}");
        assert!(svg.contains("Δ +2.0s"), "{svg}");
    }

    #[test]
    fn overlay_annotates_critical_seconds_per_row() {
        let ov = PathOverlay {
            segments: vec![(TimelineId(0), 0.0, 7.5)],
            hops: vec![],
            dim_others: false,
        };
        let opts = RenderOptions::default().with_width(800).with_overlay(ov);
        let svg = histogram_string(&file(), TimeWindow::new(0.0, 10.0), &opts);
        // Timeline 0 carries 7.5s of the critical path; timeline 1 none.
        assert!(svg.contains("(crit 7.5000s)"), "{svg}");
        assert_eq!(svg.matches("(crit ").count(), 1, "{svg}");
    }
}
