//! Plain-text timeline rendering.
//!
//! The course this tool serves is taught over SSH as often as not; a
//! text view of the same timelines makes the visual log usable in a
//! terminal, a CI log, or a unit-test assertion. One row per timeline;
//! each column is a time bucket showing the dominant state's letter
//! (from the legend name), `*` for solo events, with message arrows
//! listed below the chart.
//!
//! ```text
//! PI_MAIN |CCCCWWRRCC......|
//! P1      |CC..RRRRWWCC....|
//! arrows: 0->1 @0.000113s, 1->0 @0.000151s
//! ```

use std::fmt::Write as _;

use slog2::{Drawable, Slog2File, TimeWindow, TimelineId};

use crate::render::RenderOptions;
use crate::viewport::Viewport;

// The cell-painting loop indexes a clamped column range of a 2-D grid;
// a slice iterator would need the same bounds arithmetic, less clearly.
#[allow(clippy::needless_range_loop)]
pub(crate) fn ascii_string(file: &Slog2File, w: TimeWindow, opts: &RenderOptions) -> String {
    let (t0, t1) = (w.t0, w.t1);
    let show_arrows = opts.show_arrows;
    let max_arrows = opts.max_arrows;
    let width = (opts.width as usize).max(8);
    let vp = Viewport::new(t0, t1.max(t0 + f64::MIN_POSITIVE), width as u32);
    let ntl = file.timelines.len();
    let label_w = file
        .timelines
        .iter()
        .map(String::len)
        .max()
        .unwrap_or(2)
        .min(16);

    // cells[tl][col] = (best coverage, letter)
    let mut cells = vec![vec![(0.0f64, ' '); width]; ntl];
    let mut arrows: Vec<(f64, TimelineId, TimelineId)> = Vec::new();

    for d in file.tree.query(w) {
        match d {
            Drawable::State(s) => {
                if s.timeline.as_usize() >= ntl {
                    continue;
                }
                let letter = file
                    .categories
                    .get(s.category.as_usize())
                    .and_then(|c| {
                        // Use the distinguishing letter of the Pilot name:
                        // "PI_Read" -> 'R', "Compute" -> 'C'.
                        c.name.strip_prefix("PI_").unwrap_or(&c.name).chars().next()
                    })
                    .unwrap_or('?');
                let c0 = vp.x_of(s.start.max(t0)).floor().max(0.0) as usize;
                let c1 = (vp.x_of(s.end.min(t1)).ceil() as usize).min(width);
                for col in c0..c1.max(c0 + 1).min(width) {
                    // Dominant = innermost (higher nest wins ties via
                    // coverage-per-cell comparison with small bias).
                    let cov = (s.end - s.start) / (1.0 + s.nest_level as f64 * 0.0)
                        + s.nest_level as f64 * 1e9;
                    let cell = &mut cells[s.timeline.as_usize()][col];
                    if cov >= cell.0 {
                        *cell = (cov, letter);
                    }
                }
            }
            Drawable::Event(e) => {
                if e.timeline.as_usize() >= ntl {
                    continue;
                }
                let col = vp.x_of(e.time).floor().max(0.0) as usize;
                if col < width {
                    cells[e.timeline.as_usize()][col] = (f64::INFINITY, '*');
                }
            }
            Drawable::Arrow(a) => arrows.push((a.start, a.from_timeline, a.to_timeline)),
        }
    }

    let overlay = opts.overlay.as_ref();
    let col_span = (t1 - t0) / width as f64;
    let mut out = String::new();
    for (tl, name) in file.timelines.iter().enumerate() {
        // Two-lane layouts get a ruled separator above the "after" lane.
        if opts.lane_split == Some(tl as u32) && tl > 0 {
            let _ = writeln!(out, "{:=<rule$}", "", rule = label_w + 2 + width + 1);
        }
        let short: String = name.chars().take(label_w).collect();
        let _ = write!(out, "{short:<label_w$} |");
        for (col, &(_, ch)) in cells[tl].iter().enumerate() {
            let mut ch = if ch == ' ' { '.' } else { ch };
            // With a dimming overlay, off-path cells drop to lowercase
            // so the critical path stays the loudest thing on screen.
            if let Some(ov) = overlay {
                let c0 = t0 + col as f64 * col_span;
                if ov.dim_others && !ov.on_path(TimelineId(tl as u32), c0, c0 + col_span) {
                    ch = ch.to_ascii_lowercase();
                }
            }
            out.push(ch);
        }
        out.push('|');
        if let Some(note) = opts.row_note(TimelineId(tl as u32)) {
            let _ = write!(out, " {note}");
        }
        out.push('\n');
    }
    if let Some(ov) = overlay {
        let _ = writeln!(
            out,
            "critical path: {} segment(s), {} hop(s)",
            ov.segments.len(),
            ov.hops.len()
        );
        for &(tl, s0, s1) in &ov.segments {
            let name = file.timeline_name(tl).unwrap_or("?");
            let _ = writeln!(out, "  {name} [{s0:.6}s, {s1:.6}s]");
        }
        for &(from, to, t_send, t_recv) in &ov.hops {
            let _ = writeln!(out, "  hop {from}->{to} @{t_send:.6}s..{t_recv:.6}s");
        }
    }
    if show_arrows && !arrows.is_empty() {
        arrows.sort_by(|a, b| a.0.total_cmp(&b.0));
        let shown = if max_arrows > 0 {
            arrows.len().min(max_arrows)
        } else {
            arrows.len()
        };
        let list: Vec<String> = arrows[..shown]
            .iter()
            .map(|(t, from, to)| format!("{from}->{to} @{t:.6}s"))
            .collect();
        let _ = write!(out, "arrows: {}", list.join(", "));
        if shown < arrows.len() {
            let _ = write!(out, " (+{} more)", arrows.len() - shown);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::PathOverlay;
    use mpelog::Color;
    use slog2::{
        ArrowDrawable, Category, CategoryId, CategoryKind, EventDrawable, FrameTree, StateDrawable,
    };

    fn file() -> Slog2File {
        let categories = vec![
            Category {
                index: CategoryId(0),
                name: "Compute".into(),
                color: Color::GRAY,
                kind: CategoryKind::State,
            },
            Category {
                index: CategoryId(1),
                name: "PI_Read".into(),
                color: Color::RED,
                kind: CategoryKind::State,
            },
            Category {
                index: CategoryId(2),
                name: "msg arrival".into(),
                color: Color::YELLOW,
                kind: CategoryKind::Event,
            },
            Category {
                index: CategoryId(3),
                name: "message".into(),
                color: Color::WHITE,
                kind: CategoryKind::Arrow,
            },
        ];
        let ds = vec![
            Drawable::State(StateDrawable {
                category: CategoryId(0),
                timeline: TimelineId(0),
                start: 0.0,
                end: 8.0,
                nest_level: 0,
                text: String::new(),
            }),
            Drawable::State(StateDrawable {
                category: CategoryId(1),
                timeline: TimelineId(1),
                start: 2.0,
                end: 6.0,
                nest_level: 0,
                text: String::new(),
            }),
            Drawable::Event(EventDrawable {
                category: CategoryId(2),
                timeline: TimelineId(1),
                time: 5.0,
                text: String::new(),
            }),
            Drawable::Arrow(ArrowDrawable {
                category: CategoryId(3),
                from_timeline: TimelineId(0),
                to_timeline: TimelineId(1),
                start: 4.0,
                end: 5.0,
                tag: 7,
                size: 8,
            }),
        ];
        Slog2File {
            timelines: vec!["PI_MAIN".into(), "P1".into()],
            categories,
            range: TimeWindow::new(0.0, 8.0),
            warnings: vec![],
            tree: FrameTree::build(ds, 0.0, 8.0, 8, 4),
        }
    }

    #[test]
    fn ascii_shows_states_events_and_arrows() {
        let txt = ascii_string(
            &file(),
            TimeWindow::new(0.0, 8.0),
            &RenderOptions::default().with_width(16),
        );
        let lines: Vec<&str> = txt.lines().collect();
        assert!(lines[0].starts_with("PI_MAIN"));
        assert!(lines[0].contains('C'), "{txt}");
        assert!(lines[1].starts_with("P1"));
        assert!(lines[1].contains('R'), "{txt}");
        assert!(lines[1].contains('*'), "{txt}");
        assert!(lines[2].contains("0->1 @4.000000s"), "{txt}");
    }

    #[test]
    fn read_letter_strips_pi_prefix() {
        let txt = ascii_string(
            &file(),
            TimeWindow::new(0.0, 8.0),
            &RenderOptions::default().with_width(72),
        );
        assert!(txt.contains('R'));
        assert!(!txt.contains('P') || txt.contains("PI_MAIN")); // only in labels
    }

    #[test]
    fn window_clips() {
        // Window after all activity: empty rows, no arrows.
        let txt = ascii_string(
            &file(),
            TimeWindow::new(9.0, 10.0),
            &RenderOptions::default().with_width(72),
        );
        assert!(!txt.contains('C'));
        assert!(!txt.contains("arrows:"));
    }

    #[test]
    fn arrow_list_is_capped() {
        let mut f = file();
        let mut ds: Vec<Drawable> = Vec::new();
        for i in 0..30 {
            ds.push(Drawable::Arrow(ArrowDrawable {
                category: CategoryId(3),
                from_timeline: TimelineId(0),
                to_timeline: TimelineId(1),
                start: i as f64 * 0.1,
                end: i as f64 * 0.1 + 0.05,
                tag: 0,
                size: 0,
            }));
        }
        f.tree = FrameTree::build(ds, 0.0, 8.0, 8, 4);
        let txt = ascii_string(
            &f,
            TimeWindow::new(0.0, 8.0),
            &RenderOptions::default().with_width(72).with_max_arrows(5),
        );
        assert!(txt.contains("(+25 more)"), "{txt}");
    }

    #[test]
    fn deterministic() {
        let f = file();
        let opts = RenderOptions::default().with_width(72);
        let a = ascii_string(&f, TimeWindow::new(0.0, 8.0), &opts);
        let b = ascii_string(&f, TimeWindow::new(0.0, 8.0), &opts);
        assert_eq!(a, b);
    }

    #[test]
    fn lane_split_and_row_notes_annotate_rows() {
        let opts = RenderOptions::default()
            .with_width(16)
            .with_lane_split(1)
            .with_row_notes(vec![(TimelineId(1), "Δbusy -1.2s".to_string())]);
        let txt = ascii_string(&file(), TimeWindow::new(0.0, 8.0), &opts);
        let lines: Vec<&str> = txt.lines().collect();
        // Separator ruled between row 0 and row 1, note appended to row 1.
        assert!(lines[1].starts_with("=="), "{txt}");
        assert!(lines[2].ends_with("| Δbusy -1.2s"), "{txt}");
        assert!(!lines[0].contains('Δ'), "{txt}");
    }

    #[test]
    fn overlay_dims_off_path_and_lists_segments() {
        let ov = PathOverlay {
            segments: vec![(TimelineId(0), 0.0, 8.0)],
            hops: vec![(TimelineId(0), TimelineId(1), 4.0, 5.0)],
            dim_others: true,
        };
        let txt = ascii_string(
            &file(),
            TimeWindow::new(0.0, 8.0),
            &RenderOptions::default().with_width(16).with_overlay(ov),
        );
        let lines: Vec<&str> = txt.lines().collect();
        // PI_MAIN is entirely on the path: letters stay uppercase.
        assert!(lines[0].contains('C'), "{txt}");
        // P1 is off the path: its PI_Read letters are dimmed.
        assert!(lines[1].contains('r'), "{txt}");
        assert!(!lines[1].contains('R'), "{txt}");
        assert!(
            txt.contains("critical path: 1 segment(s), 1 hop(s)"),
            "{txt}"
        );
        assert!(txt.contains("PI_MAIN [0.000000s, 8.000000s]"), "{txt}");
        assert!(txt.contains("hop 0->1 @4.000000s..5.000000s"), "{txt}");
    }
}
