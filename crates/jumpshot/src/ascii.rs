//! Plain-text timeline rendering.
//!
//! The course this tool serves is taught over SSH as often as not; a
//! text view of the same timelines makes the visual log usable in a
//! terminal, a CI log, or a unit-test assertion. One row per timeline;
//! each column is a time bucket showing the dominant state's letter
//! (from the legend name), `*` for solo events, with message arrows
//! listed below the chart.
//!
//! ```text
//! PI_MAIN |CCCCWWRRCC......|
//! P1      |CC..RRRRWWCC....|
//! arrows: 0->1 @0.000113s, 1->0 @0.000151s
//! ```

use std::fmt::Write as _;

use slog2::{Drawable, Slog2File, TimeWindow};

use crate::render::RenderOptions;
use crate::viewport::Viewport;

/// Options for the text view.
#[derive(Debug, Clone)]
pub struct AsciiOptions {
    /// Chart width in characters.
    pub width: usize,
    /// Include the arrow list below the chart.
    pub show_arrows: bool,
    /// Cap on the arrow list (0 = unlimited).
    pub max_arrows: usize,
}

impl Default for AsciiOptions {
    fn default() -> Self {
        AsciiOptions {
            width: 72,
            show_arrows: true,
            max_arrows: 20,
        }
    }
}

/// Render the window `[t0, t1]` as text.
#[deprecated(
    note = "use jumpshot::AsciiRenderer (the Renderer trait) with RenderOptions::with_window"
)]
pub fn render_ascii(file: &Slog2File, t0: f64, t1: f64, opts: &AsciiOptions) -> String {
    let ropts = RenderOptions::default()
        .with_window(TimeWindow::new(t0, t1))
        .with_width(opts.width as u32)
        .with_arrows(opts.show_arrows)
        .with_max_arrows(opts.max_arrows);
    ascii_string(file, TimeWindow::new(t0, t1), &ropts)
}

// The cell-painting loop indexes a clamped column range of a 2-D grid;
// a slice iterator would need the same bounds arithmetic, less clearly.
#[allow(clippy::needless_range_loop)]
pub(crate) fn ascii_string(file: &Slog2File, w: TimeWindow, opts: &RenderOptions) -> String {
    let (t0, t1) = (w.t0, w.t1);
    let show_arrows = opts.show_arrows;
    let max_arrows = opts.max_arrows;
    let width = (opts.width as usize).max(8);
    let vp = Viewport::new(t0, t1.max(t0 + f64::MIN_POSITIVE), width as u32);
    let ntl = file.timelines.len();
    let label_w = file
        .timelines
        .iter()
        .map(String::len)
        .max()
        .unwrap_or(2)
        .min(16);

    // cells[tl][col] = (best coverage, letter)
    let mut cells = vec![vec![(0.0f64, ' '); width]; ntl];
    let mut arrows: Vec<(f64, u32, u32)> = Vec::new();

    for d in file.tree.query(w) {
        match d {
            Drawable::State(s) => {
                if s.timeline as usize >= ntl {
                    continue;
                }
                let letter = file
                    .categories
                    .get(s.category as usize)
                    .and_then(|c| {
                        // Use the distinguishing letter of the Pilot name:
                        // "PI_Read" -> 'R', "Compute" -> 'C'.
                        c.name.strip_prefix("PI_").unwrap_or(&c.name).chars().next()
                    })
                    .unwrap_or('?');
                let c0 = vp.x_of(s.start.max(t0)).floor().max(0.0) as usize;
                let c1 = (vp.x_of(s.end.min(t1)).ceil() as usize).min(width);
                for col in c0..c1.max(c0 + 1).min(width) {
                    // Dominant = innermost (higher nest wins ties via
                    // coverage-per-cell comparison with small bias).
                    let cov = (s.end - s.start) / (1.0 + s.nest_level as f64 * 0.0)
                        + s.nest_level as f64 * 1e9;
                    let cell = &mut cells[s.timeline as usize][col];
                    if cov >= cell.0 {
                        *cell = (cov, letter);
                    }
                }
            }
            Drawable::Event(e) => {
                if e.timeline as usize >= ntl {
                    continue;
                }
                let col = vp.x_of(e.time).floor().max(0.0) as usize;
                if col < width {
                    cells[e.timeline as usize][col] = (f64::INFINITY, '*');
                }
            }
            Drawable::Arrow(a) => arrows.push((a.start, a.from_timeline, a.to_timeline)),
        }
    }

    let mut out = String::new();
    for (tl, name) in file.timelines.iter().enumerate() {
        let short: String = name.chars().take(label_w).collect();
        let _ = write!(out, "{short:<label_w$} |");
        for &(_, ch) in &cells[tl] {
            out.push(if ch == ' ' { '.' } else { ch });
        }
        out.push_str("|\n");
    }
    if show_arrows && !arrows.is_empty() {
        arrows.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let shown = if max_arrows > 0 {
            arrows.len().min(max_arrows)
        } else {
            arrows.len()
        };
        let list: Vec<String> = arrows[..shown]
            .iter()
            .map(|(t, from, to)| format!("{from}->{to} @{t:.6}s"))
            .collect();
        let _ = write!(out, "arrows: {}", list.join(", "));
        if shown < arrows.len() {
            let _ = write!(out, " (+{} more)", arrows.len() - shown);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpelog::Color;
    use slog2::{ArrowDrawable, Category, CategoryKind, EventDrawable, FrameTree, StateDrawable};

    fn file() -> Slog2File {
        let categories = vec![
            Category {
                index: 0,
                name: "Compute".into(),
                color: Color::GRAY,
                kind: CategoryKind::State,
            },
            Category {
                index: 1,
                name: "PI_Read".into(),
                color: Color::RED,
                kind: CategoryKind::State,
            },
            Category {
                index: 2,
                name: "msg arrival".into(),
                color: Color::YELLOW,
                kind: CategoryKind::Event,
            },
            Category {
                index: 3,
                name: "message".into(),
                color: Color::WHITE,
                kind: CategoryKind::Arrow,
            },
        ];
        let ds = vec![
            Drawable::State(StateDrawable {
                category: 0,
                timeline: 0,
                start: 0.0,
                end: 8.0,
                nest_level: 0,
                text: String::new(),
            }),
            Drawable::State(StateDrawable {
                category: 1,
                timeline: 1,
                start: 2.0,
                end: 6.0,
                nest_level: 0,
                text: String::new(),
            }),
            Drawable::Event(EventDrawable {
                category: 2,
                timeline: 1,
                time: 5.0,
                text: String::new(),
            }),
            Drawable::Arrow(ArrowDrawable {
                category: 3,
                from_timeline: 0,
                to_timeline: 1,
                start: 4.0,
                end: 5.0,
                tag: 7,
                size: 8,
            }),
        ];
        Slog2File {
            timelines: vec!["PI_MAIN".into(), "P1".into()],
            categories,
            range: TimeWindow::new(0.0, 8.0),
            warnings: vec![],
            tree: FrameTree::build(ds, 0.0, 8.0, 8, 4),
        }
    }

    #[test]
    fn ascii_shows_states_events_and_arrows() {
        let txt = ascii_string(
            &file(),
            TimeWindow::new(0.0, 8.0),
            &RenderOptions::default().with_width(16),
        );
        let lines: Vec<&str> = txt.lines().collect();
        assert!(lines[0].starts_with("PI_MAIN"));
        assert!(lines[0].contains('C'), "{txt}");
        assert!(lines[1].starts_with("P1"));
        assert!(lines[1].contains('R'), "{txt}");
        assert!(lines[1].contains('*'), "{txt}");
        assert!(lines[2].contains("0->1 @4.000000s"), "{txt}");
    }

    #[test]
    fn read_letter_strips_pi_prefix() {
        let txt = ascii_string(
            &file(),
            TimeWindow::new(0.0, 8.0),
            &RenderOptions::default().with_width(72),
        );
        assert!(txt.contains('R'));
        assert!(!txt.contains('P') || txt.contains("PI_MAIN")); // only in labels
    }

    #[test]
    fn window_clips() {
        // Window after all activity: empty rows, no arrows.
        let txt = ascii_string(
            &file(),
            TimeWindow::new(9.0, 10.0),
            &RenderOptions::default().with_width(72),
        );
        assert!(!txt.contains('C'));
        assert!(!txt.contains("arrows:"));
    }

    #[test]
    fn arrow_list_is_capped() {
        let mut f = file();
        let mut ds: Vec<Drawable> = Vec::new();
        for i in 0..30 {
            ds.push(Drawable::Arrow(ArrowDrawable {
                category: 3,
                from_timeline: 0,
                to_timeline: 1,
                start: i as f64 * 0.1,
                end: i as f64 * 0.1 + 0.05,
                tag: 0,
                size: 0,
            }));
        }
        f.tree = FrameTree::build(ds, 0.0, 8.0, 8, 4);
        let txt = ascii_string(
            &f,
            TimeWindow::new(0.0, 8.0),
            &RenderOptions::default().with_width(72).with_max_arrows(5),
        );
        assert!(txt.contains("(+25 more)"), "{txt}");
    }

    #[test]
    fn deterministic() {
        let f = file();
        let opts = RenderOptions::default().with_width(72);
        let a = ascii_string(&f, TimeWindow::new(0.0, 8.0), &opts);
        let b = ascii_string(&f, TimeWindow::new(0.0, 8.0), &opts);
        assert_eq!(a, b);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrapper_matches_trait_path() {
        let f = file();
        let old = render_ascii(&f, 0.0, 8.0, &AsciiOptions::default());
        let new = ascii_string(
            &f,
            TimeWindow::new(0.0, 8.0),
            &RenderOptions::default().with_width(72),
        );
        assert_eq!(old, new);
    }
}
