//! Search-and-scan: locate graphical objects that are hard to find by
//! eye, scanning forward or backward in time from a reference point.

use std::collections::HashSet;

use slog2::{CategoryId, Drawable, Slog2File, TimeWindow, TimelineId};

/// What to search for.
#[derive(Debug, Clone, Default)]
pub struct SearchQuery {
    /// Restrict to these category indices (e.g. the legend's
    /// searchable set). `None` = all.
    pub categories: Option<HashSet<CategoryId>>,
    /// Restrict to this timeline (rank).
    pub timeline: Option<TimelineId>,
    /// Require the popup text to contain this substring.
    pub text_contains: Option<String>,
}

impl SearchQuery {
    fn matches(&self, d: &Drawable) -> bool {
        if let Some(cats) = &self.categories {
            if !cats.contains(&d.category()) {
                return false;
            }
        }
        if let Some(tl) = self.timeline {
            let on = match d {
                Drawable::State(s) => s.timeline == tl,
                Drawable::Event(e) => e.timeline == tl,
                Drawable::Arrow(a) => a.from_timeline == tl || a.to_timeline == tl,
            };
            if !on {
                return false;
            }
        }
        if let Some(needle) = &self.text_contains {
            let text = match d {
                Drawable::State(s) => s.text.as_str(),
                Drawable::Event(e) => e.text.as_str(),
                Drawable::Arrow(_) => "",
            };
            if !text.contains(needle.as_str()) {
                return false;
            }
        }
        true
    }
}

/// Find the first matching drawable strictly after time `from`
/// (by start time). Returns `None` if nothing matches.
pub fn find_next<'a>(file: &'a Slog2File, from: f64, query: &SearchQuery) -> Option<&'a Drawable> {
    let mut best: Option<&Drawable> = None;
    for d in file.tree.query(TimeWindow::new(from, f64::INFINITY)) {
        if d.start() > from && query.matches(d) {
            match best {
                Some(b) if b.start() <= d.start() => {}
                _ => best = Some(d),
            }
        }
    }
    best
}

/// Find the last matching drawable strictly before time `from`.
pub fn find_prev<'a>(file: &'a Slog2File, from: f64, query: &SearchQuery) -> Option<&'a Drawable> {
    let mut best: Option<&Drawable> = None;
    for d in file.tree.query(TimeWindow::new(f64::NEG_INFINITY, from)) {
        if d.start() < from && query.matches(d) {
            match best {
                Some(b) if b.start() >= d.start() => {}
                _ => best = Some(d),
            }
        }
    }
    best
}

/// All matches in the window `w`, sorted by start time (the "scan"
/// half of search-and-scan).
pub fn scan<'a>(file: &'a Slog2File, w: TimeWindow, query: &SearchQuery) -> Vec<&'a Drawable> {
    let mut out: Vec<&Drawable> = file
        .tree
        .query(w)
        .into_iter()
        .filter(|d| query.matches(d))
        .collect();
    out.sort_by(|x, y| x.start().total_cmp(&y.start()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpelog::Color;
    use slog2::{Category, CategoryKind, EventDrawable, FrameTree, StateDrawable};

    fn file() -> Slog2File {
        let categories = vec![
            Category {
                index: CategoryId(0),
                name: "PI_Read".into(),
                color: Color::RED,
                kind: CategoryKind::State,
            },
            Category {
                index: CategoryId(1),
                name: "tick".into(),
                color: Color::YELLOW,
                kind: CategoryKind::Event,
            },
        ];
        let mut ds = Vec::new();
        for i in 0..10 {
            ds.push(Drawable::State(StateDrawable {
                category: CategoryId(0),
                timeline: TimelineId((i % 2) as u32),
                start: i as f64,
                end: i as f64 + 0.5,
                nest_level: 0,
                text: format!("Line: {}", 10 + i),
            }));
        }
        ds.push(Drawable::Event(EventDrawable {
            category: CategoryId(1),
            timeline: TimelineId(0),
            time: 4.25,
            text: "special".into(),
        }));
        Slog2File {
            timelines: vec!["PI_MAIN".into(), "P1".into()],
            categories,
            range: TimeWindow::new(0.0, 10.0),
            warnings: vec![],
            tree: FrameTree::build(ds, 0.0, 10.0, 4, 8),
        }
    }

    #[test]
    fn find_next_returns_earliest_after() {
        let f = file();
        let q = SearchQuery::default();
        let d = find_next(&f, 3.2, &q).unwrap();
        assert_eq!(d.start(), 4.0);
    }

    #[test]
    fn find_next_is_strict() {
        let f = file();
        let q = SearchQuery::default();
        let d = find_next(&f, 4.0, &q).unwrap();
        assert_eq!(d.start(), 4.25); // the event, not the state at 4.0
    }

    #[test]
    fn find_prev_returns_latest_before() {
        let f = file();
        let q = SearchQuery::default();
        let d = find_prev(&f, 4.1, &q).unwrap();
        assert_eq!(d.start(), 4.0);
    }

    #[test]
    fn category_filter() {
        let f = file();
        let q = SearchQuery {
            categories: Some([CategoryId(1)].into_iter().collect()),
            ..Default::default()
        };
        let d = find_next(&f, 0.0, &q).unwrap();
        assert_eq!(d.start(), 4.25);
        assert!(find_next(&f, 5.0, &q).is_none());
    }

    #[test]
    fn timeline_filter() {
        let f = file();
        let q = SearchQuery {
            timeline: Some(TimelineId(1)),
            ..Default::default()
        };
        let d = find_next(&f, 0.5, &q).unwrap();
        assert_eq!(d.start(), 1.0);
    }

    #[test]
    fn text_filter() {
        let f = file();
        let q = SearchQuery {
            text_contains: Some("Line: 17".into()),
            ..Default::default()
        };
        let d = find_next(&f, 0.0, &q).unwrap();
        assert_eq!(d.start(), 7.0);
    }

    #[test]
    fn scan_returns_sorted_window_matches() {
        let f = file();
        let q = SearchQuery::default();
        let hits = scan(&f, TimeWindow::new(2.0, 5.0), &q);
        let starts: Vec<f64> = hits.iter().map(|d| d.start()).collect();
        // states at 2,3,4,5 intersecting window + event at 4.25, plus the
        // state [1.0,1.5] does not reach 2.0... check sortedness and bounds.
        assert!(starts.windows(2).all(|w| w[0] <= w[1]));
        assert!(starts.contains(&4.25));
        assert!(!starts.contains(&6.0));
    }

    #[test]
    fn no_match_returns_none() {
        let f = file();
        let q = SearchQuery {
            text_contains: Some("nonexistent".into()),
            ..Default::default()
        };
        assert!(find_next(&f, 0.0, &q).is_none());
        assert!(find_prev(&f, 10.0, &q).is_none());
    }
}
