//! The zoom/scroll model: a window onto the global time axis mapped to
//! pixels, supporting the interactions the paper lists — zoom in/out
//! around a point, dragged zoom to a sub-range, grasp-and-scroll.

use slog2::TimeWindow;

/// A time window rendered at a pixel width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Viewport {
    /// Window start (seconds).
    pub t0: f64,
    /// Window end (seconds).
    pub t1: f64,
    /// Canvas width in pixels available for the time axis.
    pub width_px: u32,
}

impl Viewport {
    /// A viewport covering `[t0, t1]` at `width_px` pixels.
    pub fn new(t0: f64, t1: f64, width_px: u32) -> Self {
        assert!(t1 >= t0, "viewport range must be ordered");
        assert!(width_px > 0, "viewport must have positive width");
        Viewport { t0, t1, width_px }
    }

    /// Window duration in seconds.
    pub fn span(&self) -> f64 {
        self.t1 - self.t0
    }

    /// The window covered by this viewport.
    pub fn window(&self) -> TimeWindow {
        TimeWindow::new(self.t0, self.t1)
    }

    /// Seconds per pixel.
    pub fn resolution(&self) -> f64 {
        if self.width_px == 0 {
            0.0
        } else {
            self.span() / self.width_px as f64
        }
    }

    /// Map a time to an x pixel coordinate (fractional).
    pub fn x_of(&self, t: f64) -> f64 {
        if self.span() <= 0.0 {
            return 0.0;
        }
        (t - self.t0) / self.span() * self.width_px as f64
    }

    /// Map an x pixel coordinate back to a time.
    pub fn t_of(&self, x: f64) -> f64 {
        self.t0 + x / self.width_px as f64 * self.span()
    }

    /// Pixel width of a time interval.
    pub fn px_of_span(&self, dt: f64) -> f64 {
        if self.span() <= 0.0 {
            return 0.0;
        }
        dt / self.span() * self.width_px as f64
    }

    /// Zoom by `factor` (> 1 zooms in) keeping `center` fixed.
    pub fn zoom(&self, factor: f64, center: f64) -> Viewport {
        assert!(factor > 0.0);
        let new_span = self.span() / factor;
        let frac = if self.span() > 0.0 {
            (center - self.t0) / self.span()
        } else {
            0.5
        };
        let t0 = center - frac * new_span;
        Viewport {
            t0,
            t1: t0 + new_span,
            width_px: self.width_px,
        }
    }

    /// Dragged zoom: jump to an explicit sub-range.
    pub fn zoom_to(&self, t0: f64, t1: f64) -> Viewport {
        Viewport::new(
            t0.min(t1),
            t0.max(t1).max(t0.min(t1) + f64::EPSILON),
            self.width_px,
        )
    }

    /// Scroll by `dt` seconds (positive = later).
    pub fn scroll(&self, dt: f64) -> Viewport {
        Viewport {
            t0: self.t0 + dt,
            t1: self.t1 + dt,
            width_px: self.width_px,
        }
    }

    /// Clamp the window inside `bounds`, preserving the span where
    /// possible (shrinks only if the span exceeds the full range).
    pub fn clamp_to(&self, bounds: TimeWindow) -> Viewport {
        let (lo, hi) = (bounds.t0, bounds.t1);
        let span = self.span().min((hi - lo).max(0.0));
        let mut t0 = self.t0;
        if t0 < lo {
            t0 = lo;
        }
        if t0 + span > hi {
            t0 = hi - span;
        }
        Viewport {
            t0,
            t1: t0 + span,
            width_px: self.width_px,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pixel_mapping_roundtrips() {
        let v = Viewport::new(2.0, 12.0, 1000);
        assert_eq!(v.x_of(2.0), 0.0);
        assert_eq!(v.x_of(12.0), 1000.0);
        assert_eq!(v.x_of(7.0), 500.0);
        assert!((v.t_of(v.x_of(9.3)) - 9.3).abs() < 1e-12);
        assert_eq!(v.resolution(), 0.01);
    }

    #[test]
    fn zoom_in_keeps_center_fixed() {
        let v = Viewport::new(0.0, 10.0, 100);
        let z = v.zoom(2.0, 4.0);
        assert!((z.span() - 5.0).abs() < 1e-12);
        // The center time maps to the same pixel before and after.
        assert!((z.x_of(4.0) - v.x_of(4.0)).abs() < 1e-9);
    }

    #[test]
    fn zoom_out_expands() {
        let v = Viewport::new(0.0, 10.0, 100);
        let z = v.zoom(0.5, 5.0);
        assert!((z.span() - 20.0).abs() < 1e-12);
        assert!((z.t0 - (-5.0)).abs() < 1e-12);
    }

    #[test]
    fn zoom_to_normalizes_order() {
        let v = Viewport::new(0.0, 10.0, 100);
        let z = v.zoom_to(8.0, 3.0);
        assert_eq!(z.t0, 3.0);
        assert_eq!(z.t1, 8.0);
    }

    #[test]
    fn scroll_shifts_window() {
        let v = Viewport::new(0.0, 10.0, 100).scroll(2.5);
        assert_eq!((v.t0, v.t1), (2.5, 12.5));
    }

    #[test]
    fn clamp_keeps_span_when_possible() {
        let v = Viewport::new(-5.0, 5.0, 100).clamp_to(TimeWindow::new(0.0, 100.0));
        assert_eq!((v.t0, v.t1), (0.0, 10.0));
        let v = Viewport::new(95.0, 105.0, 100).clamp_to(TimeWindow::new(0.0, 100.0));
        assert_eq!((v.t0, v.t1), (90.0, 100.0));
    }

    #[test]
    fn clamp_shrinks_oversized_window() {
        let v = Viewport::new(-10.0, 200.0, 100).clamp_to(TimeWindow::new(0.0, 50.0));
        assert_eq!((v.t0, v.t1), (0.0, 50.0));
    }

    #[test]
    fn degenerate_span_is_safe() {
        let v = Viewport::new(5.0, 5.0, 100);
        assert_eq!(v.x_of(5.0), 0.0);
        assert_eq!(v.px_of_span(1.0), 0.0);
    }
}
