//! The unified render entry point.
//!
//! The ascii, html, svg, and histogram views each grew their own free
//! function with its own window-argument convention. [`Renderer`] puts
//! them behind one trait so every consumer — the `jumpshot` CLI and the
//! `pilotd` query service alike — drives all four backends through the
//! same `(file, options) -> String` code path, with the window expressed
//! as a [`TimeWindow`] in [`RenderOptions`].

use slog2::{Slog2File, TimeWindow};

use crate::render::RenderOptions;
use crate::viewport::Viewport;

/// A rendering backend: turns a file plus options into one document.
pub trait Renderer {
    /// The MIME type of what [`render`](Renderer::render) produces, as
    /// an HTTP server should label it.
    fn content_type(&self) -> &'static str;

    /// Render `file` using `opts`. The window is
    /// `opts.window.unwrap_or(file.range)`; implementations must be
    /// deterministic (same inputs, same bytes).
    fn render(&self, file: &Slog2File, opts: &RenderOptions) -> String;
}

fn effective_window(file: &Slog2File, opts: &RenderOptions) -> TimeWindow {
    opts.window.unwrap_or(file.range)
}

/// The SVG timeline canvas (states, preview stripes, bubbles, arrows).
#[derive(Debug, Clone, Copy, Default)]
pub struct SvgRenderer;

impl Renderer for SvgRenderer {
    fn content_type(&self) -> &'static str {
        "image/svg+xml"
    }

    fn render(&self, file: &Slog2File, opts: &RenderOptions) -> String {
        let w = effective_window(file, opts);
        let vp = Viewport::new(w.t0, w.t1.max(w.t0 + f64::MIN_POSITIVE), opts.width.max(1))
            .clamp_to(file.range);
        crate::render::svg_string(file, &vp, opts)
    }
}

/// The plain-text timeline view. `opts.width` is interpreted as a
/// character count here, not pixels.
#[derive(Debug, Clone, Copy, Default)]
pub struct AsciiRenderer;

impl Renderer for AsciiRenderer {
    fn content_type(&self) -> &'static str {
        "text/plain; charset=utf-8"
    }

    fn render(&self, file: &Slog2File, opts: &RenderOptions) -> String {
        crate::ascii::ascii_string(file, effective_window(file, opts), opts)
    }
}

/// The self-contained interactive HTML page (embedded SVG + legend
/// table + warnings + pan/zoom script).
#[derive(Debug, Clone, Copy, Default)]
pub struct HtmlRenderer;

impl Renderer for HtmlRenderer {
    fn content_type(&self) -> &'static str {
        "text/html; charset=utf-8"
    }

    fn render(&self, file: &Slog2File, opts: &RenderOptions) -> String {
        crate::html::html_string(file, opts)
    }
}

/// The duration-statistics histogram (per-timeline stacked bars).
#[derive(Debug, Clone, Copy, Default)]
pub struct HistogramRenderer;

impl Renderer for HistogramRenderer {
    fn content_type(&self) -> &'static str {
        "image/svg+xml"
    }

    fn render(&self, file: &Slog2File, opts: &RenderOptions) -> String {
        crate::histogram::histogram_string(file, effective_window(file, opts), opts)
    }
}

/// Look a renderer up by its wire name (`svg`, `ascii`, `html`,
/// `hist`). This is the one switch shared by the CLI and the server.
pub fn renderer_by_name(name: &str) -> Option<Box<dyn Renderer + Send + Sync>> {
    match name {
        "svg" | "render" => Some(Box::new(SvgRenderer)),
        "ascii" | "text" => Some(Box::new(AsciiRenderer)),
        "html" => Some(Box::new(HtmlRenderer)),
        "hist" | "histogram" => Some(Box::new(HistogramRenderer)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::PathOverlay;
    use mpelog::Color;
    use slog2::{
        Category, CategoryId, CategoryKind, Drawable, FrameTree, StateDrawable, TimelineId,
    };

    fn file() -> Slog2File {
        let ds = vec![Drawable::State(StateDrawable {
            category: CategoryId(0),
            timeline: TimelineId(0),
            start: 0.0,
            end: 1.0,
            nest_level: 0,
            text: "Line: 7".into(),
        })];
        Slog2File {
            timelines: vec!["PI_MAIN".into()],
            categories: vec![Category {
                index: CategoryId(0),
                name: "PI_Write".into(),
                color: Color::GREEN,
                kind: CategoryKind::State,
            }],
            range: TimeWindow::new(0.0, 1.0),
            warnings: vec![],
            tree: FrameTree::build(ds, 0.0, 1.0, 8, 4),
        }
    }

    #[test]
    fn every_backend_renders_something() {
        let f = file();
        let opts = RenderOptions::default();
        for (name, prefix) in [
            ("svg", "<svg"),
            ("ascii", "PI_MAIN"),
            ("html", "<!DOCTYPE html>"),
            ("hist", "<svg"),
        ] {
            let r = renderer_by_name(name).unwrap();
            let out = r.render(&f, &opts);
            assert!(
                out.starts_with(prefix),
                "{name}: {}",
                &out[..40.min(out.len())]
            );
            assert!(!r.content_type().is_empty());
        }
        assert!(renderer_by_name("nope").is_none());
    }

    #[test]
    fn windowed_svg_render_clips() {
        let f = file();
        let opts = RenderOptions::default().with_window(TimeWindow::new(2.0, 3.0));
        // Window past all activity, clamped back into range: still valid SVG.
        let svg = SvgRenderer.render(&f, &opts);
        assert!(svg.starts_with("<svg"));
    }

    #[test]
    fn all_four_backends_render_the_overlay() {
        let f = file();
        let ov = PathOverlay {
            segments: vec![(TimelineId(0), 0.0, 1.0)],
            hops: vec![],
            dim_others: false,
        };
        let opts = RenderOptions::default().with_overlay(ov);
        for (name, marker) in [
            ("svg", "class=\"critical-path\""),
            ("ascii", "critical path: 1 segment(s)"),
            ("html", "class=\"critical-path\""),
            ("hist", "(crit 1.0000s)"),
        ] {
            let out = renderer_by_name(name).unwrap().render(&f, &opts);
            assert!(out.contains(marker), "{name} missing overlay: {out}");
        }
    }

    #[test]
    fn trait_object_dispatch_works() {
        let f = file();
        let backends: Vec<Box<dyn Renderer + Send + Sync>> = vec![
            Box::new(SvgRenderer),
            Box::new(AsciiRenderer),
            Box::new(HtmlRenderer),
            Box::new(HistogramRenderer),
        ];
        for b in &backends {
            assert!(!b.render(&f, &RenderOptions::default()).is_empty());
        }
    }
}
