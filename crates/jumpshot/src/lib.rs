//! # jumpshot — a headless Jumpshot-4 equivalent
//!
//! Jumpshot-4 is the Argonne viewer for SLOG-2 files: per-process
//! timelines with state rectangles, event "bubbles" and message arrows,
//! seamless zoom at any level (drawing proportional colour stripes when
//! a region is too dense to show individual states), a legend table with
//! count / inclusive / exclusive statistics, and a search-and-scan
//! facility. This crate reproduces those capabilities as a deterministic
//! renderer with SVG output, so every figure of the paper can be
//! regenerated and *asserted on* in tests:
//!
//! * [`viewport`] — the zoom/scroll model (time ↔ pixel mapping).
//! * [`render`] — SVG timeline canvas. Per drawable it makes the same
//!   decision Jumpshot makes: wide enough → individual rectangle;
//!   otherwise it contributes to a per-bucket *preview stripe* whose
//!   bands show each category's share (the outlined rectangles of the
//!   paper's Fig. 1). Popup content becomes SVG `<title>` tooltips.
//! * [`legend`] — the legend table (sortable, with visibility toggles).
//! * [`histogram`] — the duration-statistics window ("draw a picture
//!   from user-selected duration"), including the load-imbalance
//!   indicator.
//! * [`search`] — search-and-scan over the frame tree.
//! * [`renderer`] — the unified [`Renderer`] trait putting the svg,
//!   ascii, html, and histogram backends behind one
//!   `(file, RenderOptions) -> String` entry point, shared by this
//!   crate's CLI and the `pilotd` query service.
//! * [`popup`] — the popup info model, including a faithful reproduction
//!   of the text-reordering bug the paper hit ("%d lines" displaying as
//!   "lines 42") and the literal-prefix workaround it adopted.

pub mod ascii;
pub mod histogram;
pub mod html;
pub mod legend;
pub mod popup;
pub mod render;
pub mod renderer;
pub mod search;
pub mod viewport;

pub use histogram::{duration_stats, load_imbalance, TimelineHistogram};
pub use legend::{render_legend_text, Legend, LegendRow, LegendSort};
pub use popup::{jumpshot_display, InfoArg};
pub use render::{PathOverlay, RenderOptions};
pub use renderer::{
    renderer_by_name, AsciiRenderer, HistogramRenderer, HtmlRenderer, Renderer, SvgRenderer,
};
pub use search::{find_next, find_prev, scan, SearchQuery};
pub use viewport::Viewport;
