//! Self-contained interactive HTML export.
//!
//! The paper's pedagogical pitch is that "one can interact with the
//! display" — walking a class through the timeline, zooming into
//! regions. The Swing GUI is out of scope, but this module produces a
//! single HTML file embedding the rendered SVG plus a small script for
//! grasp-and-scroll (drag) and wheel zoom via `viewBox` manipulation,
//! with the legend as an HTML table beside it.
//!
//! Limitation (documented): the geometry is rendered once at the full
//! range, so preview stripes do not re-resolve into individual
//! rectangles as you zoom — use the CLI's `render --window` for a true
//! re-render of a sub-range.

use std::fmt::Write as _;

use slog2::Slog2File;

use crate::legend::{Legend, LegendSort};
use crate::render::{svg_string, RenderOptions};
use crate::viewport::Viewport;

pub(crate) fn html_string(file: &Slog2File, opts: &RenderOptions) -> String {
    // Render wide so zooming has detail to reveal.
    let w = opts.window.unwrap_or(file.range);
    let vp = Viewport::new(w.t0, w.t1.max(w.t0 + f64::MIN_POSITIVE), 2400).clamp_to(file.range);
    let svg = svg_string(file, &vp, opts);
    let legend = Legend::for_file(file);

    let mut rows = String::new();
    for r in legend.sorted(LegendSort::Index) {
        let _ = writeln!(
            rows,
            "<tr><td><span class=\"swatch\" style=\"background:{}\"></span></td>\
             <td>{}</td><td>{}</td><td>{:.6}</td><td>{:.6}</td></tr>",
            r.color,
            html_escape(&r.name),
            r.count,
            r.inclusive,
            r.exclusive
        );
    }

    let mut warn = String::new();
    if !file.warnings.is_empty() {
        warn.push_str("<details><summary>converter warnings</summary><ul>");
        for w in &file.warnings {
            let _ = write!(warn, "<li>{}</li>", html_escape(w));
        }
        warn.push_str("</ul></details>");
    }

    format!(
        r#"<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>Pilot log visualization</title>
<style>
  body {{ background: #181820; color: #ddd; font-family: monospace; margin: 0; }}
  #wrap {{ display: flex; gap: 12px; padding: 12px; }}
  #canvas {{ flex: 1; border: 1px solid #444; overflow: hidden; cursor: grab; }}
  #canvas svg {{ display: block; width: 100%; height: auto; }}
  table {{ border-collapse: collapse; font-size: 12px; }}
  td, th {{ border: 1px solid #444; padding: 2px 6px; }}
  .swatch {{ display: inline-block; width: 12px; height: 12px; border: 1px solid #000; }}
  #hint {{ padding: 0 12px 12px; color: #888; font-size: 12px; }}
</style>
</head>
<body>
<div id="wrap">
  <div id="canvas">{svg}</div>
  <div>
    <table>
      <tr><th></th><th>name</th><th>count</th><th>incl(s)</th><th>excl(s)</th></tr>
      {rows}
    </table>
    {warn}
  </div>
</div>
<div id="hint">drag to scroll &middot; wheel to zoom &middot; double-click to reset</div>
<script>
(function() {{
  const svg = document.querySelector('#canvas svg');
  if (!svg) return;
  const vb0 = svg.getAttribute('viewBox').split(' ').map(Number);
  let vb = vb0.slice();
  const apply = () => svg.setAttribute('viewBox', vb.join(' '));
  let drag = null;
  svg.addEventListener('mousedown', e => {{ drag = {{x: e.clientX, y: e.clientY, vb: vb.slice()}}; }});
  window.addEventListener('mouseup', () => {{ drag = null; }});
  window.addEventListener('mousemove', e => {{
    if (!drag) return;
    const scale = vb[2] / svg.clientWidth;
    vb[0] = drag.vb[0] - (e.clientX - drag.x) * scale;
    vb[1] = drag.vb[1] - (e.clientY - drag.y) * scale;
    apply();
  }});
  svg.addEventListener('wheel', e => {{
    e.preventDefault();
    const f = e.deltaY < 0 ? 0.8 : 1.25;
    const r = svg.getBoundingClientRect();
    const cx = vb[0] + (e.clientX - r.left) / r.width * vb[2];
    vb[0] = cx - (cx - vb[0]) * f;
    vb[2] *= f;
    apply();
  }}, {{passive: false}});
  svg.addEventListener('dblclick', () => {{ vb = vb0.slice(); apply(); }});
}})();
</script>
</body>
</html>
"#
    )
}

fn html_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::PathOverlay;
    use mpelog::Color;
    use slog2::{
        Category, CategoryId, CategoryKind, Drawable, FrameTree, StateDrawable, TimeWindow,
        TimelineId,
    };

    fn file() -> Slog2File {
        let ds = vec![Drawable::State(StateDrawable {
            category: CategoryId(0),
            timeline: TimelineId(0),
            start: 0.0,
            end: 1.0,
            nest_level: 0,
            text: "Line: 3".into(),
        })];
        Slog2File {
            timelines: vec!["PI_MAIN".into()],
            categories: vec![Category {
                index: CategoryId(0),
                name: "PI_Write".into(),
                color: Color::GREEN,
                kind: CategoryKind::State,
            }],
            range: TimeWindow::new(0.0, 1.0),
            warnings: vec!["Equal Drawables: demo".into()],
            tree: FrameTree::build(ds, 0.0, 1.0, 8, 4),
        }
    }

    #[test]
    fn html_embeds_svg_legend_and_warnings() {
        let html = html_string(&file(), &RenderOptions::default());
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<svg"));
        assert!(html.contains("PI_Write"));
        assert!(html.contains("#00ff00"));
        assert!(html.contains("Equal Drawables: demo"));
        assert!(html.contains("viewBox"));
        assert!(html.contains("addEventListener"));
    }

    #[test]
    fn html_page_inherits_critical_path_overlay() {
        let ov = PathOverlay {
            segments: vec![(TimelineId(0), 0.0, 1.0)],
            hops: vec![],
            dim_others: true,
        };
        let html = html_string(&file(), &RenderOptions::default().with_overlay(ov));
        assert!(html.contains("class=\"critical-path\""));
        assert!(html.contains("class=\"dim\""));
    }

    #[test]
    fn html_escapes_warning_text() {
        let mut f = file();
        f.warnings = vec!["a<b & c".into()];
        let html = html_string(&f, &RenderOptions::default());
        assert!(html.contains("a&lt;b &amp; c"));
    }
}
