//! `jumpshot` — the standalone viewer CLI over SLOG2 files.
//!
//! ```text
//! jumpshot <log.pslog2> render  [-o out.svg] [--window T0 T1] [--width W]
//! jumpshot <log.pslog2> html    [-o out.html]
//! jumpshot <log.pslog2> ascii   [--window T0 T1] [--width W]
//! jumpshot <log.pslog2> legend  [--sort index|name|count|incl|excl]
//! jumpshot <log.pslog2> hist    [-o out.svg] [--window T0 T1]
//! jumpshot <log.pslog2> search  <substring> [--from T]
//! jumpshot <log.pslog2> info
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use jumpshot::{renderer_by_name, LegendSort, RenderOptions, SearchQuery};
use slog2::{Slog2File, TimeWindow};

fn fail(msg: &str) -> ExitCode {
    eprintln!("jumpshot: {msg}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        return fail(
            "usage: jumpshot <log.pslog2> <render|html|ascii|legend|hist|search|info> [options]",
        );
    }
    let path = PathBuf::from(&args[0]);
    let cmd = args[1].as_str();
    let rest = &args[2..];

    let file = match Slog2File::read_from(&path) {
        Ok(f) => f,
        Err(e) => return fail(&format!("cannot load {}: {e}", path.display())),
    };

    let flag_val = |name: &str| -> Option<&str> {
        rest.iter()
            .position(|a| a == name)
            .and_then(|i| rest.get(i + 1))
            .map(String::as_str)
    };
    let window = || -> TimeWindow {
        match rest.iter().position(|a| a == "--window") {
            Some(i) => {
                let t0 = rest
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(file.range.t0);
                let t1 = rest
                    .get(i + 2)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(file.range.t1);
                TimeWindow::new(t0, t1)
            }
            None => file.range,
        }
    };
    let out_path = |default: &str| -> PathBuf {
        flag_val("-o")
            .map(PathBuf::from)
            .unwrap_or_else(|| path.with_extension(default))
    };

    match cmd {
        // All four render-producing commands share the Renderer trait
        // dispatch — the same code path `pilotd serve` uses.
        "render" | "html" | "ascii" | "hist" => {
            let backend = renderer_by_name(cmd).expect("all four names are registered");
            let width: u32 =
                flag_val("--width")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(match cmd {
                        "ascii" => 100,
                        "hist" => 1000,
                        _ => 1280,
                    });
            let opts = RenderOptions::default()
                .with_window(window())
                .with_width(width);
            let doc = backend.render(&file, &opts);
            match cmd {
                "ascii" => print!("{doc}"),
                _ => {
                    let out = out_path(match cmd {
                        "html" => "html",
                        "hist" => "hist.svg",
                        _ => "svg",
                    });
                    if let Err(e) = std::fs::write(&out, doc) {
                        return fail(&format!("cannot write {}: {e}", out.display()));
                    }
                    if cmd == "html" {
                        println!(
                            "wrote {} (open in a browser; drag to scroll, wheel to zoom)",
                            out.display()
                        );
                    } else {
                        println!("wrote {}", out.display());
                    }
                }
            }
        }
        "legend" => {
            let sort = match flag_val("--sort").unwrap_or("index") {
                "name" => LegendSort::Name,
                "count" => LegendSort::Count,
                "incl" => LegendSort::Inclusive,
                "excl" => LegendSort::Exclusive,
                _ => LegendSort::Index,
            };
            let legend = jumpshot::Legend::for_file(&file);
            print!("{}", jumpshot::render_legend_text(&legend, sort));
        }
        "search" => {
            let needle = match rest.iter().find(|a| !a.starts_with("--")) {
                Some(n) => n.clone(),
                None => return fail("search needs a substring"),
            };
            let from: f64 = flag_val("--from")
                .and_then(|v| v.parse().ok())
                .unwrap_or(f64::NEG_INFINITY);
            let q = SearchQuery {
                text_contains: Some(needle.clone()),
                ..Default::default()
            };
            match jumpshot::find_next(&file, from, &q) {
                Some(d) => println!("found at t={:.9}s: {d:?}", d.start()),
                None => {
                    println!("no match for '{needle}' after t={from}");
                    return ExitCode::from(1);
                }
            }
        }
        "info" => {
            println!("file      : {}", path.display());
            println!(
                "timelines : {} ({})",
                file.timelines.len(),
                file.timelines.join(", ")
            );
            println!("categories: {}", file.categories.len());
            println!("drawables : {}", file.total_drawables());
            println!("range     : [{:.6}s, {:.6}s]", file.range.t0, file.range.t1);
            println!(
                "tree      : {} nodes, depth {}, frame capacity {}",
                file.tree.node_count(),
                file.tree.depth(),
                file.tree.capacity
            );
            if file.warnings.is_empty() {
                println!("warnings  : none");
            } else {
                println!("warnings  : {}", file.warnings.len());
                for w in &file.warnings {
                    println!("  {w}");
                }
            }
            let defects = slog2::validate(&file);
            if defects.is_empty() {
                println!("integrity : sound");
            } else {
                println!(
                    "integrity : {} defect(s) — defective SLOG-2 file",
                    defects.len()
                );
                for d in &defects {
                    println!("  {d}");
                }
                return ExitCode::from(1);
            }
        }
        other => return fail(&format!("unknown command '{other}'")),
    }
    ExitCode::SUCCESS
}
