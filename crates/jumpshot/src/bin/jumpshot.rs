//! `jumpshot` — the standalone viewer CLI over SLOG2 files.
//!
//! ```text
//! jumpshot <log.pslog2> render  [-o out.svg] [--window T0 T1] [--width W]
//! jumpshot <log.pslog2> html    [-o out.html]
//! jumpshot <log.pslog2> ascii   [--window T0 T1] [--width W]
//! jumpshot <log.pslog2> legend  [--sort index|name|count|incl|excl]
//! jumpshot <log.pslog2> hist    [-o out.svg] [--window T0 T1]
//! jumpshot <log.pslog2> search  <substring> [--from T]
//! jumpshot <log.pslog2> info
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use jumpshot::{LegendSort, RenderOptions, SearchQuery, Viewport};
use slog2::Slog2File;

fn fail(msg: &str) -> ExitCode {
    eprintln!("jumpshot: {msg}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        return fail(
            "usage: jumpshot <log.pslog2> <render|html|ascii|legend|hist|search|info> [options]",
        );
    }
    let path = PathBuf::from(&args[0]);
    let cmd = args[1].as_str();
    let rest = &args[2..];

    let file = match Slog2File::read_from(&path) {
        Ok(Ok(f)) => f,
        Ok(Err(e)) => {
            return fail(&format!(
                "{} is not a valid SLOG2 file: {e}",
                path.display()
            ))
        }
        Err(e) => return fail(&format!("cannot read {}: {e}", path.display())),
    };

    let flag_val = |name: &str| -> Option<&str> {
        rest.iter()
            .position(|a| a == name)
            .and_then(|i| rest.get(i + 1))
            .map(String::as_str)
    };
    let window = || -> (f64, f64) {
        match rest.iter().position(|a| a == "--window") {
            Some(i) => {
                let t0 = rest
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(file.range.0);
                let t1 = rest
                    .get(i + 2)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(file.range.1);
                (t0, t1)
            }
            None => file.range,
        }
    };
    let out_path = |default: &str| -> PathBuf {
        flag_val("-o")
            .map(PathBuf::from)
            .unwrap_or_else(|| path.with_extension(default))
    };

    match cmd {
        "render" => {
            let (t0, t1) = window();
            let width: u32 = flag_val("--width")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1280);
            let vp = Viewport::new(t0, t1, width).clamp_to(file.range.0, file.range.1);
            let svg = jumpshot::render_svg(&file, &vp, &RenderOptions::default());
            let out = out_path("svg");
            if let Err(e) = std::fs::write(&out, svg) {
                return fail(&format!("cannot write {}: {e}", out.display()));
            }
            println!("wrote {}", out.display());
        }
        "html" => {
            let html = jumpshot::render_html(&file, &RenderOptions::default());
            let out = out_path("html");
            if let Err(e) = std::fs::write(&out, html) {
                return fail(&format!("cannot write {}: {e}", out.display()));
            }
            println!(
                "wrote {} (open in a browser; drag to scroll, wheel to zoom)",
                out.display()
            );
        }
        "ascii" => {
            let (t0, t1) = window();
            let width: usize = flag_val("--width")
                .and_then(|v| v.parse().ok())
                .unwrap_or(100);
            print!(
                "{}",
                jumpshot::render_ascii(
                    &file,
                    t0,
                    t1,
                    &jumpshot::AsciiOptions {
                        width,
                        ..Default::default()
                    }
                )
            );
        }
        "legend" => {
            let sort = match flag_val("--sort").unwrap_or("index") {
                "name" => LegendSort::Name,
                "count" => LegendSort::Count,
                "incl" => LegendSort::Inclusive,
                "excl" => LegendSort::Exclusive,
                _ => LegendSort::Index,
            };
            let legend = jumpshot::Legend::for_file(&file);
            print!("{}", jumpshot::render_legend_text(&legend, sort));
        }
        "hist" => {
            let (t0, t1) = window();
            let svg = jumpshot::render_histogram_svg(&file, t0, t1, 1000);
            let out = out_path("hist.svg");
            if let Err(e) = std::fs::write(&out, svg) {
                return fail(&format!("cannot write {}: {e}", out.display()));
            }
            println!("wrote {}", out.display());
        }
        "search" => {
            let needle = match rest.iter().find(|a| !a.starts_with("--")) {
                Some(n) => n.clone(),
                None => return fail("search needs a substring"),
            };
            let from: f64 = flag_val("--from")
                .and_then(|v| v.parse().ok())
                .unwrap_or(f64::NEG_INFINITY);
            let q = SearchQuery {
                text_contains: Some(needle.clone()),
                ..Default::default()
            };
            match jumpshot::find_next(&file, from, &q) {
                Some(d) => println!("found at t={:.9}s: {d:?}", d.start()),
                None => {
                    println!("no match for '{needle}' after t={from}");
                    return ExitCode::from(1);
                }
            }
        }
        "info" => {
            println!("file      : {}", path.display());
            println!(
                "timelines : {} ({})",
                file.timelines.len(),
                file.timelines.join(", ")
            );
            println!("categories: {}", file.categories.len());
            println!("drawables : {}", file.total_drawables());
            println!("range     : [{:.6}s, {:.6}s]", file.range.0, file.range.1);
            println!(
                "tree      : {} nodes, depth {}, frame capacity {}",
                file.tree.node_count(),
                file.tree.depth(),
                file.tree.capacity
            );
            if file.warnings.is_empty() {
                println!("warnings  : none");
            } else {
                println!("warnings  : {}", file.warnings.len());
                for w in &file.warnings {
                    println!("  {w}");
                }
            }
            let defects = slog2::validate(&file);
            if defects.is_empty() {
                println!("integrity : sound");
            } else {
                println!(
                    "integrity : {} defect(s) — defective SLOG-2 file",
                    defects.len()
                );
                for d in &defects {
                    println!("  {d}");
                }
                return ExitCode::from(1);
            }
        }
        other => return fail(&format!("unknown command '{other}'")),
    }
    ExitCode::SUCCESS
}
