//! SVG timeline rendering.
//!
//! Coordinates match Jumpshot's: the X axis is global time in seconds,
//! the Y axis is process rank (0 = `PI_MAIN` at the top). Each drawable
//! is rendered the way Jumpshot renders it:
//!
//! * a **state** wide enough on screen becomes a filled rectangle whose
//!   height shrinks with nesting level (inner rectangles inside outer
//!   ones); its popup text becomes an SVG `<title>` tooltip;
//! * a state **too narrow to see** (below `min_state_px`) instead
//!   contributes to its pixel bucket's *preview stripe* — an outlined
//!   rectangle filled with horizontal colour bands whose heights are
//!   proportional to each category's share of that interval, exactly the
//!   zoomed-out representation the paper describes under Fig. 1;
//! * a **solo event** becomes a small circle ("bubble");
//! * a **message arrow** becomes a line from the sender's timeline to
//!   the receiver's, with the envelope in its tooltip.

use std::collections::{BTreeMap, HashSet};
use std::fmt::Write as _;

use slog2::{CategoryId, Drawable, Slog2File, TimeWindow, TimelineId};

use crate::viewport::Viewport;

/// A critical-path overlay: the on-timeline segments and cross-timeline
/// hops of a causal critical path (as computed by the `analysis`
/// crate), drawn highlighted over the normal canvas. Every backend of
/// the [`Renderer`](crate::Renderer) trait honours it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PathOverlay {
    /// On-timeline path segments `(timeline, t0, t1)`.
    pub segments: Vec<(TimelineId, f64, f64)>,
    /// Cross-timeline hops `(from, to, send_time, recv_time)` — the
    /// message arrows the path rides between timelines.
    pub hops: Vec<(TimelineId, TimelineId, f64, f64)>,
    /// Dim everything that is not on the path.
    pub dim_others: bool,
}

impl PathOverlay {
    /// Seconds of path segments on `tl` clipped to `[t0, t1]`.
    pub fn seconds_on(&self, tl: TimelineId, t0: f64, t1: f64) -> f64 {
        self.segments
            .iter()
            .filter(|(s_tl, _, _)| *s_tl == tl)
            .map(|&(_, s0, s1)| (s1.min(t1) - s0.max(t0)).max(0.0))
            .sum()
    }

    /// Does any segment on `tl` overlap `[t0, t1]` (closed interval)?
    pub fn on_path(&self, tl: TimelineId, t0: f64, t1: f64) -> bool {
        self.segments
            .iter()
            .any(|&(s_tl, s0, s1)| s_tl == tl && s0 <= t1 && s1 >= t0)
    }
}

/// Rendering options shared by every [`Renderer`](crate::Renderer)
/// backend. Construct with [`Default`] and refine with the `with_*`
/// builder methods.
#[derive(Debug, Clone)]
pub struct RenderOptions {
    /// Time window to render; `None` = the file's full range.
    pub window: Option<TimeWindow>,
    /// Output width: pixels for the SVG/HTML/histogram backends,
    /// characters for the ascii backend.
    pub width: u32,
    /// Height of one timeline row in pixels.
    pub row_height: u32,
    /// States narrower than this many pixels go into preview stripes.
    pub min_state_px: f64,
    /// Preview bucket width in pixels.
    pub bucket_px: u32,
    /// Draw message arrows?
    pub show_arrows: bool,
    /// Draw event bubbles?
    pub show_events: bool,
    /// Cap on the ascii backend's arrow list (0 = unlimited).
    pub max_arrows: usize,
    /// If set, only these category indices are drawn (legend visibility
    /// toggles).
    pub visible_categories: Option<HashSet<CategoryId>>,
    /// Canvas background colour.
    pub background: String,
    /// Left gutter for timeline labels, pixels.
    pub label_gutter: u32,
    /// Bottom strip for the time axis, pixels.
    pub axis_height: u32,
    /// Critical-path overlay: highlight these segments and hops, and
    /// (optionally) dim everything off the path.
    pub overlay: Option<PathOverlay>,
    /// Two-lane comparison layout: draw a bright divider above this
    /// timeline row, splitting the canvas into a "before" lane (rows
    /// `0..split`) and an "after" lane (rows `split..`). Used by the
    /// trace-diff side-by-side render; `None` = single-lane as usual.
    pub lane_split: Option<u32>,
    /// Per-row annotations appended after the row content (ascii) or
    /// the per-row totals (histogram) — the diff backends use these for
    /// delta columns. SVG/HTML ignore them.
    pub row_notes: Vec<(TimelineId, String)>,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            window: None,
            width: 1280,
            row_height: 28,
            min_state_px: 1.5,
            bucket_px: 4,
            show_arrows: true,
            show_events: true,
            max_arrows: 20,
            visible_categories: None,
            background: "#101018".to_string(),
            label_gutter: 80,
            axis_height: 26,
            overlay: None,
            lane_split: None,
            row_notes: Vec::new(),
        }
    }
}

impl RenderOptions {
    /// Render only this time window instead of the full file range.
    pub fn with_window(mut self, w: TimeWindow) -> Self {
        self.window = Some(w);
        self
    }

    /// Set the output width (pixels, or characters for ascii).
    pub fn with_width(mut self, width: u32) -> Self {
        self.width = width;
        self
    }

    /// Toggle message arrows.
    pub fn with_arrows(mut self, show: bool) -> Self {
        self.show_arrows = show;
        self
    }

    /// Toggle event bubbles.
    pub fn with_events(mut self, show: bool) -> Self {
        self.show_events = show;
        self
    }

    /// Cap the ascii arrow list.
    pub fn with_max_arrows(mut self, cap: usize) -> Self {
        self.max_arrows = cap;
        self
    }

    /// Restrict drawing to these category indices.
    pub fn with_visible_categories(mut self, cats: HashSet<CategoryId>) -> Self {
        self.visible_categories = Some(cats);
        self
    }

    /// Highlight a critical path over the canvas.
    pub fn with_overlay(mut self, overlay: PathOverlay) -> Self {
        self.overlay = Some(overlay);
        self
    }

    /// Split the canvas into before/after lanes at this timeline row.
    pub fn with_lane_split(mut self, split: u32) -> Self {
        self.lane_split = Some(split);
        self
    }

    /// Attach per-row annotations (delta columns).
    pub fn with_row_notes(mut self, notes: Vec<(TimelineId, String)>) -> Self {
        self.row_notes = notes;
        self
    }

    /// The note attached to `tl`, if any.
    pub(crate) fn row_note(&self, tl: TimelineId) -> Option<&str> {
        self.row_notes
            .iter()
            .find(|(n_tl, _)| *n_tl == tl)
            .map(|(_, s)| s.as_str())
    }
}

pub(crate) fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

struct Layout {
    gutter: f64,
    row_h: f64,
    axis_h: f64,
    rows: usize,
    canvas_w: f64,
}

impl Layout {
    fn row_top(&self, timeline: TimelineId) -> f64 {
        timeline.as_u32() as f64 * self.row_h
    }

    fn row_mid(&self, timeline: TimelineId) -> f64 {
        self.row_top(timeline) + self.row_h / 2.0
    }

    fn total_height(&self) -> f64 {
        self.rows as f64 * self.row_h + self.axis_h
    }

    fn total_width(&self) -> f64 {
        self.gutter + self.canvas_w
    }
}

pub(crate) fn svg_string(file: &Slog2File, vp: &Viewport, opts: &RenderOptions) -> String {
    let lay = Layout {
        gutter: opts.label_gutter as f64,
        row_h: opts.row_height as f64,
        axis_h: opts.axis_height as f64,
        rows: file.timelines.len(),
        canvas_w: vp.width_px as f64,
    };

    let visible = |cat: CategoryId| -> bool {
        opts.visible_categories
            .as_ref()
            .is_none_or(|set| set.contains(&cat))
    };

    let mut svg = String::with_capacity(16 * 1024);
    let _ = writeln!(
        svg,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
         viewBox=\"0 0 {w} {h}\" font-family=\"monospace\" font-size=\"11\">",
        w = lay.total_width(),
        h = lay.total_height()
    );
    let _ = writeln!(
        svg,
        "<rect x=\"0\" y=\"0\" width=\"{}\" height=\"{}\" fill=\"{}\"/>",
        lay.total_width(),
        lay.total_height(),
        esc(&opts.background)
    );

    // Row separators and labels.
    for (r, name) in file.timelines.iter().enumerate() {
        let y = lay.row_top(TimelineId(r as u32));
        let _ = writeln!(
            svg,
            "<line x1=\"{g}\" y1=\"{y}\" x2=\"{x2}\" y2=\"{y}\" stroke=\"#333\" stroke-width=\"0.5\"/>",
            g = lay.gutter,
            y = y,
            x2 = lay.total_width()
        );
        let _ = writeln!(
            svg,
            "<text x=\"4\" y=\"{}\" fill=\"#ddd\" class=\"tl-label\">{}</text>",
            lay.row_mid(TimelineId(r as u32)) + 4.0,
            esc(name)
        );
    }

    // Lane divider for two-lane (before/after) comparison layouts.
    if let Some(split) = opts.lane_split {
        if (1..lay.rows as u32).contains(&split) {
            let y = lay.row_top(TimelineId(split));
            let _ = writeln!(
                svg,
                "<line x1=\"0\" y1=\"{y}\" x2=\"{x2}\" y2=\"{y}\" stroke=\"#ff9800\" \
                 stroke-width=\"1.5\" stroke-dasharray=\"8 4\" class=\"lane-split\"/>",
                x2 = lay.total_width()
            );
        }
    }

    // Partition drawables of the window.
    let hits = file.tree.query(TimeWindow::new(vp.t0, vp.t1));
    let mut wide_states = Vec::new();
    // (timeline, bucket) -> per-category clipped coverage
    let mut buckets: BTreeMap<(TimelineId, u32), BTreeMap<CategoryId, f64>> = BTreeMap::new();
    let mut events = Vec::new();
    let mut arrows = Vec::new();

    let bucket_w = opts.bucket_px.max(1) as f64;
    for d in hits {
        if !visible(d.category()) {
            continue;
        }
        match d {
            Drawable::State(s) => {
                let px = vp.px_of_span(s.end - s.start);
                if px >= opts.min_state_px {
                    wide_states.push(s);
                } else {
                    let clipped0 = s.start.max(vp.t0);
                    let clipped1 = s.end.min(vp.t1);
                    let x = vp.x_of((clipped0 + clipped1) / 2.0);
                    let b = (x / bucket_w).floor().max(0.0) as u32;
                    *buckets
                        .entry((s.timeline, b))
                        .or_default()
                        .entry(s.category)
                        .or_insert(0.0) += clipped1 - clipped0;
                }
            }
            Drawable::Event(e) => {
                if opts.show_events {
                    events.push(e);
                }
            }
            Drawable::Arrow(a) => {
                if opts.show_arrows {
                    arrows.push(a);
                }
            }
        }
    }

    // Deterministic output order.
    wide_states.sort_by(|a, b| {
        a.timeline
            .cmp(&b.timeline)
            .then(a.start.total_cmp(&b.start))
            .then(a.nest_level.cmp(&b.nest_level))
    });
    events.sort_by(|a, b| a.timeline.cmp(&b.timeline).then(a.time.total_cmp(&b.time)));
    arrows.sort_by(|a, b| {
        a.start
            .total_cmp(&b.start)
            .then(a.from_timeline.cmp(&b.from_timeline))
            .then(a.to_timeline.cmp(&b.to_timeline))
    });

    // Preview stripes first (behind individual rectangles).
    for ((timeline, b), cats) in &buckets {
        let x = lay.gutter + *b as f64 * bucket_w;
        let y = lay.row_top(*timeline) + 2.0;
        let h = lay.row_h - 4.0;
        let total: f64 = cats.values().sum();
        if total <= 0.0 {
            continue;
        }
        let _ = writeln!(
            svg,
            "<g class=\"preview\"><rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{bucket_w:.2}\" height=\"{h:.2}\" \
             fill=\"none\" stroke=\"#888\" stroke-width=\"0.5\"/>"
        );
        let mut yoff = y;
        for (cat, cov) in cats {
            let share = cov / total;
            let sh = share * h;
            let color = file
                .categories
                .get(cat.as_usize())
                .map(|c| c.color.to_hex())
                .unwrap_or_else(|| "#000000".into());
            let _ = writeln!(
                svg,
                "<rect x=\"{x:.2}\" y=\"{yoff:.2}\" width=\"{bucket_w:.2}\" height=\"{sh:.2}\" fill=\"{color}\" class=\"stripe\"/>"
            );
            yoff += sh;
        }
        svg.push_str("</g>\n");
    }

    // Individual state rectangles.
    for s in wide_states {
        let x0 = lay.gutter + vp.x_of(s.start.max(vp.t0)).max(0.0);
        let x1 = lay.gutter + vp.x_of(s.end.min(vp.t1)).min(lay.canvas_w);
        let shrink = (s.nest_level as f64 * 4.0).min(lay.row_h / 2.0 - 2.0);
        let y = lay.row_top(s.timeline) + 2.0 + shrink;
        let h = (lay.row_h - 4.0 - 2.0 * shrink).max(2.0);
        let color = file
            .categories
            .get(s.category.as_usize())
            .map(|c| c.color.to_hex())
            .unwrap_or_else(|| "#000000".into());
        let name = file
            .categories
            .get(s.category.as_usize())
            .map(|c| c.name.as_str())
            .unwrap_or("?");
        let tooltip = format!(
            "{} [{:.6}s, {:.6}s] dur {:.6}s\n{}",
            name,
            s.start,
            s.end,
            s.end - s.start,
            s.text
        );
        let _ = writeln!(
            svg,
            "<rect x=\"{x0:.2}\" y=\"{y:.2}\" width=\"{w:.2}\" height=\"{h:.2}\" fill=\"{color}\" \
             stroke=\"#000\" stroke-width=\"0.3\" class=\"state\"><title>{t}</title></rect>",
            w = (x1 - x0).max(0.5),
            t = esc(&tooltip)
        );
    }

    // Arrows (drawn over states, like Jumpshot's white arrows).
    for a in arrows {
        let x0 = lay.gutter + vp.x_of(a.start);
        let x1 = lay.gutter + vp.x_of(a.end);
        let y0 = lay.row_mid(a.from_timeline);
        let y1 = lay.row_mid(a.to_timeline);
        let color = file
            .categories
            .get(a.category.as_usize())
            .map(|c| c.color.to_hex())
            .unwrap_or_else(|| "#ffffff".into());
        let tooltip = format!(
            "message {}->{} tag {} size {}B\nstart {:.6}s end {:.6}s dur {:.6}s",
            a.from_timeline,
            a.to_timeline,
            a.tag,
            a.size,
            a.start,
            a.end,
            a.end - a.start
        );
        let _ = writeln!(
            svg,
            "<line x1=\"{x0:.2}\" y1=\"{y0:.2}\" x2=\"{x1:.2}\" y2=\"{y1:.2}\" stroke=\"{color}\" \
             stroke-width=\"1\" class=\"arrow\"><title>{t}</title></line>",
            t = esc(&tooltip)
        );
    }

    // Event bubbles on top.
    for e in events {
        let x = lay.gutter + vp.x_of(e.time);
        let y = lay.row_mid(e.timeline);
        let color = file
            .categories
            .get(e.category.as_usize())
            .map(|c| c.color.to_hex())
            .unwrap_or_else(|| "#ffff00".into());
        let name = file
            .categories
            .get(e.category.as_usize())
            .map(|c| c.name.as_str())
            .unwrap_or("?");
        let tooltip = format!("{} @ {:.6}s\n{}", name, e.time, e.text);
        let _ = writeln!(
            svg,
            "<circle cx=\"{x:.2}\" cy=\"{y:.2}\" r=\"2.5\" fill=\"{color}\" class=\"bubble\"><title>{t}</title></circle>",
            t = esc(&tooltip)
        );
    }

    // Critical-path overlay: dim everything, then trace the path.
    if let Some(ov) = &opts.overlay {
        if ov.dim_others {
            let _ = writeln!(
                svg,
                "<rect x=\"{g}\" y=\"0\" width=\"{w:.2}\" height=\"{h:.2}\" \
                 fill=\"#000\" opacity=\"0.55\" class=\"dim\"/>",
                g = lay.gutter,
                w = lay.canvas_w,
                h = lay.rows as f64 * lay.row_h
            );
        }
        for &(tl, s0, s1) in &ov.segments {
            let (c0, c1) = (s0.max(vp.t0), s1.min(vp.t1));
            if c1 < c0 {
                continue;
            }
            let x0 = lay.gutter + vp.x_of(c0).max(0.0);
            let x1 = lay.gutter + vp.x_of(c1).min(lay.canvas_w);
            let y = lay.row_mid(tl);
            let _ = writeln!(
                svg,
                "<line x1=\"{x0:.2}\" y1=\"{y:.2}\" x2=\"{x1:.2}\" y2=\"{y:.2}\" \
                 stroke=\"#ff4081\" stroke-width=\"4\" stroke-linecap=\"round\" \
                 opacity=\"0.9\" class=\"critical-path\"><title>critical path: {tl} \
                 [{s0:.6}s, {s1:.6}s]</title></line>",
                tl = tl
            );
        }
        for &(from, to, t_send, t_recv) in &ov.hops {
            if t_recv < vp.t0 || t_send > vp.t1 {
                continue;
            }
            let x0 = lay.gutter + vp.x_of(t_send);
            let x1 = lay.gutter + vp.x_of(t_recv);
            let y0 = lay.row_mid(from);
            let y1 = lay.row_mid(to);
            let _ = writeln!(
                svg,
                "<line x1=\"{x0:.2}\" y1=\"{y0:.2}\" x2=\"{x1:.2}\" y2=\"{y1:.2}\" \
                 stroke=\"#ff4081\" stroke-width=\"2\" stroke-dasharray=\"5 3\" \
                 class=\"critical-hop\"><title>critical hop {from}->{to} \
                 [{t_send:.6}s, {t_recv:.6}s]</title></line>",
                from = from,
                to = to
            );
        }
    }

    // Time axis.
    let axis_y = lay.rows as f64 * lay.row_h;
    let _ = writeln!(
        svg,
        "<line x1=\"{g}\" y1=\"{axis_y}\" x2=\"{x2}\" y2=\"{axis_y}\" stroke=\"#aaa\" stroke-width=\"1\"/>",
        g = lay.gutter,
        x2 = lay.total_width()
    );
    for i in 0..=8 {
        let t = vp.t0 + vp.span() * i as f64 / 8.0;
        let x = lay.gutter + vp.x_of(t);
        let _ = writeln!(
            svg,
            "<line x1=\"{x:.2}\" y1=\"{axis_y}\" x2=\"{x:.2}\" y2=\"{y2}\" stroke=\"#aaa\" stroke-width=\"1\"/>\
             <text x=\"{x:.2}\" y=\"{ty}\" fill=\"#ccc\" text-anchor=\"middle\" class=\"tick\">{t:.4}s</text>",
            y2 = axis_y + 4.0,
            ty = axis_y + 16.0
        );
    }

    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpelog::Color;
    use slog2::{ArrowDrawable, EventDrawable, StateDrawable};
    use slog2::{Category, CategoryKind, FrameTree};

    fn test_file(drawables: Vec<Drawable>) -> Slog2File {
        let categories = vec![
            Category {
                index: CategoryId(0),
                name: "PI_Read".into(),
                color: Color::RED,
                kind: CategoryKind::State,
            },
            Category {
                index: CategoryId(1),
                name: "arrival".into(),
                color: Color::YELLOW,
                kind: CategoryKind::Event,
            },
            Category {
                index: CategoryId(2),
                name: "message".into(),
                color: Color::WHITE,
                kind: CategoryKind::Arrow,
            },
        ];
        let (mut t0, mut t1) = (f64::INFINITY, f64::NEG_INFINITY);
        for d in &drawables {
            t0 = t0.min(d.start());
            t1 = t1.max(d.end());
        }
        if !t0.is_finite() {
            t0 = 0.0;
            t1 = 1.0;
        }
        Slog2File {
            timelines: vec!["PI_MAIN".into(), "P1".into()],
            categories,
            range: TimeWindow::new(t0, t1),
            warnings: vec![],
            tree: FrameTree::build(drawables, t0, t1, 16, 8),
        }
    }

    fn state(tl: u32, start: f64, end: f64) -> Drawable {
        Drawable::State(StateDrawable {
            category: CategoryId(0),
            timeline: TimelineId(tl),
            start,
            end,
            nest_level: 0,
            text: "Line: 42".into(),
        })
    }

    #[test]
    fn wide_state_renders_as_rect_with_tooltip() {
        let f = test_file(vec![state(0, 0.0, 1.0)]);
        let svg = svg_string(&f, &Viewport::new(0.0, 1.0, 800), &RenderOptions::default());
        assert!(svg.contains("class=\"state\""));
        assert!(svg.contains("#ff0000"));
        assert!(svg.contains("Line: 42"));
        assert!(svg.contains("PI_MAIN"));
    }

    #[test]
    fn narrow_states_become_preview_stripes() {
        // 1000 states of 1 µs each across 1 s: far below min_state_px at
        // 800 px, so nothing should render individually.
        let ds: Vec<_> = (0..1000)
            .map(|i| state(0, i as f64 * 1e-3, i as f64 * 1e-3 + 1e-6))
            .collect();
        let f = test_file(ds);
        let svg = svg_string(&f, &Viewport::new(0.0, 1.0, 800), &RenderOptions::default());
        assert!(!svg.contains("class=\"state\""));
        assert!(svg.contains("class=\"preview\""));
        assert!(svg.contains("class=\"stripe\""));
    }

    #[test]
    fn zooming_in_turns_stripes_into_rects() {
        let ds: Vec<_> = (0..1000)
            .map(|i| state(0, i as f64 * 1e-3, i as f64 * 1e-3 + 9e-4))
            .collect();
        let f = test_file(ds);
        // Zoomed to 5 ms: each 0.9 ms state is ~144 px wide.
        let svg = svg_string(
            &f,
            &Viewport::new(0.0, 0.005, 800),
            &RenderOptions::default(),
        );
        assert!(svg.contains("class=\"state\""));
    }

    #[test]
    fn events_render_as_bubbles() {
        let f = test_file(vec![Drawable::Event(EventDrawable {
            category: CategoryId(1),
            timeline: TimelineId(1),
            time: 0.5,
            text: "Chan: C3".into(),
        })]);
        let svg = svg_string(&f, &Viewport::new(0.0, 1.0, 400), &RenderOptions::default());
        assert!(svg.contains("class=\"bubble\""));
        assert!(svg.contains("Chan: C3"));
        assert!(svg.contains("#ffff00"));
    }

    #[test]
    fn arrows_connect_timelines() {
        let f = test_file(vec![Drawable::Arrow(ArrowDrawable {
            category: CategoryId(2),
            from_timeline: TimelineId(0),
            to_timeline: TimelineId(1),
            start: 0.2,
            end: 0.4,
            tag: 9,
            size: 128,
        })]);
        let svg = svg_string(&f, &Viewport::new(0.0, 1.0, 400), &RenderOptions::default());
        assert!(svg.contains("class=\"arrow\""));
        assert!(svg.contains("tag 9"));
        assert!(svg.contains("size 128B"));
    }

    #[test]
    fn visibility_toggle_hides_category() {
        let f = test_file(vec![
            state(0, 0.0, 1.0),
            Drawable::Event(EventDrawable {
                category: CategoryId(1),
                timeline: TimelineId(0),
                time: 0.5,
                text: String::new(),
            }),
        ]);
        let opts = RenderOptions {
            visible_categories: Some([CategoryId(1)].into_iter().collect()),
            ..Default::default()
        };
        let svg = svg_string(&f, &Viewport::new(0.0, 1.0, 400), &opts);
        assert!(!svg.contains("class=\"state\""));
        assert!(svg.contains("class=\"bubble\""));
    }

    #[test]
    fn rendering_is_deterministic() {
        let ds: Vec<_> = (0..100)
            .map(|i| state(i % 2, i as f64 * 0.01, i as f64 * 0.01 + 0.008))
            .collect();
        let f = test_file(ds);
        let vp = Viewport::new(0.0, 1.0, 640);
        let a = svg_string(&f, &vp, &RenderOptions::default());
        let b = svg_string(&f, &vp, &RenderOptions::default());
        assert_eq!(a, b);
    }

    #[test]
    fn off_window_drawables_are_not_rendered() {
        let f = test_file(vec![state(0, 0.0, 1.0), state(0, 5.0, 6.0)]);
        let svg = svg_string(&f, &Viewport::new(4.5, 6.5, 400), &RenderOptions::default());
        // Only the second state is in the window.
        assert_eq!(svg.matches("class=\"state\"").count(), 1);
    }

    #[test]
    fn xml_specials_are_escaped() {
        let f = test_file(vec![Drawable::Event(EventDrawable {
            category: CategoryId(1),
            timeline: TimelineId(0),
            time: 0.5,
            text: "a<b & \"c\"".into(),
        })]);
        let svg = svg_string(&f, &Viewport::new(0.0, 1.0, 400), &RenderOptions::default());
        assert!(svg.contains("a&lt;b &amp; &quot;c&quot;"));
        assert!(!svg.contains("a<b"));
    }

    #[test]
    fn empty_file_renders_frame_only() {
        let f = test_file(vec![]);
        let svg = svg_string(&f, &Viewport::new(0.0, 1.0, 400), &RenderOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(!svg.contains("class=\"state\""));
    }

    #[test]
    fn overlay_highlights_path_and_dims_rest() {
        let f = test_file(vec![state(0, 0.0, 1.0), state(1, 0.2, 0.8)]);
        let ov = PathOverlay {
            segments: vec![(TimelineId(0), 0.0, 0.4), (TimelineId(1), 0.5, 0.8)],
            hops: vec![(TimelineId(0), TimelineId(1), 0.4, 0.5)],
            dim_others: true,
        };
        let opts = RenderOptions::default().with_overlay(ov);
        let svg = svg_string(&f, &Viewport::new(0.0, 1.0, 800), &opts);
        assert_eq!(svg.matches("class=\"critical-path\"").count(), 2);
        assert_eq!(svg.matches("class=\"critical-hop\"").count(), 1);
        assert!(svg.contains("class=\"dim\""));
    }

    #[test]
    fn overlay_clips_to_viewport() {
        let f = test_file(vec![state(0, 0.0, 10.0)]);
        let ov = PathOverlay {
            segments: vec![(TimelineId(0), 0.0, 1.0), (TimelineId(0), 8.0, 9.0)],
            hops: vec![],
            dim_others: false,
        };
        let opts = RenderOptions::default().with_overlay(ov);
        // Window [2, 5] excludes both segments entirely? No: [0,1] ends
        // before 2 and [8,9] starts after 5 — nothing drawn, no dim.
        let svg = svg_string(&f, &Viewport::new(2.0, 5.0, 400), &opts);
        assert!(!svg.contains("class=\"critical-path\""));
        assert!(!svg.contains("class=\"dim\""));
    }

    #[test]
    fn lane_split_draws_divider() {
        let f = test_file(vec![state(0, 0.0, 1.0), state(1, 0.2, 0.8)]);
        let opts = RenderOptions::default().with_lane_split(1);
        let svg = svg_string(&f, &Viewport::new(0.0, 1.0, 400), &opts);
        assert_eq!(svg.matches("class=\"lane-split\"").count(), 1, "{svg}");
        // A split at row 0 or past the last row is meaningless: no line.
        for bad in [0, 2, 9] {
            let opts = RenderOptions::default().with_lane_split(bad);
            let svg = svg_string(&f, &Viewport::new(0.0, 1.0, 400), &opts);
            assert!(!svg.contains("lane-split"), "split {bad}: {svg}");
        }
    }

    #[test]
    fn overlay_helpers_measure_path_seconds() {
        let ov = PathOverlay {
            segments: vec![(TimelineId(1), 1.0, 3.0), (TimelineId(1), 5.0, 6.0)],
            hops: vec![],
            dim_others: false,
        };
        assert!((ov.seconds_on(TimelineId(1), 0.0, 10.0) - 3.0).abs() < 1e-12);
        assert!((ov.seconds_on(TimelineId(1), 2.0, 5.5) - 1.5).abs() < 1e-12);
        assert_eq!(ov.seconds_on(TimelineId(0), 0.0, 10.0), 0.0);
        assert!(ov.on_path(TimelineId(1), 3.0, 4.0)); // touching counts
        assert!(!ov.on_path(TimelineId(1), 3.5, 4.5));
    }
}
