//! The legend table.
//!
//! Jumpshot's legend lists every category with its coloured icon, name,
//! and sortable statistics: instance count, inclusive duration, and
//! exclusive duration. It also carries per-category visibility and
//! searchability toggles, which feed [`crate::render::RenderOptions`]
//! and [`crate::search`].

use std::collections::HashSet;

use slog2::{legend_stats, CategoryId, CategoryKind, Slog2File};

/// Sort orders for the legend table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LegendSort {
    /// By category index (definition order).
    Index,
    /// By display name.
    Name,
    /// By instance count, descending.
    Count,
    /// By inclusive duration, descending.
    Inclusive,
    /// By exclusive duration, descending.
    Exclusive,
}

/// One row of the legend.
#[derive(Debug, Clone, PartialEq)]
pub struct LegendRow {
    /// Category index.
    pub index: CategoryId,
    /// Display name.
    pub name: String,
    /// Colour (hex).
    pub color: String,
    /// Object kind.
    pub kind: CategoryKind,
    /// Number of instances.
    pub count: u64,
    /// Inclusive duration (s).
    pub inclusive: f64,
    /// Exclusive duration (s).
    pub exclusive: f64,
    /// Drawn by the renderer?
    pub visible: bool,
    /// Considered by search-and-scan?
    pub searchable: bool,
}

/// The legend: rows plus toggle state.
#[derive(Debug, Clone)]
pub struct Legend {
    rows: Vec<LegendRow>,
}

impl Legend {
    /// Build the legend for a file (all categories visible/searchable).
    pub fn for_file(file: &Slog2File) -> Legend {
        let stats = legend_stats(file);
        let rows = file
            .categories
            .iter()
            .map(|c| {
                let s = stats.get(&c.index).copied().unwrap_or_default();
                LegendRow {
                    index: c.index,
                    name: c.name.clone(),
                    color: c.color.to_hex(),
                    kind: c.kind,
                    count: s.count,
                    inclusive: s.inclusive,
                    exclusive: s.exclusive,
                    visible: true,
                    searchable: true,
                }
            })
            .collect();
        Legend { rows }
    }

    /// The rows in the given sort order.
    pub fn sorted(&self, sort: LegendSort) -> Vec<&LegendRow> {
        let mut rows: Vec<&LegendRow> = self.rows.iter().collect();
        match sort {
            LegendSort::Index => rows.sort_by_key(|r| r.index),
            LegendSort::Name => rows.sort_by(|a, b| a.name.cmp(&b.name)),
            LegendSort::Count => rows.sort_by_key(|r| std::cmp::Reverse(r.count)),
            LegendSort::Inclusive => rows.sort_by(|a, b| b.inclusive.total_cmp(&a.inclusive)),
            LegendSort::Exclusive => rows.sort_by(|a, b| b.exclusive.total_cmp(&a.exclusive)),
        }
        rows
    }

    /// Toggle a category's visibility; returns the new value.
    pub fn toggle_visible(&mut self, index: CategoryId) -> Option<bool> {
        let row = self.rows.iter_mut().find(|r| r.index == index)?;
        row.visible = !row.visible;
        Some(row.visible)
    }

    /// Toggle a category's searchability; returns the new value.
    pub fn toggle_searchable(&mut self, index: CategoryId) -> Option<bool> {
        let row = self.rows.iter_mut().find(|r| r.index == index)?;
        row.searchable = !row.searchable;
        Some(row.searchable)
    }

    /// The set of currently visible category indices (for
    /// `RenderOptions::visible_categories`).
    pub fn visible_set(&self) -> HashSet<CategoryId> {
        self.rows
            .iter()
            .filter(|r| r.visible)
            .map(|r| r.index)
            .collect()
    }

    /// The set of currently searchable category indices.
    pub fn searchable_set(&self) -> HashSet<CategoryId> {
        self.rows
            .iter()
            .filter(|r| r.searchable)
            .map(|r| r.index)
            .collect()
    }

    /// All rows (definition order).
    pub fn rows(&self) -> &[LegendRow] {
        &self.rows
    }
}

/// Render the legend as a fixed-width text table, the way the `repro`
/// harness prints it (sorted as requested).
pub fn render_legend_text(legend: &Legend, sort: LegendSort) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<4} {:<16} {:<8} {:>8} {:>12} {:>12}\n",
        "idx", "name", "color", "count", "incl(s)", "excl(s)"
    ));
    for r in legend.sorted(sort) {
        out.push_str(&format!(
            "{:<4} {:<16} {:<8} {:>8} {:>12.6} {:>12.6}\n",
            r.index, r.name, r.color, r.count, r.inclusive, r.exclusive
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpelog::Color;
    use slog2::{Category, Drawable, FrameTree, StateDrawable, TimelineId};

    fn file() -> Slog2File {
        let categories = vec![
            Category {
                index: CategoryId(0),
                name: "Reduce".into(),
                color: Color::DARK_RED,
                kind: CategoryKind::State,
            },
            Category {
                index: CategoryId(1),
                name: "Compute".into(),
                color: Color::GRAY,
                kind: CategoryKind::State,
            },
        ];
        let ds = vec![
            Drawable::State(StateDrawable {
                category: CategoryId(0),
                timeline: TimelineId(0),
                start: 1.0,
                end: 2.0,
                nest_level: 1,
                text: String::new(),
            }),
            Drawable::State(StateDrawable {
                category: CategoryId(1),
                timeline: TimelineId(0),
                start: 0.0,
                end: 10.0,
                nest_level: 0,
                text: String::new(),
            }),
            Drawable::State(StateDrawable {
                category: CategoryId(0),
                timeline: TimelineId(1),
                start: 0.0,
                end: 0.5,
                nest_level: 0,
                text: String::new(),
            }),
        ];
        Slog2File {
            timelines: vec!["PI_MAIN".into(), "P1".into()],
            categories,
            range: slog2::TimeWindow::new(0.0, 10.0),
            warnings: vec![],
            tree: FrameTree::build(ds, 0.0, 10.0, 16, 8),
        }
    }

    #[test]
    fn legend_rows_carry_stats() {
        let legend = Legend::for_file(&file());
        let rows = legend.rows();
        assert_eq!(rows.len(), 2);
        let reduce = &rows[0];
        assert_eq!(reduce.name, "Reduce");
        assert_eq!(reduce.count, 2);
        assert!((reduce.inclusive - 1.5).abs() < 1e-12);
        // Compute contains the 1s Reduce on timeline 0: excl = 10 - 1 = 9.
        let compute = &rows[1];
        assert!((compute.exclusive - 9.0).abs() < 1e-12);
    }

    #[test]
    fn sort_orders() {
        let legend = Legend::for_file(&file());
        let by_count: Vec<_> = legend
            .sorted(LegendSort::Count)
            .iter()
            .map(|r| r.index)
            .collect();
        assert_eq!(by_count, vec![CategoryId(0), CategoryId(1)]); // Reduce count 2 > Compute 1
        let by_incl: Vec<_> = legend
            .sorted(LegendSort::Inclusive)
            .iter()
            .map(|r| r.index)
            .collect();
        assert_eq!(by_incl, vec![CategoryId(1), CategoryId(0)]); // Compute 10s > Reduce 1.5s
        let by_name: Vec<_> = legend
            .sorted(LegendSort::Name)
            .iter()
            .map(|r| &r.name[..1])
            .collect();
        assert_eq!(by_name, vec!["C", "R"]);
    }

    #[test]
    fn toggles_update_sets() {
        let mut legend = Legend::for_file(&file());
        assert_eq!(legend.visible_set().len(), 2);
        assert_eq!(legend.toggle_visible(CategoryId(0)), Some(false));
        assert!(!legend.visible_set().contains(&CategoryId(0)));
        assert_eq!(legend.toggle_visible(CategoryId(0)), Some(true));
        assert_eq!(legend.toggle_searchable(CategoryId(1)), Some(false));
        assert!(!legend.searchable_set().contains(&CategoryId(1)));
        assert_eq!(legend.toggle_visible(CategoryId(99)), None);
    }

    #[test]
    fn text_table_contains_all_rows() {
        let legend = Legend::for_file(&file());
        let txt = render_legend_text(&legend, LegendSort::Index);
        assert!(txt.contains("Reduce"));
        assert!(txt.contains("Compute"));
        assert!(txt.contains("#8b0000"));
        assert_eq!(txt.lines().count(), 3); // header + 2 rows
    }
}
