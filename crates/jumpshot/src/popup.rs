//! The popup info model — including a faithful reproduction of the
//! Jumpshot display bug the paper documents.
//!
//! Section III.C of the paper: popup strings using printf-style
//! substitutions came out garbled when the string *started* with a
//! substitution — `"%d lines"` displayed as `"lines 42"`. The CLOG-2 and
//! SLOG-2 files held the right bytes, so the reordering happens inside
//! Jumpshot's renderer. The workaround the authors adopted was to start
//! every info string with literal text (`"Lines: %d"`).
//!
//! We reproduce both halves: [`jumpshot_display`] exhibits the bug
//! (substitution-first templates render literals before arguments), and
//! Pilot's instrumentation only ever emits literal-prefix templates —
//! with a unit test in the `pilot` crate pinning that convention.

/// An argument for a popup template.
#[derive(Debug, Clone, PartialEq)]
pub enum InfoArg {
    /// Integer argument (`%d`).
    Int(i64),
    /// Float argument (`%f`).
    Float(f64),
    /// String argument (`%s`).
    Str(String),
}

impl std::fmt::Display for InfoArg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InfoArg::Int(v) => write!(f, "{v}"),
            InfoArg::Float(v) => write!(f, "{v}"),
            InfoArg::Str(s) => write!(f, "{s}"),
        }
    }
}

/// Split a template into literal chunks and `%`-specifier slots.
/// Recognized specifiers: `%d`, `%f`, `%s`; `%%` is a literal percent.
fn tokenize(template: &str) -> (Vec<String>, usize) {
    let mut literals = vec![String::new()];
    let mut nslots = 0;
    let mut chars = template.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '%' {
            match chars.peek() {
                Some('%') => {
                    chars.next();
                    literals.last_mut().unwrap().push('%');
                }
                Some('d') | Some('f') | Some('s') => {
                    chars.next();
                    nslots += 1;
                    literals.push(String::new());
                }
                _ => literals.last_mut().unwrap().push('%'),
            }
        } else {
            literals.last_mut().unwrap().push(c);
        }
    }
    (literals, nslots)
}

/// Correct substitution: arguments interleave with literals in order.
/// This is what the logfiles actually contain, and what a fixed viewer
/// would display.
pub fn correct_display(template: &str, args: &[InfoArg]) -> String {
    let (literals, _) = tokenize(template);
    let mut out = String::new();
    for (i, lit) in literals.iter().enumerate() {
        out.push_str(lit);
        if i < literals.len() - 1 {
            if let Some(a) = args.get(i) {
                out.push_str(&a.to_string());
            }
        }
    }
    out
}

/// What Jumpshot actually shows — reproducing the bug: if the template
/// *begins* with a substitution, the literal text is emitted first and
/// the arguments are appended after it ("%d lines" → "lines 42").
/// Templates that begin with literal text display correctly, which is
/// exactly why the paper's workaround ("Lines: %d") works.
pub fn jumpshot_display(template: &str, args: &[InfoArg]) -> String {
    let (literals, nslots) = tokenize(template);
    let starts_with_substitution =
        literals.first().map(|l| l.is_empty()).unwrap_or(false) && nslots > 0;
    if !starts_with_substitution {
        return correct_display(template, args);
    }
    // The bug: literals first (joined), then the arguments in order.
    let mut out = literals.concat().trim().to_string();
    for a in args.iter().take(nslots) {
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(&a.to_string());
    }
    out
}

/// Does this template follow the paper's workaround convention
/// (starts with literal text, so it displays correctly)?
pub fn is_workaround_safe(template: &str) -> bool {
    let (literals, nslots) = tokenize(template);
    nslots == 0 || literals.first().map(|l| !l.is_empty()).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_display_interleaves() {
        assert_eq!(
            correct_display(
                "Lines: %d of %s",
                &[InfoArg::Int(42), InfoArg::Str("file.c".into())]
            ),
            "Lines: 42 of file.c"
        );
    }

    #[test]
    fn bug_reproduced_for_substitution_first_template() {
        // The paper's example: "%d lines" displayed as "lines 42".
        assert_eq!(
            jumpshot_display("%d lines", &[InfoArg::Int(42)]),
            "lines 42"
        );
    }

    #[test]
    fn workaround_template_displays_correctly() {
        assert_eq!(
            jumpshot_display("Lines: %d", &[InfoArg::Int(42)]),
            "Lines: 42"
        );
    }

    #[test]
    fn percent_escape_is_literal() {
        assert_eq!(correct_display("100%% done", &[]), "100% done");
        assert!(is_workaround_safe("100%% done"));
    }

    #[test]
    fn is_workaround_safe_classifies() {
        assert!(is_workaround_safe("Lines: %d"));
        assert!(is_workaround_safe("no substitutions"));
        assert!(!is_workaround_safe("%d lines"));
        assert!(!is_workaround_safe("%s"));
    }

    #[test]
    fn missing_args_degrade_gracefully() {
        assert_eq!(correct_display("a %d b %d", &[InfoArg::Int(1)]), "a 1 b ");
    }

    #[test]
    fn float_and_multiple_args() {
        assert_eq!(
            jumpshot_display("%f then %d", &[InfoArg::Float(1.5), InfoArg::Int(2)]),
            "then 1.5 2"
        );
        assert_eq!(
            correct_display("%f then %d", &[InfoArg::Float(1.5), InfoArg::Int(2)]),
            "1.5 then 2"
        );
    }

    #[test]
    fn lone_percent_is_kept() {
        assert_eq!(correct_display("50% off", &[]), "50% off");
    }
}
