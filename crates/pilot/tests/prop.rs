//! Property tests: the format engine (parse/canonical/encode/decode)
//! and randomized end-to-end transfers through real Pilot worlds.

use pilot::format::{canonical_format, decode_call, encode_call, expected_message_count};
use pilot::{parse_format, PilotConfig, RSlot, WSlot, PI_MAIN};
use proptest::prelude::*;

/// A strategy producing one specifier's text plus a matching write-value
/// generator seed.
fn arb_spec_text() -> impl Strategy<Value = String> {
    let kind = prop_oneof![Just("d"), Just("u"), Just("lf"), Just("b")];
    let len = prop_oneof![
        Just(String::new()),
        (1usize..40).prop_map(|n| n.to_string()),
        Just("*".to_string()),
        Just("^".to_string()),
    ];
    (len, kind).prop_map(|(len, kind)| format!("%{len}{kind}"))
}

proptest! {
    #[test]
    fn canonical_is_a_fixpoint(specs in proptest::collection::vec(arb_spec_text(), 1..6)) {
        let fmt = specs.join(" ");
        let parsed = parse_format(&fmt).unwrap();
        let canon = canonical_format(&parsed);
        let reparsed = parse_format(&canon).unwrap();
        prop_assert_eq!(&parsed, &reparsed);
        prop_assert_eq!(canonical_format(&reparsed), canon);
    }

    #[test]
    fn whitespace_is_insignificant(
        specs in proptest::collection::vec(arb_spec_text(), 1..5),
        gaps in proptest::collection::vec(" {0,4}", 1..5),
    ) {
        let tight = specs.join(" ");
        let loose: String = specs
            .iter()
            .zip(gaps.iter().cycle())
            .map(|(s, g)| format!("{g}{s} "))
            .collect();
        prop_assert_eq!(parse_format(&tight).unwrap(), parse_format(&loose).unwrap());
    }

    #[test]
    fn garbage_formats_error_not_panic(s in ".{0,30}") {
        let _ = parse_format(&s); // must never panic
    }

    #[test]
    fn int_array_roundtrip_through_wire(
        data in proptest::collection::vec(any::<i64>(), 1..200),
        auto in any::<bool>(),
    ) {
        let fmt = if auto { "%^d".to_string() } else { format!("%{}d", data.len()) };
        let specs = parse_format(&fmt).unwrap();
        let msgs = encode_call(&specs, &[WSlot::IntArr(&data)], true).unwrap();
        prop_assert_eq!(msgs.len(), expected_message_count(&specs));
        if auto {
            let mut out: Vec<i64> = Vec::new();
            decode_call(&specs, &mut [RSlot::IntVec(&mut out)], &msgs).unwrap();
            prop_assert_eq!(out, data);
        } else {
            let mut out = vec![0i64; data.len()];
            decode_call(&specs, &mut [RSlot::IntArr(&mut out)], &msgs).unwrap();
            prop_assert_eq!(out, data);
        }
    }

    #[test]
    fn mixed_scalar_roundtrip_through_wire(
        i in any::<i64>(),
        u in any::<u64>(),
        f in any::<f64>().prop_filter("finite", |v| v.is_finite()),
        b in any::<u8>(),
    ) {
        let specs = parse_format("%d %u %lf %b").unwrap();
        let msgs = encode_call(
            &specs,
            &[WSlot::Int(i), WSlot::Uint(u), WSlot::Float(f), WSlot::Byte(b)],
            true,
        ).unwrap();
        let (mut oi, mut ou, mut of, mut ob) = (0i64, 0u64, 0.0f64, 0u8);
        decode_call(
            &specs,
            &mut [RSlot::Int(&mut oi), RSlot::Uint(&mut ou), RSlot::Float(&mut of), RSlot::Byte(&mut ob)],
            &msgs,
        ).unwrap();
        prop_assert_eq!((oi, ou, of.to_bits(), ob), (i, u, f.to_bits(), b));
    }

    #[test]
    fn corrupt_messages_error_not_panic(
        msg in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let specs = parse_format("%d").unwrap();
        let mut v = 0i64;
        let _ = decode_call(&specs, &mut [RSlot::Int(&mut v)], &[msg]); // no panic
    }
}

proptest! {
    // World-spawning cases: keep the count small.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_payloads_cross_a_real_channel(
        ints in proptest::collection::vec(any::<i64>(), 1..100),
        floats in proptest::collection::vec(
            any::<f64>().prop_filter("finite", |v| v.is_finite()),
            1..50,
        ),
        check_level in 0u8..4,
    ) {
        let received = std::sync::Mutex::new((Vec::new(), Vec::new()));
        let cfg = PilotConfig::new(2).with_check_level(check_level);
        let n_f = floats.len();
        let outcome = pilot::run(cfg, |pi| {
            let w = pi.create_process(0)?;
            let c = pi.create_channel(PI_MAIN, w)?;
            let received = &received;
            pi.assign_work(w, move |pi, _| {
                let mut is: Vec<i64> = Vec::new();
                let mut fs = vec![0.0f64; n_f];
                pi.read(c, &format!("%^d %{n_f}lf"),
                    &mut [RSlot::IntVec(&mut is), RSlot::FloatArr(&mut fs)]).unwrap();
                *received.lock().unwrap() = (is, fs);
                0
            })?;
            pi.start_all()?;
            pi.write(c, &format!("%^d %{n_f}lf"),
                &[WSlot::IntArr(&ints), WSlot::FloatArr(&floats)])?;
            pi.stop_main(0)
        });
        prop_assert!(outcome.is_clean(), "{outcome:?}");
        let (is, fs) = received.into_inner().unwrap();
        prop_assert_eq!(is, ints);
        prop_assert_eq!(
            fs.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            floats.iter().map(|f| f.to_bits()).collect::<Vec<_>>()
        );
    }
}
