//! End-to-end tests of the Pilot runtime: programs with real worker
//! processes, channels, collectives, services, and failure modes.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use pilot::{BundleUsage, PilotConfig, PilotError, RSlot, Services, WSlot, PI_MAIN};

fn svc(letters: &str) -> Services {
    Services::parse(letters).unwrap()
}

#[test]
fn ping_pong_master_worker() {
    let total = AtomicI64::new(0);
    let cfg = PilotConfig::new(2);
    let out = pilot::run(cfg, |pi| {
        let w = pi.create_process(0)?;
        let to_w = pi.create_channel(PI_MAIN, w)?;
        let from_w = pi.create_channel(w, PI_MAIN)?;
        pi.assign_work(w, move |pi, _| {
            let mut x = 0i64;
            pi.read(to_w, "%d", &mut [RSlot::Int(&mut x)]).unwrap();
            pi.write(from_w, "%d", &[WSlot::Int(x * 2)]).unwrap();
            0
        })?;
        pi.start_all()?;
        pi.write(to_w, "%d", &[WSlot::Int(21)])?;
        let mut y = 0i64;
        pi.read(from_w, "%d", &mut [RSlot::Int(&mut y)])?;
        total.store(y, Ordering::SeqCst);
        pi.stop_main(0)
    });
    assert!(out.is_clean(), "{out:?}");
    assert_eq!(total.load(Ordering::SeqCst), 42);
    assert_eq!(out.artifacts.main_status, Some(0));
}

#[test]
#[allow(clippy::needless_range_loop)] // mirrors the paper's C listing
fn lab2_style_sum_with_runtime_arrays() {
    // The paper's Fig. 3 program: W workers each get a share of an
    // array, sum it, and report back.
    const W: usize = 4;
    const NUM: usize = 1000;
    let grand_total = AtomicI64::new(0);
    let cfg = PilotConfig::new(W + 1);
    let out = pilot::run(cfg, |pi| {
        let mut workers = Vec::new();
        let mut to_worker = Vec::new();
        let mut result = Vec::new();
        for i in 0..W {
            let w = pi.create_process(i as i64)?;
            workers.push(w);
            to_worker.push(pi.create_channel(PI_MAIN, w)?);
            result.push(pi.create_channel(w, PI_MAIN)?);
        }
        for (i, &w) in workers.iter().enumerate() {
            let (tw, rs) = (to_worker[i], result[i]);
            pi.assign_work(w, move |pi, _index| {
                let mut myshare = 0i64;
                pi.read(tw, "%d", &mut [RSlot::Int(&mut myshare)]).unwrap();
                let mut buff = vec![0i64; myshare as usize];
                pi.read(tw, "%*d", &mut [RSlot::IntArr(&mut buff)]).unwrap();
                let sum: i64 = buff.iter().sum();
                pi.write(rs, "%d", &[WSlot::Int(sum)]).unwrap();
                0
            })?;
        }
        pi.start_all()?;
        let numbers: Vec<i64> = (0..NUM as i64).collect();
        for i in 0..W {
            let mut portion = NUM / W;
            if i == W - 1 {
                portion += NUM % W;
            }
            let lo = i * (NUM / W);
            pi.write(to_worker[i], "%d", &[WSlot::Int(portion as i64)])?;
            pi.write(
                to_worker[i],
                "%*d",
                &[WSlot::IntArr(&numbers[lo..lo + portion])],
            )?;
        }
        let mut total = 0i64;
        for i in 0..W {
            let mut sum = 0i64;
            pi.read(result[i], "%d", &mut [RSlot::Int(&mut sum)])?;
            total += sum;
        }
        grand_total.store(total, Ordering::SeqCst);
        pi.stop_main(0)
    });
    assert!(out.is_clean(), "{out:?}");
    let expect: i64 = (0..NUM as i64).sum();
    assert_eq!(grand_total.load(Ordering::SeqCst), expect);
}

#[test]
fn autoalloc_receive_v21_feature() {
    // The paper's footnote 3: "%^d" replaces the two-read-plus-malloc
    // idiom with a single call.
    let got = Mutex::new(Vec::new());
    let cfg = PilotConfig::new(2);
    let out = pilot::run(cfg, |pi| {
        let w = pi.create_process(0)?;
        let c = pi.create_channel(PI_MAIN, w)?;
        let got = &got;
        pi.assign_work(w, move |pi, _| {
            let mut buff: Vec<i64> = Vec::new();
            pi.read(c, "%^d", &mut [RSlot::IntVec(&mut buff)]).unwrap();
            *got.lock().unwrap() = buff;
            0
        })?;
        pi.start_all()?;
        let data: Vec<i64> = (0..37).collect();
        pi.write(c, "%^d", &[WSlot::IntArr(&data)])?;
        pi.stop_main(0)
    });
    assert!(out.is_clean(), "{out:?}");
    assert_eq!(got.lock().unwrap().len(), 37);
    assert_eq!(got.lock().unwrap()[36], 36);
}

#[test]
fn worker_to_worker_pipeline() {
    let seen = AtomicI64::new(0);
    let cfg = PilotConfig::new(3);
    let out = pilot::run(cfg, |pi| {
        let a = pi.create_process(0)?;
        let b = pi.create_process(1)?;
        let main_to_a = pi.create_channel(PI_MAIN, a)?;
        let a_to_b = pi.create_channel(a, b)?;
        let b_to_main = pi.create_channel(b, PI_MAIN)?;
        pi.assign_work(a, move |pi, _| {
            let mut x = 0i64;
            pi.read(main_to_a, "%d", &mut [RSlot::Int(&mut x)]).unwrap();
            pi.write(a_to_b, "%d", &[WSlot::Int(x + 1)]).unwrap();
            0
        })?;
        pi.assign_work(b, move |pi, _| {
            let mut x = 0i64;
            pi.read(a_to_b, "%d", &mut [RSlot::Int(&mut x)]).unwrap();
            pi.write(b_to_main, "%d", &[WSlot::Int(x * 10)]).unwrap();
            0
        })?;
        pi.start_all()?;
        pi.write(main_to_a, "%d", &[WSlot::Int(5)])?;
        let mut y = 0i64;
        pi.read(b_to_main, "%d", &mut [RSlot::Int(&mut y)])?;
        seen.store(y, Ordering::SeqCst);
        pi.stop_main(0)
    });
    assert!(out.is_clean(), "{out:?}");
    assert_eq!(seen.load(Ordering::SeqCst), 60);
}

#[test]
fn broadcast_and_gather_collectives() {
    const W: usize = 3;
    let gathered = Mutex::new(vec![0i64; W]);
    let cfg = PilotConfig::new(W + 1);
    let out = pilot::run(cfg, |pi| {
        let mut bc_chans = Vec::new();
        let mut ga_chans = Vec::new();
        let mut procs = Vec::new();
        for i in 0..W {
            let w = pi.create_process(i as i64)?;
            procs.push(w);
            bc_chans.push(pi.create_channel(PI_MAIN, w)?);
            ga_chans.push(pi.create_channel(w, PI_MAIN)?);
        }
        let bc = pi.create_bundle(BundleUsage::Broadcast, &bc_chans)?;
        let ga = pi.create_bundle(BundleUsage::Gather, &ga_chans)?;
        for (i, &w) in procs.iter().enumerate() {
            let (rx, tx) = (bc_chans[i], ga_chans[i]);
            pi.assign_work(w, move |pi, idx| {
                let mut base = 0i64;
                // Receivers of a broadcast just call PI_Read.
                pi.read(rx, "%d", &mut [RSlot::Int(&mut base)]).unwrap();
                // Leaves of a gather just call PI_Write.
                pi.write(tx, "%d", &[WSlot::Int(base + idx)]).unwrap();
                0
            })?;
        }
        pi.start_all()?;
        pi.broadcast(bc, "%d", &[WSlot::Int(100)])?;
        let mut results = vec![0i64; W];
        pi.gather(ga, "%d", &mut RSlot::IntArr(&mut results))?;
        *gathered.lock().unwrap() = results;
        pi.stop_main(0)
    });
    assert!(out.is_clean(), "{out:?}");
    assert_eq!(*gathered.lock().unwrap(), vec![100, 101, 102]);
}

#[test]
fn scatter_and_reduce_collectives() {
    const W: usize = 4;
    let reduced = AtomicI64::new(0);
    let cfg = PilotConfig::new(W + 1);
    let out = pilot::run(cfg, |pi| {
        let mut sc_chans = Vec::new();
        let mut rd_chans = Vec::new();
        let mut procs = Vec::new();
        for i in 0..W {
            let w = pi.create_process(i as i64)?;
            procs.push(w);
            sc_chans.push(pi.create_channel(PI_MAIN, w)?);
            rd_chans.push(pi.create_channel(w, PI_MAIN)?);
        }
        let sc = pi.create_bundle(BundleUsage::Scatter, &sc_chans)?;
        let rd = pi.create_bundle(BundleUsage::Reduce, &rd_chans)?;
        for (i, &w) in procs.iter().enumerate() {
            let (rx, tx) = (sc_chans[i], rd_chans[i]);
            pi.assign_work(w, move |pi, _| {
                let mut part = [0i64; 2];
                pi.read(rx, "%2d", &mut [RSlot::IntArr(&mut part)]).unwrap();
                pi.write(tx, "%d", &[WSlot::Int(part[0] + part[1])])
                    .unwrap();
                0
            })?;
        }
        pi.start_all()?;
        let data: Vec<i64> = (1..=(2 * W) as i64).collect(); // 1..=8
        pi.scatter(sc, "%2d", &WSlot::IntArr(&data))?;
        let mut total = 0i64;
        pi.reduce(
            rd,
            minimpi::ReduceOp::Sum,
            "%d",
            &mut RSlot::Int(&mut total),
        )?;
        reduced.store(total, Ordering::SeqCst);
        pi.stop_main(0)
    });
    assert!(out.is_clean(), "{out:?}");
    assert_eq!(reduced.load(Ordering::SeqCst), 36); // sum 1..=8
}

#[test]
fn select_finds_ready_channel() {
    let picked = AtomicI64::new(-1);
    let cfg = PilotConfig::new(3);
    let out = pilot::run(cfg, |pi| {
        let a = pi.create_process(0)?;
        let b = pi.create_process(1)?;
        let ca = pi.create_channel(a, PI_MAIN)?;
        let cb = pi.create_channel(b, PI_MAIN)?;
        let bundle = pi.create_bundle(BundleUsage::Select, &[ca, cb])?;
        pi.assign_work(a, move |pi, _| {
            // a stays silent until told; b speaks first.
            std::thread::sleep(Duration::from_millis(100));
            pi.write(ca, "%d", &[WSlot::Int(1)]).unwrap();
            0
        })?;
        pi.assign_work(b, move |pi, _| {
            pi.write(cb, "%d", &[WSlot::Int(2)]).unwrap();
            0
        })?;
        pi.start_all()?;
        let ready = pi.select(bundle)?;
        picked.store(ready as i64, Ordering::SeqCst);
        // Drain both channels so nothing is left hanging.
        let mut x = 0i64;
        let chans = [ca, cb];
        pi.read(chans[ready], "%d", &mut [RSlot::Int(&mut x)])?;
        let other = 1 - ready;
        pi.read(chans[other], "%d", &mut [RSlot::Int(&mut x)])?;
        pi.stop_main(0)
    });
    assert!(out.is_clean(), "{out:?}");
    assert_eq!(
        picked.load(Ordering::SeqCst),
        1,
        "channel b (index 1) is ready first"
    );
}

#[test]
fn try_select_and_channel_has_data() {
    let cfg = PilotConfig::new(2);
    let out = pilot::run(cfg, |pi| {
        let w = pi.create_process(0)?;
        let c = pi.create_channel(w, PI_MAIN)?;
        let bundle = pi.create_bundle(BundleUsage::Select, &[c])?;
        pi.assign_work(w, move |pi, _| {
            std::thread::sleep(Duration::from_millis(60));
            pi.write(c, "%d", &[WSlot::Int(9)]).unwrap();
            0
        })?;
        pi.start_all()?;
        // Immediately: nothing there yet.
        assert_eq!(pi.try_select(bundle)?, None);
        assert!(!pi.channel_has_data(c)?);
        // After the worker writes: data present.
        std::thread::sleep(Duration::from_millis(150));
        assert_eq!(pi.try_select(bundle)?, Some(0));
        assert!(pi.channel_has_data(c)?);
        let mut x = 0i64;
        pi.read(c, "%d", &mut [RSlot::Int(&mut x)])?;
        assert_eq!(x, 9);
        pi.stop_main(0)
    });
    assert!(out.is_clean(), "{out:?}");
}

#[test]
fn wrong_reader_is_diagnosed_at_level_1() {
    // PI_MAIN tries to read from a channel whose reader is the worker.
    let cfg = PilotConfig::new(2).with_check_level(1);
    let out = pilot::run(cfg, |pi| {
        let w = pi.create_process(0)?;
        let c = pi.create_channel(PI_MAIN, w)?; // reader is w
        pi.assign_work(w, move |_pi, _| 0)?;
        pi.start_all()?;
        let mut x = 0i64;
        let err = pi.read(c, "%d", &mut [RSlot::Int(&mut x)]).unwrap_err();
        assert!(matches!(err, PilotError::NotChannelReader { .. }), "{err}");
        assert!(err.diagnostic().contains("integration.rs"));
        pi.stop_main(0)
    });
    assert!(out.is_clean(), "{out:?}");
}

#[test]
fn format_mismatch_caught_at_level_2() {
    let cfg = PilotConfig::new(2).with_check_level(2);
    let caught = AtomicI64::new(0);
    let out = pilot::run(cfg, |pi| {
        let w = pi.create_process(0)?;
        let c = pi.create_channel(PI_MAIN, w)?;
        let caught = &caught;
        pi.assign_work(w, move |pi, _| {
            let mut x = 0.0f64;
            match pi.read(c, "%lf", &mut [RSlot::Float(&mut x)]) {
                Err(PilotError::FormatMismatch {
                    writer_fmt,
                    reader_fmt,
                    ..
                }) => {
                    assert_eq!(writer_fmt, "%d");
                    assert_eq!(reader_fmt, "%lf");
                    caught.store(1, Ordering::SeqCst);
                }
                other => panic!("expected FormatMismatch, got {other:?}"),
            }
            0
        })?;
        pi.start_all()?;
        pi.write(c, "%d", &[WSlot::Int(3)])?;
        pi.stop_main(0)
    });
    assert!(out.is_clean(), "{out:?}");
    assert_eq!(caught.load(Ordering::SeqCst), 1);
}

#[test]
fn phase_violations_are_diagnosed() {
    let cfg = PilotConfig::new(2);
    let out = pilot::run(cfg, |pi| {
        let w = pi.create_process(0)?;
        let c = pi.create_channel(PI_MAIN, w)?;
        pi.assign_work(w, |_pi, _| 0)?;
        // Exec-phase call during config:
        let err = pi.write(c, "%d", &[WSlot::Int(1)]).unwrap_err();
        assert!(matches!(err, PilotError::ExecPhaseOnly { .. }));
        pi.start_all()?;
        // Config-phase call during exec:
        let err = pi.create_process(9).unwrap_err();
        assert!(matches!(err, PilotError::ConfigPhaseOnly { .. }));
        pi.stop_main(0)
    });
    assert!(out.is_clean(), "{out:?}");
}

#[test]
fn too_many_processes_is_diagnosed() {
    let cfg = PilotConfig::new(2); // capacity: main + 1 worker
    let out = pilot::run(cfg, |pi| {
        let _ = pi.create_process(0)?;
        let err = pi.create_process(1).unwrap_err();
        assert!(matches!(err, PilotError::TooManyProcesses { .. }));
        Ok(0)
    });
    assert!(out.world.all_ok(), "{out:?}");
}

#[test]
fn native_log_records_calls_in_order() {
    let cfg = PilotConfig::new(3).with_services(svc("c"));
    // 3 ranks, one eaten by the service: capacity 2 (main + 1 worker).
    let out = pilot::run(cfg, |pi| {
        assert_eq!(pi.process_capacity(), 2);
        let w = pi.create_process(7)?;
        let c = pi.create_channel(PI_MAIN, w)?;
        pi.assign_work(w, move |pi, _| {
            let mut x = 0i64;
            pi.read(c, "%d", &mut [RSlot::Int(&mut x)]).unwrap();
            0
        })?;
        pi.start_all()?;
        pi.write(c, "%d", &[WSlot::Int(1)])?;
        pi.log("hello from main");
        pi.stop_main(0)
    });
    assert!(out.is_clean(), "{out:?}");
    let log = out.artifacts.native_log.join("\n");
    assert!(log.contains("PI_CreateProcess"), "{log}");
    assert!(log.contains("PI_CreateChannel"), "{log}");
    assert!(log.contains("PI_StartAll"), "{log}");
    assert!(log.contains("PI_Write C0 fmt=%d"), "{log}");
    assert!(log.contains("PI_Read C0 fmt=%d"), "{log}");
    assert!(log.contains("PI_Log hello from main"), "{log}");
    assert!(log.contains("PI_StopMain"), "{log}");
    // Source lines are pinpointed.
    assert!(log.contains("integration.rs:"), "{log}");
}

#[test]
fn deadlock_cycle_is_detected_and_reported() {
    // Two workers each read from the other first: the classic cycle.
    let cfg = PilotConfig::new(4).with_services(svc("d"));
    let out = pilot::run(cfg, |pi| {
        let a = pi.create_process(0)?;
        let b = pi.create_process(1)?;
        let ab = pi.create_channel(a, b)?;
        let ba = pi.create_channel(b, a)?;
        pi.assign_work(a, move |pi, _| {
            let mut x = 0i64;
            match pi.read(ba, "%d", &mut [RSlot::Int(&mut x)]) {
                Err(_) => 7, // unblocked by the detector's abort
                Ok(()) => {
                    let _ = pi.write(ab, "%d", &[WSlot::Int(1)]);
                    0
                }
            }
        })?;
        pi.assign_work(b, move |pi, _| {
            let mut x = 0i64;
            match pi.read(ab, "%d", &mut [RSlot::Int(&mut x)]) {
                Err(_) => 7,
                Ok(()) => {
                    let _ = pi.write(ba, "%d", &[WSlot::Int(1)]);
                    0
                }
            }
        })?;
        pi.start_all()?;
        pi.stop_main(0)
    });
    let report = out.artifacts.deadlock.expect("deadlock must be detected");
    assert_eq!(report.stuck.len(), 2);
    let text = report.to_string();
    assert!(text.contains("PI_Read"), "{text}");
    assert!(text.contains("integration.rs"), "{text}");
    assert!(out.world.aborted.is_some());
}

#[test]
fn reading_from_exited_writer_is_deadlock() {
    let cfg = PilotConfig::new(3).with_services(svc("d"));
    let out = pilot::run(cfg, |pi| {
        let w = pi.create_process(0)?;
        let c = pi.create_channel(w, PI_MAIN)?;
        // The worker exits without ever writing.
        pi.assign_work(w, |_pi, _| 0)?;
        pi.start_all()?;
        let mut x = 0i64;
        match pi.read(c, "%d", &mut [RSlot::Int(&mut x)]) {
            Err(_) => {} // detector aborted us
            Ok(()) => panic!("read should never succeed"),
        }
        pi.stop_main(0)
    });
    let report = out.artifacts.deadlock.expect("deadlock must be detected");
    assert_eq!(report.stuck[0].0, 0, "PI_MAIN is the stuck process");
    assert!(report.stuck[0].1.contains("waiting for P1"));
}

#[test]
fn buffered_write_before_exit_is_not_deadlock() {
    // The credit mechanism: worker writes then exits; main reads later.
    let cfg = PilotConfig::new(3).with_services(svc("d"));
    let out = pilot::run(cfg, |pi| {
        let w = pi.create_process(0)?;
        let c = pi.create_channel(w, PI_MAIN)?;
        pi.assign_work(w, move |pi, _| {
            pi.write(c, "%d", &[WSlot::Int(5)]).unwrap();
            0
        })?;
        pi.start_all()?;
        // Give the worker ample time to write AND exit first.
        std::thread::sleep(Duration::from_millis(100));
        let mut x = 0i64;
        pi.read(c, "%d", &mut [RSlot::Int(&mut x)])?;
        assert_eq!(x, 5);
        pi.stop_main(0)
    });
    assert!(out.is_clean(), "{out:?}");
    assert!(out.artifacts.deadlock.is_none());
}

#[test]
fn jumpshot_logging_produces_merged_clog() {
    let cfg = PilotConfig::new(3).with_services(svc("j"));
    let out = pilot::run(cfg, |pi| {
        assert!(pi.is_logging());
        let w1 = pi.create_process(0)?;
        let w2 = pi.create_process(1)?;
        let c1 = pi.create_channel(PI_MAIN, w1)?;
        let c2 = pi.create_channel(PI_MAIN, w2)?;
        for (w, c) in [(w1, c1), (w2, c2)] {
            pi.assign_work(w, move |pi, _| {
                let mut x = 0i64;
                pi.read(c, "%d", &mut [RSlot::Int(&mut x)]).unwrap();
                0
            })?;
        }
        pi.start_all()?;
        pi.write(c1, "%d", &[WSlot::Int(1)])?;
        pi.write(c2, "%d", &[WSlot::Int(2)])?;
        pi.stop_main(0)
    });
    assert!(out.is_clean(), "{out:?}");
    let clog = out.clog().expect("merged CLOG must exist");
    assert_eq!(clog.nranks, 3);
    // Every rank contributed a block with records.
    for r in 0..3u32 {
        assert!(!clog.blocks[&r].is_empty(), "rank {r} should have records");
    }
    // The state vocabulary is defined.
    let names: Vec<&str> = clog.state_defs.iter().map(|d| d.name.as_str()).collect();
    for want in ["PI_Configure", "Compute", "PI_Read", "PI_Write"] {
        assert!(names.contains(&want), "{names:?}");
    }
    // Wrap-up time was measured.
    let wrapup = out.artifacts.wrapup_seconds.expect("wrapup measured");
    assert!((0.0..5.0).contains(&wrapup), "wrapup {wrapup}");
    // Timeline names recorded for the viewer.
    assert_eq!(
        out.artifacts.process_names,
        vec!["PI_MAIN".to_string(), "P1".to_string(), "P2".to_string()]
    );
}

#[test]
fn converted_log_has_states_arrows_and_nesting() {
    use slog2::{Converter, Drawable, TraceSource};
    let cfg = PilotConfig::new(2).with_services(svc("j"));
    let out = pilot::run(cfg, |pi| {
        let w = pi.create_process(0)?;
        let c = pi.create_channel(PI_MAIN, w)?;
        pi.assign_work(w, move |pi, _| {
            let mut v = [0i64; 3];
            // One call, two specifiers -> two messages, two bubbles.
            let mut x = 0i64;
            pi.read(
                c,
                "%d %3d",
                &mut [RSlot::Int(&mut x), RSlot::IntArr(&mut v)],
            )
            .unwrap();
            0
        })?;
        pi.start_all()?;
        pi.write(c, "%d %3d", &[WSlot::Int(7), WSlot::IntArr(&[1, 2, 3])])?;
        pi.stop_main(0)
    });
    assert!(out.is_clean(), "{out:?}");
    let conv = Converter::new()
        .convert(TraceSource::InMemory(out.clog().unwrap()))
        .unwrap();
    let (file, warnings) = (conv.file, conv.warnings);
    assert!(warnings.is_empty(), "{warnings:?}");
    let ds = file.tree.query(slog2::TimeWindow::ALL);

    let cat = |name: &str| file.category_by_name(name).unwrap().index;
    let count_states = |c: slog2::CategoryId| {
        ds.iter()
            .filter(|d| matches!(d, Drawable::State(s) if s.category == c))
            .count()
    };
    // One PI_Write on main, one PI_Read on the worker.
    assert_eq!(count_states(cat("PI_Write")), 1);
    assert_eq!(count_states(cat("PI_Read")), 1);
    // Configure and Compute rectangles on both ranks.
    assert_eq!(count_states(cat("PI_Configure")), 2);
    assert_eq!(count_states(cat("Compute")), 2);
    // Two data messages -> two arrows and two arrival bubbles.
    let arrows: Vec<_> = ds
        .iter()
        .filter_map(|d| match d {
            Drawable::Arrow(a) => Some(a),
            _ => None,
        })
        .collect();
    assert_eq!(arrows.len(), 2, "{arrows:?}");
    assert!(arrows
        .iter()
        .all(|a| a.from_timeline.as_u32() == 0 && a.to_timeline.as_u32() == 1));
    assert!(arrows.iter().all(|a| a.end >= a.start), "causal arrows");
    let bubbles = ds
        .iter()
        .filter(|d| matches!(d, Drawable::Event(e) if e.category == cat("msg arrival")))
        .count();
    assert_eq!(bubbles, 2);
    // PI_Read is nested inside Compute on the worker's timeline.
    let read_state = ds
        .iter()
        .find_map(|d| match d {
            Drawable::State(s) if s.category == cat("PI_Read") => Some(s),
            _ => None,
        })
        .unwrap();
    assert_eq!(read_state.timeline.as_u32(), 1);
    assert_eq!(read_state.nest_level, 1);
    assert!(read_state.text.contains("Line:"), "{}", read_state.text);
}

#[test]
fn abort_loses_mpe_log_but_keeps_native_log() {
    // The paper's Section III.B phenomenon, reproduced end to end.
    let cfg = PilotConfig::new(3).with_services(svc("cj"));
    let out = pilot::run(cfg, |pi| {
        let w = pi.create_process(0)?;
        let c = pi.create_channel(PI_MAIN, w)?;
        pi.assign_work(w, move |pi, _| {
            let mut x = 0i64;
            let _ = pi.read(c, "%d", &mut [RSlot::Int(&mut x)]);
            0
        })?;
        pi.start_all()?;
        pi.write(c, "%d", &[WSlot::Int(1)])?;
        std::thread::sleep(Duration::from_millis(50));
        Err(pi.abort(13, "fatal problem detected"))
    });
    assert_eq!(out.world.aborted.map(|(r, _)| r), Some(0));
    // MPE log: lost (the merge needed messaging).
    assert!(out.clog().is_none(), "MPE log must be lost on abort");
    // Native log: everything streamed before the abort survives.
    let log = out.artifacts.native_log.join("\n");
    assert!(log.contains("PI_CreateProcess"), "{log}");
    assert!(log.contains("PI_Write"), "{log}");
    assert!(log.contains("PI_Abort"), "{log}");
}

#[test]
fn level_zero_skips_api_misuse_checks() {
    // At -picheck=0 the wrong-reader check is skipped; the read then
    // simply blocks for data that will never come... so use a case that
    // still terminates: wrong WRITER, whose message goes nowhere fatal.
    let cfg = PilotConfig::new(2).with_check_level(0);
    let out = pilot::run(cfg, |pi| {
        let w = pi.create_process(0)?;
        let c = pi.create_channel(w, PI_MAIN)?; // writer is w, not main
        pi.assign_work(w, |_pi, _| 0)?;
        pi.start_all()?;
        // Main writes on a channel it does not own: level 0 lets it pass
        // (the C library would likewise corrupt silently).
        assert!(pi.write(c, "%d", &[WSlot::Int(1)]).is_ok());
        pi.stop_main(0)
    });
    assert!(out.world.all_ok(), "{out:?}");
}

#[test]
fn set_names_flow_to_artifacts() {
    let cfg = PilotConfig::new(3).with_services(svc("j"));
    let out = pilot::run(cfg, |pi| {
        let d = pi.create_process(0)?;
        let c = pi.create_process(1)?;
        pi.set_process_name(d, "decompressor")?;
        pi.set_process_name(c, "compressor")?;
        let ch = pi.create_channel(d, c)?;
        pi.set_channel_name(ch, "pixels")?;
        assert_eq!(pi.channel_name(ch), "pixels");
        assert_eq!(pi.process_name(d), "decompressor");
        pi.assign_work(d, move |pi, _| {
            pi.write(ch, "%d", &[WSlot::Int(1)]).unwrap();
            0
        })?;
        pi.assign_work(c, move |pi, _| {
            let mut x = 0i64;
            pi.read(ch, "%d", &mut [RSlot::Int(&mut x)]).unwrap();
            0
        })?;
        pi.start_all()?;
        pi.stop_main(0)
    });
    assert!(out.is_clean(), "{out:?}");
    assert_eq!(
        out.artifacts.process_names,
        vec![
            "PI_MAIN".to_string(),
            "decompressor".to_string(),
            "compressor".to_string()
        ]
    );
}

#[test]
fn idle_ranks_are_harmless() {
    // 5 ranks but only 1 worker created: ranks 2..4 idle through.
    let cfg = PilotConfig::new(5);
    let out = pilot::run(cfg, |pi| {
        let w = pi.create_process(0)?;
        let c = pi.create_channel(PI_MAIN, w)?;
        pi.assign_work(w, move |pi, _| {
            let mut x = 0i64;
            pi.read(c, "%d", &mut [RSlot::Int(&mut x)]).unwrap();
            0
        })?;
        pi.start_all()?;
        pi.write(c, "%d", &[WSlot::Int(1)])?;
        pi.stop_main(0)
    });
    assert!(out.is_clean(), "{out:?}");
}

#[test]
fn synchronous_channels_rendezvous() {
    let mut cfg = PilotConfig::new(2);
    cfg.synchronous_channels = true;
    let out = pilot::run(cfg, |pi| {
        let w = pi.create_process(0)?;
        let c = pi.create_channel(PI_MAIN, w)?;
        pi.assign_work(w, move |pi, _| {
            std::thread::sleep(Duration::from_millis(50));
            let mut x = 0i64;
            pi.read(c, "%d", &mut [RSlot::Int(&mut x)]).unwrap();
            0
        })?;
        pi.start_all()?;
        let t0 = std::time::Instant::now();
        pi.write(c, "%d", &[WSlot::Int(1)])?; // must block ~50ms
        assert!(t0.elapsed() >= Duration::from_millis(30));
        pi.stop_main(0)
    });
    assert!(out.is_clean(), "{out:?}");
}

#[test]
fn start_time_end_time_measure_intervals() {
    let cfg = PilotConfig::new(1);
    let out = pilot::run(cfg, |pi| {
        pi.start_all()?;
        let t = pi.start_time();
        assert!(t >= 0.0);
        std::thread::sleep(Duration::from_millis(20));
        let dt = pi.end_time();
        assert!(dt >= 0.015, "elapsed {dt}");
        pi.stop_main(0)
    });
    assert!(out.is_clean(), "{out:?}");
}

#[test]
fn config_only_program_with_services_shuts_down() {
    let cfg = PilotConfig::new(3).with_services(svc("cdj"));
    let out = pilot::run(cfg, |pi| {
        let _w = pi.create_process(0)?;
        // Never calls start_all; finalize must still shut everything down.
        Ok(0)
    });
    assert!(out.world.all_ok(), "{out:?}");
    // Even got a (config-only) MPE log.
    assert!(out.clog().is_some());
}

#[test]
fn missing_work_function_is_diagnosed() {
    let cfg = PilotConfig::new(2);
    let out = pilot::run(cfg, |pi| {
        let _w = pi.create_process(0)?;
        let err = pi.start_all().unwrap_err();
        assert!(matches!(err, PilotError::BadArgument { .. }), "{err}");
        Ok(0)
    });
    assert!(out.world.all_ok(), "{out:?}");
}

#[test]
fn bundle_misuse_is_diagnosed() {
    let cfg = PilotConfig::new(3);
    let out = pilot::run(cfg, |pi| {
        let a = pi.create_process(0)?;
        let b = pi.create_process(1)?;
        let ca = pi.create_channel(PI_MAIN, a)?;
        let cb = pi.create_channel(PI_MAIN, b)?;
        let bundle = pi.create_bundle(BundleUsage::Broadcast, &[ca, cb])?;
        // Channels with different readers cannot form a gather bundle.
        let ga = pi.create_bundle(BundleUsage::Gather, &[ca, cb]);
        assert!(matches!(ga, Err(PilotError::NoCommonEndpoint { .. })));
        for (w, c) in [(a, ca), (b, cb)] {
            pi.assign_work(w, move |pi, _| {
                let mut x = 0i64;
                pi.read(c, "%d", &mut [RSlot::Int(&mut x)]).unwrap();
                0
            })?;
        }
        pi.start_all()?;
        // Using a broadcast bundle with gather is rejected.
        let mut out_arr = [0i64; 2];
        let err = pi
            .gather(bundle, "%d", &mut RSlot::IntArr(&mut out_arr))
            .unwrap_err();
        assert!(matches!(err, PilotError::WrongBundleUsage { .. }), "{err}");
        // Release the workers properly.
        pi.broadcast(bundle, "%d", &[WSlot::Int(1)])?;
        pi.stop_main(0)
    });
    assert!(out.is_clean(), "{out:?}");
}

#[test]
fn spill_files_salvage_the_log_after_abort() {
    // The paper's future-work item (§V), implemented: with a spill dir
    // configured, an aborted run still yields a usable (partial) log.
    let dir = std::env::temp_dir().join("pilot-spill-test");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = PilotConfig::new(2)
        .with_services(svc("j"))
        .with_spill_dir(dir.clone());
    let out = pilot::run(cfg, |pi| {
        let w = pi.create_process(0)?;
        let c = pi.create_channel(PI_MAIN, w)?;
        pi.assign_work(w, move |pi, _| {
            let mut x = 0i64;
            let _ = pi.read(c, "%d", &mut [RSlot::Int(&mut x)]);
            // Block forever; the abort will free us.
            let _ = pi.read(c, "%d", &mut [RSlot::Int(&mut x)]);
            0
        })?;
        pi.start_all()?;
        pi.write(c, "%d", &[WSlot::Int(7)])?;
        std::thread::sleep(Duration::from_millis(60));
        Err(pi.abort(5, "boom"))
    });
    // The ordinary merged log is lost, as always...
    assert!(out.clog().is_none());
    // ...but the spill files survive and salvage to a usable CLOG2.
    let clog = mpelog::salvage(&dir).unwrap().expect("spilled log");
    assert_eq!(clog.nranks, 2);
    assert!(
        clog.blocks[&0]
            .iter()
            .any(|r| matches!(r, mpelog::Record::Send { tag: 1000, .. })),
        "the PI_Write send must have been spilled"
    );
    // The salvaged log converts; the PI_Write state is visible.
    let slog = slog2::Converter::new()
        .convert(slog2::TraceSource::InMemory(&clog))
        .unwrap()
        .file;
    let stats = slog2::legend_stats(&slog);
    let cat = slog.category_by_name("PI_Write").unwrap().index;
    assert_eq!(stats[&cat].count, 1);
}

#[test]
fn injected_fault_yields_forensics_and_salvaged_timeline() {
    use slog2::{Converter, FailureKind, RankVerdict, SalvageReport, TornPolicy, TraceSource};

    let dir = std::env::temp_dir().join("pilot-fault-forensics");
    let _ = std::fs::remove_dir_all(&dir);
    // The worker is rank 1; clock sync only runs at wrap-up, so its
    // PI_Reads are its first receives: the plan kills it entering the
    // second one.
    let plan = minimpi::FaultPlan::new(42).panic_at_recv(1, 2, "injected: worker dies mid-read");
    let cfg = PilotConfig::new(2)
        .with_services(svc("j"))
        .with_spill_dir(dir.clone())
        .with_fault_plan(plan);
    let out = pilot::run(cfg, |pi| {
        let w = pi.create_process(0)?;
        let c = pi.create_channel(PI_MAIN, w)?;
        pi.assign_work(w, move |pi, _| {
            let mut x = 0i64;
            pi.read(c, "%d", &mut [RSlot::Int(&mut x)]).unwrap();
            let _ = pi.read(c, "%d", &mut [RSlot::Int(&mut x)]); // dies entering this
            0
        })?;
        pi.start_all()?;
        pi.write(c, "%d", &[WSlot::Int(7)])?;
        std::thread::sleep(Duration::from_millis(80));
        pi.stop_main(0)
    });
    // The world captured the panic as structured forensics.
    assert_eq!(out.world.failures.len(), 1, "{:?}", out.world.panics);
    let f = &out.world.failures[0];
    assert_eq!(f.rank, 1);
    assert_eq!(f.last_op, "recv");
    assert!(f.payload.contains("injected: worker dies"), "{}", f.payload);
    assert!(out.world.aborted.is_some());
    assert!(out.clog().is_none(), "merged log is lost on abort");
    // The spilled records salvage, and the salvage converter produces a
    // validated timeline with a terminal ABORTED state on the dead rank.
    let clog = mpelog::salvage(&dir).unwrap().expect("spilled log");
    let report = SalvageReport {
        verdicts: out
            .world
            .failures
            .iter()
            .map(|f| RankVerdict {
                rank: f.rank as u32,
                kind: FailureKind::Aborted,
                detail: f.to_string(),
            })
            .collect(),
        diagnosis: Some("fault-injection run".into()),
        ..Default::default()
    };
    let conv = Converter::new()
        .on_torn(TornPolicy::Salvage(report))
        .convert(TraceSource::InMemory(&clog))
        .unwrap();
    let (slog, warnings) = (conv.file, conv.warnings);
    assert!(slog2::validate(&slog).is_empty());
    let aborted = slog.category_by_name("ABORTED").expect("terminal category");
    let ds = slog.tree.query(slog2::TimeWindow::ALL);
    assert!(
        ds.iter().any(|d| matches!(
            d,
            slog2::Drawable::State(s) if s.category == aborted.index && s.timeline.as_u32() == 1
        )),
        "dead rank must carry a terminal ABORTED rectangle"
    );
    assert!(
        warnings
            .iter()
            .any(|w| w.to_string().contains("rank 1 ABORTED")),
        "{warnings:?}"
    );
}

#[test]
fn stall_watchdog_diagnoses_quiet_blocked_process() {
    // A reader waits for a message that is a long time coming — to the
    // service rank this is indistinguishable from a message lost in the
    // transport. No wait-for cycle ever forms, so only the stall
    // watchdog can diagnose it.
    let cfg = PilotConfig::new(3)
        .with_services(svc("d"))
        .with_stall_timeout(Duration::from_millis(150));
    let out = pilot::run(cfg, |pi| {
        let w = pi.create_process(0)?;
        let c = pi.create_channel(PI_MAIN, w)?;
        pi.assign_work(w, move |pi, _| {
            let mut x = 0i64;
            match pi.read(c, "%d", &mut [RSlot::Int(&mut x)]) {
                Err(_) => 7, // unblocked by the watchdog's abort
                Ok(()) => 0,
            }
        })?;
        pi.start_all()?;
        // Main dawdles far past the watchdog window before writing.
        std::thread::sleep(Duration::from_millis(600));
        let _ = pi.write(c, "%d", &[WSlot::Int(1)]);
        pi.stop_main(0)
    });
    let report = out.artifacts.deadlock.expect("stall watchdog must fire");
    assert_eq!(report.stuck.len(), 1, "{report}");
    assert_eq!(report.stuck[0].0, 1, "the worker is the stuck process");
    let text = report.to_string();
    assert!(text.contains("stalled in PI_Read"), "{text}");
    assert!(text.contains("waiting for P0"), "{text}");
    assert!(text.contains("timed out"), "{text}");
    assert_eq!(out.world.aborted, Some((2, -3)), "service rank aborts");
}

#[test]
fn spill_and_buffer_agree_on_clean_runs() {
    let dir = std::env::temp_dir().join("pilot-spill-clean");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = PilotConfig::new(2)
        .with_services(svc("j"))
        .with_spill_dir(dir.clone());
    let out = pilot::run(cfg, |pi| {
        let w = pi.create_process(0)?;
        let c = pi.create_channel(PI_MAIN, w)?;
        pi.assign_work(w, move |pi, _| {
            let mut x = 0i64;
            pi.read(c, "%d", &mut [RSlot::Int(&mut x)]).unwrap();
            0
        })?;
        pi.start_all()?;
        pi.write(c, "%d", &[WSlot::Int(7)])?;
        pi.stop_main(0)
    });
    assert!(out.is_clean(), "{out:?}");
    let merged = out.clog().unwrap();
    let salvaged = mpelog::salvage(&dir).unwrap().unwrap();
    // Same record counts per rank (timestamps differ: the merged log is
    // clock-corrected, the spill is raw).
    for r in 0..2u32 {
        assert_eq!(
            salvaged.blocks[&r].len(),
            merged.blocks[&r].len(),
            "rank {r}"
        );
    }
    assert_eq!(salvaged.state_defs, merged.state_defs);
}

// ---- virtual engine (discrete-event simulation) ----

#[test]
fn virtual_engine_jumpshot_log_is_byte_identical_across_runs() {
    let run = || {
        let cfg = PilotConfig::new(3)
            .with_services(svc("j"))
            .with_engine(minimpi::Engine::Virtual { seed: 42 });
        let out = pilot::run(cfg, |pi| {
            let w1 = pi.create_process(0)?;
            let w2 = pi.create_process(1)?;
            let c1 = pi.create_channel(PI_MAIN, w1)?;
            let c2 = pi.create_channel(w1, w2)?;
            let c3 = pi.create_channel(w2, PI_MAIN)?;
            pi.assign_work(w1, move |pi, _| {
                let mut x = 0i64;
                pi.read(c1, "%d", &mut [RSlot::Int(&mut x)]).unwrap();
                pi.write(c2, "%d", &[WSlot::Int(x + 1)]).unwrap();
                0
            })?;
            pi.assign_work(w2, move |pi, _| {
                let mut x = 0i64;
                pi.read(c2, "%d", &mut [RSlot::Int(&mut x)]).unwrap();
                pi.write(c3, "%d", &[WSlot::Int(x + 1)]).unwrap();
                0
            })?;
            pi.start_all()?;
            pi.write(c1, "%d", &[WSlot::Int(1)])?;
            let mut y = 0i64;
            pi.read(c3, "%d", &mut [RSlot::Int(&mut y)])?;
            assert_eq!(y, 3);
            pi.stop_main(0)
        });
        assert!(out.is_clean(), "{out:?}");
        out.clog().expect("merged CLOG must exist").to_bytes()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "virtual-engine CLOG2 bytes must be identical");
}

#[test]
fn virtual_engine_detects_deadlock_cycle() {
    let cfg = PilotConfig::new(4)
        .with_services(svc("d"))
        .with_engine(minimpi::Engine::Virtual { seed: 7 });
    let out = pilot::run(cfg, |pi| {
        let a = pi.create_process(0)?;
        let b = pi.create_process(1)?;
        let ab = pi.create_channel(a, b)?;
        let ba = pi.create_channel(b, a)?;
        pi.assign_work(a, move |pi, _| {
            let mut x = 0i64;
            match pi.read(ba, "%d", &mut [RSlot::Int(&mut x)]) {
                Err(_) => 7,
                Ok(()) => 0,
            }
        })?;
        pi.assign_work(b, move |pi, _| {
            let mut x = 0i64;
            match pi.read(ab, "%d", &mut [RSlot::Int(&mut x)]) {
                Err(_) => 7,
                Ok(()) => 0,
            }
        })?;
        pi.start_all()?;
        pi.stop_main(0)
    });
    let report = out.artifacts.deadlock.expect("deadlock must be detected");
    assert_eq!(report.stuck.len(), 2);
    assert!(out.world.aborted.is_some());
}

#[test]
fn virtual_engine_stall_watchdog_fires_in_virtual_time() {
    // A worker disappears into an hour-long compute while PI_MAIN
    // blocks on its result; the watchdog window is 60 virtual seconds,
    // which must elapse in negligible wall time.
    let t0 = std::time::Instant::now();
    let cfg = PilotConfig::new(4)
        .with_services(svc("d"))
        .with_engine(minimpi::Engine::Virtual { seed: 3 })
        .with_stall_timeout(Duration::from_secs(60));
    let out = pilot::run(cfg, |pi| {
        let a = pi.create_process(0)?;
        let ma = pi.create_channel(PI_MAIN, a)?;
        let am = pi.create_channel(a, PI_MAIN)?;
        pi.assign_work(a, move |pi, _| {
            let mut x = 0i64;
            pi.read(ma, "%d", &mut [RSlot::Int(&mut x)]).unwrap();
            // An hour of virtual compute: progress stops with no
            // wait-for cycle, which only the watchdog can convict.
            pi.sleep(Duration::from_secs(3600));
            let _ = pi.write(am, "%d", &[WSlot::Int(x)]);
            0
        })?;
        pi.start_all()?;
        pi.write(ma, "%d", &[WSlot::Int(5)])?;
        let mut y = 0i64;
        match pi.read(am, "%d", &mut [RSlot::Int(&mut y)]) {
            Err(_) => {} // watchdog aborted the world
            Ok(()) => panic!("result should not arrive before the watchdog"),
        }
        pi.stop_main(0)
    });
    let report = out.artifacts.deadlock.expect("stall must be convicted");
    assert!(report.to_string().contains("stall"), "{report}");
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "virtual watchdog burned {:?} of wall time",
        t0.elapsed()
    );
}
