//! Handle types for processes, channels, and bundles.
//!
//! Like the C library's `PI_PROCESS*` / `PI_CHANNEL*` / `PI_BUNDLE*`,
//! these are opaque references into tables built during the
//! configuration phase. Because configuration code runs identically on
//! every rank, the indices agree world-wide, so the handles are plain
//! `Copy` ids that work from any process — including from inside work
//! functions that captured them.

/// A Pilot process. `PI_MAIN` is process 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Process(pub(crate) usize);

/// The main process (rank 0): the process that calls
/// [`crate::Pilot::start_all`] and continues afterwards.
pub const PI_MAIN: Process = Process(0);

impl Process {
    /// The process's table index (also its MPI rank).
    pub fn index(self) -> usize {
        self.0
    }
}

/// A point-to-point channel from one process to another.
///
/// Channels are directed: exactly one writer process and one reader
/// process, fixed at creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Channel(pub(crate) usize);

impl Channel {
    /// The channel's table index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A bundle: a set of channels sharing a common process endpoint, used
/// as the argument to collective operations (and to select).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bundle(pub(crate) usize);

impl Bundle {
    /// The bundle's table index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// What a bundle is for. Pilot checks that a bundle is used only with
/// the collective operation it was created for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BundleUsage {
    /// Root writes the same data to every channel (`PI_Broadcast`).
    Broadcast,
    /// Root reads one contribution per channel (`PI_Gather`).
    Gather,
    /// Root writes a distinct slice to each channel (`PI_Scatter`).
    Scatter,
    /// Root reads contributions and combines them (`PI_Reduce`).
    Reduce,
    /// Root waits for any channel to become readable (`PI_Select`).
    Select,
}

impl BundleUsage {
    /// Display name matching the Pilot function it serves.
    pub fn name(self) -> &'static str {
        match self {
            BundleUsage::Broadcast => "PI_Broadcast",
            BundleUsage::Gather => "PI_Gather",
            BundleUsage::Scatter => "PI_Scatter",
            BundleUsage::Reduce => "PI_Reduce",
            BundleUsage::Select => "PI_Select",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_copy_ids() {
        let p = Process(3);
        let q = p;
        assert_eq!(p, q);
        assert_eq!(p.index(), 3);
        assert_eq!(PI_MAIN.index(), 0);
        assert_eq!(Channel(7).index(), 7);
        assert_eq!(Bundle(1).index(), 1);
    }

    #[test]
    fn usage_names_match_api() {
        assert_eq!(BundleUsage::Broadcast.name(), "PI_Broadcast");
        assert_eq!(BundleUsage::Select.name(), "PI_Select");
    }
}
