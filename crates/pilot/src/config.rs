//! Run configuration — the analogue of Pilot's command-line options.
//!
//! The C library reads `-pisvc=` (service letters) and `-picheck=`
//! (error-check level) from `argv` inside `PI_Configure`.
//! [`PilotConfig::from_args`] parses the same syntax so examples can be
//! driven exactly like the paper drives them (`-pisvc=cj` etc.), and
//! builder methods cover programmatic use.

use std::path::PathBuf;
use std::time::Duration;

use minimpi::{ClockConfig, Engine, FaultPlan};

/// Which optional run-time services are enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Services {
    /// `c`: native call logging (streams each entry to the service rank,
    /// which writes it to disk immediately — abort-safe, but consumes an
    /// MPI rank).
    pub call_log: bool,
    /// `d`: the integrated deadlock detector (shares the service rank).
    pub deadlock: bool,
    /// `j`: MPE/Jumpshot logging (buffered per rank, merged at the end;
    /// no extra rank, but the log is lost on abort).
    pub jumpshot: bool,
}

impl Services {
    /// Parse the letters of a `-pisvc=` value.
    pub fn parse(letters: &str) -> Result<Services, String> {
        let mut s = Services::default();
        for ch in letters.chars() {
            match ch {
                'c' => s.call_log = true,
                'd' => s.deadlock = true,
                'j' => s.jumpshot = true,
                other => return Err(format!("unknown service letter '{other}' in -pisvc")),
            }
        }
        Ok(s)
    }

    /// Does this configuration consume a dedicated service rank?
    /// (Native logging and deadlock detection share one.)
    pub fn needs_service_rank(&self) -> bool {
        self.call_log || self.deadlock
    }
}

/// Complete configuration for [`crate::run`].
#[derive(Debug, Clone)]
pub struct PilotConfig {
    /// Total MPI ranks, like `mpirun -n N`. One becomes `PI_MAIN`, one
    /// may be taken by services; the rest are available for processes.
    pub ranks: usize,
    /// Enabled services.
    pub services: Services,
    /// Error-check level 0..=3 (the `-picheck=` option):
    /// 0 = minimal, 1 = API-misuse checks (default), 2 = + reader/writer
    /// format verification, 3 = + argument validity checks.
    pub check_level: u8,
    /// Execution engine of the underlying world: wallclock OS threads
    /// (default) or the seeded discrete-event simulation, under which
    /// thousand-rank runs take milliseconds and every timestamp is
    /// exactly reproducible.
    pub engine: Engine,
    /// Clock behaviour of the underlying world (resolution quantization
    /// and drift injection for the clock experiments).
    pub clock: ClockConfig,
    /// Artificial delay between the fanout arrows of a collective
    /// operation — the paper's `usleep` workaround for superimposed
    /// arrows ("Equal Drawables"). Set to zero to reproduce the problem.
    pub arrow_spread: Duration,
    /// Ping rounds used by clock synchronization.
    pub sync_rounds: usize,
    /// Where the native (`c`) log is streamed; `None` keeps it only in
    /// memory (it is returned in the run artifacts either way).
    pub native_log_path: Option<PathBuf>,
    /// Use synchronous (rendezvous) channel writes. Default false:
    /// buffered sends, matching the C library's use of `MPI_Send`.
    pub synchronous_channels: bool,
    /// Abort-safe MPE logging (the paper's future-work item): when set,
    /// every rank streams its MPE records to `<dir>/rank<N>.mpespill` as
    /// they are logged, and `mpelog::salvage(dir)` can rebuild a partial
    /// log after an abort. Costs a write+flush per record.
    pub mpe_spill_dir: Option<PathBuf>,
    /// Runtime metrics/tracing sink. When set, the underlying world
    /// records `minimpi.*` metrics, the Pilot layer records API-call
    /// counts and per-channel blocked time, and MPE logging records
    /// `mpelog.*` — all into per-rank shards of this handle.
    pub observe: Option<obs::ObsHandle>,
    /// Deterministic fault injection (crash-forensics testing): panic a
    /// rank at its Nth send, hold a message in flight, fail spill I/O
    /// after a byte budget. `None` (the default) adds zero overhead —
    /// the plan is threaded into the world only when present.
    pub fault_plan: Option<FaultPlan>,
    /// Override the order the underlying world spawns its rank threads
    /// in. Determinism-testing hook: under [`Engine::Virtual`] every
    /// spawn order must produce identical results. `None` spawns in
    /// rank order.
    pub spawn_order: Option<Vec<usize>>,
    /// Stall watchdog window for the deadlock-detector service rank:
    /// when no service event arrives for this long AND some process is
    /// known to be blocked, the detector declares a stall (e.g. a held
    /// message) and aborts with a diagnosis. `None` disables the
    /// watchdog — the detector then only fires on true wait-for cycles.
    pub stall_timeout: Option<Duration>,
}

impl PilotConfig {
    /// Default configuration for a world of `ranks` ranks.
    pub fn new(ranks: usize) -> PilotConfig {
        PilotConfig {
            ranks,
            services: Services::default(),
            check_level: 1,
            engine: Engine::Wall,
            clock: ClockConfig::default(),
            arrow_spread: Duration::from_millis(1),
            sync_rounds: 4,
            native_log_path: None,
            synchronous_channels: false,
            mpe_spill_dir: None,
            observe: None,
            fault_plan: None,
            spawn_order: None,
            stall_timeout: None,
        }
    }

    /// Parse Pilot's command-line options, ignoring unrelated arguments
    /// (which in the C library are left for the application).
    ///
    /// Recognized: `-pisvc=<letters>`, `-picheck=<0..3>`.
    pub fn from_args(ranks: usize, args: &[&str]) -> Result<PilotConfig, String> {
        let mut cfg = PilotConfig::new(ranks);
        for a in args {
            if let Some(letters) = a.strip_prefix("-pisvc=") {
                cfg.services = Services::parse(letters)?;
            } else if let Some(level) = a.strip_prefix("-picheck=") {
                let level: u8 = level
                    .parse()
                    .map_err(|_| format!("bad -picheck value '{level}'"))?;
                if level > 3 {
                    return Err(format!("-picheck={level} out of range (0..=3)"));
                }
                cfg.check_level = level;
            }
        }
        Ok(cfg)
    }

    /// Builder: set services.
    pub fn with_services(mut self, s: Services) -> Self {
        self.services = s;
        self
    }

    /// Builder: set the error-check level.
    pub fn with_check_level(mut self, level: u8) -> Self {
        self.check_level = level.min(3);
        self
    }

    /// Builder: set the clock config.
    pub fn with_clock(mut self, clock: ClockConfig) -> Self {
        self.clock = clock;
        self
    }

    /// Builder: select the execution engine ([`Engine::Wall`] or
    /// [`Engine::Virtual`]).
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Builder: set the collective arrow spread.
    pub fn with_arrow_spread(mut self, d: Duration) -> Self {
        self.arrow_spread = d;
        self
    }

    /// Builder: enable abort-safe MPE spill files under `dir`.
    pub fn with_spill_dir(mut self, dir: PathBuf) -> Self {
        self.mpe_spill_dir = Some(dir);
        self
    }

    /// Builder: attach a runtime metrics/tracing sink.
    pub fn with_observability(mut self, obs: obs::ObsHandle) -> Self {
        self.observe = Some(obs);
        self
    }

    /// Builder: inject deterministic faults (empty plans are kept but
    /// have no effect — the world builder drops them).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Builder: force a rank-thread spawn order (determinism testing).
    pub fn with_spawn_order(mut self, order: Vec<usize>) -> Self {
        self.spawn_order = Some(order);
        self
    }

    /// Builder: arm the service rank's stall watchdog (see
    /// [`stall_timeout`](Self::stall_timeout)).
    pub fn with_stall_timeout(mut self, window: Duration) -> Self {
        self.stall_timeout = Some(window);
        self
    }

    /// Number of Pilot processes this world can host (main included):
    /// total ranks minus the service rank if one is needed.
    pub fn process_capacity(&self) -> usize {
        self.ranks - usize::from(self.services.needs_service_rank())
    }

    /// The rank running the service loop, if any (always the last rank).
    pub fn service_rank(&self) -> Option<usize> {
        self.services.needs_service_rank().then(|| self.ranks - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_service_letters() {
        let s = Services::parse("cj").unwrap();
        assert!(s.call_log && s.jumpshot && !s.deadlock);
        assert!(s.needs_service_rank());
        let s = Services::parse("j").unwrap();
        assert!(!s.needs_service_rank());
        assert!(Services::parse("x").is_err());
        assert_eq!(Services::parse("").unwrap(), Services::default());
    }

    #[test]
    fn from_args_parses_pilot_options_and_ignores_rest() {
        let cfg = PilotConfig::from_args(6, &["./lab2", "-pisvc=cdj", "input.csv", "-picheck=3"])
            .unwrap();
        assert!(cfg.services.call_log && cfg.services.deadlock && cfg.services.jumpshot);
        assert_eq!(cfg.check_level, 3);
        assert_eq!(cfg.ranks, 6);
    }

    #[test]
    fn from_args_rejects_bad_values() {
        assert!(PilotConfig::from_args(2, &["-picheck=9"]).is_err());
        assert!(PilotConfig::from_args(2, &["-picheck=abc"]).is_err());
        assert!(PilotConfig::from_args(2, &["-pisvc=q"]).is_err());
    }

    #[test]
    fn capacity_accounts_for_service_rank() {
        let cfg = PilotConfig::new(6);
        assert_eq!(cfg.process_capacity(), 6);
        assert_eq!(cfg.service_rank(), None);
        let cfg = PilotConfig::from_args(6, &["-pisvc=c"]).unwrap();
        assert_eq!(cfg.process_capacity(), 5);
        assert_eq!(cfg.service_rank(), Some(5));
        // MPE logging alone consumes no rank.
        let cfg = PilotConfig::from_args(6, &["-pisvc=j"]).unwrap();
        assert_eq!(cfg.process_capacity(), 6);
    }

    #[test]
    fn builders_clamp() {
        let cfg = PilotConfig::new(2).with_check_level(7);
        assert_eq!(cfg.check_level, 3);
    }
}
