//! The integrated deadlock detector's core: a wait-for graph.
//!
//! Pilot's deadlock detector is one of its signature teaching features:
//! a dedicated process receives an event from every rank around each
//! potentially-blocking call and analyses the resulting wait-for graph,
//! aborting the run with a diagnosis that names the stuck processes and
//! source lines. This module is the *pure* state machine (unit-testable
//! without threads); [`crate::service`] feeds it events over messages.
//!
//! The liveness rule is a fixpoint: a blocked process is *live* if any
//! message credit it waits for is already in flight, or any process it
//! waits on is live. Blocked processes that are not live after the
//! fixpoint are deadlocked — this uniformly covers read/write cycles,
//! waiting on an exited process, and `PI_Select`'s OR-wait semantics.
//!
//! *Credits* prevent a classic false positive: writes are buffered, so a
//! writer may write and exit before the reader even blocks. The writer
//! announces `note_write` (channel, message count) **before** sending,
//! and per-pair FIFO delivery guarantees the detector sees it before the
//! writer's `exit`, so a reader blocking afterwards finds the credit.

use std::collections::HashMap;

/// Why a process is blocked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockInfo {
    /// The API call ("PI_Read", "PI_Write", "PI_Select").
    pub op: String,
    /// What it waits for: `(peer process, channel)` pairs. For a read
    /// there is one; for a select, one per bundle channel. The wait is
    /// satisfied if ANY entry can proceed.
    pub waits: Vec<(usize, u32)>,
    /// Source location of the blocking call.
    pub location: String,
    /// Resource name for the diagnosis ("C3", "B1").
    pub resource: String,
}

/// A process's status as seen by the detector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcStatus {
    /// Executing (or at least, not known to be blocked).
    Running,
    /// Inside a blocking call.
    Blocked(BlockInfo),
    /// Work function returned.
    Exited,
}

/// The deadlock diagnosis handed to the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockReport {
    /// `(process, one-line description)` for each stuck process.
    pub stuck: Vec<(usize, String)>,
}

impl std::fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{} process(es) cannot proceed:", self.stuck.len())?;
        for (p, desc) in &self.stuck {
            writeln!(f, "  P{p}: {desc}")?;
        }
        Ok(())
    }
}

/// The detector's mutable state.
#[derive(Debug)]
pub struct WaitForGraph {
    status: Vec<ProcStatus>,
    /// Messages announced as sent but not yet consumed, per channel.
    credits: HashMap<u32, i64>,
}

impl WaitForGraph {
    /// Detector for `nprocs` Pilot processes.
    pub fn new(nprocs: usize) -> Self {
        WaitForGraph {
            status: vec![ProcStatus::Running; nprocs],
            credits: HashMap::new(),
        }
    }

    /// A writer announced `n` messages on `chan` (sent *before* the data).
    pub fn note_write(&mut self, chan: u32, n: u32) {
        *self.credits.entry(chan).or_insert(0) += n as i64;
    }

    /// A reader consumed `n` messages from `chan`.
    pub fn note_read(&mut self, chan: u32, n: u32) {
        *self.credits.entry(chan).or_insert(0) -= n as i64;
    }

    /// Outstanding credit on a channel.
    pub fn credit(&self, chan: u32) -> i64 {
        self.credits.get(&chan).copied().unwrap_or(0)
    }

    /// Process `p` entered a blocking call. Returns a report if this
    /// completes a deadlock.
    pub fn block(&mut self, p: usize, info: BlockInfo) -> Option<DeadlockReport> {
        if p < self.status.len() {
            self.status[p] = ProcStatus::Blocked(info);
        }
        self.check()
    }

    /// Process `p` finished its blocking call.
    pub fn unblock(&mut self, p: usize) {
        if p < self.status.len() {
            self.status[p] = ProcStatus::Running;
        }
    }

    /// Process `p`'s work function returned. Returns a report if someone
    /// is now hopelessly waiting on it.
    pub fn exit(&mut self, p: usize) -> Option<DeadlockReport> {
        if p < self.status.len() {
            self.status[p] = ProcStatus::Exited;
        }
        self.check()
    }

    /// Current status of a process.
    pub fn status(&self, p: usize) -> &ProcStatus {
        &self.status[p]
    }

    /// The liveness fixpoint. `None` if every blocked process can still
    /// proceed.
    pub fn check(&self) -> Option<DeadlockReport> {
        let n = self.status.len();
        let mut live: Vec<bool> = self
            .status
            .iter()
            .map(|s| matches!(s, ProcStatus::Running))
            .collect();
        loop {
            let mut changed = false;
            for p in 0..n {
                if live[p] {
                    continue;
                }
                if let ProcStatus::Blocked(info) = &self.status[p] {
                    let can = info.waits.iter().any(|&(peer, chan)| {
                        self.credit(chan) > 0 || live.get(peer).copied().unwrap_or(false)
                    });
                    if can {
                        live[p] = true;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let stuck: Vec<(usize, String)> = (0..n)
            .filter_map(|p| match &self.status[p] {
                ProcStatus::Blocked(info) if !live[p] => {
                    let peers: Vec<String> = info
                        .waits
                        .iter()
                        .map(|(peer, _)| format!("P{peer}"))
                        .collect();
                    Some((
                        p,
                        format!(
                            "blocked in {} on {} (waiting for {}) at {}",
                            info.op,
                            info.resource,
                            peers.join("/"),
                            info.location
                        ),
                    ))
                }
                _ => None,
            })
            .collect();
        if stuck.is_empty() {
            None
        } else {
            Some(DeadlockReport { stuck })
        }
    }

    /// Stall diagnosis: the wait-for graph has no cycle, yet nothing has
    /// happened for the watchdog window and these processes are still
    /// inside blocking calls. This catches failures the liveness
    /// fixpoint is blind to — e.g. a message *held* in the transport (a
    /// lost write): the reader waits on a running writer forever, so no
    /// cycle ever forms. `cause` is the watchdog's timeout context
    /// (which receive timed out, on what source/tag); it is embedded in
    /// every stuck process's description.
    ///
    /// Returns `None` when no process is blocked — a quiet graph with
    /// everyone running or exited is idle, not stalled.
    pub fn stall_report(&self, cause: &str) -> Option<DeadlockReport> {
        let stuck: Vec<(usize, String)> = self
            .status
            .iter()
            .enumerate()
            .filter_map(|(p, s)| match s {
                ProcStatus::Blocked(info) => {
                    let peers: Vec<String> = info
                        .waits
                        .iter()
                        .map(|(peer, _)| format!("P{peer}"))
                        .collect();
                    Some((
                        p,
                        format!(
                            "stalled in {} on {} (waiting for {}) at {}; {}",
                            info.op,
                            info.resource,
                            peers.join("/"),
                            info.location,
                            cause
                        ),
                    ))
                }
                _ => None,
            })
            .collect();
        if stuck.is_empty() {
            None
        } else {
            Some(DeadlockReport { stuck })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_block(peer: usize, chan: u32) -> BlockInfo {
        BlockInfo {
            op: "PI_Read".into(),
            waits: vec![(peer, chan)],
            location: "test.rs:1".into(),
            resource: format!("C{chan}"),
        }
    }

    #[test]
    fn single_blocked_process_is_not_deadlock() {
        let mut g = WaitForGraph::new(2);
        assert!(g.block(1, read_block(0, 0)).is_none());
    }

    #[test]
    fn two_cycle_is_deadlock() {
        let mut g = WaitForGraph::new(2);
        assert!(g.block(0, read_block(1, 0)).is_none());
        let report = g.block(1, read_block(0, 1)).expect("deadlock");
        assert_eq!(report.stuck.len(), 2);
        let text = report.to_string();
        assert!(text.contains("P0") && text.contains("P1"));
        assert!(text.contains("PI_Read"));
        assert!(text.contains("test.rs:1"));
    }

    #[test]
    fn three_cycle_is_deadlock() {
        let mut g = WaitForGraph::new(3);
        assert!(g.block(0, read_block(1, 0)).is_none());
        assert!(g.block(1, read_block(2, 1)).is_none());
        let report = g.block(2, read_block(0, 2)).expect("deadlock");
        assert_eq!(report.stuck.len(), 3);
    }

    #[test]
    fn chain_to_running_process_is_fine() {
        let mut g = WaitForGraph::new(3);
        assert!(g.block(1, read_block(2, 0)).is_none());
        assert!(g.block(0, read_block(1, 1)).is_none()); // P2 still running
    }

    #[test]
    fn waiting_on_exited_process_is_deadlock() {
        let mut g = WaitForGraph::new(2);
        assert!(g.block(1, read_block(0, 0)).is_none());
        let report = g.exit(0).expect("waiting on the dead");
        assert_eq!(report.stuck[0].0, 1);
    }

    #[test]
    fn credit_saves_reader_from_exited_writer() {
        // Writer wrote (credit) then exited; the blocked reader is fine.
        let mut g = WaitForGraph::new(2);
        g.note_write(0, 1);
        assert!(g.block(1, read_block(0, 0)).is_none());
        assert!(g.exit(0).is_none());
        // Reader consumes and unblocks.
        g.note_read(0, 1);
        g.unblock(1);
        assert!(g.check().is_none());
    }

    #[test]
    fn consumed_credit_no_longer_saves() {
        let mut g = WaitForGraph::new(2);
        g.note_write(0, 1);
        g.note_read(0, 1);
        assert!(g.block(1, read_block(0, 0)).is_none()); // writer running
        assert!(g.exit(0).is_some()); // now hopeless
    }

    #[test]
    fn select_or_wait_survives_one_live_writer() {
        // P0 selects on channels written by P1 (exited) and P2 (running).
        let mut g = WaitForGraph::new(3);
        g.exit(1);
        let info = BlockInfo {
            op: "PI_Select".into(),
            waits: vec![(1, 0), (2, 1)],
            location: "test.rs:9".into(),
            resource: "B0".into(),
        };
        assert!(g.block(0, info).is_none());
    }

    #[test]
    fn select_with_all_writers_dead_is_deadlock() {
        let mut g = WaitForGraph::new(3);
        g.exit(1);
        g.exit(2);
        let info = BlockInfo {
            op: "PI_Select".into(),
            waits: vec![(1, 0), (2, 1)],
            location: "test.rs:9".into(),
            resource: "B0".into(),
        };
        let report = g.block(0, info).expect("deadlock");
        assert!(report.stuck[0].1.contains("PI_Select"));
        assert!(report.stuck[0].1.contains("B0"));
    }

    #[test]
    fn unblock_clears_the_wait() {
        let mut g = WaitForGraph::new(2);
        g.block(1, read_block(0, 0));
        g.unblock(1);
        assert!(g.exit(0).is_none());
    }

    #[test]
    fn stall_report_names_blocked_processes_and_cause() {
        let mut g = WaitForGraph::new(3);
        g.block(1, read_block(0, 0)); // no cycle: P0 still "running"
        g.exit(2);
        let report = g
            .stall_report("recv_timeout timed out waiting for a message from any rank, tag 900")
            .expect("P1 is blocked");
        assert_eq!(report.stuck.len(), 1);
        assert_eq!(report.stuck[0].0, 1);
        assert!(report.stuck[0].1.contains("stalled in PI_Read on C0"));
        assert!(report.stuck[0].1.contains("recv_timeout timed out"));
        // The liveness fixpoint sees no deadlock here — only the
        // watchdog catches it.
        assert!(g.check().is_none());
    }

    #[test]
    fn stall_report_is_none_when_nothing_is_blocked() {
        let mut g = WaitForGraph::new(2);
        g.exit(1);
        assert!(g.stall_report("quiet for 200ms").is_none());
    }

    #[test]
    fn mutual_wait_with_credit_resolves() {
        // P0 blocked reading C1 from P1; P1 blocked reading C0 from P0 —
        // but P0 announced a write on C0 before blocking. Not a deadlock.
        let mut g = WaitForGraph::new(2);
        g.note_write(0, 1);
        assert!(g.block(0, read_block(1, 1)).is_none());
        assert!(
            g.block(1, read_block(0, 0)).is_none(),
            "credit on C0 keeps P1 live"
        );
    }
}
