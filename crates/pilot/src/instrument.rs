//! MPE instrumentation of Pilot API calls — the paper's contribution.
//!
//! When the `j` service is enabled, every rank owns a [`mpelog::Logger`]
//! and each API call is bracketed by state events, annotated with
//! milestone bubbles, and its messages recorded as send/receive pairs so
//! the converter draws arrows. The colour system implements Section
//! III.A of the paper (see [`colors`]); the event vocabulary implements
//! Section III.B.
//!
//! All methods are no-ops when the service is off, so the disabled path
//! costs one branch — the reason the paper can leave logging off by
//! default without a performance tax.

use std::time::Duration;

use mpelog::{EventId, Logger};

/// The colour assignments — the equivalent of the "header file for
/// color assignments" the paper created so sites can re-theme Pilot by
/// editing one place and recompiling.
pub mod colors {
    use mpelog::Color;

    /// `PI_Read`: red, because "red is similar to read" and reading
    /// always blocks ("red means stop").
    pub const READ: Color = Color::RED;
    /// `PI_Write`: green ("green means go" — a write wakes the reader).
    pub const WRITE: Color = Color::GREEN;
    /// `PI_Broadcast`: the dark shade of the write theme.
    pub const BROADCAST: Color = Color::FOREST_GREEN;
    /// `PI_Scatter`: another dark green.
    pub const SCATTER: Color = Color::DARK_GREEN;
    /// `PI_Gather`: the dark shade of the read theme.
    pub const GATHER: Color = Color::INDIAN_RED;
    /// `PI_Reduce`: dark red.
    pub const REDUCE: Color = Color::DARK_RED;
    /// `PI_Select`: blocks like a read but receives nothing.
    pub const SELECT: Color = Color::ORANGE;
    /// The configuration phase rectangle.
    pub const CONFIGURE: Color = Color::BISQUE;
    /// The execution-phase Compute rectangle.
    pub const COMPUTE: Color = Color::GRAY;
    /// Milestone bubbles (message arrivals, write info).
    pub const MILESTONE: Color = Color::YELLOW;
    /// Administrative bubbles (`PI_Log`, `PI_StartTime`, …).
    pub const ADMIN: Color = Color::STEEL_BLUE;
}

/// The state categories Pilot logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateKind {
    /// Configuration phase (PI_Configure → PI_StartAll).
    Configure,
    /// Execution phase outside Pilot calls ("Compute").
    Compute,
    /// `PI_Read`.
    Read,
    /// `PI_Write`.
    Write,
    /// `PI_Broadcast`.
    Broadcast,
    /// `PI_Scatter`.
    Scatter,
    /// `PI_Gather`.
    Gather,
    /// `PI_Reduce`.
    Reduce,
    /// `PI_Select`.
    Select,
}

/// The solo-event (bubble) categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BubbleKind {
    /// A message arrived inside a read-side call ("Chan: C3").
    MsgArrival,
    /// Write-side info ("Len: 100 First: 3.25").
    WriteInfo,
    /// `PI_ChannelHasData` result.
    ChannelHasData,
    /// `PI_TrySelect` result.
    TrySelect,
    /// `PI_Log` entry.
    Log,
    /// `PI_StartTime` reading.
    StartTime,
    /// `PI_EndTime` reading.
    EndTime,
    /// `PI_StartAll` marker.
    StartAll,
    /// `PI_StopMain` marker.
    StopMain,
}

#[derive(Debug)]
struct Ids {
    states: [(EventId, EventId); 9],
    bubbles: [EventId; 9],
}

/// The state names in [`StateKind`] order — shared by the MPE event
/// definitions and the `pilot.calls.*` metric names.
const STATE_NAMES: [&str; 9] = [
    "PI_Configure",
    "Compute",
    "PI_Read",
    "PI_Write",
    "PI_Broadcast",
    "PI_Scatter",
    "PI_Gather",
    "PI_Reduce",
    "PI_Select",
];

/// Per-rank instrumentation. Wraps a [`Logger`] with Pilot's event
/// vocabulary; inert when logging is disabled.
#[derive(Debug)]
pub struct Instrument {
    logger: Option<Logger>,
    ids: Option<Ids>,
    arrow_spread: Duration,
    /// This rank's metric shard, when the run is observed. Independent
    /// of MPE logging: API-call counters fire even with logging off.
    shard: Option<obs::ShardHandle>,
    /// Per-[`StateKind`] API-call counters (`pilot.calls.PI_Read`, …).
    api_calls: Option<[obs::Counter; 9]>,
    /// Arrow-bearing sends recorded by this rank — the runtime side of
    /// the counters-vs-trace oracle (`pilot.sends_logged`).
    sends_logged: Option<obs::Counter>,
}

impl Instrument {
    /// Instrumentation for `rank`. `enabled` mirrors `-pisvc=j`;
    /// `spill_dir` enables the abort-safe extension; `obs` is this
    /// rank's metric shard when the run is observed.
    pub fn new(
        rank: usize,
        enabled: bool,
        arrow_spread: Duration,
        spill_dir: Option<&std::path::Path>,
        obs: Option<obs::ShardHandle>,
    ) -> Instrument {
        let api_calls = obs
            .as_ref()
            .map(|s| STATE_NAMES.map(|n| s.counter(&format!("pilot.calls.{n}"))));
        let sends_logged = obs.as_ref().map(|s| s.counter("pilot.sends_logged"));
        if !enabled {
            return Instrument {
                logger: None,
                ids: None,
                arrow_spread,
                shard: obs,
                api_calls,
                sends_logged,
            };
        }
        let mut lg = Logger::new(rank);
        if let Some(shard) = &obs {
            lg.set_observability(std::sync::Arc::clone(shard));
        }
        // Definition order is fixed — identical on every rank, as MPE
        // requires. Names are the Pilot function names so the Jumpshot
        // legend reads like the source code.
        let states = [
            lg.define_state("PI_Configure", colors::CONFIGURE),
            lg.define_state("Compute", colors::COMPUTE),
            lg.define_state("PI_Read", colors::READ),
            lg.define_state("PI_Write", colors::WRITE),
            lg.define_state("PI_Broadcast", colors::BROADCAST),
            lg.define_state("PI_Scatter", colors::SCATTER),
            lg.define_state("PI_Gather", colors::GATHER),
            lg.define_state("PI_Reduce", colors::REDUCE),
            lg.define_state("PI_Select", colors::SELECT),
        ];
        let bubbles = [
            lg.define_event("msg arrival", colors::MILESTONE),
            lg.define_event("write info", colors::MILESTONE),
            lg.define_event("PI_ChannelHasData", colors::ADMIN),
            lg.define_event("PI_TrySelect", colors::ADMIN),
            lg.define_event("PI_Log", colors::ADMIN),
            lg.define_event("PI_StartTime", colors::ADMIN),
            lg.define_event("PI_EndTime", colors::ADMIN),
            lg.define_event("PI_StartAll", colors::ADMIN),
            lg.define_event("PI_StopMain", colors::ADMIN),
        ];
        if let Some(dir) = spill_dir {
            if let Err(e) = lg.attach_spill(dir) {
                eprintln!(
                    "pilot: cannot open MPE spill file in {}: {e}",
                    dir.display()
                );
            }
        }
        Instrument {
            logger: Some(lg),
            ids: Some(Ids { states, bubbles }),
            arrow_spread,
            shard: obs,
            api_calls,
            sends_logged,
        }
    }

    /// Is MPE logging live?
    pub fn enabled(&self) -> bool {
        self.logger.is_some()
    }

    fn state_ids(&self, kind: StateKind) -> Option<(EventId, EventId)> {
        self.ids.as_ref().map(|ids| ids.states[kind as usize])
    }

    fn bubble_id(&self, kind: BubbleKind) -> Option<EventId> {
        self.ids.as_ref().map(|ids| ids.bubbles[kind as usize])
    }

    /// Enter a state at time `ts` with popup `text`.
    pub fn state_start(&mut self, kind: StateKind, ts: f64, text: &str) {
        if let Some(calls) = &self.api_calls {
            calls[kind as usize].inc();
        }
        if let (Some((start, _)), Some(lg)) = (self.state_ids(kind), self.logger.as_mut()) {
            lg.log_event(ts, start, text);
        }
    }

    /// Leave a state at time `ts`.
    pub fn state_end(&mut self, kind: StateKind, ts: f64, text: &str) {
        if let (Some((_, end)), Some(lg)) = (self.state_ids(kind), self.logger.as_mut()) {
            lg.log_event(ts, end, text);
        }
    }

    /// Drop a milestone bubble.
    pub fn bubble(&mut self, kind: BubbleKind, ts: f64, text: &str) {
        if let (Some(id), Some(lg)) = (self.bubble_id(kind), self.logger.as_mut()) {
            lg.log_event(ts, id, text);
        }
    }

    /// Record a message send (for arrow pairing). Each call is exactly
    /// one future arrow in the converted SLOG2 file, so the
    /// `pilot.sends_logged` counter doubles as the runtime half of the
    /// counters-vs-trace oracle (see `pilot_vis::analysis`).
    pub fn log_send(&mut self, ts: f64, dst_rank: usize, tag: u32, size: usize) {
        if let Some(lg) = self.logger.as_mut() {
            if let Some(c) = &self.sends_logged {
                c.inc();
            }
            lg.log_send(ts, dst_rank, tag, size);
        }
    }

    /// Record a message receive (for arrow pairing).
    pub fn log_receive(&mut self, ts: f64, src_rank: usize, tag: u32, size: usize) {
        if let Some(lg) = self.logger.as_mut() {
            lg.log_receive(ts, src_rank, tag, size);
        }
    }

    /// The paper's `usleep` workaround: space out a collective's fanout
    /// arrows so they are not superimposed ("Equal Drawables"). Returns
    /// the pause the caller must sleep on its *engine* clock (so
    /// virtual runs spread arrows in virtual time), or `None` when
    /// logging is off or the spread is zero.
    #[must_use]
    pub fn spread_arrows(&self) -> Option<Duration> {
        (self.enabled() && !self.arrow_spread.is_zero()).then_some(self.arrow_spread)
    }

    /// Record time spent blocked inside a read-side call: a per-channel
    /// counter (`pilot.blocked_ns.<chan>`) plus a per-kind histogram
    /// (`pilot.read_blocked_ns` / `pilot.select_blocked_ns`). No-op when
    /// the run is not observed.
    pub fn note_blocked(&self, kind: StateKind, chan_name: &str, ns: u64) {
        if let Some(shard) = &self.shard {
            shard
                .counter(&format!("pilot.blocked_ns.{chan_name}"))
                .add(ns);
            let hist = match kind {
                StateKind::Select => "pilot.select_blocked_ns",
                _ => "pilot.read_blocked_ns",
            };
            shard.histogram(hist).record(ns);
        }
    }

    /// Access the logger (clock sync, finish).
    pub fn logger(&self) -> Option<&Logger> {
        self.logger.as_ref()
    }

    /// Mutable access to the logger.
    pub fn logger_mut(&mut self) -> Option<&mut Logger> {
        self.logger.as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpelog::{Color, Record};

    #[test]
    fn disabled_instrument_records_nothing() {
        let mut ins = Instrument::new(0, false, Duration::ZERO, None, None);
        assert!(!ins.enabled());
        ins.state_start(StateKind::Read, 1.0, "x");
        ins.bubble(BubbleKind::MsgArrival, 1.1, "y");
        ins.log_send(1.2, 1, 0, 8);
        assert!(ins.logger().is_none());
    }

    #[test]
    fn enabled_instrument_brackets_states() {
        let mut ins = Instrument::new(0, true, Duration::ZERO, None, None);
        ins.state_start(StateKind::Write, 1.0, "Line: 5");
        ins.state_end(StateKind::Write, 2.0, "");
        let lg = ins.logger().unwrap();
        assert_eq!(lg.len(), 2);
        match &lg.records()[0] {
            Record::Event { id, text, .. } => {
                let (start, _) = lg
                    .state_defs()
                    .iter()
                    .find(|d| d.name == "PI_Write")
                    .map(|d| (d.start, d.end))
                    .unwrap();
                assert_eq!(*id, start);
                assert_eq!(text, "Line: 5");
            }
            _ => panic!("expected event"),
        }
    }

    #[test]
    fn two_ranks_define_identical_vocabulary() {
        let a = Instrument::new(0, true, Duration::ZERO, None, None);
        let b = Instrument::new(5, true, Duration::ZERO, None, None);
        let la = a.logger().unwrap();
        let lb = b.logger().unwrap();
        assert_eq!(la.state_defs(), lb.state_defs());
        assert_eq!(la.event_defs(), lb.event_defs());
    }

    #[test]
    fn paper_colour_scheme_is_installed() {
        let ins = Instrument::new(0, true, Duration::ZERO, None, None);
        let lg = ins.logger().unwrap();
        let color_of = |name: &str| {
            lg.state_defs()
                .iter()
                .find(|d| d.name == name)
                .map(|d| d.color)
                .unwrap()
        };
        assert_eq!(color_of("PI_Read"), Color::RED);
        assert_eq!(color_of("PI_Write"), Color::GREEN);
        assert_eq!(color_of("PI_Broadcast"), Color::FOREST_GREEN);
        assert_eq!(color_of("PI_Gather"), Color::INDIAN_RED);
        assert_eq!(color_of("PI_Configure"), Color::BISQUE);
        assert_eq!(color_of("Compute"), Color::GRAY);
    }

    #[test]
    fn send_receive_records_flow_to_logger() {
        let mut ins = Instrument::new(2, true, Duration::ZERO, None, None);
        ins.log_send(0.5, 3, 1007, 64);
        ins.log_receive(0.9, 1, 1002, 8);
        let lg = ins.logger().unwrap();
        assert_eq!(
            lg.records()[0],
            Record::Send {
                ts: 0.5,
                dst: 3,
                tag: 1007,
                size: 64
            }
        );
        assert_eq!(
            lg.records()[1],
            Record::Recv {
                ts: 0.9,
                src: 1,
                tag: 1002,
                size: 8
            }
        );
    }

    #[test]
    fn spread_arrows_is_noop_when_disabled() {
        let ins = Instrument::new(0, false, Duration::from_millis(50), None, None);
        assert_eq!(ins.spread_arrows(), None);
    }

    #[test]
    fn popup_texts_follow_the_literal_prefix_workaround() {
        // The paper's Jumpshot bug: info strings must not *start* with a
        // substitution. Our instrumentation emits "Chan: %s"-shaped
        // strings; spot-check the shapes used by the runtime.
        for text in ["Chan: C3", "Len: 100 First: 3.25", "Line: 42", "Ret: 1"] {
            assert!(
                text.chars()
                    .next()
                    .map(|c| c.is_ascii_alphabetic())
                    .unwrap_or(false),
                "{text} must start with literal text"
            );
        }
    }
}
