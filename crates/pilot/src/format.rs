//! Pilot's `fprintf`/`fscanf`-style format engine.
//!
//! Pilot borrows C's well-known format syntax so novices can transfer
//! their stdio knowledge to message passing:
//!
//! * `%d` — one signed integer (`i64` here)
//! * `%u` — one unsigned integer (`u64`)
//! * `%lf` (or `%f`) — one double (`f64`)
//! * `%b` — one byte (`u8`)
//! * `%5d` — an array of exactly 5
//! * `%*d` — an array whose length is a run-time value (the writer's
//!   slice length travels in the message header; the reader must supply
//!   a slice of the same length, as in C Pilot where the count is an
//!   explicit argument)
//! * `%^d` — Pilot V2.1's "receive an array of unknown length": the
//!   writer sends a length message then the data message, and the
//!   reader's `Vec` is resized automatically (the paper's footnote notes
//!   that *multiple MPI calls are made internally* — each becomes its own
//!   arrival bubble in the visual log).
//!
//! A format with several specifiers sends **one message per specifier**
//! ("the format `%d %100f` sends two MPI messages"), which is why a
//! single `PI_Read` rectangle can contain several arrival bubbles.

/// Scalar element type of a specifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarKind {
    /// `%d`: signed 64-bit integer.
    Int,
    /// `%u`: unsigned 64-bit integer.
    Uint,
    /// `%f` / `%lf`: 64-bit float.
    Float,
    /// `%b`: byte.
    Byte,
}

impl ScalarKind {
    /// Element width on the wire.
    pub fn width(self) -> usize {
        match self {
            ScalarKind::Int | ScalarKind::Uint | ScalarKind::Float => 8,
            ScalarKind::Byte => 1,
        }
    }

    /// The format letter.
    pub fn letter(self) -> &'static str {
        match self {
            ScalarKind::Int => "d",
            ScalarKind::Uint => "u",
            ScalarKind::Float => "lf",
            ScalarKind::Byte => "b",
        }
    }

    fn code(self) -> u8 {
        match self {
            ScalarKind::Int => 0,
            ScalarKind::Uint => 1,
            ScalarKind::Float => 2,
            ScalarKind::Byte => 3,
        }
    }

    fn from_code(c: u8) -> Option<ScalarKind> {
        match c {
            0 => Some(ScalarKind::Int),
            1 => Some(ScalarKind::Uint),
            2 => Some(ScalarKind::Float),
            3 => Some(ScalarKind::Byte),
            _ => None,
        }
    }
}

/// How many elements a specifier carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LenMode {
    /// A single scalar (`%d`).
    One,
    /// A fixed-size array (`%5d`).
    Fixed(usize),
    /// A run-time-sized array (`%*d`).
    Runtime,
    /// Unknown-length receive with automatic allocation (`%^d`).
    AutoAlloc,
}

/// One parsed specifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FormatSpec {
    /// Element type.
    pub kind: ScalarKind,
    /// Element count mode.
    pub len: LenMode,
}

impl FormatSpec {
    /// How many wire messages this specifier produces (AutoAlloc sends a
    /// separate length message first).
    pub fn message_count(&self) -> usize {
        match self.len {
            LenMode::AutoAlloc => 2,
            _ => 1,
        }
    }

    /// Canonical text form, used for level-2 format comparison.
    pub fn canonical(&self) -> String {
        match self.len {
            LenMode::One => format!("%{}", self.kind.letter()),
            LenMode::Fixed(n) => format!("%{}{}", n, self.kind.letter()),
            LenMode::Runtime => format!("%*{}", self.kind.letter()),
            LenMode::AutoAlloc => format!("%^{}", self.kind.letter()),
        }
    }
}

/// Parse a Pilot format string into specifiers.
pub fn parse_format(fmt: &str) -> Result<Vec<FormatSpec>, String> {
    let mut specs = Vec::new();
    let mut chars = fmt.chars().peekable();
    while let Some(c) = chars.next() {
        if c.is_whitespace() {
            continue;
        }
        if c != '%' {
            return Err(format!(
                "unexpected character '{c}' (specifiers start with %)"
            ));
        }
        // Length prefix.
        let len = match chars.peek() {
            Some('*') => {
                chars.next();
                LenMode::Runtime
            }
            Some('^') => {
                chars.next();
                LenMode::AutoAlloc
            }
            Some(d) if d.is_ascii_digit() => {
                let mut n = 0usize;
                while let Some(d) = chars.peek().copied().filter(char::is_ascii_digit) {
                    chars.next();
                    n = n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add(d as usize - '0' as usize))
                        .ok_or_else(|| "array length overflows".to_string())?;
                }
                if n == 0 {
                    return Err("array length must be positive".into());
                }
                LenMode::Fixed(n)
            }
            _ => LenMode::One,
        };
        // Type letter(s).
        let kind = match chars.next() {
            Some('d') => ScalarKind::Int,
            Some('u') => ScalarKind::Uint,
            Some('b') => ScalarKind::Byte,
            Some('f') => ScalarKind::Float,
            Some('l') => match chars.next() {
                Some('f') => ScalarKind::Float,
                other => return Err(format!("expected 'f' after 'l', found {other:?}")),
            },
            other => return Err(format!("unknown type letter {other:?}")),
        };
        specs.push(FormatSpec { kind, len });
    }
    if specs.is_empty() {
        return Err("format contains no specifiers".into());
    }
    Ok(specs)
}

/// Canonical form of a whole format (level-2 comparison key).
pub fn canonical_format(specs: &[FormatSpec]) -> String {
    specs
        .iter()
        .map(FormatSpec::canonical)
        .collect::<Vec<_>>()
        .join(" ")
}

/// Total wire messages a format produces.
pub fn expected_message_count(specs: &[FormatSpec]) -> usize {
    specs.iter().map(FormatSpec::message_count).sum()
}

/// A value to write — the varargs of `PI_Write`.
#[derive(Debug, Clone, Copy)]
pub enum WSlot<'a> {
    /// Scalar for `%d`.
    Int(i64),
    /// Scalar for `%u`.
    Uint(u64),
    /// Scalar for `%f`/`%lf`.
    Float(f64),
    /// Scalar for `%b`.
    Byte(u8),
    /// Array for `%Nd`, `%*d`, `%^d`.
    IntArr(&'a [i64]),
    /// Array for `%Nu`, `%*u`, `%^u`.
    UintArr(&'a [u64]),
    /// Array for `%Nf`, `%*f`, `%^f`.
    FloatArr(&'a [f64]),
    /// Array for `%Nb`, `%*b`, `%^b`.
    ByteArr(&'a [u8]),
}

impl WSlot<'_> {
    /// Display of the first element — shown in the write bubble's popup.
    pub fn first_element_display(&self) -> String {
        match self {
            WSlot::Int(v) => v.to_string(),
            WSlot::Uint(v) => v.to_string(),
            WSlot::Float(v) => format!("{v:.6}"),
            WSlot::Byte(v) => v.to_string(),
            WSlot::IntArr(a) => a.first().map(|v| v.to_string()).unwrap_or_default(),
            WSlot::UintArr(a) => a.first().map(|v| v.to_string()).unwrap_or_default(),
            WSlot::FloatArr(a) => a.first().map(|v| format!("{v:.6}")).unwrap_or_default(),
            WSlot::ByteArr(a) => a.first().map(|v| v.to_string()).unwrap_or_default(),
        }
    }

    /// Element count carried by this slot.
    pub fn count(&self) -> usize {
        match self {
            WSlot::Int(_) | WSlot::Uint(_) | WSlot::Float(_) | WSlot::Byte(_) => 1,
            WSlot::IntArr(a) => a.len(),
            WSlot::UintArr(a) => a.len(),
            WSlot::FloatArr(a) => a.len(),
            WSlot::ByteArr(a) => a.len(),
        }
    }
}

/// A destination to read into — the varargs of `PI_Read`.
#[derive(Debug)]
pub enum RSlot<'a> {
    /// Scalar for `%d`.
    Int(&'a mut i64),
    /// Scalar for `%u`.
    Uint(&'a mut u64),
    /// Scalar for `%f`/`%lf`.
    Float(&'a mut f64),
    /// Scalar for `%b`.
    Byte(&'a mut u8),
    /// Array for `%Nd` / `%*d` (length must equal the incoming count).
    IntArr(&'a mut [i64]),
    /// Array for `%Nu` / `%*u`.
    UintArr(&'a mut [u64]),
    /// Array for `%Nf` / `%*f`.
    FloatArr(&'a mut [f64]),
    /// Array for `%Nb` / `%*b`.
    ByteArr(&'a mut [u8]),
    /// Auto-allocated receive for `%^d`.
    IntVec(&'a mut Vec<i64>),
    /// Auto-allocated receive for `%^u`.
    UintVec(&'a mut Vec<u64>),
    /// Auto-allocated receive for `%^f`.
    FloatVec(&'a mut Vec<f64>),
    /// Auto-allocated receive for `%^b`.
    ByteVec(&'a mut Vec<u8>),
}

// ---- wire encoding ----

/// Message type markers.
pub const MSG_DATA: u8 = b'D';
/// Length preamble of an AutoAlloc segment.
pub const MSG_AUTOLEN: u8 = b'L';
/// Format-string preamble (error-check level 2).
pub const MSG_FORMAT: u8 = b'F';

fn put_payload(kind: ScalarKind, slot: &WSlot<'_>, out: &mut Vec<u8>) -> Result<(), String> {
    macro_rules! push_all {
        ($iter:expr) => {
            for v in $iter {
                out.extend_from_slice(&v.to_le_bytes());
            }
        };
    }
    match (kind, slot) {
        (ScalarKind::Int, WSlot::Int(v)) => push_all!([*v]),
        (ScalarKind::Int, WSlot::IntArr(a)) => push_all!(a.iter().copied()),
        (ScalarKind::Uint, WSlot::Uint(v)) => push_all!([*v]),
        (ScalarKind::Uint, WSlot::UintArr(a)) => push_all!(a.iter().copied()),
        (ScalarKind::Float, WSlot::Float(v)) => push_all!([*v]),
        (ScalarKind::Float, WSlot::FloatArr(a)) => push_all!(a.iter().copied()),
        (ScalarKind::Byte, WSlot::Byte(v)) => out.push(*v),
        (ScalarKind::Byte, WSlot::ByteArr(a)) => out.extend_from_slice(a),
        (k, s) => return Err(format!("slot {s:?} does not provide %{}", k.letter())),
    }
    Ok(())
}

fn slot_is_array(slot: &WSlot<'_>) -> bool {
    matches!(
        slot,
        WSlot::IntArr(_) | WSlot::UintArr(_) | WSlot::FloatArr(_) | WSlot::ByteArr(_)
    )
}

/// Encode one write call into its wire messages, one `Vec<u8>` each.
/// Validation here implements part of error-check levels 1 and 3; the
/// caller passes `strict_args = (check_level >= 3)`.
pub fn encode_call(
    specs: &[FormatSpec],
    slots: &[WSlot<'_>],
    strict_args: bool,
) -> Result<Vec<Vec<u8>>, String> {
    if specs.len() != slots.len() {
        return Err(format!(
            "format has {} specifiers but {} data arguments were supplied",
            specs.len(),
            slots.len()
        ));
    }
    let mut msgs = Vec::with_capacity(expected_message_count(specs));
    for (spec, slot) in specs.iter().zip(slots) {
        let count = slot.count();
        match spec.len {
            LenMode::One => {
                if slot_is_array(slot) {
                    return Err(format!(
                        "specifier {} expects a scalar but got an array",
                        spec.canonical()
                    ));
                }
            }
            LenMode::Fixed(n) => {
                if !slot_is_array(slot) {
                    return Err(format!(
                        "specifier {} expects an array but got a scalar",
                        spec.canonical()
                    ));
                }
                if strict_args && count != n {
                    return Err(format!(
                        "specifier {} expects {} elements but the slice has {}",
                        spec.canonical(),
                        n,
                        count
                    ));
                }
            }
            LenMode::Runtime | LenMode::AutoAlloc => {
                if !slot_is_array(slot) {
                    return Err(format!(
                        "specifier {} expects an array but got a scalar",
                        spec.canonical()
                    ));
                }
            }
        }
        if let LenMode::AutoAlloc = spec.len {
            // Length preamble message.
            let mut m = Vec::with_capacity(6);
            m.push(MSG_AUTOLEN);
            m.push(spec.kind.code());
            m.extend_from_slice(&(count as u32).to_le_bytes());
            msgs.push(m);
        }
        let mut m = Vec::with_capacity(6 + count * spec.kind.width());
        m.push(MSG_DATA);
        m.push(spec.kind.code());
        m.extend_from_slice(&(count as u32).to_le_bytes());
        put_payload(spec.kind, slot, &mut m)?;
        msgs.push(m);
    }
    Ok(msgs)
}

/// Header of a decoded wire message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireHeader {
    /// Message marker (`MSG_DATA`, `MSG_AUTOLEN`, `MSG_FORMAT`).
    pub marker: u8,
    /// Element type.
    pub kind: ScalarKind,
    /// Element count.
    pub count: usize,
}

/// Peek a message's header without consuming the payload.
pub fn peek_header(msg: &[u8]) -> Result<WireHeader, String> {
    if msg.is_empty() {
        return Err("empty message".into());
    }
    if msg[0] == MSG_FORMAT {
        return Ok(WireHeader {
            marker: MSG_FORMAT,
            kind: ScalarKind::Byte,
            count: msg.len() - 1,
        });
    }
    if msg.len() < 6 {
        return Err(format!("short message ({} bytes)", msg.len()));
    }
    let kind = ScalarKind::from_code(msg[1]).ok_or_else(|| format!("bad kind code {}", msg[1]))?;
    let count = u32::from_le_bytes([msg[2], msg[3], msg[4], msg[5]]) as usize;
    Ok(WireHeader {
        marker: msg[0],
        kind,
        count,
    })
}

fn decode_elems<T, const W: usize>(
    payload: &[u8],
    count: usize,
    from: impl Fn([u8; W]) -> T,
) -> Result<Vec<T>, String> {
    if payload.len() != count * W {
        return Err(format!(
            "payload of {} bytes does not hold {} elements of {} bytes",
            payload.len(),
            count,
            W
        ));
    }
    Ok(payload
        .chunks_exact(W)
        .map(|c| {
            let mut a = [0u8; W];
            a.copy_from_slice(c);
            from(a)
        })
        .collect())
}

/// Decode one read call. `msgs` must contain exactly the wire messages
/// of the matching write (format preamble already stripped).
pub fn decode_call(
    specs: &[FormatSpec],
    slots: &mut [RSlot<'_>],
    msgs: &[Vec<u8>],
) -> Result<(), String> {
    if specs.len() != slots.len() {
        return Err(format!(
            "format has {} specifiers but {} destinations were supplied",
            specs.len(),
            slots.len()
        ));
    }
    if msgs.len() != expected_message_count(specs) {
        return Err(format!(
            "expected {} messages, got {}",
            expected_message_count(specs),
            msgs.len()
        ));
    }
    let mut mi = 0usize;
    for (spec, slot) in specs.iter().zip(slots.iter_mut()) {
        let mut incoming_auto_len: Option<usize> = None;
        if let LenMode::AutoAlloc = spec.len {
            let h = peek_header(&msgs[mi])?;
            if h.marker != MSG_AUTOLEN {
                return Err(format!(
                    "expected a length preamble for {}, got marker '{}'",
                    spec.canonical(),
                    h.marker as char
                ));
            }
            if h.kind != spec.kind {
                return Err(format!(
                    "length preamble type %{} does not match {}",
                    h.kind.letter(),
                    spec.canonical()
                ));
            }
            incoming_auto_len = Some(h.count);
            mi += 1;
        }
        let h = peek_header(&msgs[mi])?;
        if h.marker != MSG_DATA {
            return Err(format!(
                "expected a data message, got marker '{}'",
                h.marker as char
            ));
        }
        if h.kind != spec.kind {
            return Err(format!(
                "incoming %{} does not match reader's {}",
                h.kind.letter(),
                spec.canonical()
            ));
        }
        if let Some(n) = incoming_auto_len {
            if n != h.count {
                return Err(format!(
                    "length preamble said {} elements but data message has {}",
                    n, h.count
                ));
            }
        }
        match spec.len {
            LenMode::One if h.count != 1 => {
                return Err(format!(
                    "reader expects one {} but {} elements arrived",
                    spec.canonical(),
                    h.count
                ));
            }
            LenMode::Fixed(n) if h.count != n => {
                return Err(format!(
                    "reader expects {} elements for {} but {} arrived",
                    n,
                    spec.canonical(),
                    h.count
                ));
            }
            _ => {}
        }
        let payload = &msgs[mi][6..];
        match (spec.kind, slot) {
            (ScalarKind::Int, RSlot::Int(v)) => {
                **v = decode_elems(payload, 1, i64::from_le_bytes)?[0]
            }
            (ScalarKind::Int, RSlot::IntArr(a)) => {
                let vs = decode_elems(payload, h.count, i64::from_le_bytes)?;
                if vs.len() != a.len() {
                    return Err(format!(
                        "{} elements arrived but the destination slice holds {}",
                        vs.len(),
                        a.len()
                    ));
                }
                a.copy_from_slice(&vs);
            }
            (ScalarKind::Int, RSlot::IntVec(v)) => {
                **v = decode_elems(payload, h.count, i64::from_le_bytes)?;
            }
            (ScalarKind::Uint, RSlot::Uint(v)) => {
                **v = decode_elems(payload, 1, u64::from_le_bytes)?[0]
            }
            (ScalarKind::Uint, RSlot::UintArr(a)) => {
                let vs = decode_elems(payload, h.count, u64::from_le_bytes)?;
                if vs.len() != a.len() {
                    return Err(format!(
                        "{} elements arrived but the destination slice holds {}",
                        vs.len(),
                        a.len()
                    ));
                }
                a.copy_from_slice(&vs);
            }
            (ScalarKind::Uint, RSlot::UintVec(v)) => {
                **v = decode_elems(payload, h.count, u64::from_le_bytes)?;
            }
            (ScalarKind::Float, RSlot::Float(v)) => {
                **v = decode_elems(payload, 1, f64::from_le_bytes)?[0]
            }
            (ScalarKind::Float, RSlot::FloatArr(a)) => {
                let vs = decode_elems(payload, h.count, f64::from_le_bytes)?;
                if vs.len() != a.len() {
                    return Err(format!(
                        "{} elements arrived but the destination slice holds {}",
                        vs.len(),
                        a.len()
                    ));
                }
                a.copy_from_slice(&vs);
            }
            (ScalarKind::Float, RSlot::FloatVec(v)) => {
                **v = decode_elems(payload, h.count, f64::from_le_bytes)?;
            }
            (ScalarKind::Byte, RSlot::Byte(v)) => {
                if payload.len() != 1 {
                    return Err("byte payload length mismatch".into());
                }
                **v = payload[0];
            }
            (ScalarKind::Byte, RSlot::ByteArr(a)) => {
                if payload.len() != h.count || h.count != a.len() {
                    return Err(format!(
                        "{} bytes arrived but the destination slice holds {}",
                        h.count,
                        a.len()
                    ));
                }
                a.copy_from_slice(payload);
            }
            (ScalarKind::Byte, RSlot::ByteVec(v)) => {
                if payload.len() != h.count {
                    return Err("byte payload length mismatch".into());
                }
                **v = payload.to_vec();
            }
            (k, s) => return Err(format!("destination {s:?} does not accept %{}", k.letter())),
        }
        mi += 1;
    }
    Ok(())
}

/// Build the level-2 format-preamble message.
pub fn format_preamble(canonical: &str) -> Vec<u8> {
    let mut m = Vec::with_capacity(1 + canonical.len());
    m.push(MSG_FORMAT);
    m.extend_from_slice(canonical.as_bytes());
    m
}

/// Extract the canonical format from a preamble message.
pub fn parse_preamble(msg: &[u8]) -> Result<String, String> {
    if msg.first() != Some(&MSG_FORMAT) {
        return Err("not a format preamble".into());
    }
    String::from_utf8(msg[1..].to_vec()).map_err(|_| "preamble is not UTF-8".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_specs() {
        let specs = parse_format("%d %u %lf %b").unwrap();
        assert_eq!(
            specs.iter().map(|s| s.kind).collect::<Vec<_>>(),
            vec![
                ScalarKind::Int,
                ScalarKind::Uint,
                ScalarKind::Float,
                ScalarKind::Byte
            ]
        );
        assert!(specs.iter().all(|s| s.len == LenMode::One));
    }

    #[test]
    fn parse_array_specs() {
        assert_eq!(
            parse_format("%100f").unwrap()[0],
            FormatSpec {
                kind: ScalarKind::Float,
                len: LenMode::Fixed(100)
            }
        );
        assert_eq!(parse_format("%*d").unwrap()[0].len, LenMode::Runtime);
        assert_eq!(parse_format("%^d").unwrap()[0].len, LenMode::AutoAlloc);
    }

    #[test]
    fn parse_f_and_lf_are_both_float() {
        assert_eq!(parse_format("%f").unwrap()[0].kind, ScalarKind::Float);
        assert_eq!(parse_format("%lf").unwrap()[0].kind, ScalarKind::Float);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_format("").is_err());
        assert!(parse_format("hello").is_err());
        assert!(parse_format("%x").is_err());
        assert!(parse_format("%0d").is_err());
        assert!(parse_format("%l").is_err());
        assert!(parse_format("%ld").is_err());
        assert!(parse_format("% d").is_err());
    }

    #[test]
    fn canonical_normalizes_spacing() {
        let a = canonical_format(&parse_format("%d    %100f").unwrap());
        let b = canonical_format(&parse_format(" %d %100f ").unwrap());
        assert_eq!(a, b);
        assert_eq!(a, "%d %100lf");
    }

    #[test]
    fn message_counts() {
        assert_eq!(
            expected_message_count(&parse_format("%d %100f").unwrap()),
            2
        );
        assert_eq!(expected_message_count(&parse_format("%^d").unwrap()), 2);
        assert_eq!(
            expected_message_count(&parse_format("%d %^f %b").unwrap()),
            4
        );
    }

    fn roundtrip(fmt: &str, wslots: &[WSlot<'_>]) -> Vec<Vec<u8>> {
        let specs = parse_format(fmt).unwrap();
        encode_call(&specs, wslots, true).unwrap()
    }

    #[test]
    fn scalar_roundtrip() {
        let msgs = roundtrip(
            "%d %u %lf %b",
            &[
                WSlot::Int(-5),
                WSlot::Uint(7),
                WSlot::Float(2.5),
                WSlot::Byte(9),
            ],
        );
        let specs = parse_format("%d %u %lf %b").unwrap();
        let (mut a, mut b, mut c, mut d) = (0i64, 0u64, 0.0f64, 0u8);
        decode_call(
            &specs,
            &mut [
                RSlot::Int(&mut a),
                RSlot::Uint(&mut b),
                RSlot::Float(&mut c),
                RSlot::Byte(&mut d),
            ],
            &msgs,
        )
        .unwrap();
        assert_eq!((a, b, c, d), (-5, 7, 2.5, 9));
    }

    #[test]
    fn fixed_array_roundtrip() {
        let data = [1i64, 2, 3];
        let msgs = roundtrip("%3d", &[WSlot::IntArr(&data)]);
        let specs = parse_format("%3d").unwrap();
        let mut out = [0i64; 3];
        decode_call(&specs, &mut [RSlot::IntArr(&mut out)], &msgs).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn runtime_array_roundtrip() {
        let data: Vec<f64> = (0..17).map(|i| i as f64 / 4.0).collect();
        let msgs = roundtrip("%*f", &[WSlot::FloatArr(&data)]);
        let specs = parse_format("%*f").unwrap();
        let mut out = vec![0.0f64; 17];
        decode_call(&specs, &mut [RSlot::FloatArr(&mut out)], &msgs).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn autoalloc_sends_length_then_data() {
        let data = [9i64, 8, 7, 6];
        let msgs = roundtrip("%^d", &[WSlot::IntArr(&data)]);
        assert_eq!(msgs.len(), 2);
        assert_eq!(peek_header(&msgs[0]).unwrap().marker, MSG_AUTOLEN);
        assert_eq!(peek_header(&msgs[0]).unwrap().count, 4);
        assert_eq!(peek_header(&msgs[1]).unwrap().marker, MSG_DATA);
        let specs = parse_format("%^d").unwrap();
        let mut out: Vec<i64> = Vec::new();
        decode_call(&specs, &mut [RSlot::IntVec(&mut out)], &msgs).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn multi_spec_sends_one_message_each() {
        // The paper's example: "%d %100f" sends two MPI messages.
        let arr = vec![0.5f64; 100];
        let msgs = roundtrip("%d %100f", &[WSlot::Int(1), WSlot::FloatArr(&arr)]);
        assert_eq!(msgs.len(), 2);
    }

    #[test]
    fn slot_count_mismatch_rejected() {
        let specs = parse_format("%d %d").unwrap();
        assert!(encode_call(&specs, &[WSlot::Int(1)], false).is_err());
    }

    #[test]
    fn scalar_for_array_spec_rejected() {
        let specs = parse_format("%3d").unwrap();
        assert!(encode_call(&specs, &[WSlot::Int(1)], false).is_err());
    }

    #[test]
    fn strict_args_checks_fixed_length() {
        let specs = parse_format("%3d").unwrap();
        let data = [1i64, 2];
        // Lax (level < 3): length mismatch slips through encode...
        assert!(encode_call(&specs, &[WSlot::IntArr(&data)], false).is_ok());
        // Strict (level 3): caught at the call site.
        assert!(encode_call(&specs, &[WSlot::IntArr(&data)], true).is_err());
    }

    #[test]
    fn reader_detects_wrong_type() {
        let msgs = roundtrip("%d", &[WSlot::Int(1)]);
        let specs = parse_format("%lf").unwrap();
        let mut v = 0.0f64;
        let err = decode_call(&specs, &mut [RSlot::Float(&mut v)], &msgs).unwrap_err();
        assert!(err.contains("%d"), "{err}");
    }

    #[test]
    fn reader_detects_wrong_count() {
        let data = [1i64, 2, 3];
        let msgs = roundtrip("%*d", &[WSlot::IntArr(&data)]);
        let specs = parse_format("%*d").unwrap();
        let mut out = [0i64; 2];
        assert!(decode_call(&specs, &mut [RSlot::IntArr(&mut out)], &msgs).is_err());
    }

    #[test]
    fn preamble_roundtrip() {
        let p = format_preamble("%d %100lf");
        assert_eq!(peek_header(&p).unwrap().marker, MSG_FORMAT);
        assert_eq!(parse_preamble(&p).unwrap(), "%d %100lf");
        assert!(parse_preamble(b"Dxxx").is_err());
    }

    #[test]
    fn first_element_display() {
        assert_eq!(WSlot::Int(-3).first_element_display(), "-3");
        assert_eq!(WSlot::IntArr(&[7, 8]).first_element_display(), "7");
        assert_eq!(WSlot::IntArr(&[]).first_element_display(), "");
        assert_eq!(WSlot::Float(0.5).first_element_display(), "0.500000");
    }

    #[test]
    fn corrupt_wire_is_an_error_not_a_panic() {
        let specs = parse_format("%d").unwrap();
        let mut v = 0i64;
        for bad in [
            vec![],
            vec![b'D'],
            vec![b'D', 0, 1, 0, 0, 0],
            vec![b'Z'; 20],
        ] {
            assert!(
                decode_call(
                    &specs,
                    &mut [RSlot::Int(&mut v)],
                    std::slice::from_ref(&bad)
                )
                .is_err(),
                "{bad:?}"
            );
        }
    }
}
