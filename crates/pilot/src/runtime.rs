//! The Pilot runtime: configuration tables, the two-phase lifecycle,
//! point-to-point and collective communication, and run orchestration.
//!
//! See the crate docs for the model. Implementation notes:
//!
//! * Rank `i` embodies process `i` (process 0 = `PI_MAIN` = rank 0); the
//!   last rank runs the service loop when `-pisvc=c`/`d` is on.
//! * A channel's messages travel on tag `TAG_CHAN_BASE + channel index`,
//!   so tags uniquely identify channels — which also makes the MPE
//!   send/receive records pair correctly into arrows.
//! * Work functions are attached with [`Pilot::assign_work`] (declaring
//!   with [`Pilot::create_process`] first). The C library does both in
//!   one call because C work functions reach their channels through
//!   globals; Rust closures capture the channel handles instead, which
//!   usually exist only *after* the processes — hence the split (the
//!   one-call [`Pilot::create_process_with`] is available when ordering
//!   permits).

use std::cell::RefCell;
use std::time::Duration;

use minimpi::{Rank, Src, Tag, World, WorldOutcome};
use mpelog::{finish_log, sync_clocks, ClockCorrection, Clog2File};
use parking_lot::Mutex;

use crate::config::PilotConfig;
use crate::deadlock::DeadlockReport;
use crate::errors::{CallSite, PilotError, PilotResult};
use crate::format::{
    canonical_format, decode_call, encode_call, expected_message_count, format_preamble,
    parse_format, parse_preamble, peek_header, FormatSpec, LenMode, RSlot, WSlot, MSG_FORMAT,
};
use crate::instrument::{BubbleKind, Instrument, StateKind};
use crate::service::{run_service, ServiceShared, SvcEvent, TAG_SVC};
use crate::types::{Bundle, BundleUsage, Channel, Process};

/// Base tag for channel traffic; channel `c` uses `TAG_CHAN_BASE + c`.
pub(crate) const TAG_CHAN_BASE: u32 = 1000;
/// Tag of the worker→main end-of-work handshake.
const TAG_DONE: u32 = 901;

/// Everything a run leaves behind besides the world outcome.
#[derive(Debug, Default)]
pub struct RunArtifacts {
    /// The merged MPE (CLOG2) log, if `-pisvc=j` was on and the run was
    /// not aborted. Aborts lose this log — the paper's Section III.B.
    pub clog: Option<Clog2File>,
    /// Native log lines (`-pisvc=c`), in arrival order at the service
    /// rank; survives aborts because it is streamed, not buffered.
    pub native_log: Vec<String>,
    /// The deadlock diagnosis, if the detector fired.
    pub deadlock: Option<DeadlockReport>,
    /// Seconds spent in log wrap-up (clock sync + gather/merge) on rank
    /// 0 — the cost the paper measures separately from run time.
    pub wrapup_seconds: Option<f64>,
    /// The status passed to `PI_StopMain`.
    pub main_status: Option<i32>,
    /// Process display names (timeline labels for the viewer).
    pub process_names: Vec<String>,
}

/// Result of [`run`].
#[derive(Debug)]
pub struct PilotOutcome {
    /// Per-rank outcome from the message layer.
    pub world: WorldOutcome,
    /// Collected artifacts.
    pub artifacts: RunArtifacts,
}

impl PilotOutcome {
    /// No aborts, no panics, no deadlock, all ranks returned 0.
    pub fn is_clean(&self) -> bool {
        self.world.all_ok() && self.artifacts.deadlock.is_none()
    }

    /// The merged MPE log, if produced.
    pub fn clog(&self) -> Option<&Clog2File> {
        self.artifacts.clog.as_ref()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Config,
    Exec,
    Done,
}

struct ProcEntry {
    name: String,
    index_arg: i64,
}

struct ChanEntry {
    from: usize,
    to: usize,
    name: String,
}

struct BundleEntry {
    usage: BundleUsage,
    channels: Vec<usize>,
    root: usize,
    name: String,
}

struct State {
    phase: Phase,
    procs: Vec<ProcEntry>,
    chans: Vec<ChanEntry>,
    bundles: Vec<BundleEntry>,
    timer_start: Option<f64>,
}

type WorkFn<'r, 'env> = Box<dyn Fn(&Pilot<'r, 'env>, i64) -> i32 + 'env>;

struct SharedOut {
    service: ServiceShared,
    clog: Mutex<Option<Clog2File>>,
    wrapup: Mutex<Option<f64>>,
    main_status: Mutex<Option<i32>>,
    process_names: Mutex<Vec<String>>,
}

/// The per-rank Pilot context handed to the program and to work
/// functions. Not `Sync`: it belongs to one rank thread.
pub struct Pilot<'r, 'env> {
    rank: &'r Rank,
    config: &'r PilotConfig,
    st: RefCell<State>,
    work: RefCell<Vec<Option<WorkFn<'r, 'env>>>>,
    instr: RefCell<Instrument>,
    out: &'r SharedOut,
}

/// Run a Pilot program on `config.ranks` ranks.
///
/// `program` executes on every process rank (the MPMD configuration
/// convention); the service rank, if any, runs the service loop instead.
pub fn run<'env, F>(config: PilotConfig, program: F) -> PilotOutcome
where
    F: for<'r> Fn(&Pilot<'r, 'env>) -> PilotResult<i32> + Send + Sync + 'env,
{
    assert!(config.ranks >= 1, "need at least one rank");
    assert!(
        config.process_capacity() >= 1,
        "need at least one rank left for PI_MAIN after services"
    );

    let out = SharedOut {
        service: ServiceShared::default(),
        clog: Mutex::new(None),
        wrapup: Mutex::new(None),
        main_status: Mutex::new(None),
        process_names: Mutex::new(Vec::new()),
    };
    let out_ref = &out;
    let config_ref = &config;
    let program_ref = &program;

    let mut builder = World::builder(config.ranks)
        .engine(config.engine)
        .clock_shape(config.clock.clone());
    if let Some(order) = &config.spawn_order {
        builder = builder.spawn_order(order.clone());
    }
    if let Some(obs) = &config.observe {
        builder = builder.observe(obs.clone());
    }
    if let Some(plan) = &config.fault_plan {
        builder = builder.faults(plan.clone());
    }
    let world = builder.run(move |rank| rank_body(rank, config_ref, program_ref, out_ref));

    let ServiceShared {
        native_lines,
        deadlock,
    } = out.service;
    PilotOutcome {
        world,
        artifacts: RunArtifacts {
            clog: out.clog.into_inner(),
            native_log: native_lines.into_inner(),
            deadlock: deadlock.into_inner(),
            wrapup_seconds: out.wrapup.into_inner(),
            main_status: out.main_status.into_inner(),
            process_names: out.process_names.into_inner(),
        },
    }
}

fn rank_body<'env, F>(rank: &Rank, config: &PilotConfig, program: &F, out: &SharedOut) -> i32
where
    F: for<'r> Fn(&Pilot<'r, 'env>) -> PilotResult<i32> + Send + Sync + 'env,
{
    if config.service_rank() == Some(rank.rank()) {
        let clean = run_service(rank, config, &out.service);
        if clean && config.services.jumpshot {
            // Participate in the final collective wrap-up with an empty log.
            let mut lg = mpelog::Logger::new(rank.rank());
            if let Ok((t, off)) = sync_clocks(rank, config.sync_rounds) {
                lg.set_correction(ClockCorrection::from_points(vec![(t, off)]));
                let _ = finish_log(rank, &lg);
            }
        }
        return 0;
    }

    let pi = Pilot::new(rank, config, out);
    let result = program(&pi);
    let code = match result {
        Ok(c) => {
            // Program returned without PI_StopMain (or never started the
            // execution phase): finalize on its behalf.
            match pi.finalize(c) {
                Ok(()) => c,
                Err(PilotError::Aborted { code, .. }) => code,
                Err(_) => c,
            }
        }
        Err(PilotError::Done(c)) => c,
        Err(PilotError::Aborted { code, .. }) => code,
        Err(e) => {
            eprintln!("Pilot error on rank {}: {}", rank.rank(), e.diagnostic());
            let _ = rank.abort(-4);
            1
        }
    };
    code
}

impl<'r, 'env> Pilot<'r, 'env> {
    fn new(rank: &'r Rank, config: &'r PilotConfig, out: &'r SharedOut) -> Pilot<'r, 'env> {
        let mut instr = Instrument::new(
            rank.rank(),
            config.services.jumpshot,
            config.arrow_spread,
            config.mpe_spill_dir.as_deref(),
            config.observe.as_ref().map(|o| o.shard(rank.rank())),
        );
        if let Some(lg) = instr.logger_mut() {
            // Injected spill-I/O failure: stop the incremental spill
            // after the plan's byte budget, leaving a torn file for the
            // salvage reader.
            if let Some(budget) = config
                .fault_plan
                .as_ref()
                .and_then(|p| p.spill_byte_budget(rank.rank()))
            {
                lg.limit_spill_bytes(budget);
            }
            // Crash guard: if this rank dies before the wrap-up, its
            // buffered records are flushed to the spill directory on
            // unwind (disarmed after a successful finish_log).
            if let Some(dir) = &config.mpe_spill_dir {
                lg.arm_crash_guard(dir);
            }
        }
        // The Configuration Phase rectangle opens with PI_Configure.
        instr.state_start(StateKind::Configure, rank.wtime(), "Configuration");
        let st = State {
            phase: Phase::Config,
            procs: vec![ProcEntry {
                name: "PI_MAIN".into(),
                index_arg: 0,
            }],
            chans: Vec::new(),
            bundles: Vec::new(),
            timer_start: None,
        };
        Pilot {
            rank,
            config,
            st: RefCell::new(st),
            work: RefCell::new(vec![None]),
            instr: RefCell::new(instr),
            out,
        }
    }

    // ---- identity & introspection ----

    /// Total MPI ranks in the world.
    pub fn world_size(&self) -> usize {
        self.rank.size()
    }

    /// How many Pilot processes can exist (main included).
    pub fn process_capacity(&self) -> usize {
        self.config.process_capacity()
    }

    /// Number of processes created so far (including `PI_MAIN`).
    pub fn process_count(&self) -> usize {
        self.st.borrow().procs.len()
    }

    /// The process this rank embodies, if any (`None` on idle ranks).
    pub fn my_process(&self) -> Option<Process> {
        let me = self.rank.rank();
        (me < self.st.borrow().procs.len()).then_some(Process(me))
    }

    /// Is MPE (Jumpshot) logging enabled? — `PI_IsLogging`.
    pub fn is_logging(&self) -> bool {
        self.config.services.jumpshot
    }

    /// Wallclock seconds since the world started (this rank's clock).
    pub fn wtime(&self) -> f64 {
        self.rank.wtime()
    }

    /// Sleep for `d` of *engine* time: a real `thread::sleep` under
    /// [`Engine::Wall`](minimpi::Engine::Wall), a virtual-clock timer
    /// under [`Engine::Virtual`](minimpi::Engine::Virtual). Workloads
    /// that model compute with sleeps must use this so virtual runs
    /// simulate the think time instead of actually waiting it out.
    pub fn sleep(&self, d: Duration) {
        self.rank.sleep(d);
    }

    fn checks(&self) -> u8 {
        self.config.check_level
    }

    fn phase(&self) -> Phase {
        self.st.borrow().phase
    }

    fn require_config(&self, what: &'static str, at: &CallSite) -> PilotResult<()> {
        if self.checks() >= 1 && self.phase() != Phase::Config {
            return Err(PilotError::ConfigPhaseOnly {
                what,
                at: at.clone(),
            });
        }
        Ok(())
    }

    fn require_exec(&self, what: &'static str, at: &CallSite) -> PilotResult<()> {
        if self.checks() >= 1 && self.phase() != Phase::Exec {
            return Err(PilotError::ExecPhaseOnly {
                what,
                at: at.clone(),
            });
        }
        Ok(())
    }

    fn my_proc_index(&self) -> usize {
        self.rank.rank()
    }

    fn send_svc(&self, ev: &SvcEvent) {
        if let Some(svc) = self.config.service_rank() {
            let _ = self.rank.send(svc, TAG_SVC, &ev.encode());
        }
    }

    fn native_line(&self, line: String) {
        if self.config.services.call_log {
            self.send_svc(&SvcEvent::LogLine(line));
        }
    }

    fn ddt_event(&self, ev: SvcEvent) {
        if self.config.services.deadlock {
            self.send_svc(&ev);
        }
    }

    fn short_loc(at: &CallSite) -> String {
        let base = at.file.rsplit('/').next().unwrap_or(&at.file);
        format!("{base}:{}", at.line)
    }

    fn call_text(&self, at: &CallSite) -> String {
        let st = self.st.borrow();
        let me = self.my_proc_index();
        let (name, idx) = st
            .procs
            .get(me)
            .map(|p| (p.name.as_str(), p.index_arg))
            .unwrap_or(("?", -1));
        format!("Line: {} Proc: {} Idx: {}", Self::short_loc(at), name, idx)
    }

    // ---- configuration phase ----

    /// Declare a Pilot process — `PI_CreateProcess` (first half). The
    /// work function is attached with [`Pilot::assign_work`]; the
    /// `index_arg` is passed to it, serving the master/worker idiom the
    /// paper describes (the popup shows it to tell workers apart).
    #[track_caller]
    pub fn create_process(&self, index_arg: i64) -> PilotResult<Process> {
        let at = CallSite::here();
        self.require_config("PI_CreateProcess", &at)?;
        let mut st = self.st.borrow_mut();
        let n = st.procs.len();
        if n >= self.config.process_capacity() {
            return Err(PilotError::TooManyProcesses {
                requested: n,
                available: self.config.process_capacity() - 1,
                at,
            });
        }
        st.procs.push(ProcEntry {
            name: format!("P{n}"),
            index_arg,
        });
        self.work.borrow_mut().push(None);
        if self.rank.rank() == 0 {
            self.native_line(format!(
                "t={:.6} P0 PI_CreateProcess -> P{} idx={} at {}",
                self.rank.wtime(),
                n,
                index_arg,
                Self::short_loc(&at)
            ));
        }
        Ok(Process(n))
    }

    /// Attach the work function to a declared process — `PI_CreateProcess`
    /// (second half).
    #[track_caller]
    pub fn assign_work<F>(&self, p: Process, work: F) -> PilotResult<()>
    where
        F: Fn(&Pilot<'r, 'env>, i64) -> i32 + 'env,
    {
        let at = CallSite::here();
        self.require_config("PI_CreateProcess", &at)?;
        let mut tbl = self.work.borrow_mut();
        if p.0 == 0 || p.0 >= tbl.len() {
            return Err(PilotError::BadHandle {
                what: "process",
                index: p.0,
                at,
            });
        }
        tbl[p.0] = Some(Box::new(work));
        Ok(())
    }

    /// Declare a process and attach its work in one call, for when the
    /// channels it needs already exist.
    #[track_caller]
    pub fn create_process_with<F>(&self, work: F, index_arg: i64) -> PilotResult<Process>
    where
        F: Fn(&Pilot<'r, 'env>, i64) -> i32 + 'env,
    {
        let p = self.create_process(index_arg)?;
        self.assign_work(p, work)?;
        Ok(p)
    }

    /// Create a directed channel — `PI_CreateChannel`.
    #[track_caller]
    pub fn create_channel(&self, from: Process, to: Process) -> PilotResult<Channel> {
        let at = CallSite::here();
        self.require_config("PI_CreateChannel", &at)?;
        let mut st = self.st.borrow_mut();
        for (what, p) in [("process", from), ("process", to)] {
            if p.0 >= st.procs.len() {
                return Err(PilotError::BadHandle {
                    what,
                    index: p.0,
                    at,
                });
            }
        }
        if from == to {
            return Err(PilotError::BadArgument {
                what: "a channel cannot connect a process to itself".into(),
                at,
            });
        }
        let c = st.chans.len();
        st.chans.push(ChanEntry {
            from: from.0,
            to: to.0,
            name: format!("C{c}"),
        });
        if self.rank.rank() == 0 {
            self.native_line(format!(
                "t={:.6} P0 PI_CreateChannel C{} P{}->P{} at {}",
                self.rank.wtime(),
                c,
                from.0,
                to.0,
                Self::short_loc(&at)
            ));
        }
        Ok(Channel(c))
    }

    /// Create a bundle for a collective operation — `PI_CreateBundle`.
    ///
    /// The channels must share a common endpoint on the side the usage
    /// dictates: the writer for broadcast/scatter, the reader for
    /// gather/reduce/select.
    #[track_caller]
    pub fn create_bundle(&self, usage: BundleUsage, channels: &[Channel]) -> PilotResult<Bundle> {
        let at = CallSite::here();
        self.require_config("PI_CreateBundle", &at)?;
        let mut st = self.st.borrow_mut();
        if channels.is_empty() {
            return Err(PilotError::BadArgument {
                what: "bundle needs at least one channel".into(),
                at,
            });
        }
        for c in channels {
            if c.0 >= st.chans.len() {
                return Err(PilotError::BadHandle {
                    what: "channel",
                    index: c.0,
                    at,
                });
            }
        }
        let endpoint = |c: &Channel| match usage {
            BundleUsage::Broadcast | BundleUsage::Scatter => st.chans[c.0].from,
            BundleUsage::Gather | BundleUsage::Reduce | BundleUsage::Select => st.chans[c.0].to,
        };
        let root = endpoint(&channels[0]);
        if self.checks() >= 1 && !channels.iter().all(|c| endpoint(c) == root) {
            return Err(PilotError::NoCommonEndpoint { at });
        }
        let b = st.bundles.len();
        st.bundles.push(BundleEntry {
            usage,
            channels: channels.iter().map(|c| c.0).collect(),
            root,
            name: format!("B{b}"),
        });
        if self.rank.rank() == 0 {
            self.native_line(format!(
                "t={:.6} P0 PI_CreateBundle B{} {} x{} root P{} at {}",
                self.rank.wtime(),
                b,
                usage.name(),
                channels.len(),
                root,
                Self::short_loc(&at)
            ));
        }
        Ok(Bundle(b))
    }

    /// Name a process (shows up as the timeline label and in popups) —
    /// `PI_SetName`.
    pub fn set_process_name(&self, p: Process, name: &str) -> PilotResult<()> {
        let mut st = self.st.borrow_mut();
        let entry = st.procs.get_mut(p.0).ok_or(PilotError::BadHandle {
            what: "process",
            index: p.0,
            at: CallSite::here(),
        })?;
        entry.name = name.to_string();
        Ok(())
    }

    /// Name a channel (shows in arrival-bubble popups).
    pub fn set_channel_name(&self, c: Channel, name: &str) -> PilotResult<()> {
        let mut st = self.st.borrow_mut();
        let entry = st.chans.get_mut(c.0).ok_or(PilotError::BadHandle {
            what: "channel",
            index: c.0,
            at: CallSite::here(),
        })?;
        entry.name = name.to_string();
        Ok(())
    }

    /// Name a bundle (shows in collective popups).
    pub fn set_bundle_name(&self, b: Bundle, name: &str) -> PilotResult<()> {
        let mut st = self.st.borrow_mut();
        let entry = st.bundles.get_mut(b.0).ok_or(PilotError::BadHandle {
            what: "bundle",
            index: b.0,
            at: CallSite::here(),
        })?;
        entry.name = name.to_string();
        Ok(())
    }

    /// A process's display name — `PI_GetName`.
    pub fn process_name(&self, p: Process) -> String {
        self.st
            .borrow()
            .procs
            .get(p.0)
            .map(|e| e.name.clone())
            .unwrap_or_else(|| format!("P{}", p.0))
    }

    /// A channel's display name.
    pub fn channel_name(&self, c: Channel) -> String {
        self.st
            .borrow()
            .chans
            .get(c.0)
            .map(|e| e.name.clone())
            .unwrap_or_else(|| format!("C{}", c.0))
    }

    /// A channel's writer process.
    pub fn channel_writer(&self, c: Channel) -> Option<Process> {
        self.st.borrow().chans.get(c.0).map(|e| Process(e.from))
    }

    /// A channel's reader process.
    pub fn channel_reader(&self, c: Channel) -> Option<Process> {
        self.st.borrow().chans.get(c.0).map(|e| Process(e.to))
    }

    // ---- phase transitions ----

    /// Start the execution phase — `PI_StartAll`.
    ///
    /// On worker ranks this runs the process's work function and then
    /// returns `Err(PilotError::Done(code))`, so `pi.start_all()?`
    /// naturally skips the main-only part of the program. Only `PI_MAIN`
    /// returns `Ok(())`.
    #[track_caller]
    pub fn start_all(&self) -> PilotResult<()> {
        let at = CallSite::here();
        self.require_config("PI_StartAll", &at)?;
        // Every declared worker must have a work function.
        {
            let tbl = self.work.borrow();
            for (i, w) in tbl.iter().enumerate().skip(1) {
                if w.is_none() {
                    return Err(PilotError::BadArgument {
                        what: format!("process P{i} has no work function assigned"),
                        at,
                    });
                }
            }
        }
        self.st.borrow_mut().phase = Phase::Exec;
        let now = self.rank.wtime();
        {
            let mut ins = self.instr.borrow_mut();
            ins.state_end(StateKind::Configure, now, "");
            ins.bubble(
                BubbleKind::StartAll,
                now,
                &format!("Line: {}", Self::short_loc(&at)),
            );
            ins.state_start(StateKind::Compute, now, &self.call_text(&at));
        }
        if self.rank.rank() == 0 {
            self.native_line(format!("t={now:.6} P0 PI_StartAll"));
        }

        let me = self.rank.rank();
        let nprocs = self.st.borrow().procs.len();
        if me == 0 {
            return Ok(());
        }
        // Worker or idle rank: run the work function (if this rank
        // embodies a process), then wind down.
        let code = if me < nprocs {
            let work = self.work.borrow_mut()[me].take().expect("validated above");
            let idx = self.st.borrow().procs[me].index_arg;
            work(self, idx)
        } else {
            0
        };
        let now = self.rank.wtime();
        self.instr
            .borrow_mut()
            .state_end(StateKind::Compute, now, "");
        self.ddt_event(SvcEvent::Exit { proc: me as u32 });
        self.native_line(format!("t={now:.6} P{me} work function returned {code}"));
        // Tell PI_MAIN we are done, then join the collective wrap-up.
        self.rank.send(0, TAG_DONE, &code.to_le_bytes())?;
        self.wrapup()?;
        self.st.borrow_mut().phase = Phase::Done;
        Err(PilotError::Done(code))
    }

    /// End the execution phase — `PI_StopMain`. Only `PI_MAIN` calls
    /// this; it waits for every worker, shuts down the service rank, and
    /// performs the MPE log wrap-up (clock sync + gather + merge), whose
    /// duration is recorded in the run artifacts.
    #[track_caller]
    pub fn stop_main(&self, status: i32) -> PilotResult<i32> {
        let at = CallSite::here();
        self.require_exec("PI_StopMain", &at)?;
        if self.checks() >= 1 && self.rank.rank() != 0 {
            return Err(PilotError::BadArgument {
                what: "PI_StopMain may only be called by PI_MAIN".into(),
                at,
            });
        }
        let now = self.rank.wtime();
        {
            let mut ins = self.instr.borrow_mut();
            ins.bubble(
                BubbleKind::StopMain,
                now,
                &format!("Line: {}", Self::short_loc(&at)),
            );
            ins.state_end(StateKind::Compute, now, "");
        }
        self.native_line(format!("t={now:.6} P0 PI_StopMain status={status}"));

        // Wait for all non-main process ranks to report in.
        let expected = self.config.process_capacity() - 1;
        for _ in 0..expected {
            self.rank.recv(Src::Any, Tag::Of(TAG_DONE))?;
        }
        self.ddt_event(SvcEvent::Exit { proc: 0 });
        self.send_svc(&SvcEvent::Shutdown);

        let t0 = self.rank.true_time();
        self.wrapup()?;
        let dt = self.rank.true_time() - t0;
        if self.config.services.jumpshot {
            *self.out.wrapup.lock() = Some(dt);
        }
        *self.out.main_status.lock() = Some(status);
        {
            let st = self.st.borrow();
            let mut names: Vec<String> = st.procs.iter().map(|p| p.name.clone()).collect();
            for extra in st.procs.len()..self.rank.size() {
                if self.config.service_rank() == Some(extra) {
                    names.push("(log svc)".into());
                } else {
                    names.push(format!("P{extra} (idle)"));
                }
            }
            *self.out.process_names.lock() = names;
        }
        self.st.borrow_mut().phase = Phase::Done;
        Ok(status)
    }

    /// The collective end-of-run work every rank performs: final clock
    /// sync (`MPE_Log_sync_clocks`) and log gather (`MPE_Finish_log`).
    fn wrapup(&self) -> PilotResult<()> {
        if !self.config.services.jumpshot {
            return Ok(());
        }
        let (t, off) = sync_clocks(self.rank, self.config.sync_rounds)?;
        // Offsets below the measurement noise floor (a few ping RTTs)
        // are indistinguishable from zero; applying them would jitter
        // timestamps and create spurious backward arrows.
        let off = if off.abs() < 20e-6 { 0.0 } else { off };
        let mut ins = self.instr.borrow_mut();
        if let Some(lg) = ins.logger_mut() {
            lg.set_correction(ClockCorrection::from_points(vec![(t, off)]));
        }
        if let Some(lg) = ins.logger() {
            if let Some(file) = finish_log(self.rank, lg)? {
                *self.out.clog.lock() = Some(file);
            }
        }
        // The log is durably merged (an abort above leaves the guard
        // armed, so the unwind still flushes what this rank buffered).
        if let Some(lg) = ins.logger_mut() {
            lg.disarm_crash_guard();
        }
        Ok(())
    }

    /// Finalization fallback when the program returns without calling
    /// `PI_StopMain` (or never called `PI_StartAll`).
    fn finalize(&self, code: i32) -> PilotResult<()> {
        match self.phase() {
            Phase::Done => Ok(()),
            Phase::Exec => {
                if self.rank.rank() == 0 {
                    self.stop_main(code).map(|_| ())
                } else {
                    Ok(())
                }
            }
            Phase::Config => {
                // Configuration-only program: close the Configure state,
                // shut the service down, and do the collective wrap-up.
                let now = self.rank.wtime();
                self.instr
                    .borrow_mut()
                    .state_end(StateKind::Configure, now, "");
                if self.rank.rank() == 0 {
                    self.send_svc(&SvcEvent::Shutdown);
                }
                self.wrapup()?;
                self.st.borrow_mut().phase = Phase::Done;
                Ok(())
            }
        }
    }

    /// Halt the whole program — `PI_Abort`. As in the paper, the MPE log
    /// cannot be finalized after this (the merge needs messaging), while
    /// the native log keeps everything received so far.
    #[track_caller]
    pub fn abort(&self, code: i32, reason: &str) -> PilotError {
        let at = CallSite::here();
        eprintln!(
            "PI_Abort at {}: {} (code {code})",
            Self::short_loc(&at),
            reason
        );
        self.native_line(format!(
            "t={:.6} P{} PI_Abort code={} reason={}",
            self.rank.wtime(),
            self.rank.rank(),
            code,
            reason
        ));
        if self.config.services.call_log {
            // Give the service rank a moment to drain queued log lines to
            // disk before the abort tears the world down (a real
            // MPI_Abort is likewise not instantaneous). The buffered MPE
            // log is still lost — that asymmetry is the paper's point.
            self.rank.sleep(Duration::from_millis(50));
        }
        self.rank.abort(code).into()
    }

    // ---- point-to-point communication ----

    fn chan_entry(&self, c: Channel, at: &CallSite) -> PilotResult<(usize, usize, String)> {
        let st = self.st.borrow();
        let e = st.chans.get(c.0).ok_or(PilotError::BadHandle {
            what: "channel",
            index: c.0,
            at: at.clone(),
        })?;
        Ok((e.from, e.to, e.name.clone()))
    }

    fn chan_tag(c: usize) -> u32 {
        TAG_CHAN_BASE + c as u32
    }

    /// Write to a channel — `PI_Write`.
    ///
    /// `fmt` follows the Pilot format syntax (see [`crate::format`]);
    /// `slots` supplies one value per specifier.
    #[track_caller]
    pub fn write(&self, chan: Channel, fmt: &str, slots: &[WSlot<'_>]) -> PilotResult<()> {
        let at = CallSite::here();
        self.require_exec("PI_Write", &at)?;
        let specs = parse_format(fmt).map_err(|reason| PilotError::BadFormat {
            format: fmt.into(),
            reason,
            at: at.clone(),
        })?;
        self.write_inner(chan, fmt, &specs, slots, &at, Some(StateKind::Write))
    }

    /// Shared send path for `PI_Write` and collective fanouts.
    /// `state` is `None` when an enclosing collective owns the state.
    fn write_inner(
        &self,
        chan: Channel,
        fmt: &str,
        specs: &[FormatSpec],
        slots: &[WSlot<'_>],
        at: &CallSite,
        state: Option<StateKind>,
    ) -> PilotResult<()> {
        let (from, to, _name) = self.chan_entry(chan, at)?;
        let me = self.my_proc_index();
        if self.checks() >= 1 && me != from {
            return Err(PilotError::NotChannelWriter {
                chan,
                caller: Process(me),
                writer: Process(from),
                at: at.clone(),
            });
        }
        let msgs = encode_call(specs, slots, self.checks() >= 3).map_err(|reason| {
            PilotError::SlotMismatch {
                format: fmt.into(),
                reason,
                at: at.clone(),
            }
        })?;
        let tag = Self::chan_tag(chan.0);
        let n_wire = msgs.len() + usize::from(self.checks() >= 2);

        if let Some(kind) = state {
            self.instr
                .borrow_mut()
                .state_start(kind, self.rank.wtime(), &self.call_text(at));
            self.native_line(format!(
                "t={:.6} P{} PI_Write C{} fmt={} at {}",
                self.rank.wtime(),
                me,
                chan.0,
                canonical_format(specs),
                Self::short_loc(at)
            ));
        }

        // Announce before sending so the detector's credit always lands
        // before our Exit event (FIFO per sender pair).
        self.ddt_event(SvcEvent::NoteWrite {
            chan: chan.0 as u32,
            n: n_wire as u32,
        });

        if self.checks() >= 2 {
            let pre = format_preamble(&canonical_format(specs));
            self.send_chan_msg(to, tag, &pre, false)?;
        }
        let first = slots
            .first()
            .map(WSlot::first_element_display)
            .unwrap_or_default();
        let total: usize = slots.iter().map(WSlot::count).sum();
        for m in &msgs {
            self.send_chan_msg(to, tag, m, true)?;
        }
        self.instr.borrow_mut().bubble(
            BubbleKind::WriteInfo,
            self.rank.wtime(),
            &format!("Len: {total} First: {first}"),
        );

        if let Some(kind) = state {
            self.instr
                .borrow_mut()
                .state_end(kind, self.rank.wtime(), "");
        }
        Ok(())
    }

    fn send_chan_msg(
        &self,
        to_proc: usize,
        tag: u32,
        msg: &[u8],
        log_arrow: bool,
    ) -> PilotResult<()> {
        // Take the timestamp BEFORE the message becomes visible: the
        // receiver may log its arrival before this thread runs again,
        // and an arrival earlier than its send would be a backward
        // arrow. (MPE likewise calls MPE_Log_send before MPI_Send.)
        let ts = self.rank.wtime();
        if self.config.synchronous_channels {
            self.rank.ssend(to_proc, tag, msg)?;
        } else {
            self.rank.send(to_proc, tag, msg)?;
        }
        if log_arrow {
            self.instr
                .borrow_mut()
                .log_send(ts, to_proc, tag, msg.len());
        }
        Ok(())
    }

    /// Read from a channel — `PI_Read`. Blocks until the matching write
    /// arrives ("red means stop").
    #[track_caller]
    pub fn read(&self, chan: Channel, fmt: &str, slots: &mut [RSlot<'_>]) -> PilotResult<()> {
        let at = CallSite::here();
        self.require_exec("PI_Read", &at)?;
        let specs = parse_format(fmt).map_err(|reason| PilotError::BadFormat {
            format: fmt.into(),
            reason,
            at: at.clone(),
        })?;
        self.read_inner(chan, fmt, &specs, slots, &at, Some(StateKind::Read))
    }

    fn read_inner(
        &self,
        chan: Channel,
        _fmt: &str,
        specs: &[FormatSpec],
        slots: &mut [RSlot<'_>],
        at: &CallSite,
        state: Option<StateKind>,
    ) -> PilotResult<()> {
        let (from, to, chan_name) = self.chan_entry(chan, at)?;
        let me = self.my_proc_index();
        if self.checks() >= 1 && me != to {
            return Err(PilotError::NotChannelReader {
                chan,
                caller: Process(me),
                reader: Process(to),
                at: at.clone(),
            });
        }
        if let Some(kind) = state {
            self.instr
                .borrow_mut()
                .state_start(kind, self.rank.wtime(), &self.call_text(at));
            self.native_line(format!(
                "t={:.6} P{} PI_Read C{} fmt={} at {}",
                self.rank.wtime(),
                me,
                chan.0,
                canonical_format(specs),
                Self::short_loc(at)
            ));
        }
        let tag = Self::chan_tag(chan.0);
        let n_data = expected_message_count(specs);
        let n_wire = n_data + usize::from(self.checks() >= 2);

        self.ddt_event(SvcEvent::PreBlock {
            proc: me as u32,
            op: "PI_Read".into(),
            waits: vec![(from as u32, chan.0 as u32)],
            loc: Self::short_loc(at),
            res: format!("C{}", chan.0),
        });

        let blocked_from = self.rank.true_time();
        let recv_result = (|| -> PilotResult<Vec<Vec<u8>>> {
            let mut msgs = Vec::with_capacity(n_data);
            if self.checks() >= 2 {
                let m = self.rank.recv(Src::Of(from), Tag::Of(tag))?;
                let h = peek_header(&m.payload).map_err(|e| PilotError::WireMismatch {
                    expected: "format preamble".into(),
                    got: e,
                    at: at.clone(),
                })?;
                if h.marker != MSG_FORMAT {
                    return Err(PilotError::WireMismatch {
                        expected: "format preamble (is the writer at the same check level?)".into(),
                        got: format!("marker '{}'", h.marker as char),
                        at: at.clone(),
                    });
                }
                let writer_fmt =
                    parse_preamble(&m.payload).map_err(|e| PilotError::WireMismatch {
                        expected: "format preamble".into(),
                        got: e,
                        at: at.clone(),
                    })?;
                let mine = canonical_format(specs);
                if writer_fmt != mine {
                    return Err(PilotError::FormatMismatch {
                        writer_fmt,
                        reader_fmt: mine,
                        at: at.clone(),
                    });
                }
            }
            for _ in 0..n_data {
                let m = self.rank.recv(Src::Of(from), Tag::Of(tag))?;
                let now = self.rank.wtime();
                let mut ins = self.instr.borrow_mut();
                // The arrival bubble the paper describes, one per message.
                ins.log_receive(now, from, tag, m.payload.len());
                ins.bubble(BubbleKind::MsgArrival, now, &format!("Chan: {chan_name}"));
                drop(ins);
                msgs.push(m.payload.to_vec());
            }
            Ok(msgs)
        })();

        self.ddt_event(SvcEvent::PostBlock { proc: me as u32 });
        // Per-channel blocked time: how long this PI_Read (or collective
        // leg) waited on the wire, keyed by the channel's display name.
        self.instr.borrow().note_blocked(
            StateKind::Read,
            &chan_name,
            ((self.rank.true_time() - blocked_from) * 1e9) as u64,
        );
        let msgs = match recv_result {
            Ok(m) => {
                self.ddt_event(SvcEvent::NoteRead {
                    chan: chan.0 as u32,
                    n: n_wire as u32,
                });
                m
            }
            Err(e) => return Err(e),
        };

        decode_call(specs, slots, &msgs).map_err(|reason| PilotError::WireMismatch {
            expected: canonical_format(specs),
            got: reason,
            at: at.clone(),
        })?;

        if let Some(kind) = state {
            self.instr
                .borrow_mut()
                .state_end(kind, self.rank.wtime(), "");
        }
        Ok(())
    }

    /// Does this channel have a message waiting? — `PI_ChannelHasData`.
    #[track_caller]
    pub fn channel_has_data(&self, chan: Channel) -> PilotResult<bool> {
        let at = CallSite::here();
        self.require_exec("PI_ChannelHasData", &at)?;
        let (from, _to, _) = self.chan_entry(chan, &at)?;
        let has = self
            .rank
            .iprobe(Src::Of(from), Tag::Of(Self::chan_tag(chan.0)))?
            .is_some();
        self.instr.borrow_mut().bubble(
            BubbleKind::ChannelHasData,
            self.rank.wtime(),
            &format!("Ret: {} Line: {}", has as u8, Self::short_loc(&at)),
        );
        Ok(has)
    }

    // ---- timing & logging utilities ----

    /// Start an interval timer — `PI_StartTime`. Returns the wallclock.
    #[track_caller]
    pub fn start_time(&self) -> f64 {
        let at = CallSite::here();
        let t = self.rank.wtime();
        self.st.borrow_mut().timer_start = Some(t);
        self.instr.borrow_mut().bubble(
            BubbleKind::StartTime,
            t,
            &format!("Ret: {t:.6} Line: {}", Self::short_loc(&at)),
        );
        t
    }

    /// Elapsed seconds since `start_time` — `PI_EndTime`.
    #[track_caller]
    pub fn end_time(&self) -> f64 {
        let at = CallSite::here();
        let t = self.rank.wtime();
        let elapsed = t - self.st.borrow().timer_start.unwrap_or(0.0);
        self.instr.borrow_mut().bubble(
            BubbleKind::EndTime,
            t,
            &format!("Ret: {elapsed:.6} Line: {}", Self::short_loc(&at)),
        );
        elapsed
    }

    /// Write a free-text entry into the logs — `PI_Log`.
    #[track_caller]
    pub fn log(&self, text: &str) {
        let at = CallSite::here();
        let now = self.rank.wtime();
        self.instr
            .borrow_mut()
            .bubble(BubbleKind::Log, now, &format!("Note: {text}"));
        self.native_line(format!(
            "t={now:.6} P{} PI_Log {} at {}",
            self.rank.rank(),
            text,
            Self::short_loc(&at)
        ));
    }
}

// ---- collective operations ----
//
// Pilot collectives are asymmetric, matching the paper's description:
// the bundle's common endpoint calls the collective function while the
// leaf processes call plain PI_Read / PI_Write on their channel ends —
// "the broadcasting process would call PI_Broadcast, and the receivers
// would all call PI_Read".

impl<'r, 'env> Pilot<'r, 'env> {
    fn bundle_entry(
        &self,
        b: Bundle,
        used_with: BundleUsage,
        at: &CallSite,
    ) -> PilotResult<(Vec<usize>, usize, String)> {
        let st = self.st.borrow();
        let e = st.bundles.get(b.0).ok_or(PilotError::BadHandle {
            what: "bundle",
            index: b.0,
            at: at.clone(),
        })?;
        if self.checks() >= 1 && e.usage != used_with {
            return Err(PilotError::WrongBundleUsage {
                bundle: b,
                expected: e.usage,
                used_with,
                at: at.clone(),
            });
        }
        let me = self.my_proc_index();
        if self.checks() >= 1 && me != e.root {
            return Err(PilotError::NotBundleRoot {
                bundle: b,
                caller: Process(me),
                root: Process(e.root),
                at: at.clone(),
            });
        }
        Ok((e.channels.clone(), e.root, e.name.clone()))
    }

    fn bundle_text(&self, name: &str, at: &CallSite) -> String {
        // Bundle first: the 40-byte MPE info limit must not eat it.
        format!("Bundle: {} {}", name, self.call_text(at))
    }

    /// Send the same data down every channel of the bundle —
    /// `PI_Broadcast`. Each receiver calls `PI_Read` on its channel, so
    /// the view shows N white arrows fanning out (spread apart by the
    /// paper's 1 ms workaround so they are not superimposed).
    #[track_caller]
    pub fn broadcast(&self, bundle: Bundle, fmt: &str, slots: &[WSlot<'_>]) -> PilotResult<()> {
        let at = CallSite::here();
        self.require_exec("PI_Broadcast", &at)?;
        let (channels, _root, name) = self.bundle_entry(bundle, BundleUsage::Broadcast, &at)?;
        let specs = parse_format(fmt).map_err(|reason| PilotError::BadFormat {
            format: fmt.into(),
            reason,
            at: at.clone(),
        })?;
        self.instr.borrow_mut().state_start(
            StateKind::Broadcast,
            self.rank.wtime(),
            &self.bundle_text(&name, &at),
        );
        self.native_line(format!(
            "t={:.6} P{} PI_Broadcast B{} fmt={} at {}",
            self.rank.wtime(),
            self.my_proc_index(),
            bundle.0,
            canonical_format(&specs),
            Self::short_loc(&at)
        ));
        for &c in &channels {
            // One delay per arrow, as in the paper's usleep workaround.
            if let Some(d) = self.instr.borrow().spread_arrows() {
                self.rank.sleep(d);
            }
            self.write_inner(Channel(c), fmt, &specs, slots, &at, None)?;
        }
        self.instr
            .borrow_mut()
            .state_end(StateKind::Broadcast, self.rank.wtime(), "");
        Ok(())
    }

    /// Distribute consecutive slices of an array, one per channel —
    /// `PI_Scatter`. The format must be a single fixed-size array
    /// specifier describing ONE receiver's share (e.g. `"%5d"` with a
    /// 5×N-element source).
    #[track_caller]
    pub fn scatter(&self, bundle: Bundle, fmt: &str, slot: &WSlot<'_>) -> PilotResult<()> {
        let at = CallSite::here();
        self.require_exec("PI_Scatter", &at)?;
        let (channels, _root, name) = self.bundle_entry(bundle, BundleUsage::Scatter, &at)?;
        let specs = parse_format(fmt).map_err(|reason| PilotError::BadFormat {
            format: fmt.into(),
            reason,
            at: at.clone(),
        })?;
        let per = match specs.as_slice() {
            [FormatSpec {
                len: LenMode::Fixed(n),
                ..
            }] => *n,
            _ => {
                return Err(PilotError::BadFormat {
                    format: fmt.into(),
                    reason: "PI_Scatter needs a single fixed-size array specifier (e.g. %5d)"
                        .into(),
                    at,
                })
            }
        };
        let n = channels.len();
        self.instr.borrow_mut().state_start(
            StateKind::Scatter,
            self.rank.wtime(),
            &self.bundle_text(&name, &at),
        );
        self.native_line(format!(
            "t={:.6} P{} PI_Scatter B{} fmt={} at {}",
            self.rank.wtime(),
            self.my_proc_index(),
            bundle.0,
            canonical_format(&specs),
            Self::short_loc(&at)
        ));
        macro_rules! scatter_arr {
            ($arr:expr, $variant:ident) => {{
                let arr = $arr;
                if arr.len() != per * n {
                    return Err(PilotError::SlotMismatch {
                        format: fmt.into(),
                        reason: format!(
                            "scatter source has {} elements; need {} ({} per channel x {})",
                            arr.len(),
                            per * n,
                            per,
                            n
                        ),
                        at,
                    });
                }
                for (i, &c) in channels.iter().enumerate() {
                    if let Some(d) = self.instr.borrow().spread_arrows() {
                        self.rank.sleep(d);
                    }
                    let part = WSlot::$variant(&arr[i * per..(i + 1) * per]);
                    self.write_inner(Channel(c), fmt, &specs, &[part], &at, None)?;
                }
            }};
        }
        match slot {
            WSlot::IntArr(a) => scatter_arr!(a, IntArr),
            WSlot::UintArr(a) => scatter_arr!(a, UintArr),
            WSlot::FloatArr(a) => scatter_arr!(a, FloatArr),
            WSlot::ByteArr(a) => scatter_arr!(a, ByteArr),
            other => {
                return Err(PilotError::SlotMismatch {
                    format: fmt.into(),
                    reason: format!("PI_Scatter needs an array slot, got {other:?}"),
                    at,
                })
            }
        }
        self.instr
            .borrow_mut()
            .state_end(StateKind::Scatter, self.rank.wtime(), "");
        Ok(())
    }

    /// Collect one contribution per channel into consecutive slices of
    /// an output array — `PI_Gather`. The format describes ONE sender's
    /// contribution (`"%d"` or `"%5d"`); the output slice must hold
    /// `N × per` elements. Leaves call `PI_Write` on their channels.
    #[track_caller]
    pub fn gather(&self, bundle: Bundle, fmt: &str, slot: &mut RSlot<'_>) -> PilotResult<()> {
        let at = CallSite::here();
        self.require_exec("PI_Gather", &at)?;
        let (channels, _root, name) = self.bundle_entry(bundle, BundleUsage::Gather, &at)?;
        self.gather_impl(
            &channels,
            &name,
            StateKind::Gather,
            "PI_Gather",
            fmt,
            slot,
            &at,
        )
    }

    #[allow(clippy::too_many_arguments)] // mirrors PI_Gather's C parameter list
    fn gather_impl(
        &self,
        channels: &[usize],
        bundle_name: &str,
        state: StateKind,
        opname: &str,
        fmt: &str,
        slot: &mut RSlot<'_>,
        at: &CallSite,
    ) -> PilotResult<()> {
        let specs = parse_format(fmt).map_err(|reason| PilotError::BadFormat {
            format: fmt.into(),
            reason,
            at: at.clone(),
        })?;
        let per = match specs.as_slice() {
            [FormatSpec {
                len: LenMode::One, ..
            }] => 1usize,
            [FormatSpec {
                len: LenMode::Fixed(n),
                ..
            }] => *n,
            _ => {
                return Err(PilotError::BadFormat {
                    format: fmt.into(),
                    reason: format!("{opname} needs a single scalar or fixed-size array specifier"),
                    at: at.clone(),
                })
            }
        };
        let n = channels.len();
        self.instr.borrow_mut().state_start(
            state,
            self.rank.wtime(),
            &self.bundle_text(bundle_name, at),
        );
        self.native_line(format!(
            "t={:.6} P{} {} fmt={} at {}",
            self.rank.wtime(),
            self.my_proc_index(),
            opname,
            canonical_format(&specs),
            Self::short_loc(at)
        ));
        macro_rules! gather_arr {
            ($arr:expr, $variant:ident, $t:ty) => {{
                let arr = $arr;
                if arr.len() != per * n {
                    return Err(PilotError::SlotMismatch {
                        format: fmt.into(),
                        reason: format!(
                            "{opname} destination has {} elements; need {} ({} per channel x {})",
                            arr.len(),
                            per * n,
                            per,
                            n
                        ),
                        at: at.clone(),
                    });
                }
                for (i, &c) in channels.iter().enumerate() {
                    let dest = &mut arr[i * per..(i + 1) * per];
                    let mut dslot = [RSlot::$variant(dest)];
                    self.read_inner(Channel(c), fmt, &specs, &mut dslot, at, None)?;
                }
            }};
        }
        match slot {
            RSlot::IntArr(a) => gather_arr!(&mut a[..], IntArr, i64),
            RSlot::UintArr(a) => gather_arr!(&mut a[..], UintArr, u64),
            RSlot::FloatArr(a) => gather_arr!(&mut a[..], FloatArr, f64),
            RSlot::ByteArr(a) => gather_arr!(&mut a[..], ByteArr, u8),
            other => {
                return Err(PilotError::SlotMismatch {
                    format: fmt.into(),
                    reason: format!("{opname} needs an array destination, got {other:?}"),
                    at: at.clone(),
                })
            }
        }
        self.instr
            .borrow_mut()
            .state_end(state, self.rank.wtime(), "");
        Ok(())
    }

    /// Combine one contribution per channel element-wise — `PI_Reduce`.
    /// The format describes one contribution; the destination holds the
    /// combined result of the same shape. Leaves call `PI_Write`.
    #[track_caller]
    pub fn reduce(
        &self,
        bundle: Bundle,
        op: minimpi::ReduceOp,
        fmt: &str,
        slot: &mut RSlot<'_>,
    ) -> PilotResult<()> {
        let at = CallSite::here();
        self.require_exec("PI_Reduce", &at)?;
        let (channels, _root, name) = self.bundle_entry(bundle, BundleUsage::Reduce, &at)?;
        let specs = parse_format(fmt).map_err(|reason| PilotError::BadFormat {
            format: fmt.into(),
            reason,
            at: at.clone(),
        })?;
        let per = match specs.as_slice() {
            [FormatSpec {
                len: LenMode::One, ..
            }] => 1usize,
            [FormatSpec {
                len: LenMode::Fixed(n),
                ..
            }] => *n,
            _ => {
                return Err(PilotError::BadFormat {
                    format: fmt.into(),
                    reason: "PI_Reduce needs a single scalar or fixed-size array specifier".into(),
                    at,
                })
            }
        };
        self.instr.borrow_mut().state_start(
            StateKind::Reduce,
            self.rank.wtime(),
            &self.bundle_text(&name, &at),
        );
        self.native_line(format!(
            "t={:.6} P{} PI_Reduce B{} op={} fmt={} at {}",
            self.rank.wtime(),
            self.my_proc_index(),
            bundle.0,
            op.name(),
            canonical_format(&specs),
            Self::short_loc(&at)
        ));
        macro_rules! reduce_arr {
            ($out:expr, $variant:ident, $t:ty) => {{
                let out = $out;
                if out.len() != per {
                    return Err(PilotError::SlotMismatch {
                        format: fmt.into(),
                        reason: format!(
                            "PI_Reduce destination has {} elements; the format implies {}",
                            out.len(),
                            per
                        ),
                        at,
                    });
                }
                let mut acc: Option<Vec<$t>> = None;
                for &c in &channels {
                    let mut tmp = vec![<$t>::default(); per];
                    {
                        let mut dslot = [RSlot::$variant(&mut tmp)];
                        self.read_inner(Channel(c), fmt, &specs, &mut dslot, &at, None)?;
                    }
                    acc = Some(match acc {
                        None => tmp,
                        Some(prev) => prev
                            .into_iter()
                            .zip(tmp)
                            .map(|(a, b)| op.combine(a, b))
                            .collect(),
                    });
                }
                out.copy_from_slice(&acc.expect("bundle has channels"));
            }};
        }
        match slot {
            RSlot::IntArr(a) => reduce_arr!(&mut a[..], IntArr, i64),
            RSlot::UintArr(a) => reduce_arr!(&mut a[..], UintArr, u64),
            RSlot::FloatArr(a) => reduce_arr!(&mut a[..], FloatArr, f64),
            RSlot::ByteArr(a) => reduce_arr!(&mut a[..], ByteArr, u8),
            RSlot::Int(v) => {
                let mut buf = [0i64; 1];
                {
                    let mut s = RSlot::IntArr(&mut buf);
                    reduce_arr_scalar(self, &channels, fmt, &specs, per, op, &mut s, &at)?;
                }
                **v = buf[0];
            }
            RSlot::Float(v) => {
                let mut buf = [0f64; 1];
                {
                    let mut s = RSlot::FloatArr(&mut buf);
                    reduce_arr_scalar(self, &channels, fmt, &specs, per, op, &mut s, &at)?;
                }
                **v = buf[0];
            }
            other => {
                return Err(PilotError::SlotMismatch {
                    format: fmt.into(),
                    reason: format!("PI_Reduce cannot reduce into {other:?}"),
                    at,
                })
            }
        }
        self.instr
            .borrow_mut()
            .state_end(StateKind::Reduce, self.rank.wtime(), "");
        Ok(())
    }

    /// Block until any channel of the bundle has data; returns its index
    /// within the bundle — `PI_Select`. Shown as a state (it blocks like
    /// a read) with the ready index in the popup, but no arrival bubble:
    /// no message is received until the subsequent `PI_Read`.
    #[track_caller]
    pub fn select(&self, bundle: Bundle) -> PilotResult<usize> {
        let at = CallSite::here();
        self.require_exec("PI_Select", &at)?;
        let (channels, _root, name) = self.bundle_entry(bundle, BundleUsage::Select, &at)?;
        self.instr.borrow_mut().state_start(
            StateKind::Select,
            self.rank.wtime(),
            &self.bundle_text(&name, &at),
        );
        let waits: Vec<(u32, u32)> = {
            let st = self.st.borrow();
            channels
                .iter()
                .map(|&c| (st.chans[c].from as u32, c as u32))
                .collect()
        };
        self.ddt_event(SvcEvent::PreBlock {
            proc: self.my_proc_index() as u32,
            op: "PI_Select".into(),
            waits,
            loc: Self::short_loc(&at),
            res: format!("B{}", bundle.0),
        });
        let blocked_from = self.rank.true_time();
        let ready = loop {
            if let Some(i) = self.poll_bundle(&channels)? {
                break i;
            }
            self.rank.sleep(Duration::from_micros(200));
        };
        self.ddt_event(SvcEvent::PostBlock {
            proc: self.my_proc_index() as u32,
        });
        // Blocked time for the select, keyed by the bundle's name.
        self.instr.borrow().note_blocked(
            StateKind::Select,
            &name,
            ((self.rank.true_time() - blocked_from) * 1e9) as u64,
        );
        self.instr.borrow_mut().state_end(
            StateKind::Select,
            self.rank.wtime(),
            &format!("Ready: {ready}"),
        );
        Ok(ready)
    }

    /// Non-blocking select: the index of a ready channel, or `None` —
    /// `PI_TrySelect`. An "independent event" bubble per the paper.
    #[track_caller]
    pub fn try_select(&self, bundle: Bundle) -> PilotResult<Option<usize>> {
        let at = CallSite::here();
        self.require_exec("PI_TrySelect", &at)?;
        let (channels, _root, _name) = self.bundle_entry(bundle, BundleUsage::Select, &at)?;
        let ready = self.poll_bundle(&channels)?;
        let display = ready.map(|i| i as i64).unwrap_or(-1);
        self.instr.borrow_mut().bubble(
            BubbleKind::TrySelect,
            self.rank.wtime(),
            &format!("Ret: {display} Line: {}", Self::short_loc(&at)),
        );
        Ok(ready)
    }

    fn poll_bundle(&self, channels: &[usize]) -> PilotResult<Option<usize>> {
        let writers: Vec<usize> = {
            let st = self.st.borrow();
            channels.iter().map(|&c| st.chans[c].from).collect()
        };
        for (i, (&c, &w)) in channels.iter().zip(&writers).enumerate() {
            if self
                .rank
                .iprobe(Src::Of(w), Tag::Of(Self::chan_tag(c)))?
                .is_some()
            {
                return Ok(Some(i));
            }
        }
        Ok(None)
    }
}

/// Helper for reducing into scalar destinations (delegates to the array
/// path with a one-element buffer).
#[allow(clippy::too_many_arguments)]
fn reduce_arr_scalar(
    pi: &Pilot<'_, '_>,
    channels: &[usize],
    fmt: &str,
    specs: &[FormatSpec],
    per: usize,
    op: minimpi::ReduceOp,
    slot: &mut RSlot<'_>,
    at: &CallSite,
) -> PilotResult<()> {
    if per != 1 {
        return Err(PilotError::SlotMismatch {
            format: fmt.into(),
            reason: "scalar destination but the format implies an array".into(),
            at: at.clone(),
        });
    }
    match slot {
        RSlot::IntArr(out) => {
            let mut acc: Option<i64> = None;
            for &c in channels {
                let mut tmp = [0i64; 1];
                {
                    let mut d = [RSlot::IntArr(&mut tmp)];
                    pi.read_inner(Channel(c), fmt, specs, &mut d, at, None)?;
                }
                acc = Some(match acc {
                    None => tmp[0],
                    Some(prev) => op.combine(prev, tmp[0]),
                });
            }
            out[0] = acc.expect("bundle has channels");
        }
        RSlot::FloatArr(out) => {
            let mut acc: Option<f64> = None;
            for &c in channels {
                let mut tmp = [0f64; 1];
                {
                    let mut d = [RSlot::FloatArr(&mut tmp)];
                    pi.read_inner(Channel(c), fmt, specs, &mut d, at, None)?;
                }
                acc = Some(match acc {
                    None => tmp[0],
                    Some(prev) => op.combine(prev, tmp[0]),
                });
            }
            out[0] = acc.expect("bundle has channels");
        }
        _ => unreachable!("only called with 1-element array views"),
    }
    Ok(())
}
