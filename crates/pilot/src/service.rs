//! The service rank: native call logging + deadlock detection.
//!
//! When `-pisvc=c` and/or `-pisvc=d` is given, Pilot dedicates the last
//! MPI rank to a service loop (displacing one worker — the cost visible
//! in the paper's Table 1 for native logging). Every rank streams
//! [`SvcEvent`]s to it:
//!
//! * `LogLine` — a native-log entry, written to disk *immediately* on
//!   receipt, which is why the native log survives an abort while the
//!   buffered MPE log does not;
//! * `PreBlock` / `PostBlock` / `NoteWrite` / `NoteRead` / `Exit` — the
//!   deadlock detector's wait-for-graph events (see [`crate::deadlock`]);
//! * `Shutdown` — sent by `PI_StopMain` once every worker has finished.
//!
//! On detecting a deadlock the service prints the diagnosis and aborts
//! the world, exactly like the C library.

use std::io::Write as _;

use minimpi::{MpiError, Rank, Src, Tag};
use mpelog::wire::{Reader, WireError, Writer};
use parking_lot::Mutex;

use crate::config::PilotConfig;
use crate::deadlock::{BlockInfo, DeadlockReport, WaitForGraph};

/// Tag carrying service events.
pub const TAG_SVC: u32 = 900;

/// An event sent to the service rank.
#[derive(Debug, Clone, PartialEq)]
pub enum SvcEvent {
    /// One native-log line.
    LogLine(String),
    /// A process is about to block.
    PreBlock {
        /// Blocking process.
        proc: u32,
        /// API call name.
        op: String,
        /// `(peer process, channel)` wait set.
        waits: Vec<(u32, u32)>,
        /// Source location.
        loc: String,
        /// Resource name ("C3" / "B0").
        res: String,
    },
    /// The blocking call completed.
    PostBlock {
        /// Process.
        proc: u32,
    },
    /// A writer is about to send `n` messages on `chan`.
    NoteWrite {
        /// Channel id.
        chan: u32,
        /// Message count.
        n: u32,
    },
    /// A reader consumed `n` messages from `chan`.
    NoteRead {
        /// Channel id.
        chan: u32,
        /// Message count.
        n: u32,
    },
    /// A work function returned.
    Exit {
        /// Process.
        proc: u32,
    },
    /// End of run.
    Shutdown,
}

impl SvcEvent {
    /// Serialize for the wire.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            SvcEvent::LogLine(s) => {
                w.put_u8(1);
                w.put_str(s);
            }
            SvcEvent::PreBlock {
                proc,
                op,
                waits,
                loc,
                res,
            } => {
                w.put_u8(2);
                w.put_u32(*proc);
                w.put_str(op);
                w.put_u32(waits.len() as u32);
                for (p, c) in waits {
                    w.put_u32(*p);
                    w.put_u32(*c);
                }
                w.put_str(loc);
                w.put_str(res);
            }
            SvcEvent::PostBlock { proc } => {
                w.put_u8(3);
                w.put_u32(*proc);
            }
            SvcEvent::NoteWrite { chan, n } => {
                w.put_u8(4);
                w.put_u32(*chan);
                w.put_u32(*n);
            }
            SvcEvent::NoteRead { chan, n } => {
                w.put_u8(5);
                w.put_u32(*chan);
                w.put_u32(*n);
            }
            SvcEvent::Exit { proc } => {
                w.put_u8(6);
                w.put_u32(*proc);
            }
            SvcEvent::Shutdown => w.put_u8(7),
        }
        w.into_bytes()
    }

    /// Parse from the wire.
    pub fn decode(bytes: &[u8]) -> Result<SvcEvent, WireError> {
        let mut r = Reader::new(bytes);
        match r.get_u8()? {
            1 => Ok(SvcEvent::LogLine(r.get_str()?)),
            2 => {
                let proc = r.get_u32()?;
                let op = r.get_str()?;
                let n = r.get_u32()? as usize;
                if n > bytes.len() {
                    return Err(WireError::Corrupt("wait count".into()));
                }
                let mut waits = Vec::with_capacity(n);
                for _ in 0..n {
                    waits.push((r.get_u32()?, r.get_u32()?));
                }
                Ok(SvcEvent::PreBlock {
                    proc,
                    op,
                    waits,
                    loc: r.get_str()?,
                    res: r.get_str()?,
                })
            }
            3 => Ok(SvcEvent::PostBlock { proc: r.get_u32()? }),
            4 => Ok(SvcEvent::NoteWrite {
                chan: r.get_u32()?,
                n: r.get_u32()?,
            }),
            5 => Ok(SvcEvent::NoteRead {
                chan: r.get_u32()?,
                n: r.get_u32()?,
            }),
            6 => Ok(SvcEvent::Exit { proc: r.get_u32()? }),
            7 => Ok(SvcEvent::Shutdown),
            k => Err(WireError::Corrupt(format!("unknown service event {k}"))),
        }
    }
}

/// State shared between the service rank and the caller of
/// [`crate::run`] (collected artifacts).
#[derive(Debug, Default)]
pub struct ServiceShared {
    /// Native-log lines in arrival order.
    pub native_lines: Mutex<Vec<String>>,
    /// The deadlock diagnosis, if the detector fired.
    pub deadlock: Mutex<Option<DeadlockReport>>,
}

/// Run the service loop until `Shutdown` (or abort). Returns `true` on
/// a clean shutdown, `false` if the loop ended because of an abort.
pub fn run_service(rank: &Rank, config: &PilotConfig, shared: &ServiceShared) -> bool {
    let mut wfg = WaitForGraph::new(config.process_capacity());
    let mut file = config.native_log_path.as_ref().and_then(|p| {
        std::fs::File::create(p)
            .map_err(|e| eprintln!("pilot: cannot open native log {}: {e}", p.display()))
            .ok()
    });

    loop {
        // With a stall timeout configured, the detector doubles as a
        // watchdog: a quiet window while processes sit in blocking calls
        // means progress has stopped without a wait-for cycle (e.g. a
        // message lost in the transport) — a condition the event-driven
        // fixpoint can never observe on its own.
        let msg = match config.stall_timeout {
            Some(window) => match rank.recv_timeout(Src::Any, Tag::Of(TAG_SVC), window) {
                Ok(m) => m,
                Err(e @ MpiError::Timeout { .. }) => {
                    if config.services.deadlock {
                        if let Some(report) = wfg.stall_report(&format!("{e} for {window:?}")) {
                            eprintln!("Pilot stall watchdog:\n{report}");
                            *shared.deadlock.lock() = Some(report);
                            let _ = rank.abort(-3);
                            return false;
                        }
                    }
                    continue;
                }
                Err(_) => return false, // aborted; partial native log retained
            },
            None => match rank.recv(Src::Any, Tag::Of(TAG_SVC)) {
                Ok(m) => m,
                Err(_) => return false, // aborted; partial native log retained
            },
        };
        let ev = match SvcEvent::decode(&msg.payload) {
            Ok(ev) => ev,
            Err(e) => {
                eprintln!(
                    "pilot service: corrupt event from rank {}: {e}",
                    msg.env.src
                );
                continue;
            }
        };
        let verdict = match ev {
            SvcEvent::LogLine(line) => {
                if let Some(f) = file.as_mut() {
                    // Stream to disk at once: the abort-safety property.
                    let _ = writeln!(f, "{line}");
                    let _ = f.flush();
                }
                shared.native_lines.lock().push(line);
                None
            }
            SvcEvent::PreBlock {
                proc,
                op,
                waits,
                loc,
                res,
            } => wfg.block(
                proc as usize,
                BlockInfo {
                    op,
                    waits: waits.iter().map(|&(p, c)| (p as usize, c)).collect(),
                    location: loc,
                    resource: res,
                },
            ),
            SvcEvent::PostBlock { proc } => {
                wfg.unblock(proc as usize);
                None
            }
            SvcEvent::NoteWrite { chan, n } => {
                wfg.note_write(chan, n);
                None
            }
            SvcEvent::NoteRead { chan, n } => {
                wfg.note_read(chan, n);
                None
            }
            SvcEvent::Exit { proc } => wfg.exit(proc as usize),
            SvcEvent::Shutdown => return true,
        };
        if let Some(report) = verdict {
            eprintln!("Pilot deadlock detector:\n{report}");
            *shared.deadlock.lock() = Some(report);
            let _ = rank.abort(-3);
            return false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_roundtrip() {
        let events = [
            SvcEvent::LogLine("t=1.5 P2 PI_Write C3".into()),
            SvcEvent::PreBlock {
                proc: 2,
                op: "PI_Read".into(),
                waits: vec![(0, 3), (1, 4)],
                loc: "lab2.rs:17".into(),
                res: "B1".into(),
            },
            SvcEvent::PostBlock { proc: 2 },
            SvcEvent::NoteWrite { chan: 3, n: 2 },
            SvcEvent::NoteRead { chan: 3, n: 2 },
            SvcEvent::Exit { proc: 4 },
            SvcEvent::Shutdown,
        ];
        for ev in &events {
            assert_eq!(&SvcEvent::decode(&ev.encode()).unwrap(), ev);
        }
    }

    #[test]
    fn corrupt_event_is_error() {
        assert!(SvcEvent::decode(&[]).is_err());
        assert!(SvcEvent::decode(&[99]).is_err());
        assert!(SvcEvent::decode(&[2, 1]).is_err());
    }
}
