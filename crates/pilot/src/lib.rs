//! # pilot — the Pilot library in Rust
//!
//! Pilot ("A friendly face for MPI") is a thin layer over MPI built on
//! the process/channel model of Communicating Sequential Processes,
//! designed at Guelph for teaching message-passing programming. This
//! crate reproduces it on top of [`minimpi`], including the paper's
//! contribution: **MPE-based log visualization instrumentation** of every
//! API call, enabled — like the C original — by a `-pisvc=j` style
//! runtime option rather than at compile time.
//!
//! ## The model
//!
//! A Pilot program has two phases:
//!
//! 1. **Configuration phase** — executed identically by every rank:
//!    create processes ([`Pilot::create_process`]), point-to-point
//!    channels ([`Pilot::create_channel`]), and bundles
//!    ([`Pilot::create_bundle`]) for collective operations.
//! 2. **Execution phase** — [`Pilot::start_all`] dispatches each rank
//!    into its process's work function, while rank 0 continues as
//!    `PI_MAIN`; [`Pilot::stop_main`] ends the run.
//!
//! Communication uses `fprintf`/`fscanf`-style format strings:
//! `"%d"` (one `i64`), `"%3lf"` (an `[f64; 3]`), `"%*d"` (a
//! runtime-length array), and `"%^d"` (receive an array of unknown
//! length in one call — Pilot V2.1's addition).
//!
//! ## Services (the `-pisvc=` option)
//!
//! * `c` — native call logging to a dedicated service rank that streams
//!   each entry to disk as it arrives (abort-safe but *displacing one
//!   worker rank*, the cost visible in the paper's Table 1),
//! * `d` — the integrated deadlock detector, running on the same
//!   service rank, building a wait-for graph from pre/post-blocking
//!   events and aborting the world with a source-line diagnosis,
//! * `j` — MPE/Jumpshot logging: every API call becomes a coloured
//!   state, message milestones become bubbles, messages become arrows;
//!   the merged CLOG2 log is collected at the end of the run (and lost
//!   on [`Pilot::abort`], exactly as the paper laments).
//!
//! ## Quick example
//!
//! ```
//! use pilot::{PilotConfig, RSlot, WSlot, PI_MAIN};
//!
//! let cfg = PilotConfig::new(2); // like `mpirun -n 2`
//! let outcome = pilot::run(cfg, |pi| {
//!     let worker = pi.create_process(0)?;
//!     let chan = pi.create_channel(PI_MAIN, worker)?;
//!     pi.assign_work(worker, move |pi, _idx| {
//!         let mut x = 0i64;
//!         pi.read(chan, "%d", &mut [RSlot::Int(&mut x)]).unwrap();
//!         assert_eq!(x, 41);
//!         0
//!     })?;
//!     pi.start_all()?; // workers run inside; only PI_MAIN returns
//!     pi.write(chan, "%d", &[WSlot::Int(41)])?;
//!     pi.stop_main(0)
//! });
//! assert!(outcome.is_clean(), "{outcome:?}");
//! ```

pub mod config;
pub mod deadlock;
pub mod errors;
pub mod format;
pub mod instrument;
pub mod runtime;
pub mod service;
pub mod types;

pub use config::{PilotConfig, Services};
pub use deadlock::{DeadlockReport, WaitForGraph};
pub use errors::{PilotError, PilotResult};
pub use format::{parse_format, FormatSpec, LenMode, RSlot, ScalarKind, WSlot};
pub use runtime::{run, Pilot, PilotOutcome, RunArtifacts};
pub use types::{Bundle, BundleUsage, Channel, Process, PI_MAIN};
