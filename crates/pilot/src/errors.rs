//! Pilot's error taxonomy.
//!
//! A design pillar of Pilot is *elaborate error detection for any abuse
//! of the API*, with diagnostics that point at the offending source
//! line. Errors carry the caller's [`std::panic::Location`]-derived
//! position, captured by the `#[track_caller]` API methods — the Rust
//! analogue of the C library's `__FILE__`/`__LINE__` macros.

use crate::types::{Bundle, BundleUsage, Channel, Process};
use minimpi::MpiError;

/// Result alias for Pilot API calls.
pub type PilotResult<T> = Result<T, PilotError>;

/// A source position captured at an API call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Source file of the call.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
}

impl CallSite {
    /// Capture the caller of the (track_caller) function invoking this.
    #[track_caller]
    pub fn here() -> CallSite {
        let loc = std::panic::Location::caller();
        CallSite {
            file: loc.file().to_string(),
            line: loc.line(),
        }
    }
}

impl std::fmt::Display for CallSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.file, self.line)
    }
}

/// Everything that can go wrong in a Pilot program.
#[derive(Debug, Clone, PartialEq)]
pub enum PilotError {
    /// Internal control flow: a non-main rank finished its work function
    /// (with this exit code). `start_all()?` propagates it so worker
    /// ranks skip the main-only part of the program.
    Done(i32),
    /// A configuration-phase function was called during execution.
    ConfigPhaseOnly { what: &'static str, at: CallSite },
    /// An execution-phase function was called during configuration.
    ExecPhaseOnly { what: &'static str, at: CallSite },
    /// More processes created than MPI ranks available.
    TooManyProcesses {
        requested: usize,
        available: usize,
        at: CallSite,
    },
    /// A handle referred to a nonexistent table entry.
    BadHandle {
        what: &'static str,
        index: usize,
        at: CallSite,
    },
    /// The calling process is not this channel's reader.
    NotChannelReader {
        chan: Channel,
        caller: Process,
        reader: Process,
        at: CallSite,
    },
    /// The calling process is not this channel's writer.
    NotChannelWriter {
        chan: Channel,
        caller: Process,
        writer: Process,
        at: CallSite,
    },
    /// A bundle was used with the wrong collective function.
    WrongBundleUsage {
        bundle: Bundle,
        expected: BundleUsage,
        used_with: BundleUsage,
        at: CallSite,
    },
    /// The calling process is not the bundle's common endpoint.
    NotBundleRoot {
        bundle: Bundle,
        caller: Process,
        root: Process,
        at: CallSite,
    },
    /// A bundle's channels do not share a common endpoint.
    NoCommonEndpoint { at: CallSite },
    /// A format string failed to parse.
    BadFormat {
        format: String,
        reason: String,
        at: CallSite,
    },
    /// The number or type of data slots does not match the format.
    SlotMismatch {
        format: String,
        reason: String,
        at: CallSite,
    },
    /// Error-check level 2: the reader's format does not match the
    /// writer's.
    FormatMismatch {
        writer_fmt: String,
        reader_fmt: String,
        at: CallSite,
    },
    /// A received message did not carry the expected type/count
    /// (corruption or mismatched code without level-2 checking).
    WireMismatch {
        expected: String,
        got: String,
        at: CallSite,
    },
    /// Error-check level 3: an argument failed validity checks (e.g. a
    /// fixed-size slice of the wrong length — the analogue of the C
    /// library's pointer validity checks).
    BadArgument { what: String, at: CallSite },
    /// The integrated deadlock detector ended the run.
    DeadlockDetected { report: String },
    /// The program (or Pilot itself) called abort.
    Aborted { origin: usize, code: i32 },
    /// An error surfaced by the message-passing layer.
    System(MpiError),
}

impl PilotError {
    /// The friendly one-line diagnostic Pilot prints, pinpointing the
    /// source line where applicable.
    pub fn diagnostic(&self) -> String {
        self.to_string()
    }
}

impl From<MpiError> for PilotError {
    fn from(e: MpiError) -> Self {
        match e {
            MpiError::Aborted { origin, code } => PilotError::Aborted { origin, code },
            other => PilotError::System(other),
        }
    }
}

impl std::fmt::Display for PilotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PilotError::Done(code) => write!(f, "process finished with code {code}"),
            PilotError::ConfigPhaseOnly { what, at } => {
                write!(
                    f,
                    "{at}: {what} may only be called during the configuration phase"
                )
            }
            PilotError::ExecPhaseOnly { what, at } => {
                write!(
                    f,
                    "{at}: {what} may only be called during the execution phase"
                )
            }
            PilotError::TooManyProcesses {
                requested,
                available,
                at,
            } => write!(
                f,
                "{at}: process #{requested} requested but only {available} are available \
                 (one MPI rank per process; services consume a rank)"
            ),
            PilotError::BadHandle { what, index, at } => {
                write!(f, "{at}: invalid {what} handle #{index}")
            }
            PilotError::NotChannelReader {
                chan,
                caller,
                reader,
                at,
            } => write!(
                f,
                "{at}: process P{} called PI_Read on C{} but its reader is P{}",
                caller.index(),
                chan.index(),
                reader.index()
            ),
            PilotError::NotChannelWriter {
                chan,
                caller,
                writer,
                at,
            } => write!(
                f,
                "{at}: process P{} called PI_Write on C{} but its writer is P{}",
                caller.index(),
                chan.index(),
                writer.index()
            ),
            PilotError::WrongBundleUsage {
                bundle,
                expected,
                used_with,
                at,
            } => write!(
                f,
                "{at}: bundle B{} was created for {} but used with {}",
                bundle.index(),
                expected.name(),
                used_with.name()
            ),
            PilotError::NotBundleRoot {
                bundle,
                caller,
                root,
                at,
            } => write!(
                f,
                "{at}: process P{} used bundle B{} whose endpoint is P{}",
                caller.index(),
                bundle.index(),
                root.index()
            ),
            PilotError::NoCommonEndpoint { at } => {
                write!(f, "{at}: bundle channels do not share a common endpoint")
            }
            PilotError::BadFormat { format, reason, at } => {
                write!(f, "{at}: bad format string '{format}': {reason}")
            }
            PilotError::SlotMismatch { format, reason, at } => {
                write!(f, "{at}: data does not match format '{format}': {reason}")
            }
            PilotError::FormatMismatch {
                writer_fmt,
                reader_fmt,
                at,
            } => write!(
                f,
                "{at}: reader format '{reader_fmt}' does not match writer format '{writer_fmt}'"
            ),
            PilotError::WireMismatch { expected, got, at } => {
                write!(
                    f,
                    "{at}: expected {expected} on the wire but received {got}"
                )
            }
            PilotError::BadArgument { what, at } => write!(f, "{at}: invalid argument: {what}"),
            PilotError::DeadlockDetected { report } => {
                write!(f, "DEADLOCK detected by Pilot:\n{report}")
            }
            PilotError::Aborted { origin, code } => {
                write!(f, "aborted by process P{origin} with code {code}")
            }
            PilotError::System(e) => write!(f, "message layer error: {e}"),
        }
    }
}

impl std::error::Error for PilotError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PI_MAIN;

    #[test]
    fn callsite_captures_this_file() {
        let cs = CallSite::here();
        assert!(cs.file.ends_with("errors.rs"), "{}", cs.file);
        assert!(cs.line > 0);
    }

    #[test]
    fn diagnostics_pinpoint_line() {
        let at = CallSite {
            file: "lab2.rs".into(),
            line: 42,
        };
        let e = PilotError::NotChannelReader {
            chan: Channel(3),
            caller: Process(2),
            reader: PI_MAIN,
            at,
        };
        let msg = e.diagnostic();
        assert!(msg.contains("lab2.rs:42"));
        assert!(msg.contains("C3"));
        assert!(msg.contains("P2"));
        assert!(msg.contains("P0"));
    }

    #[test]
    fn mpi_abort_maps_to_pilot_abort() {
        let e: PilotError = MpiError::Aborted { origin: 1, code: 9 }.into();
        assert_eq!(e, PilotError::Aborted { origin: 1, code: 9 });
        let e: PilotError = MpiError::Timeout {
            op: "recv_timeout",
            src: minimpi::Src::Any,
            tag: minimpi::Tag::Any,
        }
        .into();
        assert!(matches!(e, PilotError::System(MpiError::Timeout { .. })));
    }
}
