//! Property tests: frame-tree invariants, container round trips, and
//! conversion against randomized logs.

use mpelog::record::Record;
use mpelog::{Clog2File, Color, Logger};
use proptest::prelude::*;
use slog2::{
    legend_stats, ConvertWarning, Converter, Drawable, FailureKind, FrameTree, Query, RankVerdict,
    SalvageReport, Slog2File, TimeWindow, TornPolicy, TraceSource,
};
use slog2::{Category, CategoryId, CategoryKind, EventDrawable, StateDrawable, TimelineId};

/// One-shot in-memory conversion with default settings.
fn convert_mem(clog: &Clog2File) -> (Slog2File, Vec<ConvertWarning>) {
    let c = Converter::new()
        .convert(TraceSource::InMemory(clog))
        .expect("in-memory source cannot fail");
    (c.file, c.warnings)
}

fn arb_drawable() -> impl Strategy<Value = Drawable> {
    prop_oneof![
        (0u32..4, 0u32..4, 0f64..100.0, 0f64..5.0).prop_map(|(cat, tl, start, dur)| {
            Drawable::State(StateDrawable {
                category: CategoryId(cat),
                timeline: TimelineId(tl),
                start,
                end: start + dur,
                nest_level: 0,
                text: String::new(),
            })
        }),
        (4u32..6, 0u32..4, 0f64..105.0).prop_map(|(cat, tl, t)| {
            Drawable::Event(EventDrawable {
                category: CategoryId(cat),
                timeline: TimelineId(tl),
                time: t,
                text: String::new(),
            })
        }),
    ]
}

proptest! {
    #[test]
    fn tree_holds_every_drawable_exactly_once(
        ds in proptest::collection::vec(arb_drawable(), 0..300),
        capacity in 1usize..64,
    ) {
        let tree = FrameTree::build(ds.clone(), 0.0, 105.0, capacity, 12);
        prop_assert_eq!(tree.total_drawables(), ds.len());
        // Every original drawable is found by a full-range query.
        let hits = tree.query(TimeWindow::ALL);
        prop_assert_eq!(hits.len(), ds.len());
    }

    #[test]
    fn tree_nodes_contain_their_drawables(
        ds in proptest::collection::vec(arb_drawable(), 0..200),
        capacity in 1usize..32,
    ) {
        let tree = FrameTree::build(ds, 0.0, 105.0, capacity, 12);
        tree.visit(&mut |node| {
            for d in &node.drawables {
                assert!(node.t0 <= d.start() && d.end() <= node.t1);
            }
            if let Some(ch) = &node.children {
                assert_eq!(ch.0.t0, node.t0);
                assert_eq!(ch.0.t1, ch.1.t0);
                assert_eq!(ch.1.t1, node.t1);
            }
        });
    }

    #[test]
    fn tree_query_equals_naive_filter(
        ds in proptest::collection::vec(arb_drawable(), 0..200),
        a in 0f64..105.0,
        span in 0f64..50.0,
    ) {
        let w = TimeWindow::new(a, a + span);
        let tree = FrameTree::build(ds.clone(), 0.0, 105.0, 8, 12);
        let mut got: Vec<String> = tree.query(w).iter().map(|d| format!("{d:?}")).collect();
        let mut want: Vec<String> = ds
            .iter()
            .filter(|d| w.overlaps(d))
            .map(|d| format!("{d:?}"))
            .collect();
        got.sort();
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// The one boundary-inclusivity rule: a drawable overlaps `[a, b]`
    /// iff `start <= b && end >= a` — closed on both sides. Checked
    /// against the trait path, the window helpers, and the edges.
    #[test]
    fn window_inclusivity_is_closed_on_both_sides(
        ds in proptest::collection::vec(arb_drawable(), 0..100),
        a in 0f64..105.0,
        span in 0f64..50.0,
    ) {
        let w = TimeWindow::new(a, a + span);
        for d in &ds {
            let want = d.start() <= w.t1 && d.end() >= w.t0;
            prop_assert_eq!(w.overlaps(d), want);
            // A zero-span window sitting exactly on a drawable's start
            // or end must hit it (touching counts).
            prop_assert!(TimeWindow::new(d.start(), d.start()).overlaps(d));
            prop_assert!(TimeWindow::new(d.end(), d.end()).overlaps(d));
        }
        // Query-trait counting agrees with the rule.
        let tree = FrameTree::build(ds.clone(), 0.0, 105.0, 8, 12);
        let want = ds.iter().filter(|d| w.overlaps(d)).count();
        prop_assert_eq!(tree.count_in(w), want);
    }

    /// `preview_in` (which may shortcut through precomputed node
    /// aggregates) counts exactly the drawables the full scan finds, and
    /// its coverage equals the sum of clipped durations.
    #[test]
    fn window_preview_equals_naive_clip(
        ds in proptest::collection::vec(arb_drawable(), 0..150),
        a in 0f64..105.0,
        span in 0f64..105.0,
        capacity in 1usize..32,
    ) {
        let w = TimeWindow::new(a, a + span);
        let tree = FrameTree::build(ds.clone(), 0.0, 105.0, capacity, 12);
        let p = tree.preview_in(w);
        let want_count = ds.iter().filter(|d| w.overlaps(d)).count() as u64;
        prop_assert_eq!(p.total_count(), want_count);
        let want_cov: f64 = ds
            .iter()
            .filter(|d| w.overlaps(d))
            .map(|d| w.clip_span(d.start(), d.end()))
            .sum();
        let got = p.total_coverage();
        prop_assert!((got - want_cov).abs() < 1e-9 * (1.0 + want_cov.abs()),
            "{got} vs {want_cov}");
    }

    #[test]
    fn root_preview_counts_and_coverage_match(
        ds in proptest::collection::vec(arb_drawable(), 0..150),
    ) {
        let tree = FrameTree::build(ds.clone(), 0.0, 105.0, 8, 12);
        prop_assert_eq!(tree.root.preview.total_count(), ds.len() as u64);
        let want: f64 = ds.iter().map(|d| d.duration()).sum();
        let got = tree.root.preview.total_coverage();
        prop_assert!((got - want).abs() < 1e-9 * (1.0 + want.abs()));
    }

    #[test]
    fn slog_file_roundtrips(
        ds in proptest::collection::vec(arb_drawable(), 0..150),
        capacity in 1usize..32,
    ) {
        let categories: Vec<Category> = (0..6)
            .map(|i| Category {
                index: CategoryId(i),
                name: format!("cat{i}"),
                color: Color::GRAY,
                kind: if i < 4 { CategoryKind::State } else { CategoryKind::Event },
            })
            .collect();
        let file = Slog2File {
            timelines: (0..4).map(|r| format!("P{r}")).collect(),
            categories,
            range: TimeWindow::new(0.0, 105.0),
            warnings: vec!["w".into()],
            tree: FrameTree::build(ds, 0.0, 105.0, capacity, 12),
        };
        let back = Slog2File::from_bytes(&file.to_bytes()).unwrap();
        prop_assert_eq!(back, file);
    }

    #[test]
    fn truncated_slog_never_panics(
        ds in proptest::collection::vec(arb_drawable(), 0..40),
        frac in 0f64..1.0,
    ) {
        let file = Slog2File {
            timelines: vec!["P0".into()],
            categories: vec![],
            range: TimeWindow::new(0.0, 105.0),
            warnings: vec![],
            tree: FrameTree::build(ds, 0.0, 105.0, 8, 8),
        };
        let bytes = file.to_bytes();
        let cut = ((bytes.len() as f64) * frac) as usize;
        let _ = Slog2File::from_bytes(&bytes[..cut]); // must not panic
    }

    #[test]
    fn legend_inclusive_matches_raw_durations(
        ds in proptest::collection::vec(arb_drawable(), 0..150),
    ) {
        let categories: Vec<Category> = (0..6)
            .map(|i| Category {
                index: CategoryId(i),
                name: format!("cat{i}"),
                color: Color::GRAY,
                kind: CategoryKind::State,
            })
            .collect();
        let file = Slog2File {
            timelines: (0..4).map(|r| format!("P{r}")).collect(),
            categories,
            range: TimeWindow::new(0.0, 105.0),
            warnings: vec![],
            tree: FrameTree::build(ds.clone(), 0.0, 105.0, 16, 10),
        };
        let stats = legend_stats(&file);
        for cat in (0..6u32).map(CategoryId) {
            let want: f64 = ds
                .iter()
                .filter(|d| d.category() == cat)
                .map(|d| d.duration())
                .sum();
            let got = stats[&cat].inclusive;
            prop_assert!((got - want).abs() < 1e-9 * (1.0 + want.abs()),
                "cat {cat}: {got} vs {want}");
            // Exclusive never exceeds inclusive and never goes negative
            // by more than rounding.
            prop_assert!(stats[&cat].exclusive <= got + 1e-9);
        }
    }
}

// Build a random-but-well-formed log through the Logger API and check
// the converter pairs everything without warnings.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn conversion_of_well_formed_logs_is_warning_free(
        calls_per_rank in proptest::collection::vec(1usize..20, 2..4),
    ) {
        let nranks = calls_per_rank.len();
        let mut blocks = std::collections::BTreeMap::new();
        let mut defs = None;
        for (r, &calls) in calls_per_rank.iter().enumerate() {
            let mut lg = Logger::new(r);
            let (s_id, e_id) = lg.define_state("call", Color::GREEN);
            let solo = lg.define_event("tick", Color::YELLOW);
            let mut t = r as f64 * 0.001;
            for i in 0..calls {
                lg.log_event(t, s_id, "Line: 1");
                t += 0.01;
                if i % 3 == 0 {
                    lg.log_event(t, solo, "");
                    t += 0.001;
                }
                lg.log_event(t, e_id, "");
                t += 0.005;
            }
            if defs.is_none() {
                defs = Some((lg.state_defs().to_vec(), lg.event_defs().to_vec()));
            }
            blocks.insert(r as u32, lg.records().to_vec());
        }
        let (state_defs, event_defs) = defs.unwrap();
        let clog = Clog2File { nranks: nranks as u32, state_defs, event_defs, blocks };
        let (file, warnings) = convert_mem(&clog);
        prop_assert!(warnings.is_empty(), "{warnings:?}");
        let want_states: usize = calls_per_rank.iter().sum();
        let stats = legend_stats(&file);
        let cat = file.category_by_name("call").unwrap().index;
        prop_assert_eq!(stats[&cat].count as usize, want_states);
    }

    #[test]
    fn conversion_of_shuffled_raw_records_never_panics(
        records in proptest::collection::vec(
            prop_oneof![
                (0f64..10.0, 0u32..8).prop_map(|(ts, id)| Record::Event {
                    ts,
                    id: mpelog::ids::EventId(id),
                    text: String::new(),
                }),
                (0f64..10.0, 0u32..3, 0u32..5, 0u32..64).prop_map(|(ts, dst, tag, size)| {
                    Record::Send { ts, dst, tag, size }
                }),
                (0f64..10.0, 0u32..3, 0u32..5, 0u32..64).prop_map(|(ts, src, tag, size)| {
                    Record::Recv { ts, src, tag, size }
                }),
            ],
            0..60,
        ),
    ) {
        // Arbitrary (possibly ill-formed) record streams: the converter
        // must classify problems as warnings, never panic, and its
        // output must still serialize.
        let mut lg = Logger::new(0);
        let _ = lg.define_state("s", Color::RED);
        let _ = lg.define_event("e", Color::YELLOW);
        let mut blocks = std::collections::BTreeMap::new();
        blocks.insert(0u32, records);
        let clog = Clog2File {
            nranks: 3,
            state_defs: lg.state_defs().to_vec(),
            event_defs: lg.event_defs().to_vec(),
            blocks,
        };
        let (file, _warnings) = convert_mem(&clog);
        let back = Slog2File::from_bytes(&file.to_bytes()).unwrap();
        prop_assert_eq!(back.total_drawables(), file.total_drawables());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn converted_files_always_validate(
        records in proptest::collection::vec(
            prop_oneof![
                (0f64..10.0, 0u32..6).prop_map(|(ts, id)| Record::Event {
                    ts,
                    id: mpelog::ids::EventId(id),
                    text: String::new(),
                }),
                (0f64..10.0, 0u32..3, 0u32..5, 0u32..64).prop_map(|(ts, dst, tag, size)| {
                    Record::Send { ts, dst, tag, size }
                }),
                (0f64..10.0, 0u32..3, 0u32..5, 0u32..64).prop_map(|(ts, src, tag, size)| {
                    Record::Recv { ts, src, tag, size }
                }),
            ],
            0..60,
        ),
    ) {
        // Whatever garbage goes in, the converter's output must be a
        // structurally sound SLOG2 file (defects become warnings, never
        // broken geometry) — the "defective file" guarantee.
        let mut lg = Logger::new(0);
        let _ = lg.define_state("s", Color::RED);
        let _ = lg.define_event("e", Color::YELLOW);
        let mut blocks = std::collections::BTreeMap::new();
        blocks.insert(0u32, records);
        let clog = Clog2File {
            nranks: 3,
            state_defs: lg.state_defs().to_vec(),
            event_defs: lg.event_defs().to_vec(),
            blocks,
        };
        let (file, _warnings) = convert_mem(&clog);
        let defects = slog2::validate(&file);
        prop_assert!(defects.is_empty(), "{defects:?}");
    }
}

// Conversion determinism: for any generated log — varying rank counts,
// nesting depth, unmatched sends/recvs, quantized clocks that force
// Equal Drawables — every way of driving the converter must produce a
// file byte-identical to the serial in-memory one: every thread count,
// every `TraceSource` kind, and the out-of-core writer at every memory
// budget. This is the tentpole invariant of the `Converter` API.

/// Unique temp-file suffix per proptest case (cases run concurrently).
fn case_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    SEQ.fetch_add(1, Ordering::Relaxed)
}

fn prop_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("slog2-prop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn arb_rank_records() -> impl Strategy<Value = Vec<Vec<Record>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            prop_oneof![
                // Quantized clock (1 ms grid): repeats collide into
                // bit-identical intervals. Ids 0..8 cover state
                // start/end pairs, the solo event, and undefined ids.
                (0u64..500, 0u32..8).prop_map(|(q, id)| Record::Event {
                    ts: q as f64 * 1e-3,
                    id: mpelog::ids::EventId(id),
                    text: String::new(),
                }),
                (0u64..500, 0u32..6, 0u32..4, 0u32..32).prop_map(|(q, dst, tag, size)| {
                    Record::Send {
                        ts: q as f64 * 1e-3,
                        dst,
                        tag,
                        size,
                    }
                }),
                (0u64..500, 0u32..6, 0u32..4, 0u32..32).prop_map(|(q, src, tag, size)| {
                    Record::Recv {
                        ts: q as f64 * 1e-3,
                        src,
                        tag,
                        size,
                    }
                }),
            ],
            0..80,
        ),
        1..6,
    )
}

fn clog_from(per_rank: Vec<Vec<Record>>) -> Clog2File {
    let mut lg = Logger::new(0);
    let _ = lg.define_state("outer", Color::RED);
    let _ = lg.define_state("inner", Color::GREEN);
    let _ = lg.define_event("tick", Color::YELLOW);
    let nranks = per_rank.len() as u32;
    let mut blocks = std::collections::BTreeMap::new();
    for (r, records) in per_rank.into_iter().enumerate() {
        blocks.insert(r as u32, records);
    }
    Clog2File {
        nranks,
        state_defs: lg.state_defs().to_vec(),
        event_defs: lg.event_defs().to_vec(),
        blocks,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn every_source_thread_count_and_budget_is_byte_identical(
        per_rank in arb_rank_records(),
    ) {
        let clog = clog_from(per_rank);
        let baseline = Converter::new()
            .parallelism(1)
            .convert(TraceSource::InMemory(&clog))
            .unwrap();
        let want = baseline.file.to_bytes();
        let clog_bytes = clog.to_bytes();
        let dir = prop_dir();
        let case = case_id();
        let clog_path = dir.join(format!("case-{case}.pclog2"));
        std::fs::write(&clog_path, &clog_bytes).unwrap();

        for threads in [1usize, 2, 8] {
            let conv = Converter::new().parallelism(threads);
            let m = conv.convert(TraceSource::InMemory(&clog)).unwrap();
            prop_assert_eq!(&m.warnings, &baseline.warnings, "warnings, {} threads", threads);
            prop_assert_eq!(m.file.to_bytes(), want.clone(), "InMemory, {} threads", threads);
            let b = conv.convert(TraceSource::Bytes(&clog_bytes)).unwrap();
            prop_assert_eq!(b.file.to_bytes(), want.clone(), "Bytes, {} threads", threads);
            let r = conv.convert(TraceSource::reader(&clog_bytes[..])).unwrap();
            prop_assert_eq!(r.file.to_bytes(), want.clone(), "Reader, {} threads", threads);
            let mm = conv
                .convert(TraceSource::mmap(&clog_path).unwrap())
                .unwrap();
            prop_assert_eq!(mm.file.to_bytes(), want.clone(), "Mmap, {} threads", threads);

            // Out-of-core: unbounded, and a 1-byte budget that forces
            // every sorter to spill runs to disk.
            for budget in [None, Some(1usize)] {
                let mut oc = Converter::new().parallelism(threads).spill_dir(dir.clone());
                if let Some(bytes) = budget {
                    oc = oc.memory_budget(bytes);
                }
                let out = dir.join(format!("case-{case}-t{threads}-b{:?}.pslog2", budget));
                let summary = oc
                    .convert_to_path(TraceSource::Bytes(&clog_bytes), &out)
                    .unwrap();
                prop_assert_eq!(&summary.warnings, &baseline.warnings,
                    "oocore warnings, {} threads budget {:?}", threads, budget);
                let got = std::fs::read(&out).unwrap();
                let _ = std::fs::remove_file(&out);
                prop_assert_eq!(got, want.clone(), "oocore, {} threads budget {:?}", threads, budget);
            }
        }
        let _ = std::fs::remove_file(&clog_path);
    }

    /// Salvage is a mode of the same builder, and the invariant holds
    /// there too: a torn byte image converts identically through every
    /// source kind, thread count, and the out-of-core writer.
    #[test]
    fn salvage_mode_is_source_and_budget_independent(
        per_rank in arb_rank_records(),
        keep in 0.2f64..1.0,
    ) {
        let clog = clog_from(per_rank);
        let whole = clog.to_bytes();
        let torn = &whole[..((whole.len() as f64 * keep) as usize).max(16).min(whole.len())];
        let report = SalvageReport {
            verdicts: vec![RankVerdict {
                rank: 0,
                kind: FailureKind::Aborted,
                detail: "proptest tear".into(),
            }],
            truncated: torn.len() < whole.len(),
            ..Default::default()
        };
        let policy = TornPolicy::Salvage(report);
        let baseline = Converter::new()
            .parallelism(1)
            .on_torn(policy.clone())
            .convert(TraceSource::Bytes(torn))
            .unwrap();
        let want = baseline.file.to_bytes();
        let dir = prop_dir();
        let case = case_id();

        for threads in [2usize, 8] {
            let conv = Converter::new().parallelism(threads).on_torn(policy.clone());
            let b = conv.convert(TraceSource::Bytes(torn)).unwrap();
            prop_assert_eq!(&b.warnings, &baseline.warnings, "salvage warnings, {} threads", threads);
            prop_assert_eq!(b.file.to_bytes(), want.clone(), "salvage Bytes, {} threads", threads);
            let r = conv.convert(TraceSource::reader(torn)).unwrap();
            prop_assert_eq!(r.file.to_bytes(), want.clone(), "salvage Reader, {} threads", threads);
            let out = dir.join(format!("salvage-{case}-t{threads}.pslog2"));
            let oc = Converter::new()
                .parallelism(threads)
                .on_torn(policy.clone())
                .memory_budget(1)
                .spill_dir(dir.clone());
            let summary = oc.convert_to_path(TraceSource::Bytes(torn), &out).unwrap();
            prop_assert_eq!(&summary.warnings, &baseline.warnings,
                "salvage oocore warnings, {} threads", threads);
            let got = std::fs::read(&out).unwrap();
            let _ = std::fs::remove_file(&out);
            prop_assert_eq!(got, want.clone(), "salvage oocore, {} threads", threads);
        }
    }
}
