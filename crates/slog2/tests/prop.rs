//! Property tests: frame-tree invariants, container round trips, and
//! conversion against randomized logs.

use mpelog::record::Record;
use mpelog::{Clog2File, Color, Logger};
use proptest::prelude::*;
use slog2::{
    convert, convert_reader, legend_stats, ConvertOptions, Drawable, FrameTree, Query, Slog2File,
    TimeWindow,
};
use slog2::{Category, CategoryId, CategoryKind, EventDrawable, StateDrawable, TimelineId};

fn arb_drawable() -> impl Strategy<Value = Drawable> {
    prop_oneof![
        (0u32..4, 0u32..4, 0f64..100.0, 0f64..5.0).prop_map(|(cat, tl, start, dur)| {
            Drawable::State(StateDrawable {
                category: CategoryId(cat),
                timeline: TimelineId(tl),
                start,
                end: start + dur,
                nest_level: 0,
                text: String::new(),
            })
        }),
        (4u32..6, 0u32..4, 0f64..105.0).prop_map(|(cat, tl, t)| {
            Drawable::Event(EventDrawable {
                category: CategoryId(cat),
                timeline: TimelineId(tl),
                time: t,
                text: String::new(),
            })
        }),
    ]
}

proptest! {
    #[test]
    fn tree_holds_every_drawable_exactly_once(
        ds in proptest::collection::vec(arb_drawable(), 0..300),
        capacity in 1usize..64,
    ) {
        let tree = FrameTree::build(ds.clone(), 0.0, 105.0, capacity, 12);
        prop_assert_eq!(tree.total_drawables(), ds.len());
        // Every original drawable is found by a full-range query.
        let hits = tree.query(TimeWindow::ALL);
        prop_assert_eq!(hits.len(), ds.len());
    }

    #[test]
    fn tree_nodes_contain_their_drawables(
        ds in proptest::collection::vec(arb_drawable(), 0..200),
        capacity in 1usize..32,
    ) {
        let tree = FrameTree::build(ds, 0.0, 105.0, capacity, 12);
        tree.visit(&mut |node| {
            for d in &node.drawables {
                assert!(node.t0 <= d.start() && d.end() <= node.t1);
            }
            if let Some(ch) = &node.children {
                assert_eq!(ch.0.t0, node.t0);
                assert_eq!(ch.0.t1, ch.1.t0);
                assert_eq!(ch.1.t1, node.t1);
            }
        });
    }

    #[test]
    fn tree_query_equals_naive_filter(
        ds in proptest::collection::vec(arb_drawable(), 0..200),
        a in 0f64..105.0,
        span in 0f64..50.0,
    ) {
        let w = TimeWindow::new(a, a + span);
        let tree = FrameTree::build(ds.clone(), 0.0, 105.0, 8, 12);
        let mut got: Vec<String> = tree.query(w).iter().map(|d| format!("{d:?}")).collect();
        let mut want: Vec<String> = ds
            .iter()
            .filter(|d| w.overlaps(d))
            .map(|d| format!("{d:?}"))
            .collect();
        got.sort();
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// The one boundary-inclusivity rule: a drawable overlaps `[a, b]`
    /// iff `start <= b && end >= a` — closed on both sides. Checked
    /// against the trait path, the window helpers, and the edges.
    #[test]
    fn window_inclusivity_is_closed_on_both_sides(
        ds in proptest::collection::vec(arb_drawable(), 0..100),
        a in 0f64..105.0,
        span in 0f64..50.0,
    ) {
        let w = TimeWindow::new(a, a + span);
        for d in &ds {
            let want = d.start() <= w.t1 && d.end() >= w.t0;
            prop_assert_eq!(w.overlaps(d), want);
            // A zero-span window sitting exactly on a drawable's start
            // or end must hit it (touching counts).
            prop_assert!(TimeWindow::new(d.start(), d.start()).overlaps(d));
            prop_assert!(TimeWindow::new(d.end(), d.end()).overlaps(d));
        }
        // Query-trait counting agrees with the rule.
        let tree = FrameTree::build(ds.clone(), 0.0, 105.0, 8, 12);
        let want = ds.iter().filter(|d| w.overlaps(d)).count();
        prop_assert_eq!(tree.count_in(w), want);
    }

    /// `preview_in` (which may shortcut through precomputed node
    /// aggregates) counts exactly the drawables the full scan finds, and
    /// its coverage equals the sum of clipped durations.
    #[test]
    fn window_preview_equals_naive_clip(
        ds in proptest::collection::vec(arb_drawable(), 0..150),
        a in 0f64..105.0,
        span in 0f64..105.0,
        capacity in 1usize..32,
    ) {
        let w = TimeWindow::new(a, a + span);
        let tree = FrameTree::build(ds.clone(), 0.0, 105.0, capacity, 12);
        let p = tree.preview_in(w);
        let want_count = ds.iter().filter(|d| w.overlaps(d)).count() as u64;
        prop_assert_eq!(p.total_count(), want_count);
        let want_cov: f64 = ds
            .iter()
            .filter(|d| w.overlaps(d))
            .map(|d| w.clip_span(d.start(), d.end()))
            .sum();
        let got = p.total_coverage();
        prop_assert!((got - want_cov).abs() < 1e-9 * (1.0 + want_cov.abs()),
            "{got} vs {want_cov}");
    }

    #[test]
    fn root_preview_counts_and_coverage_match(
        ds in proptest::collection::vec(arb_drawable(), 0..150),
    ) {
        let tree = FrameTree::build(ds.clone(), 0.0, 105.0, 8, 12);
        prop_assert_eq!(tree.root.preview.total_count(), ds.len() as u64);
        let want: f64 = ds.iter().map(|d| d.duration()).sum();
        let got = tree.root.preview.total_coverage();
        prop_assert!((got - want).abs() < 1e-9 * (1.0 + want.abs()));
    }

    #[test]
    fn slog_file_roundtrips(
        ds in proptest::collection::vec(arb_drawable(), 0..150),
        capacity in 1usize..32,
    ) {
        let categories: Vec<Category> = (0..6)
            .map(|i| Category {
                index: CategoryId(i),
                name: format!("cat{i}"),
                color: Color::GRAY,
                kind: if i < 4 { CategoryKind::State } else { CategoryKind::Event },
            })
            .collect();
        let file = Slog2File {
            timelines: (0..4).map(|r| format!("P{r}")).collect(),
            categories,
            range: TimeWindow::new(0.0, 105.0),
            warnings: vec!["w".into()],
            tree: FrameTree::build(ds, 0.0, 105.0, capacity, 12),
        };
        let back = Slog2File::from_bytes(&file.to_bytes()).unwrap();
        prop_assert_eq!(back, file);
    }

    #[test]
    fn truncated_slog_never_panics(
        ds in proptest::collection::vec(arb_drawable(), 0..40),
        frac in 0f64..1.0,
    ) {
        let file = Slog2File {
            timelines: vec!["P0".into()],
            categories: vec![],
            range: TimeWindow::new(0.0, 105.0),
            warnings: vec![],
            tree: FrameTree::build(ds, 0.0, 105.0, 8, 8),
        };
        let bytes = file.to_bytes();
        let cut = ((bytes.len() as f64) * frac) as usize;
        let _ = Slog2File::from_bytes(&bytes[..cut]); // must not panic
    }

    #[test]
    fn legend_inclusive_matches_raw_durations(
        ds in proptest::collection::vec(arb_drawable(), 0..150),
    ) {
        let categories: Vec<Category> = (0..6)
            .map(|i| Category {
                index: CategoryId(i),
                name: format!("cat{i}"),
                color: Color::GRAY,
                kind: CategoryKind::State,
            })
            .collect();
        let file = Slog2File {
            timelines: (0..4).map(|r| format!("P{r}")).collect(),
            categories,
            range: TimeWindow::new(0.0, 105.0),
            warnings: vec![],
            tree: FrameTree::build(ds.clone(), 0.0, 105.0, 16, 10),
        };
        let stats = legend_stats(&file);
        for cat in (0..6u32).map(CategoryId) {
            let want: f64 = ds
                .iter()
                .filter(|d| d.category() == cat)
                .map(|d| d.duration())
                .sum();
            let got = stats[&cat].inclusive;
            prop_assert!((got - want).abs() < 1e-9 * (1.0 + want.abs()),
                "cat {cat}: {got} vs {want}");
            // Exclusive never exceeds inclusive and never goes negative
            // by more than rounding.
            prop_assert!(stats[&cat].exclusive <= got + 1e-9);
        }
    }
}

// Build a random-but-well-formed log through the Logger API and check
// the converter pairs everything without warnings.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn conversion_of_well_formed_logs_is_warning_free(
        calls_per_rank in proptest::collection::vec(1usize..20, 2..4),
    ) {
        let nranks = calls_per_rank.len();
        let mut blocks = std::collections::BTreeMap::new();
        let mut defs = None;
        for (r, &calls) in calls_per_rank.iter().enumerate() {
            let mut lg = Logger::new(r);
            let (s_id, e_id) = lg.define_state("call", Color::GREEN);
            let solo = lg.define_event("tick", Color::YELLOW);
            let mut t = r as f64 * 0.001;
            for i in 0..calls {
                lg.log_event(t, s_id, "Line: 1");
                t += 0.01;
                if i % 3 == 0 {
                    lg.log_event(t, solo, "");
                    t += 0.001;
                }
                lg.log_event(t, e_id, "");
                t += 0.005;
            }
            if defs.is_none() {
                defs = Some((lg.state_defs().to_vec(), lg.event_defs().to_vec()));
            }
            blocks.insert(r as u32, lg.records().to_vec());
        }
        let (state_defs, event_defs) = defs.unwrap();
        let clog = Clog2File { nranks: nranks as u32, state_defs, event_defs, blocks };
        let (file, warnings) = convert(&clog, &ConvertOptions::default());
        prop_assert!(warnings.is_empty(), "{warnings:?}");
        let want_states: usize = calls_per_rank.iter().sum();
        let stats = legend_stats(&file);
        let cat = file.category_by_name("call").unwrap().index;
        prop_assert_eq!(stats[&cat].count as usize, want_states);
    }

    #[test]
    fn conversion_of_shuffled_raw_records_never_panics(
        records in proptest::collection::vec(
            prop_oneof![
                (0f64..10.0, 0u32..8).prop_map(|(ts, id)| Record::Event {
                    ts,
                    id: mpelog::ids::EventId(id),
                    text: String::new(),
                }),
                (0f64..10.0, 0u32..3, 0u32..5, 0u32..64).prop_map(|(ts, dst, tag, size)| {
                    Record::Send { ts, dst, tag, size }
                }),
                (0f64..10.0, 0u32..3, 0u32..5, 0u32..64).prop_map(|(ts, src, tag, size)| {
                    Record::Recv { ts, src, tag, size }
                }),
            ],
            0..60,
        ),
    ) {
        // Arbitrary (possibly ill-formed) record streams: the converter
        // must classify problems as warnings, never panic, and its
        // output must still serialize.
        let mut lg = Logger::new(0);
        let _ = lg.define_state("s", Color::RED);
        let _ = lg.define_event("e", Color::YELLOW);
        let mut blocks = std::collections::BTreeMap::new();
        blocks.insert(0u32, records);
        let clog = Clog2File {
            nranks: 3,
            state_defs: lg.state_defs().to_vec(),
            event_defs: lg.event_defs().to_vec(),
            blocks,
        };
        let (file, _warnings) = convert(&clog, &ConvertOptions::default());
        let back = Slog2File::from_bytes(&file.to_bytes()).unwrap();
        prop_assert_eq!(back.total_drawables(), file.total_drawables());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn converted_files_always_validate(
        records in proptest::collection::vec(
            prop_oneof![
                (0f64..10.0, 0u32..6).prop_map(|(ts, id)| Record::Event {
                    ts,
                    id: mpelog::ids::EventId(id),
                    text: String::new(),
                }),
                (0f64..10.0, 0u32..3, 0u32..5, 0u32..64).prop_map(|(ts, dst, tag, size)| {
                    Record::Send { ts, dst, tag, size }
                }),
                (0f64..10.0, 0u32..3, 0u32..5, 0u32..64).prop_map(|(ts, src, tag, size)| {
                    Record::Recv { ts, src, tag, size }
                }),
            ],
            0..60,
        ),
    ) {
        // Whatever garbage goes in, the converter's output must be a
        // structurally sound SLOG2 file (defects become warnings, never
        // broken geometry) — the "defective file" guarantee.
        let mut lg = Logger::new(0);
        let _ = lg.define_state("s", Color::RED);
        let _ = lg.define_event("e", Color::YELLOW);
        let mut blocks = std::collections::BTreeMap::new();
        blocks.insert(0u32, records);
        let clog = Clog2File {
            nranks: 3,
            state_defs: lg.state_defs().to_vec(),
            event_defs: lg.event_defs().to_vec(),
            blocks,
        };
        let (file, _warnings) = convert(&clog, &ConvertOptions::default());
        let defects = slog2::validate(&file);
        prop_assert!(defects.is_empty(), "{defects:?}");
    }
}

// Sharded-conversion determinism: for any generated log — varying rank
// counts, nesting depth, unmatched sends/recvs, quantized clocks that
// force Equal Drawables — the parallel converter and the streaming
// converter must produce files byte-identical to the serial one.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_and_streaming_convert_are_byte_identical(
        per_rank in proptest::collection::vec(
            proptest::collection::vec(
                prop_oneof![
                    // Quantized clock (1 ms grid): repeats collide into
                    // bit-identical intervals. Ids 0..8 cover state
                    // start/end pairs, the solo event, and undefined ids.
                    (0u64..500, 0u32..8).prop_map(|(q, id)| Record::Event {
                        ts: q as f64 * 1e-3,
                        id: mpelog::ids::EventId(id),
                        text: String::new(),
                    }),
                    (0u64..500, 0u32..6, 0u32..4, 0u32..32).prop_map(|(q, dst, tag, size)| {
                        Record::Send { ts: q as f64 * 1e-3, dst, tag, size }
                    }),
                    (0u64..500, 0u32..6, 0u32..4, 0u32..32).prop_map(|(q, src, tag, size)| {
                        Record::Recv { ts: q as f64 * 1e-3, src, tag, size }
                    }),
                ],
                0..80,
            ),
            1..6,
        ),
    ) {
        let mut lg = Logger::new(0);
        let _ = lg.define_state("outer", Color::RED);
        let _ = lg.define_state("inner", Color::GREEN);
        let _ = lg.define_event("tick", Color::YELLOW);
        let nranks = per_rank.len() as u32;
        let mut blocks = std::collections::BTreeMap::new();
        for (r, records) in per_rank.into_iter().enumerate() {
            blocks.insert(r as u32, records);
        }
        let clog = Clog2File {
            nranks,
            state_defs: lg.state_defs().to_vec(),
            event_defs: lg.event_defs().to_vec(),
            blocks,
        };

        let serial_opts = ConvertOptions::default().with_parallelism(1);
        let (serial, serial_warn) = convert(&clog, &serial_opts);
        let serial_bytes = serial.to_bytes();

        for threads in [2usize, 3, 8] {
            let opts = ConvertOptions::default().with_parallelism(threads);
            let (par, par_warn) = convert(&clog, &opts);
            prop_assert_eq!(&par_warn, &serial_warn, "{} threads", threads);
            prop_assert_eq!(par.to_bytes(), serial_bytes.clone(), "{} threads", threads);
        }

        // Streaming over the encoded file must land on the same bytes.
        let clog_bytes = clog.to_bytes();
        for threads in [1usize, 4] {
            let opts = ConvertOptions::default().with_parallelism(threads);
            let (streamed, stream_warn) = convert_reader(&clog_bytes[..], &opts).unwrap();
            prop_assert_eq!(&stream_warn, &serial_warn, "streamed, {} threads", threads);
            prop_assert_eq!(streamed.to_bytes(), serial_bytes.clone(), "streamed, {} threads", threads);
        }
    }
}
