//! Where conversion input comes from: the [`TraceSource`] seam.
//!
//! The converter used to expose one entry point per input shape
//! (`convert` for a decoded [`Clog2File`], `convert_reader` for a byte
//! stream, nothing for a byte image). [`TraceSource`] names the shapes
//! instead, so one `Converter::convert` drives them all:
//!
//! * [`TraceSource::InMemory`] — an already-decoded log.
//! * [`TraceSource::Bytes`] — a CLOG2 byte image; records are scanned
//!   in place (borrowed text, no per-record allocation).
//! * [`TraceSource::Mmap`] — a memory-mapped file, same zero-copy scan
//!   as `Bytes` without reading the file into the heap first.
//! * [`TraceSource::Reader`] — a byte stream decoded one block at a
//!   time (bounded memory for the scan phase).

use std::io::Read;
use std::path::Path;

use mpelog::Clog2File;

/// A source of CLOG2 trace data for [`Converter::convert`].
///
/// [`Converter::convert`]: crate::convert::Converter::convert
pub enum TraceSource<'a> {
    /// An already-decoded log.
    InMemory(&'a Clog2File),
    /// A raw CLOG2 byte image, scanned zero-copy.
    Bytes(&'a [u8]),
    /// A streaming byte source, decoded block by block.
    Reader(Box<dyn Read + 'a>),
    /// A memory-mapped CLOG2 file, scanned zero-copy.
    Mmap(Mmap),
}

impl<'a> TraceSource<'a> {
    /// Memory-map `path` as a trace source.
    pub fn mmap(path: &Path) -> std::io::Result<TraceSource<'static>> {
        Ok(TraceSource::Mmap(Mmap::open(path)?))
    }

    /// Wrap any reader as a streaming source.
    pub fn reader(r: impl Read + 'a) -> TraceSource<'a> {
        TraceSource::Reader(Box::new(r))
    }
}

impl std::fmt::Debug for TraceSource<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceSource::InMemory(c) => write!(f, "TraceSource::InMemory({} ranks)", c.nranks),
            TraceSource::Bytes(b) => write!(f, "TraceSource::Bytes({} bytes)", b.len()),
            TraceSource::Reader(_) => write!(f, "TraceSource::Reader(..)"),
            TraceSource::Mmap(m) => write!(f, "TraceSource::Mmap({} bytes)", m.len()),
        }
    }
}

/// A read-only memory-mapped file.
///
/// On unix this binds `mmap(2)`/`munmap(2)` directly — one extern
/// declaration keeps the build dependency-free (the same approach
/// `pilotd` takes for `signal(2)`). Elsewhere it degrades to reading
/// the file into a heap buffer, so every platform still converts; only
/// the zero-copy property is unix-specific.
pub struct Mmap {
    #[cfg(unix)]
    ptr: *mut std::ffi::c_void,
    #[cfg(unix)]
    len: usize,
    #[cfg(not(unix))]
    buf: Vec<u8>,
}

// SAFETY: the mapping is PROT_READ/MAP_PRIVATE and never mutated or
// remapped after construction; sharing &Mmap across threads only ever
// reads the bytes.
#[cfg(unix)]
unsafe impl Send for Mmap {}
#[cfg(unix)]
unsafe impl Sync for Mmap {}

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;
}

impl Mmap {
    /// Map `path` read-only.
    #[cfg(unix)]
    pub fn open(path: &Path) -> std::io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;
        let f = std::fs::File::open(path)?;
        let len = f.metadata()?.len() as usize;
        if len == 0 {
            // mmap(2) rejects zero-length mappings; an empty file is an
            // empty slice.
            return Ok(Mmap {
                ptr: std::ptr::null_mut(),
                len: 0,
            });
        }
        // SAFETY: fd is a freshly-opened readable file, len matches its
        // size, and we request a fresh private read-only mapping.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                f.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::MAP_FAILED {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Mmap { ptr, len })
    }

    /// Read `path` into a heap buffer (non-unix fallback).
    #[cfg(not(unix))]
    pub fn open(path: &Path) -> std::io::Result<Mmap> {
        Ok(Mmap {
            buf: std::fs::read(path)?,
        })
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        #[cfg(unix)]
        {
            if self.ptr.is_null() {
                return &[];
            }
            // SAFETY: ptr/len describe a live PROT_READ mapping owned by
            // self; the mapping outlives the returned borrow.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
        #[cfg(not(unix))]
        {
            &self.buf
        }
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// Is the mapping empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.bytes()
    }
}

#[cfg(unix)]
impl Drop for Mmap {
    fn drop(&mut self) {
        if !self.ptr.is_null() {
            // SAFETY: ptr/len came from a successful mmap and are
            // unmapped exactly once.
            unsafe { sys::munmap(self.ptr, self.len) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("slog2-mmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        std::fs::write(&p, contents).unwrap();
        p
    }

    #[test]
    fn mmap_reads_file_bytes() {
        let p = tmp("data.bin", b"hello mapping");
        let m = Mmap::open(&p).unwrap();
        assert_eq!(&*m, b"hello mapping");
        assert_eq!(m.len(), 13);
        assert!(!m.is_empty());
    }

    #[test]
    fn mmap_empty_file_is_empty_slice() {
        let p = tmp("empty.bin", b"");
        let m = Mmap::open(&p).unwrap();
        assert!(m.is_empty());
        assert_eq!(&*m, b"");
    }

    #[test]
    fn mmap_missing_file_errors() {
        assert!(Mmap::open(Path::new("/nonexistent/nope.clog2")).is_err());
    }
}
