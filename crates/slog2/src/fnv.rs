//! FNV-1a hashing for the converter's hot paths.
//!
//! The Equal-Drawables detector groups tens of millions of small fixed-
//! width keys; the standard library's SipHash is keyed and DoS-resistant
//! but several times slower on 28-byte keys than FNV-1a. The inputs here
//! are trace-internal (category ids and timestamp bits), not attacker-
//! controlled strings, so the non-cryptographic hash is appropriate.
//! The same function, run over a byte stream, doubles as the digest the
//! out-of-core writer reports for cross-run identity checks.

use std::hash::{BuildHasher, Hasher};

const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// One-shot FNV-1a over a byte slice, chainable via `seed`.
pub(crate) fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The canonical FNV-1a seed, exposed for streaming digests.
pub(crate) const FNV_SEED: u64 = OFFSET;

/// `std::hash::Hasher` wrapper so `HashMap` can use FNV-1a.
pub(crate) struct FnvHasher(u64);

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        self.0 = fnv1a(self.0, bytes);
    }
}

/// `BuildHasher` for [`FnvHasher`]; `HashMap<K, V, FnvBuild>` works with
/// `HashMap::default()`.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct FnvBuild;

impl BuildHasher for FnvBuild {
    type Hasher = FnvHasher;

    fn build_hasher(&self) -> FnvHasher {
        FnvHasher(OFFSET)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(FNV_SEED, b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(FNV_SEED, b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(FNV_SEED, b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hashmap_with_fnv_works() {
        let mut m: HashMap<(u32, u64), usize, FnvBuild> = HashMap::default();
        for i in 0..1000u64 {
            *m.entry(((i % 7) as u32, i % 13)).or_insert(0) += 1;
        }
        assert_eq!(m.values().sum::<usize>(), 1000);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"the quick brown fox";
        let mut h = FNV_SEED;
        for chunk in data.chunks(4) {
            h = fnv1a(h, chunk);
        }
        assert_eq!(h, fnv1a(FNV_SEED, data));
    }
}
