//! Drawable objects: what the converter produces and the viewer draws.

use mpelog::wire::{Reader, WireError, Writer};
use mpelog::Color;

use crate::id::{CategoryId, TimelineId};

/// What kind of graphical object a category describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CategoryKind {
    /// A state rectangle (has duration).
    State,
    /// A solo-event bubble (instantaneous).
    Event,
    /// A message arrow between two timelines.
    Arrow,
}

impl CategoryKind {
    fn to_u8(self) -> u8 {
        match self {
            CategoryKind::State => 0,
            CategoryKind::Event => 1,
            CategoryKind::Arrow => 2,
        }
    }

    fn from_u8(v: u8) -> Result<Self, WireError> {
        match v {
            0 => Ok(CategoryKind::State),
            1 => Ok(CategoryKind::Event),
            2 => Ok(CategoryKind::Arrow),
            _ => Err(WireError::Corrupt(format!("bad category kind {v}"))),
        }
    }
}

/// A legend entry: one kind of drawable with display properties.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Category {
    /// Index used by drawables to refer to this category.
    pub index: CategoryId,
    /// Display name (`"PI_Read"`, `"message"`, …).
    pub name: String,
    /// Display colour.
    pub color: Color,
    /// Object kind.
    pub kind: CategoryKind,
}

impl Category {
    pub(crate) fn encode(&self, w: &mut Writer) {
        w.put_u32(self.index.0);
        w.put_str(&self.name);
        w.put_u32(self.color.pack());
        w.put_u8(self.kind.to_u8());
    }

    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<Category, WireError> {
        Ok(Category {
            index: CategoryId(r.get_u32()?),
            name: r.get_str()?,
            color: Color::unpack(r.get_u32()?),
            kind: CategoryKind::from_u8(r.get_u8()?)?,
        })
    }
}

/// A state rectangle on one timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct StateDrawable {
    /// Category index.
    pub category: CategoryId,
    /// Timeline (rank) this state belongs to.
    pub timeline: TimelineId,
    /// Start time (seconds, global timeline).
    pub start: f64,
    /// End time.
    pub end: f64,
    /// Nesting depth at creation (0 = outermost). Jumpshot draws deeper
    /// states as inner rectangles.
    pub nest_level: u32,
    /// Info text captured at the start event (popup content).
    pub text: String,
}

/// A solo-event bubble on one timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct EventDrawable {
    /// Category index.
    pub category: CategoryId,
    /// Timeline (rank).
    pub timeline: TimelineId,
    /// Event time.
    pub time: f64,
    /// Info text (popup content).
    pub text: String,
}

/// A message arrow between two timelines.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrowDrawable {
    /// Category index (normally the synthetic "message" category).
    pub category: CategoryId,
    /// Sending timeline.
    pub from_timeline: TimelineId,
    /// Receiving timeline.
    pub to_timeline: TimelineId,
    /// Send time.
    pub start: f64,
    /// Receive time.
    pub end: f64,
    /// Message tag (popup content).
    pub tag: u32,
    /// Message size in bytes (popup content).
    pub size: u32,
}

/// Any drawable.
#[derive(Debug, Clone, PartialEq)]
pub enum Drawable {
    /// State rectangle.
    State(StateDrawable),
    /// Event bubble.
    Event(EventDrawable),
    /// Message arrow.
    Arrow(ArrowDrawable),
}

impl Drawable {
    /// Earliest time of the object.
    pub fn start(&self) -> f64 {
        match self {
            Drawable::State(s) => s.start,
            Drawable::Event(e) => e.time,
            Drawable::Arrow(a) => a.start.min(a.end),
        }
    }

    /// Latest time of the object.
    pub fn end(&self) -> f64 {
        match self {
            Drawable::State(s) => s.end,
            Drawable::Event(e) => e.time,
            Drawable::Arrow(a) => a.end.max(a.start),
        }
    }

    /// Category index.
    pub fn category(&self) -> CategoryId {
        match self {
            Drawable::State(s) => s.category,
            Drawable::Event(e) => e.category,
            Drawable::Arrow(a) => a.category,
        }
    }

    /// Duration (0 for events).
    pub fn duration(&self) -> f64 {
        self.end() - self.start()
    }

    pub(crate) fn encode(&self, w: &mut Writer) {
        match self {
            Drawable::State(s) => {
                w.put_u8(0);
                w.put_u32(s.category.0);
                w.put_u32(s.timeline.0);
                w.put_f64(s.start);
                w.put_f64(s.end);
                w.put_u32(s.nest_level);
                w.put_str(&s.text);
            }
            Drawable::Event(e) => {
                w.put_u8(1);
                w.put_u32(e.category.0);
                w.put_u32(e.timeline.0);
                w.put_f64(e.time);
                w.put_str(&e.text);
            }
            Drawable::Arrow(a) => {
                w.put_u8(2);
                w.put_u32(a.category.0);
                w.put_u32(a.from_timeline.0);
                w.put_u32(a.to_timeline.0);
                w.put_f64(a.start);
                w.put_f64(a.end);
                w.put_u32(a.tag);
                w.put_u32(a.size);
            }
        }
    }

    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<Drawable, WireError> {
        match r.get_u8()? {
            0 => Ok(Drawable::State(StateDrawable {
                category: CategoryId(r.get_u32()?),
                timeline: TimelineId(r.get_u32()?),
                start: r.get_f64()?,
                end: r.get_f64()?,
                nest_level: r.get_u32()?,
                text: r.get_str()?,
            })),
            1 => Ok(Drawable::Event(EventDrawable {
                category: CategoryId(r.get_u32()?),
                timeline: TimelineId(r.get_u32()?),
                time: r.get_f64()?,
                text: r.get_str()?,
            })),
            2 => Ok(Drawable::Arrow(ArrowDrawable {
                category: CategoryId(r.get_u32()?),
                from_timeline: TimelineId(r.get_u32()?),
                to_timeline: TimelineId(r.get_u32()?),
                start: r.get_f64()?,
                end: r.get_f64()?,
                tag: r.get_u32()?,
                size: r.get_u32()?,
            })),
            k => Err(WireError::Corrupt(format!("bad drawable kind {k}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(d: &Drawable) -> Drawable {
        let mut w = Writer::new();
        d.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let out = Drawable::decode(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        out
    }

    #[test]
    fn drawable_roundtrips() {
        let ds = [
            Drawable::State(StateDrawable {
                category: CategoryId(1),
                timeline: TimelineId(2),
                start: 0.5,
                end: 1.5,
                nest_level: 1,
                text: "P2 idx=3 Line: 40".into(),
            }),
            Drawable::Event(EventDrawable {
                category: CategoryId(4),
                timeline: TimelineId(0),
                time: 0.75,
                text: "Chan: C3".into(),
            }),
            Drawable::Arrow(ArrowDrawable {
                category: CategoryId(9),
                from_timeline: TimelineId(0),
                to_timeline: TimelineId(5),
                start: 1.0,
                end: 1.01,
                tag: 1000,
                size: 400,
            }),
        ];
        for d in &ds {
            assert_eq!(&roundtrip(d), d);
        }
    }

    #[test]
    fn category_roundtrips() {
        for kind in [
            CategoryKind::State,
            CategoryKind::Event,
            CategoryKind::Arrow,
        ] {
            let c = Category {
                index: CategoryId(7),
                name: "PI_Gather".into(),
                color: Color::INDIAN_RED,
                kind,
            };
            let mut w = Writer::new();
            c.encode(&mut w);
            let bytes = w.into_bytes();
            assert_eq!(Category::decode(&mut Reader::new(&bytes)).unwrap(), c);
        }
    }

    #[test]
    fn interval_accessors() {
        use crate::window::TimeWindow;
        let s = Drawable::State(StateDrawable {
            category: CategoryId(0),
            timeline: TimelineId(0),
            start: 1.0,
            end: 3.0,
            nest_level: 0,
            text: String::new(),
        });
        assert_eq!(s.start(), 1.0);
        assert_eq!(s.end(), 3.0);
        assert_eq!(s.duration(), 2.0);
        assert!(TimeWindow::new(2.5, 4.0).overlaps(&s));
        assert!(TimeWindow::new(3.0, 4.0).overlaps(&s)); // closed interval: touching counts
        assert!(!TimeWindow::new(3.1, 4.0).overlaps(&s));
        assert!(!TimeWindow::new(0.0, 0.9).overlaps(&s));
    }

    #[test]
    fn backward_arrow_normalizes_interval() {
        // An arrow whose receive precedes its send (clock drift!) still
        // reports a sane bounding interval.
        let a = Drawable::Arrow(ArrowDrawable {
            category: CategoryId(0),
            from_timeline: TimelineId(0),
            to_timeline: TimelineId(1),
            start: 2.0,
            end: 1.0,
            tag: 0,
            size: 0,
        });
        assert_eq!(a.start(), 1.0);
        assert_eq!(a.end(), 2.0);
    }

    #[test]
    fn event_is_instantaneous() {
        let e = Drawable::Event(EventDrawable {
            category: CategoryId(0),
            timeline: TimelineId(0),
            time: 5.0,
            text: String::new(),
        });
        assert_eq!(e.duration(), 0.0);
        assert!(crate::window::TimeWindow::new(5.0, 5.0).overlaps(&e));
        assert!(!crate::window::TimeWindow::new(5.1, 6.0).overlaps(&e));
    }
}
