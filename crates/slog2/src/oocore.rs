//! Out-of-core conversion: write an SLOG2 file under a memory budget.
//!
//! [`Converter::convert_to_path`] converts a trace whose drawables do
//! not fit in RAM. The frame tree never materializes: drawable rows
//! spill to a temporary file as ranks are scanned, the tree *shape* is
//! computed from streaming passes over that file, and the final SLOG2
//! image is written node by node from an externally-sorted row stream.
//! Output bytes are identical to `Converter::convert(..).file.to_bytes()`
//! at every parallelism setting and memory budget — the determinism
//! proptests pin this.
//!
//! ## The three passes
//!
//! 1. **Scan + spill.** Each rank block is scanned (with the same
//!    chunk-stealing scan as the in-memory path) and its rows appended
//!    to the row file as one *segment*: `[start, end, cat, duration,
//!    payload]` per row, where the payload is the row's exact
//!    `Drawable::encode` bytes. Per-rank send/recv lists, warnings, and
//!    per-segment time extrema stay resident (they are tiny next to the
//!    drawables). Arrow rows append as the final segment after
//!    matching. Equal-Drawables keys stream into an external sorter.
//! 2. **Shape.** A streaming pass counts, for every potential tree node
//!    (addressed by its heap-style path id), how many rows would reach
//!    it if every ancestor split. Since a row's descent path depends
//!    only on the fixed `[t0, t1]` range, reach counts determine the
//!    realized tree exactly: a node splits iff its reach exceeds the
//!    capacity (and the depth/zero-width/empty-children guards pass) —
//!    the same predicate the in-memory recursion evaluates on its item
//!    list.
//! 3. **Place + write.** A second streaming pass walks each row down
//!    the realized tree, accumulating node previews *in row order*
//!    (float summation order is what makes previews bit-identical) and
//!    tagging the row with its owning node's preorder index. Rows
//!    externally sort by `(preorder, sequence)` and stream into the
//!    file behind the header; the node directory is patched in place.
//!
//! The reach map and per-node previews are the only tree state held in
//! memory — `O(nodes)`, not `O(drawables)`. Path ids cap the tree depth
//! at 32 (a 10^9-node shape bound no real file approaches); a converter
//! configured deeper falls back to the in-memory build.

use std::collections::{BinaryHeap, HashMap};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use mpelog::clog2::{Clog2Blocks, StreamError};
use mpelog::wire::Writer;
use mpelog::Clog2File;

use crate::columnar::DrawableColumns;
use crate::convert::{
    match_all_arrows, register_terminal_categories, terminal_shard, Conversion, ConvertWarning,
    Converter, TornPolicy,
};
use crate::fnv::{fnv1a, FnvBuild, FNV_SEED};
use crate::scan::{build_categories, scan_sources, BlockInput, CategoryTable, RankScan};
use crate::source::TraceSource;

/// What [`Converter::convert_to_path`] reports: enough to check two
/// runs produced the same file without re-reading either.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvertSummary {
    /// Total drawables written.
    pub drawables: u64,
    /// Frame-tree nodes written.
    pub nodes: u64,
    /// Converter diagnostics (also embedded in the file).
    pub warnings: Vec<ConvertWarning>,
    /// Final file size in bytes.
    pub bytes_written: u64,
    /// FNV-1a digest of the file bytes.
    pub digest: u64,
}

impl Converter {
    /// Convert `src` straight to an SLOG2 file at `dst`, holding only
    /// `memory_budget` bytes (plus scan working set) of drawable data
    /// in RAM. Bytes at `dst` are identical to what
    /// [`convert`](Converter::convert) + `to_bytes` would produce.
    pub fn convert_to_path(
        &self,
        src: TraceSource<'_>,
        dst: &Path,
    ) -> Result<ConvertSummary, StreamError> {
        if self.max_depth > 32 {
            // Path ids don't reach below depth 32; fall back to the
            // in-memory build (identical bytes by construction).
            let Conversion { file, warnings } = self.convert(src)?;
            let bytes = file.to_bytes();
            std::fs::write(dst, &bytes)?;
            return Ok(ConvertSummary {
                drawables: file.total_drawables() as u64,
                nodes: file.tree.node_count() as u64,
                warnings,
                bytes_written: bytes.len() as u64,
                digest: fnv1a(FNV_SEED, &bytes),
            });
        }
        run_out_of_core(self, src, dst)
    }
}

/// Sequence number for temp-file names (several conversions may run in
/// one process).
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A temp file deleted on drop.
struct TempFile {
    path: PathBuf,
}

impl TempFile {
    fn create(dir: Option<&Path>, tag: &str) -> io::Result<TempFile> {
        let dir = match dir {
            Some(d) => d.to_path_buf(),
            None => std::env::temp_dir(),
        };
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!(
            "slog2-oocore-{}-{}-{tag}.tmp",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        Ok(TempFile { path })
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// An external sorter over byte records: buffers up to `budget` bytes,
/// spills sorted runs to one temp file, and k-way merges the runs on
/// drain. Records compare as byte slices, so callers encode sort keys
/// big-endian.
struct ExtSorter {
    recs: Vec<Vec<u8>>,
    buffered: usize,
    budget: usize,
    spill: Option<(BufWriter<File>, TempFile)>,
    spill_dir: Option<PathBuf>,
    tag: &'static str,
    runs: Vec<(u64, u64)>,
    pos: u64,
}

impl ExtSorter {
    fn new(budget: usize, spill_dir: Option<&Path>, tag: &'static str) -> ExtSorter {
        ExtSorter {
            recs: Vec::new(),
            buffered: 0,
            // Below ~64 KiB the run bookkeeping dominates; clamp.
            budget: budget.max(64 << 10),
            spill: None,
            spill_dir: spill_dir.map(Path::to_path_buf),
            tag,
            runs: Vec::new(),
            pos: 0,
        }
    }

    fn push(&mut self, rec: Vec<u8>) -> io::Result<()> {
        // ~32 bytes of Vec overhead per record.
        self.buffered += rec.len() + 32;
        self.recs.push(rec);
        if self.buffered > self.budget {
            self.spill_run()?;
        }
        Ok(())
    }

    fn spill_run(&mut self) -> io::Result<()> {
        if self.recs.is_empty() {
            return Ok(());
        }
        self.recs.sort_unstable();
        if self.spill.is_none() {
            let tf = TempFile::create(self.spill_dir.as_deref(), self.tag)?;
            let f = File::create(&tf.path)?;
            self.spill = Some((BufWriter::new(f), tf));
        }
        let w = &mut self.spill.as_mut().expect("spill open").0;
        let start = self.pos;
        for rec in self.recs.drain(..) {
            w.write_all(&(rec.len() as u32).to_le_bytes())?;
            w.write_all(&rec)?;
            self.pos += 4 + rec.len() as u64;
        }
        self.runs.push((start, self.pos));
        self.buffered = 0;
        Ok(())
    }

    /// Drain everything in sorted order.
    fn into_sorted(mut self) -> io::Result<SortedIter> {
        if self.runs.is_empty() {
            self.recs.sort_unstable();
            return Ok(SortedIter::Mem(self.recs.into_iter()));
        }
        self.spill_run()?;
        let (w, tf) = self.spill.take().expect("spill open");
        w.into_inner().map_err(io::Error::other)?.sync_data().ok();
        let mut readers = Vec::with_capacity(self.runs.len());
        let mut heap = BinaryHeap::new();
        for (i, &(start, end)) in self.runs.iter().enumerate() {
            let mut f = File::open(&tf.path)?;
            f.seek(SeekFrom::Start(start))?;
            let mut r = RunReader {
                r: BufReader::new(f.take(end - start)),
            };
            if let Some(rec) = r.next_rec()? {
                heap.push(std::cmp::Reverse((rec, i)));
            }
            readers.push(r);
        }
        Ok(SortedIter::Merge {
            heap,
            readers,
            _guard: tf,
        })
    }
}

struct RunReader {
    r: BufReader<io::Take<File>>,
}

impl RunReader {
    fn next_rec(&mut self) -> io::Result<Option<Vec<u8>>> {
        let mut len = [0u8; 4];
        match self.r.read_exact(&mut len) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        }
        let mut rec = vec![0u8; u32::from_le_bytes(len) as usize];
        self.r.read_exact(&mut rec)?;
        Ok(Some(rec))
    }
}

enum SortedIter {
    Mem(std::vec::IntoIter<Vec<u8>>),
    Merge {
        heap: BinaryHeap<std::cmp::Reverse<(Vec<u8>, usize)>>,
        readers: Vec<RunReader>,
        _guard: TempFile,
    },
}

impl SortedIter {
    fn next_rec(&mut self) -> io::Result<Option<Vec<u8>>> {
        match self {
            SortedIter::Mem(it) => Ok(it.next()),
            SortedIter::Merge { heap, readers, .. } => {
                let Some(std::cmp::Reverse((rec, i))) = heap.pop() else {
                    return Ok(None);
                };
                if let Some(next) = readers[i].next_rec()? {
                    heap.push(std::cmp::Reverse((next, i)));
                }
                Ok(Some(rec))
            }
        }
    }
}

/// One contiguous run of rows in the row file. `order` ranks segments
/// into the global row sequence: `(0, rank)` for scan output (the
/// salvage terminal shard is rank `u32::MAX`), `(1, 0)` for arrows —
/// the same rank-ascending-then-arrows order the in-memory merge uses.
struct Segment {
    order: (u8, u32),
    start: u64,
    rows: u64,
    /// Min row start / max row end, folded in row order.
    t0: f64,
    t1: f64,
}

/// The pass-A row file: sequential segments of
/// `[start f64][end f64][cat u32][dur f64][len u32][payload]` rows.
struct RowFile {
    w: BufWriter<File>,
    guard: TempFile,
    pos: u64,
    segments: Vec<Segment>,
    total_rows: u64,
}

impl RowFile {
    fn create(dir: Option<&Path>) -> io::Result<RowFile> {
        let guard = TempFile::create(dir, "rows")?;
        let f = File::create(&guard.path)?;
        Ok(RowFile {
            w: BufWriter::new(f),
            guard,
            pos: 0,
            segments: Vec::new(),
            total_rows: 0,
        })
    }

    /// Spill one shard's rows as a segment, feeding Equal-Drawables keys
    /// to `eq` along the way.
    fn spill_shard(
        &mut self,
        order: (u8, u32),
        cols: &DrawableColumns,
        eq: &mut ExtSorter,
    ) -> io::Result<()> {
        let start = self.pos;
        let (mut t0, mut t1) = (f64::INFINITY, f64::NEG_INFINITY);
        // Encode the whole segment's payloads in one buffer; per-row
        // lengths delimit it. The segment is already resident as `cols`,
        // so this doubles nothing out of proportion.
        let mut payloads = Writer::with_capacity(cols.len() * 32);
        let mut offsets = Vec::with_capacity(cols.len() + 1);
        for i in 0..cols.len() {
            offsets.push(payloads.len());
            cols.encode(i, &mut payloads);
        }
        offsets.push(payloads.len());
        let payloads = payloads.into_bytes();
        for i in 0..cols.len() {
            let (s, e) = (cols.start(i), cols.end(i));
            t0 = t0.min(s);
            t1 = t1.max(e);
            eq.push(pack_equal_key(cols.equal_key(i)).to_vec())?;
            let bytes = &payloads[offsets[i]..offsets[i + 1]];
            self.w.write_all(&s.to_le_bytes())?;
            self.w.write_all(&e.to_le_bytes())?;
            self.w.write_all(&cols.category(i).0.to_le_bytes())?;
            self.w.write_all(&cols.duration(i).to_le_bytes())?;
            self.w.write_all(&(bytes.len() as u32).to_le_bytes())?;
            self.w.write_all(bytes)?;
            self.pos += 8 + 8 + 4 + 8 + 4 + bytes.len() as u64;
        }
        self.total_rows += cols.len() as u64;
        self.segments.push(Segment {
            order,
            start,
            rows: cols.len() as u64,
            t0,
            t1,
        });
        Ok(())
    }

    /// Finish writing; returns a re-reader that yields rows in global
    /// sequence order (segments sorted by `order`).
    fn finish(mut self) -> io::Result<RowCursor> {
        self.w.flush()?;
        drop(self.w);
        self.segments.sort_by_key(|s| s.order);
        Ok(RowCursor {
            guard: self.guard,
            segments: self.segments,
            total_rows: self.total_rows,
        })
    }
}

struct RowCursor {
    guard: TempFile,
    segments: Vec<Segment>,
    total_rows: u64,
}

/// One decoded spill row.
struct Row {
    start: f64,
    end: f64,
    cat: u32,
    dur: f64,
    payload: Vec<u8>,
}

impl RowCursor {
    /// The global time range: per-segment extrema folded in segment
    /// order (min/max folds are order-insensitive for non-NaN inputs,
    /// so this equals the in-memory row-order fold).
    fn range(&self) -> (f64, f64) {
        let (mut t0, mut t1) = (f64::INFINITY, f64::NEG_INFINITY);
        for s in &self.segments {
            t0 = t0.min(s.t0);
            t1 = t1.max(s.t1);
        }
        if t0.is_finite() {
            (t0, t1)
        } else {
            (0.0, 0.0)
        }
    }

    /// Stream every row in global sequence order.
    fn for_each(&self, mut f: impl FnMut(u64, Row) -> io::Result<()>) -> io::Result<()> {
        let mut seq = 0u64;
        let mut file = BufReader::new(File::open(&self.guard.path)?);
        for seg in &self.segments {
            file.seek(SeekFrom::Start(seg.start))?;
            for _ in 0..seg.rows {
                let start = read_f64(&mut file)?;
                let end = read_f64(&mut file)?;
                let cat = read_u32(&mut file)?;
                let dur = read_f64(&mut file)?;
                let len = read_u32(&mut file)? as usize;
                let mut payload = vec![0u8; len];
                file.read_exact(&mut payload)?;
                f(
                    seq,
                    Row {
                        start,
                        end,
                        cat,
                        dur,
                        payload,
                    },
                )?;
                seq += 1;
            }
        }
        Ok(())
    }
}

fn read_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Pack an Equal-Drawables key big-endian so byte order equals tuple
/// order.
fn pack_equal_key(k: (u32, u32, u32, u64, u64)) -> [u8; 28] {
    let mut out = [0u8; 28];
    out[0..4].copy_from_slice(&k.0.to_be_bytes());
    out[4..8].copy_from_slice(&k.1.to_be_bytes());
    out[8..12].copy_from_slice(&k.2.to_be_bytes());
    out[12..20].copy_from_slice(&k.3.to_be_bytes());
    out[20..28].copy_from_slice(&k.4.to_be_bytes());
    out
}

/// One realized tree node, preorder.
struct NodeMeta {
    t0: f64,
    t1: f64,
    depth: u32,
    split: bool,
    items: u64,
}

/// Per-category preview accumulator mirroring `Preview::add` (sorted
/// insert, `count += 1`, `coverage += duration` in arrival order).
#[derive(Default)]
struct PreviewAcc {
    entries: Vec<(u32, u64, f64)>,
}

impl PreviewAcc {
    fn add(&mut self, cat: u32, dur: f64) {
        match self.entries.binary_search_by_key(&cat, |e| e.0) {
            Ok(i) => {
                self.entries[i].1 += 1;
                self.entries[i].2 += dur;
            }
            Err(i) => self.entries.insert(i, (cat, 1, dur)),
        }
    }
}

/// Walk one row down the potential tree, calling `visit(path_id)` at
/// every node it reaches; returns when the row stops descending.
fn walk_potential(
    row_start: f64,
    row_end: f64,
    t0: f64,
    t1: f64,
    max_depth: u32,
    mut visit: impl FnMut(u64),
) {
    let (mut id, mut a, mut b) = (1u64, t0, t1);
    let mut depth = 0u32;
    loop {
        visit(id);
        if depth >= max_depth || b <= a {
            return;
        }
        let mid = a + (b - a) / 2.0;
        if row_end <= mid {
            id <<= 1;
            b = mid;
        } else if row_start >= mid {
            id = id << 1 | 1;
            a = mid;
        } else {
            return;
        }
        depth += 1;
    }
}

/// Realize the tree shape from reach counts: preorder node list plus a
/// path-id → preorder map.
fn realize_tree(
    reach: &HashMap<u64, u64, FnvBuild>,
    t0: f64,
    t1: f64,
    capacity: u64,
    max_depth: u32,
) -> (Vec<NodeMeta>, HashMap<u64, u32, FnvBuild>) {
    let mut nodes = Vec::new();
    let mut map: HashMap<u64, u32, FnvBuild> = HashMap::default();
    // Explicit stack, preorder: push right before left so left pops
    // first (matching the recursion's self → left → right order).
    let mut stack = vec![(1u64, t0, t1, 0u32)];
    while let Some((id, a, b, depth)) = stack.pop() {
        let n = reach.get(&id).copied().unwrap_or(0);
        let l = reach.get(&(id << 1)).copied().unwrap_or(0);
        let r = reach.get(&(id << 1 | 1)).copied().unwrap_or(0);
        // The same predicate the in-memory recursion evaluates: items
        // over capacity, depth available, splittable interval, and the
        // split actually moves something down.
        let split = n > capacity && depth < max_depth && b > a && (l + r) > 0;
        map.insert(id, nodes.len() as u32);
        nodes.push(NodeMeta {
            t0: a,
            t1: b,
            depth,
            split,
            items: if split { n - l - r } else { n },
        });
        if split {
            let mid = a + (b - a) / 2.0;
            stack.push((id << 1 | 1, mid, b, depth + 1));
            stack.push((id << 1, a, mid, depth + 1));
        }
    }
    // `stack.pop()` visits self, then the whole left subtree, then the
    // right — but interleaved pushes would break preorder numbering if
    // the left subtree pushed before the right sibling popped. It
    // can't: right was pushed below left, and left's entire subtree is
    // pushed (and popped) above it. So `map` holds true preorder.
    (nodes, map)
}

/// Everything the driver hands to the writer.
struct Prepared {
    table: CategoryTable,
    shards: Vec<RankScan>,
    warnings: Vec<ConvertWarning>,
    rows: RowFile,
    eq: ExtSorter,
    nranks: u32,
}

fn run_out_of_core(
    conv: &Converter,
    src: TraceSource<'_>,
    dst: &Path,
) -> Result<ConvertSummary, StreamError> {
    let workers = conv.effective_parallelism();
    let obs = conv.obs.as_deref();
    let budget = conv.memory_budget.unwrap_or(usize::MAX);
    let spill_dir = conv.spill_dir.as_deref();

    // ---- Pass A: scan ranks, spill drawable rows per segment. ----
    let mut prep = {
        let _span = obs.map(|o| o.span("scan", "convert", 0));
        prepare(conv, src, workers, budget, spill_dir)?
    };

    // Arrow matching runs on the resident send/recv lists; its rows
    // spill as the final segment.
    {
        let _span = obs.map(|o| o.span("arrow-match", "convert", 0));
        let mut acols = DrawableColumns::new();
        match_all_arrows(
            &prep.shards,
            prep.table.arrow_cat,
            workers,
            obs,
            &mut acols,
            &mut prep.warnings,
        );
        prep.rows.spill_shard((1, 0), &acols, &mut prep.eq)?;
    }

    // Equal-Drawables: drain the key sorter, report runs longer than 1
    // in key order (identical to the in-memory sorted-dups report).
    {
        let _span = obs.map(|o| o.span("diagnose", "convert", 0));
        let mut sorted = prep.eq.into_sorted()?;
        let mut current: Option<(Vec<u8>, usize)> = None;
        let flush = |cur: &mut Option<(Vec<u8>, usize)>, warnings: &mut Vec<ConvertWarning>| {
            if let Some((key, n)) = cur.take() {
                if n > 1 {
                    let cat = u32::from_be_bytes(key[0..4].try_into().expect("key width"));
                    let t0 = f64::from_bits(u64::from_be_bytes(
                        key[12..20].try_into().expect("key width"),
                    ));
                    let t1 = f64::from_bits(u64::from_be_bytes(
                        key[20..28].try_into().expect("key width"),
                    ));
                    warnings.push(ConvertWarning::EqualDrawables {
                        category: prep
                            .table
                            .categories
                            .get(cat as usize)
                            .map(|c| c.name.clone())
                            .unwrap_or_else(|| format!("cat{cat}")),
                        count: n,
                        t0,
                        t1,
                    });
                }
            }
        };
        while let Some(key) = sorted.next_rec()? {
            match &mut current {
                Some((k, n)) if *k == key => *n += 1,
                _ => {
                    flush(&mut current, &mut prep.warnings);
                    current = Some((key, 1));
                }
            }
        }
        flush(&mut current, &mut prep.warnings);
    }

    // ---- Pass B: range + reach counts → realized tree shape. ----
    let _tree_span = obs.map(|o| o.span("tree-build", "convert", 0));
    let cursor = prep.rows.finish()?;
    let (t0, t1) = cursor.range();
    let capacity = conv.frame_capacity.max(1);
    let mut reach: HashMap<u64, u64, FnvBuild> = HashMap::default();
    cursor.for_each(|_, row| {
        walk_potential(row.start, row.end, t0, t1, conv.max_depth, |id| {
            *reach.entry(id).or_insert(0) += 1;
        });
        Ok(())
    })?;
    let (nodes, node_of) = realize_tree(&reach, t0, t1, capacity as u64, conv.max_depth);
    drop(reach);

    // ---- Pass C: previews in row order + external sort by placement. ----
    // A row contributes to the preview of every *realized* node on its
    // path (root down to the node that keeps it) — never to the
    // potential nodes below a leaf, which the in-memory recursion never
    // creates. Rows stream in global sequence order, so each node's
    // preview accumulates its items in exactly the order the in-memory
    // build adds them (per-node f64 sums are bit-identical).
    let mut previews: Vec<PreviewAcc> = nodes.iter().map(|_| PreviewAcc::default()).collect();
    let mut placed = ExtSorter::new(budget / 2, spill_dir, "placed");
    cursor.for_each(|seq, row| {
        let (mut id, mut a, mut b) = (1u64, t0, t1);
        let keep = loop {
            let pre = node_of[&id];
            previews[pre as usize].add(row.cat, row.dur);
            if !nodes[pre as usize].split {
                break pre;
            }
            let mid = a + (b - a) / 2.0;
            if row.end <= mid {
                id <<= 1;
                b = mid;
            } else if row.start >= mid {
                id = id << 1 | 1;
                a = mid;
            } else {
                break pre;
            }
        };
        let mut rec = Vec::with_capacity(12 + row.payload.len());
        rec.extend_from_slice(&keep.to_be_bytes());
        rec.extend_from_slice(&seq.to_be_bytes());
        rec.extend_from_slice(&row.payload);
        placed.push(rec)
    })?;

    // ---- Write the file. ----
    let timelines = conv.timeline_names.clone().unwrap_or_else(|| {
        (0..prep.nranks)
            .map(|r| {
                if r == 0 {
                    "PI_MAIN".to_string()
                } else {
                    format!("P{r}")
                }
            })
            .collect()
    });
    let mut header = Writer::with_capacity(4096);
    header.put_bytes(b"PSLOG2\x00\x01");
    header.put_u32(capacity as u32);
    header.put_u32(conv.max_depth);
    header.put_f64(t0);
    header.put_f64(t1);
    header.put_u32(timelines.len() as u32);
    for t in &timelines {
        header.put_str(t);
    }
    header.put_u32(prep.table.categories.len() as u32);
    for c in &prep.table.categories {
        c.encode(&mut header);
    }
    header.put_u32(prep.warnings.len() as u32);
    for w in &prep.warnings {
        header.put_str(&w.to_string());
    }
    header.put_u32(nodes.len() as u32);
    let header = header.into_bytes();

    let mut out = BufWriter::new(File::create(dst)?);
    out.write_all(&header)?;
    let dir_start = header.len() as u64;
    out.write_all(&vec![0u8; nodes.len() * 8])?;
    let mut pos = dir_start + nodes.len() as u64 * 8;
    let mut directory = Vec::with_capacity(nodes.len());
    let mut sorted = placed.into_sorted()?;
    for (pre, node) in nodes.iter().enumerate() {
        directory.push(pos);
        let mut w = Writer::with_capacity(64);
        w.put_f64(node.t0);
        w.put_f64(node.t1);
        w.put_u32(node.depth);
        w.put_u8(node.split as u8);
        w.put_u32(node.items as u32);
        let head = w.into_bytes();
        out.write_all(&head)?;
        pos += head.len() as u64;
        // The sorted stream is grouped by preorder index, and the reach
        // arithmetic guarantees each group's length equals the node's
        // item count — assert rather than trust.
        for _ in 0..node.items {
            let rec = sorted
                .next_rec()?
                .ok_or_else(|| io::Error::other("row stream ended before its node count"))?;
            let rec_pre = u32::from_be_bytes(rec[0..4].try_into().expect("rec key"));
            if rec_pre != pre as u32 {
                return Err(StreamError::Io(io::Error::other(
                    "row placed outside its node",
                )));
            }
            out.write_all(&rec[12..])?;
            pos += rec.len() as u64 - 12;
        }
        let pv = &previews[pre].entries;
        let mut w = Writer::with_capacity(16 * pv.len() + 4);
        w.put_u32(pv.len() as u32);
        for &(cat, count, coverage) in pv {
            w.put_u32(cat);
            w.put_u64(count);
            w.put_f64(coverage);
        }
        let tail = w.into_bytes();
        out.write_all(&tail)?;
        pos += tail.len() as u64;
    }
    let mut f = out.into_inner().map_err(io::Error::other)?;
    f.seek(SeekFrom::Start(dir_start))?;
    let mut dir_bytes = Vec::with_capacity(directory.len() * 8);
    for off in &directory {
        dir_bytes.extend_from_slice(&off.to_le_bytes());
    }
    f.write_all(&dir_bytes)?;
    f.flush()?;
    drop(f);

    // Digest the finished file.
    let mut digest = FNV_SEED;
    let mut bytes_written = 0u64;
    let mut r = BufReader::new(File::open(dst)?);
    let mut buf = vec![0u8; 1 << 16];
    loop {
        let n = r.read(&mut buf)?;
        if n == 0 {
            break;
        }
        digest = fnv1a(digest, &buf[..n]);
        bytes_written += n as u64;
    }

    Ok(ConvertSummary {
        drawables: cursor.total_rows,
        nodes: nodes.len() as u64,
        warnings: prep.warnings,
        bytes_written,
        digest,
    })
}

/// Pass A over every source kind: scan rank blocks (one at a time, so
/// only one rank's drawables are ever resident), spill row segments,
/// and keep the small residents (sends/recvs/warnings) for matching.
fn prepare(
    conv: &Converter,
    src: TraceSource<'_>,
    workers: usize,
    budget: usize,
    spill_dir: Option<&Path>,
) -> Result<Prepared, StreamError> {
    let mut rows = RowFile::create(spill_dir)?;
    let mut eq = ExtSorter::new(budget / 4, spill_dir, "eqkeys");
    let obs = conv.obs.as_deref();

    fn spill_scan(scan: &mut RankScan, rows: &mut RowFile, eq: &mut ExtSorter) -> io::Result<()> {
        rows.spill_shard((0, scan.rank), &scan.cols, eq)?;
        scan.cols = DrawableColumns::new();
        Ok(())
    }

    // Salvage mode recovers the clean byte prefix first, then runs the
    // same per-rank pipeline plus the terminal shard.
    if let TornPolicy::Salvage(report) = &conv.torn {
        let clog: Clog2File = match src {
            TraceSource::InMemory(c) => c.clone(),
            TraceSource::Bytes(b) => Clog2File::salvage_bytes(b).file,
            TraceSource::Mmap(ref m) => Clog2File::salvage_bytes(m).file,
            TraceSource::Reader(mut r) => {
                let mut bytes = Vec::new();
                r.read_to_end(&mut bytes)?;
                Clog2File::salvage_bytes(&bytes).file
            }
        };
        let mut table = build_categories(&clog.state_defs, &clog.event_defs);
        let terminal_cats = register_terminal_categories(&mut table, report);
        let mut shards = Vec::with_capacity(clog.blocks.len() + 1);
        for (&rank, records) in &clog.blocks {
            let input = [BlockInput::Records(rank, records.as_slice())];
            let mut scan = scan_sources(&input, &table, workers, obs)
                .pop()
                .expect("one block scanned");
            spill_scan(&mut scan, &mut rows, &mut eq)?;
            shards.push(scan);
        }
        let mut terminal = terminal_shard(&clog, report, &terminal_cats);
        spill_scan(&mut terminal, &mut rows, &mut eq)?;
        shards.push(terminal);
        let mut warnings = Vec::new();
        for s in &mut shards {
            warnings.append(&mut s.warnings);
        }
        return Ok(Prepared {
            table,
            shards,
            warnings,
            rows,
            eq,
            nranks: clog.nranks,
        });
    }

    let (table, mut shards, nranks) = match src {
        TraceSource::InMemory(clog) => {
            let table = build_categories(&clog.state_defs, &clog.event_defs);
            let mut shards = Vec::with_capacity(clog.blocks.len());
            for (&rank, records) in &clog.blocks {
                let input = [BlockInput::Records(rank, records.as_slice())];
                let mut scan = scan_sources(&input, &table, workers, obs)
                    .pop()
                    .expect("one block scanned");
                spill_scan(&mut scan, &mut rows, &mut eq)?;
                shards.push(scan);
            }
            (table, shards, clog.nranks)
        }
        TraceSource::Bytes(bytes) => scan_image(bytes, workers, obs, &mut rows, &mut eq)?,
        TraceSource::Mmap(ref map) => scan_image(map, workers, obs, &mut rows, &mut eq)?,
        TraceSource::Reader(r) => {
            let mut blocks = Clog2Blocks::open(r)?;
            let table = build_categories(&blocks.state_defs, &blocks.event_defs);
            let nranks = blocks.nranks;
            let mut by_rank: std::collections::BTreeMap<u32, RankScan> =
                std::collections::BTreeMap::new();
            for item in &mut blocks {
                let (rank, records) = item?;
                let input = [BlockInput::Records(rank, records.as_slice())];
                let mut scan = scan_sources(&input, &table, workers, obs)
                    .pop()
                    .expect("one block scanned");
                spill_scan(&mut scan, &mut rows, &mut eq)?;
                by_rank.insert(rank, scan);
            }
            blocks.finish()?;
            (table, by_rank.into_values().collect(), nranks)
        }
    };

    // Shard warnings flow into the global list in rank order — exactly
    // the in-memory merge.
    let mut warnings = Vec::new();
    for s in &mut shards {
        warnings.append(&mut s.warnings);
    }
    Ok(Prepared {
        table,
        shards,
        warnings,
        rows,
        eq,
        nranks,
    })
}

/// Pass A over a raw byte image (`Bytes` or `Mmap`): zero-copy scan,
/// one rank resident at a time.
fn scan_image(
    bytes: &[u8],
    workers: usize,
    obs: Option<&obs::Obs>,
    rows: &mut RowFile,
    eq: &mut ExtSorter,
) -> Result<(CategoryTable, Vec<RankScan>, u32), StreamError> {
    let image = Clog2File::parse_image(bytes, crate::scan::CHUNK_RECORDS)?;
    let table = build_categories(&image.state_defs, &image.event_defs);
    let mut shards = Vec::with_capacity(image.blocks.len());
    for b in &image.blocks {
        let input = [BlockInput::Image(b)];
        let mut scan = scan_sources(&input, &table, workers, obs)
            .pop()
            .expect("one block scanned");
        rows.spill_shard((0, scan.rank), &scan.cols, eq)?;
        scan.cols = DrawableColumns::new();
        shards.push(scan);
    }
    Ok((table, shards, image.nranks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::ConvertOptions;
    use crate::SalvageReport;
    use mpelog::{Color, Logger};

    fn tmp_dir() -> PathBuf {
        let d = std::env::temp_dir().join(format!("slog2-oocore-test-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    /// A messy multi-rank log exercising every drawable and warning
    /// path (mirrors the converter tests' generator).
    fn messy_clog(nranks: u32) -> Clog2File {
        let mut loggers: Vec<Logger> = (0..nranks as usize).map(Logger::new).collect();
        let mut ids = Vec::new();
        for lg in &mut loggers {
            let s = lg.define_state("compute", Color::GREEN);
            let t = lg.define_state("io", Color::RED);
            let _ = lg.define_event("mark", Color::YELLOW);
            if ids.is_empty() {
                ids = vec![s.0, s.1, t.0, t.1];
            }
        }
        let n = nranks as usize;
        for (r, lg) in loggers.iter_mut().enumerate() {
            let base = r as f64;
            // Nested states, one backward.
            lg.log_event(base + 0.1, ids[0], "outer");
            lg.log_event(base + 0.2, ids[2], "inner");
            lg.log_event(base + 0.15, ids[3], ""); // backward io
            lg.log_event(base + 0.9, ids[1], "");
            // Ring messages; rank 0 also sends one nobody receives.
            let dst = (r + 1) % n;
            lg.log_send(base + 0.3, dst, 7, 64);
            lg.log_receive(base + 0.35, (r + n - 1) % n, 7, 64);
            if r == 0 {
                lg.log_send(base + 0.4, dst, 9, 8); // unmatched send
                lg.log_receive(base + 0.5, dst, 11, 8); // unmatched recv
                lg.log_event(base + 0.6, ids[0], "never closed"); // unclosed
            }
            // Equal drawables: identical start/end pairs.
            lg.log_event(base + 0.7, ids[2], "");
            lg.log_event(base + 0.72, ids[3], "");
            lg.log_event(base + 0.7, ids[2], "");
            lg.log_event(base + 0.72, ids[3], "");
        }
        let mut blocks = std::collections::BTreeMap::new();
        for (r, lg) in loggers.iter().enumerate() {
            blocks.insert(r as u32, lg.records().to_vec());
        }
        Clog2File {
            nranks,
            state_defs: loggers[0].state_defs().to_vec(),
            event_defs: loggers[0].event_defs().to_vec(),
            blocks,
        }
    }

    fn in_memory_bytes(clog: &Clog2File, threads: usize) -> Vec<u8> {
        Converter::from_options(&ConvertOptions::default().with_parallelism(threads))
            .convert(TraceSource::InMemory(clog))
            .unwrap()
            .file
            .to_bytes()
    }

    #[test]
    fn out_of_core_matches_in_memory_bytes() {
        let clog = messy_clog(3);
        let want = in_memory_bytes(&clog, 1);
        for (threads, budget) in [(1, None), (2, Some(1)), (4, Some(64 << 10))] {
            let mut conv = Converter::new().parallelism(threads).spill_dir(tmp_dir());
            if let Some(b) = budget {
                conv = conv.memory_budget(b);
            }
            let dst = tmp_dir().join(format!("ooc-{threads}-{budget:?}.pslog2"));
            let summary = conv
                .convert_to_path(TraceSource::InMemory(&clog), &dst)
                .unwrap();
            let got = std::fs::read(&dst).unwrap();
            assert_eq!(got, want, "threads={threads} budget={budget:?}");
            assert_eq!(summary.bytes_written, want.len() as u64);
            assert_eq!(summary.digest, fnv1a(FNV_SEED, &want));
            assert!(summary.drawables > 0 && summary.nodes > 0);
        }
    }

    #[test]
    fn out_of_core_source_kinds_agree() {
        let clog = messy_clog(2);
        let bytes = clog.to_bytes();
        let want = in_memory_bytes(&clog, 1);
        let dir = tmp_dir();

        let conv = Converter::new()
            .parallelism(2)
            .memory_budget(1)
            .spill_dir(dir.clone());

        let d1 = dir.join("src-bytes.pslog2");
        conv.convert_to_path(TraceSource::Bytes(&bytes), &d1)
            .unwrap();
        assert_eq!(std::fs::read(&d1).unwrap(), want, "Bytes");

        let clog_path = dir.join("src.clog2");
        std::fs::write(&clog_path, &bytes).unwrap();
        let d2 = dir.join("src-mmap.pslog2");
        conv.convert_to_path(TraceSource::mmap(&clog_path).unwrap(), &d2)
            .unwrap();
        assert_eq!(std::fs::read(&d2).unwrap(), want, "Mmap");

        let d3 = dir.join("src-reader.pslog2");
        conv.convert_to_path(TraceSource::reader(&bytes[..]), &d3)
            .unwrap();
        assert_eq!(std::fs::read(&d3).unwrap(), want, "Reader");
    }

    #[test]
    fn out_of_core_salvage_matches_in_memory() {
        use crate::convert::{FailureKind, RankVerdict};
        let clog = messy_clog(2);
        let report = SalvageReport {
            verdicts: vec![RankVerdict {
                rank: 1,
                kind: FailureKind::Aborted,
                detail: "panicked at 'boom'".into(),
            }],
            diagnosis: Some("rank 1 aborted".into()),
            ..Default::default()
        };
        let want = Converter::new()
            .parallelism(1)
            .on_torn(TornPolicy::Salvage(report.clone()))
            .convert(TraceSource::InMemory(&clog))
            .unwrap()
            .file
            .to_bytes();
        let dst = tmp_dir().join("ooc-salvage.pslog2");
        Converter::new()
            .parallelism(2)
            .memory_budget(1)
            .spill_dir(tmp_dir())
            .on_torn(TornPolicy::Salvage(report))
            .convert_to_path(TraceSource::InMemory(&clog), &dst)
            .unwrap();
        assert_eq!(std::fs::read(&dst).unwrap(), want);
    }

    /// A large two-rank log (~`per_rank` drawables each) that overflows
    /// a 64 KiB sorter budget, forcing real spill runs.
    fn bulk_clog(per_rank: usize) -> Clog2File {
        let mut loggers: Vec<Logger> = (0..2).map(Logger::new).collect();
        let mut ids = Vec::new();
        for lg in &mut loggers {
            let s = lg.define_state("work", Color::GREEN);
            if ids.is_empty() {
                ids = vec![s.0, s.1];
            }
        }
        for (r, lg) in loggers.iter_mut().enumerate() {
            for k in 0..per_rank {
                let t = r as f64 * 0.0001 + k as f64 * 0.001;
                lg.log_event(t, ids[0], "");
                lg.log_event(t + 0.0005, ids[1], "");
            }
        }
        let mut blocks = std::collections::BTreeMap::new();
        for (r, lg) in loggers.iter().enumerate() {
            blocks.insert(r as u32, lg.records().to_vec());
        }
        Clog2File {
            nranks: 2,
            state_defs: loggers[0].state_defs().to_vec(),
            event_defs: loggers[0].event_defs().to_vec(),
            blocks,
        }
    }

    #[test]
    fn out_of_core_bulk_spill_matches_in_memory() {
        let clog = bulk_clog(2_000);
        let want = in_memory_bytes(&clog, 1);
        let dst = tmp_dir().join("ooc-bulk.pslog2");
        // Budget 1 clamps to 64 KiB per sorter: 4k rows of ~45 bytes
        // overflow it, so both sorters take the spill-and-merge path.
        let summary = Converter::new()
            .parallelism(4)
            .memory_budget(1)
            .spill_dir(tmp_dir())
            .convert_to_path(TraceSource::InMemory(&clog), &dst)
            .unwrap();
        assert_eq!(std::fs::read(&dst).unwrap(), want);
        assert_eq!(summary.drawables, 4_000);
    }

    #[test]
    fn out_of_core_empty_log_matches() {
        let clog = Clog2File {
            nranks: 2,
            state_defs: Vec::new(),
            event_defs: Vec::new(),
            blocks: std::collections::BTreeMap::new(),
        };
        let want = in_memory_bytes(&clog, 1);
        let dst = tmp_dir().join("ooc-empty.pslog2");
        let summary = Converter::new()
            .spill_dir(tmp_dir())
            .convert_to_path(TraceSource::InMemory(&clog), &dst)
            .unwrap();
        assert_eq!(std::fs::read(&dst).unwrap(), want);
        assert_eq!(summary.drawables, 0);
    }

    #[test]
    fn deep_tree_falls_back_to_in_memory() {
        let clog = messy_clog(2);
        let want = Converter::new()
            .max_depth(40)
            .parallelism(1)
            .convert(TraceSource::InMemory(&clog))
            .unwrap()
            .file
            .to_bytes();
        let dst = tmp_dir().join("ooc-deep.pslog2");
        let summary = Converter::new()
            .max_depth(40)
            .parallelism(1)
            .convert_to_path(TraceSource::InMemory(&clog), &dst)
            .unwrap();
        assert_eq!(std::fs::read(&dst).unwrap(), want);
        assert_eq!(summary.digest, fnv1a(FNV_SEED, &want));
    }

    #[test]
    fn ext_sorter_spills_and_merges_sorted() {
        let mut s = ExtSorter::new(1, Some(&tmp_dir()), "unit");
        // Budget is clamped to 64 KiB; push enough to force several runs.
        let mut want = Vec::new();
        for i in 0..20_000u32 {
            let key = (i.wrapping_mul(2_654_435_761)) ^ 0x5a5a;
            let rec = key.to_be_bytes().to_vec();
            want.push(rec.clone());
            s.push(rec).unwrap();
        }
        want.sort_unstable();
        let mut it = s.into_sorted().unwrap();
        let mut got = Vec::new();
        while let Some(r) = it.next_rec().unwrap() {
            got.push(r);
        }
        assert_eq!(got, want);
    }
}
