//! The SLOG-2 frame tree.
//!
//! SLOG-2's key idea is a binary tree over the time axis: each drawable
//! is stored in the *shallowest* node whose interval fully contains it,
//! so a viewer can service any zoom window by visiting only the nodes
//! that intersect it. The tunable the paper mentions ("frame size ...
//! the amount of data initially displayed") is our `capacity`: a node
//! splits when it would hold more drawables than that.
//!
//! Every node also carries a [`Preview`] — a per-category count/coverage
//! histogram aggregated over its whole subtree. Previews are what let
//! Jumpshot draw the striped "too dense to show individually" rectangles
//! of the paper's Fig. 1 without touching leaf data.

use crate::columnar::DrawableColumns;
use crate::drawable::Drawable;
use crate::id::CategoryId;
use crate::window::{Query, TimeWindow};

/// Per-category aggregate used for zoomed-out rendering.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Preview {
    /// `(category, instance count, summed duration)` sorted by category.
    pub entries: Vec<PreviewEntry>,
}

/// One category's share of a preview.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreviewEntry {
    /// Category index.
    pub category: CategoryId,
    /// Number of drawable instances.
    pub count: u64,
    /// Summed duration in seconds (0 for instantaneous events).
    pub coverage: f64,
}

impl Preview {
    /// Add one drawable's contribution.
    pub fn add(&mut self, category: CategoryId, duration: f64) {
        match self.entries.binary_search_by_key(&category, |e| e.category) {
            Ok(i) => {
                self.entries[i].count += 1;
                self.entries[i].coverage += duration;
            }
            Err(i) => self.entries.insert(
                i,
                PreviewEntry {
                    category,
                    count: 1,
                    coverage: duration,
                },
            ),
        }
    }

    /// Merge another preview into this one.
    pub fn merge(&mut self, other: &Preview) {
        for e in &other.entries {
            match self
                .entries
                .binary_search_by_key(&e.category, |x| x.category)
            {
                Ok(i) => {
                    self.entries[i].count += e.count;
                    self.entries[i].coverage += e.coverage;
                }
                Err(i) => self.entries.insert(i, *e),
            }
        }
    }

    /// Total instance count.
    pub fn total_count(&self) -> u64 {
        self.entries.iter().map(|e| e.count).sum()
    }

    /// Total coverage in seconds.
    pub fn total_coverage(&self) -> f64 {
        self.entries.iter().map(|e| e.coverage).sum()
    }
}

/// One node of the frame tree.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameNode {
    /// Interval start.
    pub t0: f64,
    /// Interval end.
    pub t1: f64,
    /// Depth (root = 0).
    pub depth: u32,
    /// Drawables stored at this node: fully inside `[t0, t1]` but
    /// straddling the midpoint (or the node is a leaf).
    pub drawables: Vec<Drawable>,
    /// Aggregate over this node's whole subtree (own + descendants).
    pub preview: Preview,
    /// Children halves, if split.
    pub children: Option<Box<(FrameNode, FrameNode)>>,
}

impl FrameNode {
    /// Is this a leaf?
    pub fn is_leaf(&self) -> bool {
        self.children.is_none()
    }
}

/// The tree plus its build parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameTree {
    /// Root node covering the full time range.
    pub root: FrameNode,
    /// Split threshold (max drawables a node may hold before splitting).
    pub capacity: usize,
    /// Depth limit.
    pub max_depth: u32,
}

/// Incremental bulk-loader for [`FrameTree`].
///
/// Accepts drawables in batches (e.g. one CLOG2 block at a time from the
/// streaming converter), tracking the global time range as it goes, and
/// builds the tree once at the end. Items are kept in arrival order, so
/// a builder fed the same drawables in the same order as
/// [`FrameTree::build`] produces a bit-identical tree.
#[derive(Debug, Clone, Default)]
pub struct FrameTreeBuilder {
    items: Vec<Drawable>,
    t0: f64,
    t1: f64,
}

impl FrameTreeBuilder {
    /// Empty builder.
    pub fn new() -> FrameTreeBuilder {
        FrameTreeBuilder {
            items: Vec::new(),
            t0: f64::INFINITY,
            t1: f64::NEG_INFINITY,
        }
    }

    /// Add one drawable.
    pub fn push(&mut self, d: Drawable) {
        self.t0 = self.t0.min(d.start());
        self.t1 = self.t1.max(d.end());
        self.items.push(d);
    }

    /// Add a batch of drawables, preserving their order.
    pub fn extend(&mut self, batch: impl IntoIterator<Item = Drawable>) {
        for d in batch {
            self.push(d);
        }
    }

    /// How many drawables are loaded.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Is the builder empty?
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The observed `[min start, max end]` range, or `[0, 0]` if empty.
    pub fn range(&self) -> TimeWindow {
        if self.t0.is_finite() {
            TimeWindow::new(self.t0, self.t1)
        } else {
            TimeWindow::new(0.0, 0.0)
        }
    }

    /// Build the tree over the observed range, using up to
    /// `parallelism` threads (`<= 1` builds serially).
    pub fn build(self, capacity: usize, max_depth: u32, parallelism: usize) -> FrameTree {
        let w = self.range();
        FrameTree::build_with_parallelism(self.items, w.t0, w.t1, capacity, max_depth, parallelism)
    }
}

impl FrameTree {
    /// Build a tree over `[t0, t1]` from `drawables`.
    ///
    /// Every drawable must satisfy `t0 <= start && end <= t1`; the
    /// converter guarantees this by using the log's global range.
    pub fn build(
        drawables: Vec<Drawable>,
        t0: f64,
        t1: f64,
        capacity: usize,
        max_depth: u32,
    ) -> FrameTree {
        Self::build_with_parallelism(drawables, t0, t1, capacity, max_depth, 1)
    }

    /// Like [`build`](Self::build), forking the subtree recursion onto
    /// up to `parallelism` scoped threads.
    ///
    /// The result is bit-identical to the serial build: every node's
    /// preview is accumulated from that node's own item list in item
    /// order, exactly as in the serial recursion — parallelism only
    /// changes *which thread* runs an independent subtree, never the
    /// order of any float accumulation.
    pub fn build_with_parallelism(
        drawables: Vec<Drawable>,
        t0: f64,
        t1: f64,
        capacity: usize,
        max_depth: u32,
        parallelism: usize,
    ) -> FrameTree {
        let capacity = capacity.max(1);
        // Each fork level doubles the worker count: budget = ceil(log2 n).
        let forks = parallelism.max(1).next_power_of_two().trailing_zeros();
        let root = build_node(drawables, t0, t1, 0, capacity, max_depth, forks);
        FrameTree {
            root,
            capacity,
            max_depth,
        }
    }

    /// Build a tree directly from columnar drawable storage.
    ///
    /// The recursion partitions `u32` index vectors instead of moving
    /// 80-byte `Drawable` values, and only materializes enum rows once,
    /// at the node that finally owns them. The resulting tree is
    /// bit-identical to [`build_with_parallelism`] over
    /// `cols.to_drawable(0..len)` — pinned by a unit test below.
    pub(crate) fn build_columnar(
        cols: &DrawableColumns,
        t0: f64,
        t1: f64,
        capacity: usize,
        max_depth: u32,
        parallelism: usize,
    ) -> FrameTree {
        let capacity = capacity.max(1);
        let forks = parallelism.max(1).next_power_of_two().trailing_zeros();
        let idx: Vec<u32> = (0..cols.len() as u32).collect();
        let root = build_node_cols(cols, idx, t0, t1, 0, capacity, max_depth, forks);
        FrameTree {
            root,
            capacity,
            max_depth,
        }
    }

    /// All drawables overlapping the closed window `w`.
    pub fn query(&self, w: TimeWindow) -> Vec<&Drawable> {
        self.drawables_in(w)
    }

    /// Exact per-category coverage *clipped to* the window `w`.
    /// Used by the renderer to draw proportional preview stripes.
    pub fn window_preview(&self, w: TimeWindow) -> Preview {
        self.preview_in(w)
    }

    /// Visit every node, parents before children.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a FrameNode)) {
        visit_node(&self.root, f)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Deepest node depth.
    pub fn depth(&self) -> u32 {
        let mut d = 0;
        self.visit(&mut |n| d = d.max(n.depth));
        d
    }

    /// Total drawables stored in the tree.
    pub fn total_drawables(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |node| n += node.drawables.len());
        n
    }
}

fn build_node(
    items: Vec<Drawable>,
    t0: f64,
    t1: f64,
    depth: u32,
    capacity: usize,
    max_depth: u32,
    forks: u32,
) -> FrameNode {
    // The preview over the whole subtree is accumulated here, top-down,
    // from this node's full item list in item order. Keeping that exact
    // accumulation (instead of merging child previews bottom-up) is what
    // makes the forked build byte-identical to the serial one: f64
    // summation is association-sensitive, so the merge order must not
    // depend on how the recursion is scheduled.
    let mut preview = Preview::default();
    for d in &items {
        preview.add(d.category(), d.duration());
    }

    let splittable = items.len() > capacity && depth < max_depth && t1 > t0;
    if !splittable {
        return FrameNode {
            t0,
            t1,
            depth,
            drawables: items,
            preview,
            children: None,
        };
    }

    let mid = t0 + (t1 - t0) / 2.0;
    let mut here = Vec::new();
    let mut left = Vec::new();
    let mut right = Vec::new();
    for d in items {
        if d.end() <= mid {
            left.push(d);
        } else if d.start() >= mid {
            right.push(d);
        } else {
            here.push(d);
        }
    }
    if left.is_empty() && right.is_empty() {
        // Everything straddles the midpoint; splitting gains nothing.
        return FrameNode {
            t0,
            t1,
            depth,
            drawables: here,
            preview,
            children: None,
        };
    }
    // Fork the right subtree onto a scoped worker while this thread
    // recurses left; tiny subtrees are not worth a thread spawn.
    const FORK_THRESHOLD: usize = 4096;
    let (lchild, rchild) = if forks > 0 && left.len().min(right.len()) >= FORK_THRESHOLD {
        std::thread::scope(|s| {
            let rh =
                s.spawn(|| build_node(right, mid, t1, depth + 1, capacity, max_depth, forks - 1));
            let l = build_node(left, t0, mid, depth + 1, capacity, max_depth, forks - 1);
            (l, rh.join().expect("tree build worker panicked"))
        })
    } else {
        // Sequential children: left's forked workers (if any) are joined
        // before right starts, so the budget can pass down unchanged
        // without exceeding the concurrency cap.
        (
            build_node(left, t0, mid, depth + 1, capacity, max_depth, forks),
            build_node(right, mid, t1, depth + 1, capacity, max_depth, forks),
        )
    };
    FrameNode {
        t0,
        t1,
        depth,
        drawables: here,
        preview,
        children: Some(Box::new((lchild, rchild))),
    }
}

#[allow(clippy::too_many_arguments)] // mirrors build_node, plus the column store
fn build_node_cols(
    cols: &DrawableColumns,
    items: Vec<u32>,
    t0: f64,
    t1: f64,
    depth: u32,
    capacity: usize,
    max_depth: u32,
    forks: u32,
) -> FrameNode {
    // Same top-down, in-order preview accumulation as `build_node`; see
    // the comment there for why this ordering is load-bearing.
    let mut preview = Preview::default();
    for &i in &items {
        preview.add(cols.category(i as usize), cols.duration(i as usize));
    }

    let splittable = items.len() > capacity && depth < max_depth && t1 > t0;
    if !splittable {
        return FrameNode {
            t0,
            t1,
            depth,
            drawables: materialize(cols, &items),
            preview,
            children: None,
        };
    }

    let mid = t0 + (t1 - t0) / 2.0;
    let mut here = Vec::new();
    let mut left = Vec::new();
    let mut right = Vec::new();
    for i in items {
        let (s, e) = (cols.start(i as usize), cols.end(i as usize));
        if e <= mid {
            left.push(i);
        } else if s >= mid {
            right.push(i);
        } else {
            here.push(i);
        }
    }
    if left.is_empty() && right.is_empty() {
        return FrameNode {
            t0,
            t1,
            depth,
            drawables: materialize(cols, &here),
            preview,
            children: None,
        };
    }
    const FORK_THRESHOLD: usize = 4096;
    let (lchild, rchild) = if forks > 0 && left.len().min(right.len()) >= FORK_THRESHOLD {
        std::thread::scope(|s| {
            let rh = s.spawn(|| {
                build_node_cols(
                    cols,
                    right,
                    mid,
                    t1,
                    depth + 1,
                    capacity,
                    max_depth,
                    forks - 1,
                )
            });
            let l = build_node_cols(
                cols,
                left,
                t0,
                mid,
                depth + 1,
                capacity,
                max_depth,
                forks - 1,
            );
            (l, rh.join().expect("tree build worker panicked"))
        })
    } else {
        (
            build_node_cols(cols, left, t0, mid, depth + 1, capacity, max_depth, forks),
            build_node_cols(cols, right, mid, t1, depth + 1, capacity, max_depth, forks),
        )
    };
    FrameNode {
        t0,
        t1,
        depth,
        drawables: materialize(cols, &here),
        preview,
        children: Some(Box::new((lchild, rchild))),
    }
}

fn materialize(cols: &DrawableColumns, idx: &[u32]) -> Vec<Drawable> {
    idx.iter().map(|&i| cols.to_drawable(i as usize)).collect()
}

impl Query for FrameTree {
    fn drawables_in(&self, w: TimeWindow) -> Vec<&Drawable> {
        let mut out = Vec::new();
        query_node(&self.root, w, &mut out);
        out
    }

    fn preview_in(&self, w: TimeWindow) -> Preview {
        let mut p = Preview::default();
        window_preview_node(&self.root, w, &mut p);
        p
    }
}

fn query_node<'a>(node: &'a FrameNode, w: TimeWindow, out: &mut Vec<&'a Drawable>) {
    if node.t0 > w.t1 || node.t1 < w.t0 {
        return;
    }
    for d in &node.drawables {
        if w.overlaps(d) {
            out.push(d);
        }
    }
    if let Some(ch) = &node.children {
        query_node(&ch.0, w, out);
        query_node(&ch.1, w, out);
    }
}

fn window_preview_node(node: &FrameNode, w: TimeWindow, acc: &mut Preview) {
    if node.t0 > w.t1 || node.t1 < w.t0 {
        return;
    }
    if w.contains_window(TimeWindow::new(node.t0, node.t1)) {
        // Entire subtree inside the window: use the precomputed aggregate.
        acc.merge(&node.preview);
        return;
    }
    for d in &node.drawables {
        if w.overlaps(d) {
            acc.add(d.category(), w.clip_span(d.start(), d.end()));
        }
    }
    if let Some(ch) = &node.children {
        window_preview_node(&ch.0, w, acc);
        window_preview_node(&ch.1, w, acc);
    }
}

fn visit_node<'a>(node: &'a FrameNode, f: &mut impl FnMut(&'a FrameNode)) {
    f(node);
    if let Some(ch) = &node.children {
        visit_node(&ch.0, f);
        visit_node(&ch.1, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drawable::{EventDrawable, StateDrawable};
    use crate::id::TimelineId;

    fn state(cat: u32, start: f64, end: f64) -> Drawable {
        Drawable::State(StateDrawable {
            category: CategoryId(cat),
            timeline: TimelineId(0),
            start,
            end,
            nest_level: 0,
            text: String::new(),
        })
    }

    fn event(cat: u32, t: f64) -> Drawable {
        Drawable::Event(EventDrawable {
            category: CategoryId(cat),
            timeline: TimelineId(0),
            time: t,
            text: String::new(),
        })
    }

    #[test]
    fn small_input_stays_a_leaf() {
        let t = FrameTree::build(vec![state(0, 0.0, 1.0)], 0.0, 10.0, 8, 10);
        assert!(t.root.is_leaf());
        assert_eq!(t.total_drawables(), 1);
    }

    #[test]
    fn large_input_splits() {
        let ds: Vec<_> = (0..100).map(|i| event(0, i as f64 / 10.0)).collect();
        let t = FrameTree::build(ds, 0.0, 10.0, 8, 16);
        assert!(!t.root.is_leaf());
        assert_eq!(t.total_drawables(), 100);
        assert!(t.depth() >= 2);
    }

    #[test]
    fn straddlers_stay_at_parent() {
        // One long state across the midpoint plus many short ones.
        let mut ds = vec![state(0, 1.0, 9.0)];
        ds.extend((0..20).map(|i| event(1, i as f64 / 4.0)));
        let t = FrameTree::build(ds, 0.0, 10.0, 4, 8);
        assert!(t
            .root
            .drawables
            .iter()
            .any(|d| matches!(d, Drawable::State(s) if s.start == 1.0 && s.end == 9.0)));
    }

    #[test]
    fn query_returns_exactly_intersecting() {
        let ds = vec![
            state(0, 0.0, 1.0),
            state(0, 2.0, 3.0),
            state(0, 4.0, 5.0),
            event(1, 2.5),
        ];
        let t = FrameTree::build(ds, 0.0, 5.0, 2, 8);
        let hits = t.query(TimeWindow::new(2.0, 3.0));
        assert_eq!(hits.len(), 2);
        let hits = t.query(TimeWindow::new(1.5, 1.9));
        assert!(hits.is_empty());
        let hits = t.query(TimeWindow::new(0.0, 5.0));
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn node_intervals_contain_their_drawables() {
        let ds: Vec<_> = (0..200)
            .map(|i| state(0, i as f64 * 0.05, i as f64 * 0.05 + 0.04))
            .collect();
        let t = FrameTree::build(ds, 0.0, 10.0, 4, 12);
        t.visit(&mut |n| {
            for d in &n.drawables {
                assert!(
                    n.t0 <= d.start() && d.end() <= n.t1,
                    "node [{}, {}] holds drawable [{}, {}]",
                    n.t0,
                    n.t1,
                    d.start(),
                    d.end()
                );
            }
        });
    }

    #[test]
    fn children_partition_parent_interval() {
        let ds: Vec<_> = (0..100).map(|i| event(0, i as f64 * 0.1)).collect();
        let t = FrameTree::build(ds, 0.0, 10.0, 4, 12);
        t.visit(&mut |n| {
            if let Some(ch) = &n.children {
                assert_eq!(ch.0.t0, n.t0);
                assert_eq!(ch.0.t1, ch.1.t0);
                assert_eq!(ch.1.t1, n.t1);
                assert_eq!(ch.0.depth, n.depth + 1);
            }
        });
    }

    #[test]
    fn preview_counts_match_subtree() {
        let ds: Vec<_> = (0..50)
            .map(|i| state(i % 3, i as f64 * 0.2, i as f64 * 0.2 + 0.1))
            .collect();
        let t = FrameTree::build(ds.clone(), 0.0, 10.1, 4, 10);
        assert_eq!(t.root.preview.total_count(), 50);
        for cat in (0..3u32).map(CategoryId) {
            let want = ds.iter().filter(|d| d.category() == cat).count() as u64;
            let got = t
                .root
                .preview
                .entries
                .iter()
                .find(|e| e.category == cat)
                .map(|e| e.count)
                .unwrap_or(0);
            assert_eq!(got, want, "category {cat}");
        }
    }

    #[test]
    fn window_preview_clips_durations() {
        let ds = vec![state(0, 0.0, 4.0)];
        let t = FrameTree::build(ds, 0.0, 4.0, 8, 4);
        let p = t.window_preview(TimeWindow::new(1.0, 2.0));
        assert_eq!(p.entries.len(), 1);
        assert!((p.entries[0].coverage - 1.0).abs() < 1e-12);
    }

    #[test]
    fn window_preview_full_range_equals_root_preview() {
        let ds: Vec<_> = (0..30)
            .map(|i| state(i % 2, i as f64 * 0.3, i as f64 * 0.3 + 0.2))
            .collect();
        let t = FrameTree::build(ds, 0.0, 10.0, 4, 10);
        let p = t.window_preview(TimeWindow::new(0.0, 10.0));
        assert_eq!(p, t.root.preview);
    }

    #[test]
    fn degenerate_range_is_fine() {
        // All drawables at one instant — t0 == t1.
        let ds: Vec<_> = (0..10).map(|_| event(0, 5.0)).collect();
        let t = FrameTree::build(ds, 5.0, 5.0, 2, 8);
        assert_eq!(t.total_drawables(), 10);
        assert_eq!(t.query(TimeWindow::new(5.0, 5.0)).len(), 10);
    }

    #[test]
    fn capacity_zero_clamped_to_one() {
        let ds: Vec<_> = (0..4).map(|i| event(0, i as f64)).collect();
        let t = FrameTree::build(ds, 0.0, 3.0, 0, 8);
        assert_eq!(t.capacity, 1);
        assert_eq!(t.total_drawables(), 4);
    }

    /// A drawable set big enough (> 2 × FORK_THRESHOLD per side) that a
    /// parallel build actually forks at the root.
    fn forking_input() -> Vec<Drawable> {
        (0..20_000)
            .map(|i| state(i % 5, i as f64 * 1e-3, i as f64 * 1e-3 + 7e-4))
            .collect()
    }

    #[test]
    fn parallel_build_is_identical_to_serial() {
        let ds = forking_input();
        let serial = FrameTree::build(ds.clone(), 0.0, 20.1, 64, 16);
        for threads in [2, 3, 4, 8] {
            let par = FrameTree::build_with_parallelism(ds.clone(), 0.0, 20.1, 64, 16, threads);
            assert_eq!(par, serial, "{threads} threads");
        }
    }

    #[test]
    fn columnar_build_is_identical_to_enum_build() {
        use crate::drawable::ArrowDrawable;
        let mut ds = forking_input();
        // Mix in events, arrows (including a backward one), and texts so
        // every column participates.
        ds.push(event(7, 3.3));
        ds.push(Drawable::Arrow(ArrowDrawable {
            category: CategoryId(9),
            from_timeline: TimelineId(1),
            to_timeline: TimelineId(2),
            start: 2.0,
            end: 2.5,
            tag: 4,
            size: 16,
        }));
        ds.push(Drawable::Arrow(ArrowDrawable {
            category: CategoryId(9),
            from_timeline: TimelineId(2),
            to_timeline: TimelineId(0),
            start: 6.0,
            end: 5.0, // backward: raw start > raw end
            tag: 5,
            size: 8,
        }));
        ds.push(Drawable::State(StateDrawable {
            category: CategoryId(1),
            timeline: TimelineId(3),
            start: 0.5,
            end: 9.5,
            nest_level: 2,
            text: "Line: 42 | Line: 43".into(),
        }));
        let mut cols = DrawableColumns::new();
        for d in &ds {
            cols.push(d);
        }
        for threads in [1, 4] {
            let reference =
                FrameTree::build_with_parallelism(ds.clone(), 0.0, 20.1, 64, 16, threads);
            let columnar = FrameTree::build_columnar(&cols, 0.0, 20.1, 64, 16, threads);
            assert_eq!(columnar, reference, "{threads} threads");
        }
    }

    #[test]
    fn builder_matches_direct_build() {
        let ds = forking_input();
        let (mut t0, mut t1) = (f64::INFINITY, f64::NEG_INFINITY);
        for d in &ds {
            t0 = t0.min(d.start());
            t1 = t1.max(d.end());
        }
        let direct = FrameTree::build(ds.clone(), t0, t1, 32, 12);

        // Feed the builder in uneven batches, as a streaming source would.
        let mut b = FrameTreeBuilder::new();
        let mut rest = ds;
        let mut batch = 1;
        while !rest.is_empty() {
            let take = batch.min(rest.len());
            b.extend(rest.drain(..take));
            batch = batch * 3 + 1;
        }
        assert_eq!(b.len(), direct.total_drawables());
        assert_eq!(b.range(), TimeWindow::new(t0, t1));
        assert_eq!(b.build(32, 12, 4), direct);
    }

    #[test]
    fn empty_builder_builds_empty_tree() {
        let b = FrameTreeBuilder::new();
        assert!(b.is_empty());
        assert_eq!(b.range(), TimeWindow::new(0.0, 0.0));
        let t = b.build(8, 4, 2);
        assert_eq!(t.total_drawables(), 0);
        assert_eq!(t, FrameTree::build(vec![], 0.0, 0.0, 8, 4));
    }
}
