//! The one error type for loading and validating SLOG-2 files.
//!
//! `Slog2File::read_from` used to return the nested
//! `std::io::Result<Result<Slog2File, WireError>>`, forcing every call
//! site into a three-arm match (and making `?` unusable). All load
//! paths now return [`Slog2Error`], which also carries the validation
//! failure case so a server can insist on a defect-free file with one
//! `?`.

use std::fmt;

use mpelog::wire::WireError;

use crate::validate::Defect;

/// Everything that can go wrong loading a `.pslog2` file.
#[derive(Debug)]
pub enum Slog2Error {
    /// The file could not be read from disk.
    Io(std::io::Error),
    /// The bytes are not a valid SLOG-2 image (bad magic, truncation,
    /// corrupt counts, …).
    Wire(WireError),
    /// The file parsed but failed semantic validation
    /// ([`validate`](crate::validate::validate) found defects).
    Validate(Vec<Defect>),
}

impl fmt::Display for Slog2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Slog2Error::Io(e) => write!(f, "i/o error: {e}"),
            Slog2Error::Wire(e) => write!(f, "malformed SLOG-2 data: {e}"),
            Slog2Error::Validate(defects) => {
                write!(f, "file failed validation with {} defect(s)", defects.len())?;
                if let Some(first) = defects.first() {
                    write!(f, "; first: {first:?}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for Slog2Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Slog2Error::Io(e) => Some(e),
            Slog2Error::Wire(e) => Some(e),
            Slog2Error::Validate(_) => None,
        }
    }
}

impl From<std::io::Error> for Slog2Error {
    fn from(e: std::io::Error) -> Slog2Error {
        Slog2Error::Io(e)
    }
}

impl From<WireError> for Slog2Error {
    fn from(e: WireError) -> Slog2Error {
        Slog2Error::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let io: Slog2Error = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(io.to_string().contains("gone"));
        let wire: Slog2Error = WireError::BadMagic("ff".into()).into();
        assert!(wire.to_string().contains("malformed"));
        let val = Slog2Error::Validate(vec![Defect::DuplicateCategoryIndex {
            category: crate::id::CategoryId(3),
        }]);
        assert!(val.to_string().contains("1 defect"));
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let io: Slog2Error = std::io::Error::other("x").into();
        assert!(io.source().is_some());
        assert!(Slog2Error::Validate(vec![]).source().is_none());
    }
}
