//! Typed identifiers for timelines and categories.
//!
//! Every layer of the stack used to pass bare `u32`s for both timeline
//! (rank) and category indices, and nothing but naming conventions kept
//! a category index from being handed to a timeline parameter. The
//! newtypes here make that confusion a type error while staying
//! wire-compatible: both encode as the same little-endian `u32` the
//! SLOG-2 container always used.
//!
//! [`WellKnownCategory`] + [`CategoryMap`] replace the scattered
//! stringly `category_by_name("Compute")` lookups: the map is resolved
//! once per file and every analysis asks it with an enum variant, so a
//! typo'd category name is impossible and the lookup is O(1).

use std::fmt;

/// A timeline (process rank) index into [`Slog2File::timelines`].
///
/// [`Slog2File::timelines`]: crate::Slog2File::timelines
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimelineId(pub u32);

/// A category index into [`Slog2File::categories`].
///
/// [`Slog2File::categories`]: crate::Slog2File::categories
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CategoryId(pub u32);

macro_rules! id_impls {
    ($t:ident) => {
        impl $t {
            /// The raw wire value.
            pub const fn as_u32(self) -> u32 {
                self.0
            }

            /// The value as a table index.
            pub const fn as_usize(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $t {
            fn from(v: u32) -> $t {
                $t(v)
            }
        }

        impl From<$t> for u32 {
            fn from(v: $t) -> u32 {
                v.0
            }
        }

        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                self.0.fmt(f)
            }
        }
    };
}

id_impls!(TimelineId);
id_impls!(CategoryId);

/// The category names this workspace's tooling knows by heart: the
/// Pilot instrumentation states, the converter's synthetic arrow
/// category, and the salvage converter's terminal verdicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WellKnownCategory {
    /// The gray computation state.
    Compute,
    /// Blocking channel read (`PI_Read`).
    PiRead,
    /// Channel write (`PI_Write`).
    PiWrite,
    /// Blocking select over channels (`PI_Select`).
    PiSelect,
    /// The "msg arrival" bubble the instrumentation logs at a receive.
    MsgArrival,
    /// The converter's synthetic arrow category.
    Message,
    /// Terminal state drawn on a rank that panicked or was aborted.
    Aborted,
    /// Terminal state drawn on a rank the deadlock detector convicted.
    Deadlocked,
}

impl WellKnownCategory {
    /// Every variant, in [`CategoryMap`] slot order.
    pub const ALL: [WellKnownCategory; 8] = [
        WellKnownCategory::Compute,
        WellKnownCategory::PiRead,
        WellKnownCategory::PiWrite,
        WellKnownCategory::PiSelect,
        WellKnownCategory::MsgArrival,
        WellKnownCategory::Message,
        WellKnownCategory::Aborted,
        WellKnownCategory::Deadlocked,
    ];

    /// The display name as the converter writes it into the legend.
    pub const fn name(self) -> &'static str {
        match self {
            WellKnownCategory::Compute => "Compute",
            WellKnownCategory::PiRead => "PI_Read",
            WellKnownCategory::PiWrite => "PI_Write",
            WellKnownCategory::PiSelect => "PI_Select",
            WellKnownCategory::MsgArrival => "msg arrival",
            WellKnownCategory::Message => "message",
            WellKnownCategory::Aborted => "ABORTED",
            WellKnownCategory::Deadlocked => "DEADLOCKED",
        }
    }

    const fn slot(self) -> usize {
        match self {
            WellKnownCategory::Compute => 0,
            WellKnownCategory::PiRead => 1,
            WellKnownCategory::PiWrite => 2,
            WellKnownCategory::PiSelect => 3,
            WellKnownCategory::MsgArrival => 4,
            WellKnownCategory::Message => 5,
            WellKnownCategory::Aborted => 6,
            WellKnownCategory::Deadlocked => 7,
        }
    }
}

impl fmt::Display for WellKnownCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The well-known categories of one file, resolved once at load time.
///
/// A file is free to define any subset of the well-known names (a
/// non-Pilot log might define none), so every accessor returns an
/// `Option`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CategoryMap {
    ids: [Option<CategoryId>; 8],
}

impl CategoryMap {
    /// Resolve every well-known name against `file`'s category table.
    pub fn resolve(file: &crate::Slog2File) -> CategoryMap {
        let mut ids = [None; 8];
        for c in &file.categories {
            for w in WellKnownCategory::ALL {
                if c.name == w.name() {
                    // First definition wins, matching category_by_name.
                    let slot = &mut ids[w.slot()];
                    if slot.is_none() {
                        *slot = Some(c.index);
                    }
                }
            }
        }
        CategoryMap { ids }
    }

    /// The category id carrying this well-known name, if the file
    /// defines it.
    pub fn id(&self, w: WellKnownCategory) -> Option<CategoryId> {
        self.ids[w.slot()]
    }

    /// Does `cat` carry this well-known name?
    pub fn is(&self, cat: CategoryId, w: WellKnownCategory) -> bool {
        self.id(w) == Some(cat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drawable::{Category, CategoryKind};
    use crate::file::Slog2File;
    use crate::tree::FrameTree;
    use crate::window::TimeWindow;
    use mpelog::Color;

    #[test]
    fn ids_are_ordered_and_displayable() {
        assert!(TimelineId(1) < TimelineId(2));
        assert_eq!(CategoryId(7).to_string(), "7");
        assert_eq!(CategoryId::from(3u32).as_usize(), 3);
        assert_eq!(u32::from(TimelineId(9)), 9);
    }

    #[test]
    fn category_map_resolves_known_names() {
        let categories = vec![
            Category {
                index: CategoryId(0),
                name: "Compute".into(),
                color: Color::GRAY,
                kind: CategoryKind::State,
            },
            Category {
                index: CategoryId(1),
                name: "PI_Read".into(),
                color: Color::RED,
                kind: CategoryKind::State,
            },
            Category {
                index: CategoryId(2),
                name: "custom".into(),
                color: Color::GREEN,
                kind: CategoryKind::State,
            },
            Category {
                index: CategoryId(3),
                name: "message".into(),
                color: Color::WHITE,
                kind: CategoryKind::Arrow,
            },
        ];
        let file = Slog2File {
            timelines: vec!["PI_MAIN".into()],
            categories,
            range: TimeWindow::new(0.0, 1.0),
            warnings: vec![],
            tree: FrameTree::build(vec![], 0.0, 1.0, 8, 4),
        };
        let map = CategoryMap::resolve(&file);
        assert_eq!(map.id(WellKnownCategory::Compute), Some(CategoryId(0)));
        assert_eq!(map.id(WellKnownCategory::PiRead), Some(CategoryId(1)));
        assert_eq!(map.id(WellKnownCategory::Message), Some(CategoryId(3)));
        assert_eq!(map.id(WellKnownCategory::PiWrite), None);
        assert_eq!(map.id(WellKnownCategory::Aborted), None);
        assert!(map.is(CategoryId(0), WellKnownCategory::Compute));
        assert!(!map.is(CategoryId(2), WellKnownCategory::Compute));
    }

    #[test]
    fn every_variant_has_a_distinct_slot_and_name() {
        let mut names = std::collections::HashSet::new();
        let mut slots = std::collections::HashSet::new();
        for w in WellKnownCategory::ALL {
            assert!(names.insert(w.name()));
            assert!(slots.insert(w.slot()));
            assert_eq!(w.to_string(), w.name());
        }
    }
}
