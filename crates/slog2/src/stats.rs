//! Legend statistics: the numbers Jumpshot's legend table shows.
//!
//! For each category the paper describes three statistics: a **count**
//! of instances, an **inclusive** duration (sum of all its rectangles'
//! widths), and an **exclusive** duration — inclusive minus any states
//! nested inside, i.e. the time spent *purely* in the state and not in
//! substates. The paper notes these are "potentially useful for
//! performance purposes in the absence of special-purpose profiling
//! tools"; our overhead harness uses them exactly that way.

use std::collections::BTreeMap;

use crate::drawable::Drawable;
use crate::file::Slog2File;
use crate::id::{CategoryId, TimelineId};
use crate::window::{Query, TimeWindow};

/// Per-category aggregate statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CategoryStats {
    /// Number of drawable instances.
    pub count: u64,
    /// Summed duration of instances (seconds).
    pub inclusive: f64,
    /// Inclusive minus time spent in nested states (seconds).
    /// Equals `inclusive` for events and arrows.
    pub exclusive: f64,
}

/// Compute legend statistics for every category in the file.
///
/// Returns a map keyed by category index; categories with no instances
/// get a zeroed entry.
pub fn legend_stats(file: &Slog2File) -> BTreeMap<CategoryId, CategoryStats> {
    let mut stats: BTreeMap<CategoryId, CategoryStats> = BTreeMap::new();
    for c in &file.categories {
        stats.insert(c.index, CategoryStats::default());
    }

    let drawables = file.drawables_in(TimeWindow::ALL);

    // Group states per timeline for the exclusive-time sweep.
    let mut per_timeline: BTreeMap<TimelineId, Vec<&crate::drawable::StateDrawable>> =
        BTreeMap::new();
    for d in &drawables {
        let entry = stats.entry(d.category()).or_default();
        entry.count += 1;
        entry.inclusive += d.duration();
        match d {
            Drawable::State(s) => per_timeline.entry(s.timeline).or_default().push(s),
            Drawable::Event(_) | Drawable::Arrow(_) => {
                entry.exclusive += d.duration();
            }
        }
    }

    // Exclusive time for states: duration minus the durations of states
    // *directly* nested inside. A stack sweep over (start asc, end desc)
    // order reconstructs the nesting.
    for states in per_timeline.values_mut() {
        states.sort_by(|a, b| {
            a.start
                .total_cmp(&b.start)
                .then(b.end.total_cmp(&a.end))
                // Equal intervals: deeper nest level is the inner state.
                .then(a.nest_level.cmp(&b.nest_level))
        });
        // (category, end, own_exclusive_so_far)
        let mut stack: Vec<(CategoryId, f64, f64)> = Vec::new();
        for s in states.iter() {
            while let Some(&(cat, end, excl)) = stack.last() {
                if end <= s.start {
                    stack.pop();
                    stats.entry(cat).or_default().exclusive += excl;
                } else {
                    break;
                }
            }
            if let Some(parent) = stack.last_mut() {
                parent.2 -= s.end - s.start;
            }
            stack.push((s.category, s.end, s.end - s.start));
        }
        for (cat, _, excl) in stack {
            stats.entry(cat).or_default().exclusive += excl;
        }
    }

    stats
}

/// Per-timeline totals used by the debugging analyses (Figs. 4 and 5):
/// how much of a timeline's span is covered by states of a given
/// category.
pub fn timeline_category_time(file: &Slog2File, category: CategoryId) -> BTreeMap<TimelineId, f64> {
    let mut out = BTreeMap::new();
    for d in file.drawables_in(TimeWindow::ALL) {
        if let Drawable::State(s) = d {
            if s.category == category {
                *out.entry(s.timeline).or_insert(0.0) += s.end - s.start;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drawable::{Category, CategoryKind, EventDrawable, StateDrawable};
    use crate::tree::FrameTree;
    use mpelog::Color;

    fn state(cat: u32, tl: u32, start: f64, end: f64, nest: u32) -> Drawable {
        Drawable::State(StateDrawable {
            category: CategoryId(cat),
            timeline: TimelineId(tl),
            start,
            end,
            nest_level: nest,
            text: String::new(),
        })
    }

    fn file_with(drawables: Vec<Drawable>, ncat: u32) -> Slog2File {
        let categories = (0..ncat)
            .map(|i| Category {
                index: CategoryId(i),
                name: format!("cat{i}"),
                color: Color::GRAY,
                kind: CategoryKind::State,
            })
            .collect();
        let (mut t0, mut t1) = (0.0f64, 0.0f64);
        for d in &drawables {
            t0 = t0.min(d.start());
            t1 = t1.max(d.end());
        }
        Slog2File {
            timelines: vec!["P0".into(), "P1".into()],
            categories,
            range: TimeWindow::new(t0, t1),
            warnings: vec![],
            tree: FrameTree::build(drawables, t0, t1, 16, 8),
        }
    }

    #[test]
    fn flat_states_have_exclusive_equal_inclusive() {
        let f = file_with(vec![state(0, 0, 1.0, 2.0, 0), state(0, 0, 3.0, 5.0, 0)], 1);
        let s = legend_stats(&f)[&CategoryId(0)];
        assert_eq!(s.count, 2);
        assert!((s.inclusive - 3.0).abs() < 1e-12);
        assert!((s.exclusive - 3.0).abs() < 1e-12);
    }

    #[test]
    fn nested_state_subtracts_from_parent_exclusive() {
        // A [0,10] contains B [2,5]: A excl = 7, B excl = 3.
        let f = file_with(vec![state(0, 0, 0.0, 10.0, 0), state(1, 0, 2.0, 5.0, 1)], 2);
        let stats = legend_stats(&f);
        assert!((stats[&CategoryId(0)].inclusive - 10.0).abs() < 1e-12);
        assert!((stats[&CategoryId(0)].exclusive - 7.0).abs() < 1e-12);
        assert!((stats[&CategoryId(1)].inclusive - 3.0).abs() < 1e-12);
        assert!((stats[&CategoryId(1)].exclusive - 3.0).abs() < 1e-12);
    }

    #[test]
    fn doubly_nested_subtracts_only_direct_children() {
        // A [0,10] > B [1,9] > C [2,3]. A excl = 10-8=2, B excl = 8-1=7.
        let f = file_with(
            vec![
                state(0, 0, 0.0, 10.0, 0),
                state(1, 0, 1.0, 9.0, 1),
                state(2, 0, 2.0, 3.0, 2),
            ],
            3,
        );
        let stats = legend_stats(&f);
        assert!((stats[&CategoryId(0)].exclusive - 2.0).abs() < 1e-12);
        assert!((stats[&CategoryId(1)].exclusive - 7.0).abs() < 1e-12);
        assert!((stats[&CategoryId(2)].exclusive - 1.0).abs() < 1e-12);
    }

    #[test]
    fn siblings_both_subtract_from_parent() {
        // A [0,10] contains B [1,3] and B [5,8]: A excl = 10-2-3 = 5.
        let f = file_with(
            vec![
                state(0, 0, 0.0, 10.0, 0),
                state(1, 0, 1.0, 3.0, 1),
                state(1, 0, 5.0, 8.0, 1),
            ],
            2,
        );
        let stats = legend_stats(&f);
        assert!((stats[&CategoryId(0)].exclusive - 5.0).abs() < 1e-12);
        assert!((stats[&CategoryId(1)].exclusive - 5.0).abs() < 1e-12);
    }

    #[test]
    fn timelines_do_not_interfere() {
        // Overlapping intervals on *different* timelines are not nested.
        let f = file_with(vec![state(0, 0, 0.0, 10.0, 0), state(1, 1, 2.0, 5.0, 0)], 2);
        let stats = legend_stats(&f);
        assert!((stats[&CategoryId(0)].exclusive - 10.0).abs() < 1e-12);
        assert!((stats[&CategoryId(1)].exclusive - 3.0).abs() < 1e-12);
    }

    #[test]
    fn events_count_without_duration() {
        let mut ds = vec![state(0, 0, 0.0, 1.0, 0)];
        ds.push(Drawable::Event(EventDrawable {
            category: CategoryId(1),
            timeline: TimelineId(0),
            time: 0.5,
            text: String::new(),
        }));
        let f = file_with(ds, 2);
        let stats = legend_stats(&f);
        assert_eq!(stats[&CategoryId(1)].count, 1);
        assert_eq!(stats[&CategoryId(1)].inclusive, 0.0);
        // A bubble inside a state does NOT reduce the state's exclusive time.
        assert!((stats[&CategoryId(0)].exclusive - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_categories_report_zero() {
        let f = file_with(vec![state(0, 0, 0.0, 1.0, 0)], 3);
        let stats = legend_stats(&f);
        assert_eq!(stats[&CategoryId(2)], CategoryStats::default());
    }

    #[test]
    fn timeline_category_time_sums_per_rank() {
        let f = file_with(
            vec![
                state(0, 0, 0.0, 2.0, 0),
                state(0, 0, 3.0, 4.0, 0),
                state(0, 1, 0.0, 5.0, 0),
            ],
            1,
        );
        let per_tl = timeline_category_time(&f, CategoryId(0));
        assert!((per_tl[&TimelineId(0)] - 3.0).abs() < 1e-12);
        assert!((per_tl[&TimelineId(1)] - 5.0).abs() < 1e-12);
    }
}
