//! The sharded CLOG2 scan phase: chunked block scanning with a
//! carry-stack stitch.
//!
//! The old scan sharded by *rank block*, which degenerates at small rank
//! counts (6 ranks cap the parallelism at 6, and the largest block
//! dominates the critical path). This module instead splits every block
//! into fixed-size record chunks and lets workers *steal* chunks from a
//! shared queue, so the load balances regardless of how skewed the
//! per-rank record counts are.
//!
//! Chunking a block breaks the one piece of cross-record state the scan
//! keeps: the open-state stack. A chunk therefore records, instead of
//! resolving, the two boundary cases —
//!
//! * a state-end with no matching open in the chunk becomes a
//!   [`PendingEnd`], and
//! * states still open when the chunk ends are exported bottom-to-top as
//!   leftover [`OpenState`]s.
//!
//! The per-rank **stitch** then walks the chunks in order, maintaining
//! the carry stack of open states flowing across chunk boundaries.
//! Because a chunk's local stack always sits *above* the carry, a local
//! match in the chunk is exactly the match the serial scan would have
//! found (searching top-down), and its true nest level is the local
//! position plus the carry depth at that record — which the stitch
//! applies with [`DrawableColumns::bump_nest`]. A pending end searches
//! the carry top-down, which is exactly the serial search continuing
//! below the (empty of matches) local stack. The result is
//! byte-identical to the serial single-stack scan at every chunk size
//! and worker count; the converter's determinism proptests pin this.
//!
//! The chunk size is a fixed constant — never derived from the worker
//! count — so the chunk decomposition, and therefore every intermediate
//! structure, is identical at every parallelism setting by construction.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use mpelog::clog2::ImageBlock;
use mpelog::ids::EventId;
use mpelog::record::{EventDef, Record, RecordView, StateDef};
use mpelog::wire::Reader;
use mpelog::Color;

use crate::columnar::{DrawableColumns, KIND_STATE};
use crate::convert::ConvertWarning;
use crate::drawable::{Category, CategoryKind};
use crate::id::{CategoryId, TimelineId};

/// Records per scan chunk. Fixed (not worker-derived) so the chunk
/// decomposition is identical at every parallelism setting.
pub(crate) const CHUNK_RECORDS: usize = 16_384;

/// Message-queue key: `(src, dst, tag, size)`, mirroring MPE's matching
/// on communicating pair + tag + data length.
pub(crate) type MsgKey = (u32, u32, u32, u32);

pub(crate) enum IdRole {
    StateStart(CategoryId),
    StateEnd(CategoryId),
    Solo(CategoryId),
}

/// The category list plus the event-id → role index shared by every
/// scan worker (read-only during the scan phase).
pub(crate) struct CategoryTable {
    pub(crate) categories: Vec<Category>,
    pub(crate) roles: HashMap<u32, IdRole>,
    pub(crate) arrow_cat: CategoryId,
}

/// Categories from the definitions, plus the synthetic arrow category
/// ("message") the converter introduces.
pub(crate) fn build_categories(state_defs: &[StateDef], event_defs: &[EventDef]) -> CategoryTable {
    let mut categories = Vec::new();
    let mut roles: HashMap<u32, IdRole> = HashMap::new();
    for d in state_defs {
        let idx = CategoryId(categories.len() as u32);
        categories.push(Category {
            index: idx,
            name: d.name.clone(),
            color: d.color,
            kind: CategoryKind::State,
        });
        roles.insert(d.start.0, IdRole::StateStart(idx));
        roles.insert(d.end.0, IdRole::StateEnd(idx));
    }
    for d in event_defs {
        let idx = CategoryId(categories.len() as u32);
        categories.push(Category {
            index: idx,
            name: d.name.clone(),
            color: d.color,
            kind: CategoryKind::Event,
        });
        roles.insert(d.id.0, IdRole::Solo(idx));
    }
    let arrow_cat = CategoryId(categories.len() as u32);
    categories.push(Category {
        index: arrow_cat,
        name: "message".into(),
        color: Color::WHITE,
        kind: CategoryKind::Arrow,
    });
    CategoryTable {
        categories,
        roles,
        arrow_cat,
    }
}

/// A state open at a chunk boundary: `(category, start, start text)`.
struct OpenState {
    cat: CategoryId,
    start: f64,
    text: String,
}

/// A state-end the chunk could not match locally; resolved against the
/// carry stack at stitch time.
struct PendingEnd {
    cat: CategoryId,
    id: EventId,
    ts: f64,
    text: String,
}

/// Ordering token: the stitch walks these to interleave local rows,
/// local warnings, and pending-end resolutions exactly as the serial
/// scan would have emitted them. Indices are implicit (each kind is
/// consumed sequentially).
enum ScanItem {
    Draw,
    Warn,
    Pend,
}

/// One chunk's scan output.
pub(crate) struct ChunkScan {
    items: Vec<ScanItem>,
    cols: DrawableColumns,
    warns: Vec<ConvertWarning>,
    pends: Vec<PendingEnd>,
    /// Local stack left open at chunk end, bottom to top.
    opens: Vec<OpenState>,
    sends: Vec<(MsgKey, f64)>,
    recvs: Vec<(MsgKey, f64)>,
    last_ts: f64,
    n_records: u64,
}

/// Scan one chunk of records. Pure and independent of every other
/// chunk — this is the unit of work the stealing workers run.
fn scan_chunk<'a>(
    rank: u32,
    recs: impl Iterator<Item = RecordView<'a>>,
    table: &CategoryTable,
) -> ChunkScan {
    let mut c = ChunkScan {
        items: Vec::new(),
        cols: DrawableColumns::new(),
        warns: Vec::new(),
        pends: Vec::new(),
        opens: Vec::new(),
        sends: Vec::new(),
        recvs: Vec::new(),
        last_ts: f64::NEG_INFINITY,
        n_records: 0,
    };
    let mut stack: Vec<OpenState> = Vec::new();
    for rec in recs {
        c.n_records += 1;
        c.last_ts = c.last_ts.max(rec.ts());
        match rec {
            RecordView::Event { ts, id, text } => match table.roles.get(&id.0) {
                Some(IdRole::StateStart(cat)) => stack.push(OpenState {
                    cat: *cat,
                    start: ts,
                    text: text.to_string(),
                }),
                Some(IdRole::StateEnd(cat)) => {
                    // Normally the innermost open state matches; be
                    // tolerant of interleaving by searching downward.
                    match stack.iter().rposition(|o| o.cat == *cat) {
                        Some(pos) => {
                            let open = stack.remove(pos);
                            let nest = pos as u32;
                            let mut txt = open.text;
                            if !text.is_empty() {
                                if !txt.is_empty() {
                                    txt.push_str(" | ");
                                }
                                txt.push_str(text);
                            }
                            let (mut start, mut end) = (open.start, ts);
                            if end < start {
                                c.warns.push(ConvertWarning::BackwardState {
                                    rank,
                                    name: table.categories[cat.as_usize()].name.clone(),
                                    end,
                                    start,
                                });
                                c.items.push(ScanItem::Warn);
                                std::mem::swap(&mut start, &mut end);
                            }
                            c.cols
                                .push_state(*cat, TimelineId(rank), start, end, nest, &txt);
                            c.items.push(ScanItem::Draw);
                        }
                        None => {
                            c.pends.push(PendingEnd {
                                cat: *cat,
                                id,
                                ts,
                                text: text.to_string(),
                            });
                            c.items.push(ScanItem::Pend);
                        }
                    }
                }
                Some(IdRole::Solo(cat)) => {
                    c.cols.push_event(*cat, TimelineId(rank), ts, text);
                    c.items.push(ScanItem::Draw);
                }
                None => {
                    c.warns.push(ConvertWarning::UnknownEventId { rank, id });
                    c.items.push(ScanItem::Warn);
                }
            },
            RecordView::Send { ts, dst, tag, size } => c.sends.push(((rank, dst, tag, size), ts)),
            RecordView::Recv { ts, src, tag, size } => c.recvs.push(((src, rank, tag, size), ts)),
        }
    }
    c.opens = stack;
    c
}

/// One rank's fully stitched scan output: drawables in the serial
/// scan's order, warnings likewise, and the send/recv records sorted by
/// key (stable, so each key's timestamps keep their FIFO record order).
pub(crate) struct RankScan {
    pub(crate) rank: u32,
    pub(crate) n_records: u64,
    pub(crate) cols: DrawableColumns,
    pub(crate) warnings: Vec<ConvertWarning>,
    pub(crate) sends: Vec<(MsgKey, f64)>,
    pub(crate) recvs: Vec<(MsgKey, f64)>,
}

impl RankScan {
    /// An empty pseudo-shard (used by the salvage converter for its
    /// terminal drawables).
    pub(crate) fn empty(rank: u32) -> RankScan {
        RankScan {
            rank,
            n_records: 0,
            cols: DrawableColumns::new(),
            warnings: Vec::new(),
            sends: Vec::new(),
            recvs: Vec::new(),
        }
    }
}

/// Stitch one rank's chunk scans (in chunk order) into the serial-scan
/// result, flowing the carry stack of open states across boundaries.
fn stitch_rank(rank: u32, chunks: Vec<ChunkScan>, table: &CategoryTable) -> RankScan {
    let mut out = RankScan::empty(rank);
    let mut carry: Vec<OpenState> = Vec::new();
    let mut last_ts = f64::NEG_INFINITY;

    let single_clean = chunks.len() == 1 && chunks[0].pends.is_empty();
    if single_clean {
        // Fast path: one chunk and nothing pending means the chunk's
        // local scan *is* the serial scan (the carry never forms).
        let c = chunks.into_iter().next().expect("one chunk");
        out.cols = c.cols;
        out.warnings = c.warns;
        out.sends = c.sends;
        out.recvs = c.recvs;
        out.n_records = c.n_records;
        last_ts = c.last_ts;
        carry = c.opens;
    } else {
        for c in chunks {
            let ChunkScan {
                items,
                mut cols,
                warns,
                pends,
                opens,
                sends,
                recvs,
                last_ts: chunk_last,
                n_records,
            } = c;
            let mut warn_it = warns.into_iter();
            let mut pend_it = pends.into_iter();
            let mut draw_cursor = 0usize;
            for item in items {
                match item {
                    ScanItem::Draw => {
                        let i = draw_cursor;
                        draw_cursor += 1;
                        // A local state's nest level was measured against
                        // the chunk-local stack; lift it by the carry
                        // depth at this record to the serial value.
                        if !carry.is_empty() && cols.kind(i) == KIND_STATE {
                            cols.bump_nest(i, carry.len() as u32);
                        }
                        out.cols.push_row(&cols, i);
                    }
                    ScanItem::Warn => out
                        .warnings
                        .push(warn_it.next().expect("warn item has a warning")),
                    ScanItem::Pend => {
                        let p = pend_it.next().expect("pend item has a pending end");
                        match carry.iter().rposition(|o| o.cat == p.cat) {
                            Some(pos) => {
                                let open = carry.remove(pos);
                                let nest = pos as u32;
                                let mut txt = open.text;
                                if !p.text.is_empty() {
                                    if !txt.is_empty() {
                                        txt.push_str(" | ");
                                    }
                                    txt.push_str(&p.text);
                                }
                                let (mut start, mut end) = (open.start, p.ts);
                                if end < start {
                                    out.warnings.push(ConvertWarning::BackwardState {
                                        rank,
                                        name: table.categories[p.cat.as_usize()].name.clone(),
                                        end,
                                        start,
                                    });
                                    std::mem::swap(&mut start, &mut end);
                                }
                                out.cols.push_state(
                                    p.cat,
                                    TimelineId(rank),
                                    start,
                                    end,
                                    nest,
                                    &txt,
                                );
                            }
                            None => out.warnings.push(ConvertWarning::UnmatchedEnd {
                                rank,
                                id: p.id,
                                ts: p.ts,
                            }),
                        }
                    }
                }
            }
            carry.extend(opens);
            out.sends.extend(sends);
            out.recvs.extend(recvs);
            last_ts = last_ts.max(chunk_last);
            out.n_records += n_records;
        }
    }

    // Non well-behaved: states still open at end of log. Close them at
    // the block's last timestamp, innermost first, exactly as the
    // serial scan drains its stack.
    for open in carry.into_iter().rev() {
        let name = table.categories[open.cat.as_usize()].name.clone();
        out.warnings.push(ConvertWarning::UnclosedState {
            rank,
            name,
            start: open.start,
        });
        out.cols.push_state(
            open.cat,
            TimelineId(rank),
            open.start,
            last_ts.max(open.start),
            0,
            &open.text,
        );
    }

    // Key-sort the message records. The sort is stable, so within a key
    // the timestamps keep their record order — the FIFO queue the
    // matcher expects.
    out.sends.sort_by_key(|&(k, _)| k);
    out.recvs.sort_by_key(|&(k, _)| k);
    out
}

/// A scannable block: either decoded records or a zero-copy byte image
/// (pre-chunked and pre-validated by `Clog2File::parse_image`).
pub(crate) enum BlockInput<'a> {
    Records(u32, &'a [Record]),
    Image(&'a ImageBlock<'a>),
}

impl BlockInput<'_> {
    fn rank(&self) -> u32 {
        match self {
            BlockInput::Records(rank, _) => *rank,
            BlockInput::Image(b) => b.rank,
        }
    }

    fn n_chunks(&self) -> usize {
        match self {
            BlockInput::Records(_, recs) => recs.len().div_ceil(CHUNK_RECORDS).max(1),
            BlockInput::Image(b) => b.chunks.len().max(1),
        }
    }

    fn scan_chunk(&self, ci: usize, table: &CategoryTable) -> ChunkScan {
        match self {
            BlockInput::Records(rank, recs) => {
                let lo = ci * CHUNK_RECORDS;
                let hi = (lo + CHUNK_RECORDS).min(recs.len());
                scan_chunk(*rank, recs[lo..hi].iter().map(RecordView::from), table)
            }
            BlockInput::Image(b) => match b.chunks.get(ci) {
                Some(ch) => {
                    let mut r = Reader::new(ch.data);
                    let mut left = ch.n_records;
                    let views = std::iter::from_fn(move || {
                        if left == 0 {
                            return None;
                        }
                        left -= 1;
                        // parse_image fully validated every record.
                        Some(Record::decode_view(&mut r).expect("records validated at parse"))
                    });
                    scan_chunk(b.rank, views, table)
                }
                None => scan_chunk(b.rank, std::iter::empty(), table),
            },
        }
    }
}

/// Attribute one rank's scan metrics to its shard. Every record is
/// scanned exactly once at any parallelism setting, so the merged
/// `convert.*` totals are thread-count independent.
fn note_rank_scan(obs: &obs::Obs, scan: &RankScan) {
    let s = obs.shard(scan.rank as usize);
    s.counter("convert.records_scanned").add(scan.n_records);
    s.counter("convert.drawables.state")
        .add(scan.cols.n_states());
    s.counter("convert.drawables.event")
        .add(scan.cols.n_events());
    s.counter("convert.warnings")
        .add(scan.warnings.len() as u64);
    s.histogram("convert.block_records").record(scan.n_records);
}

/// A stitch work item: one rank's scanned chunks, taken by whichever
/// worker claims the slot.
type StitchTask = std::sync::Mutex<Option<(u32, Vec<ChunkScan>)>>;

/// Scan a set of blocks, work-stealing fixed-size chunks across up to
/// `workers` scoped threads, then stitch per rank (also stolen).
/// Outputs come back in input block order regardless of which thread
/// ran what.
pub(crate) fn scan_sources(
    blocks: &[BlockInput<'_>],
    table: &CategoryTable,
    workers: usize,
    obs: Option<&obs::Obs>,
) -> Vec<RankScan> {
    // Flatten to (block, chunk) work units.
    let mut units: Vec<(usize, usize)> = Vec::new();
    let mut block_chunks: Vec<usize> = Vec::with_capacity(blocks.len());
    for (bi, b) in blocks.iter().enumerate() {
        let n = b.n_chunks();
        block_chunks.push(n);
        for ci in 0..n {
            units.push((bi, ci));
        }
    }

    let workers = workers.min(units.len().max(1));
    let mut chunk_scans: Vec<Option<ChunkScan>> = units.iter().map(|_| None).collect();
    if workers <= 1 {
        for (slot, &(bi, ci)) in units.iter().enumerate() {
            chunk_scans[slot] = Some(blocks[bi].scan_chunk(ci, table));
        }
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let next = &next;
                    let units = &units;
                    s.spawn(move || {
                        let _span = obs.map(|o| o.span("scan.shard", "convert", w as u32));
                        let mut done: Vec<(usize, ChunkScan)> = Vec::new();
                        loop {
                            let u = next.fetch_add(1, Ordering::Relaxed);
                            if u >= units.len() {
                                break;
                            }
                            let (bi, ci) = units[u];
                            done.push((u, blocks[bi].scan_chunk(ci, table)));
                        }
                        done
                    })
                })
                .collect();
            for h in handles {
                for (u, cs) in h.join().expect("scan worker panicked") {
                    chunk_scans[u] = Some(cs);
                }
            }
        });
    }

    // Group chunk scans back per block (units were emitted block-major,
    // so each block's chunks are contiguous) and stitch.
    let mut per_block: Vec<Vec<ChunkScan>> = Vec::with_capacity(blocks.len());
    let mut it = chunk_scans.into_iter();
    for &n in &block_chunks {
        per_block.push(
            (0..n)
                .map(|_| it.next().flatten().expect("chunk scanned"))
                .collect(),
        );
    }

    let stitch_workers = workers.min(per_block.len().max(1));
    let scans: Vec<RankScan> = if stitch_workers <= 1 {
        blocks
            .iter()
            .zip(per_block)
            .map(|(b, chunks)| stitch_rank(b.rank(), chunks, table))
            .collect()
    } else {
        let tasks: Vec<StitchTask> = blocks
            .iter()
            .zip(per_block)
            .map(|(b, chunks)| std::sync::Mutex::new(Some((b.rank(), chunks))))
            .collect();
        let mut out: Vec<Option<RankScan>> = (0..tasks.len()).map(|_| None).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..stitch_workers)
                .map(|_| {
                    let next = &next;
                    let tasks = &tasks;
                    s.spawn(move || {
                        let mut done: Vec<(usize, RankScan)> = Vec::new();
                        loop {
                            let u = next.fetch_add(1, Ordering::Relaxed);
                            if u >= tasks.len() {
                                break;
                            }
                            let (rank, chunks) = tasks[u]
                                .lock()
                                .expect("stitch task lock")
                                .take()
                                .expect("stitch task present");
                            done.push((u, stitch_rank(rank, chunks, table)));
                        }
                        done
                    })
                })
                .collect();
            for h in handles {
                for (u, scan) in h.join().expect("stitch worker panicked") {
                    out[u] = Some(scan);
                }
            }
        });
        out.into_iter()
            .map(|s| s.expect("every block stitched"))
            .collect()
    };

    if let Some(o) = obs {
        for scan in &scans {
            note_rank_scan(o, scan);
        }
    }
    scans
}
