//! CLOG2 → SLOG2 conversion (the `clog2TOslog2` step).
//!
//! The paper calls converting (rather than logging straight to SLOG-2)
//! the *preferred* route because (a) a "non well-behaved" program can
//! produce a defective file, and (b) the conversion step surfaces
//! diagnostics — most famously the **"Equal Drawables"** warning when
//! two objects with the same event id have identical start and end
//! times, a consequence of `MPI_Wtime`'s limited resolution. We report
//! all of those as typed [`ConvertWarning`]s.

use std::collections::{BTreeMap, HashMap, VecDeque};

use mpelog::ids::EventId;
use mpelog::record::Record;
use mpelog::{Clog2File, Color};

use crate::drawable::{
    ArrowDrawable, Category, CategoryKind, Drawable, EventDrawable, StateDrawable,
};
use crate::file::Slog2File;
use crate::tree::FrameTree;

/// Conversion parameters.
#[derive(Debug, Clone)]
pub struct ConvertOptions {
    /// Frame-tree split threshold ("frame size"). Smaller values make a
    /// deeper tree with finer random access; the paper mentions tuning
    /// this to affect the amount of data initially displayed.
    pub frame_capacity: usize,
    /// Frame-tree depth limit.
    pub max_depth: u32,
    /// Timeline display names; defaults to `P0..Pn` with rank 0 called
    /// `PI_MAIN`, matching the paper's convention.
    pub timeline_names: Option<Vec<String>>,
}

impl Default for ConvertOptions {
    fn default() -> Self {
        ConvertOptions {
            frame_capacity: 64,
            max_depth: 16,
            timeline_names: None,
        }
    }
}

/// Diagnostics produced during conversion.
#[derive(Debug, Clone, PartialEq)]
pub enum ConvertWarning {
    /// A state was opened but never closed (non well-behaved program);
    /// the converter closes it at the block's last timestamp.
    UnclosedState {
        /// Rank whose log was defective.
        rank: u32,
        /// The state's category name.
        name: String,
        /// When it was opened.
        start: f64,
    },
    /// A state-end event arrived with no matching open state.
    UnmatchedEnd {
        /// Rank whose log was defective.
        rank: u32,
        /// The event id seen.
        id: EventId,
        /// When.
        ts: f64,
    },
    /// An event id that no definition describes.
    UnknownEventId {
        /// Rank.
        rank: u32,
        /// The undefined id.
        id: EventId,
    },
    /// A send record with no matching receive.
    UnmatchedSend {
        /// Sender rank.
        src: u32,
        /// Destination rank.
        dst: u32,
        /// Tag.
        tag: u32,
    },
    /// A receive record with no matching send.
    UnmatchedRecv {
        /// Source rank recorded by the receiver.
        src: u32,
        /// Receiving rank.
        dst: u32,
        /// Tag.
        tag: u32,
    },
    /// Two or more drawables of the same category with bit-identical
    /// start and end times — the paper's "Equal Drawables" condition,
    /// caused by limited clock resolution.
    EqualDrawables {
        /// Category name.
        category: String,
        /// How many coincide.
        count: usize,
        /// The shared start time.
        t0: f64,
        /// The shared end time.
        t1: f64,
    },
    /// A state whose end event carries an earlier timestamp than its
    /// start (out-of-order or clock-anomalous records); the converter
    /// normalizes the interval so the file stays displayable.
    BackwardState {
        /// Rank whose log was anomalous.
        rank: u32,
        /// Category name.
        name: String,
        /// The (earlier) end timestamp seen.
        end: f64,
        /// The (later) start timestamp seen.
        start: f64,
    },
    /// An arrow that goes backwards in time (receive before send) —
    /// clock drift that synchronization failed to remove.
    BackwardArrow {
        /// Sender rank.
        src: u32,
        /// Receiver rank.
        dst: u32,
        /// Tag.
        tag: u32,
        /// Send time.
        start: f64,
        /// Receive time.
        end: f64,
    },
}

impl std::fmt::Display for ConvertWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConvertWarning::UnclosedState { rank, name, start } => {
                write!(f, "rank {rank}: state '{name}' opened at {start:.6}s never closed")
            }
            ConvertWarning::UnmatchedEnd { rank, id, ts } => {
                write!(f, "rank {rank}: end event {id} at {ts:.6}s has no open state")
            }
            ConvertWarning::UnknownEventId { rank, id } => {
                write!(f, "rank {rank}: event id {id} has no definition")
            }
            ConvertWarning::UnmatchedSend { src, dst, tag } => {
                write!(f, "send {src}->{dst} tag {tag} has no matching receive")
            }
            ConvertWarning::UnmatchedRecv { src, dst, tag } => {
                write!(f, "receive {src}->{dst} tag {tag} has no matching send")
            }
            ConvertWarning::EqualDrawables { category, count, t0, t1 } => {
                write!(
                    f,
                    "Equal Drawables: {count} '{category}' objects share [{t0:.9}, {t1:.9}]"
                )
            }
            ConvertWarning::BackwardState { rank, name, end, start } => {
                write!(
                    f,
                    "rank {rank}: state '{name}' ends at {end:.9} before it starts at {start:.9}; normalized"
                )
            }
            ConvertWarning::BackwardArrow { src, dst, tag, start, end } => {
                write!(
                    f,
                    "arrow {src}->{dst} tag {tag} goes backward in time ({start:.9} -> {end:.9})"
                )
            }
        }
    }
}

enum IdRole {
    StateStart(u32),
    StateEnd(u32),
    Solo(u32),
}

/// Convert a merged CLOG2 log into an SLOG2 file, reporting diagnostics.
pub fn convert(clog: &Clog2File, opts: &ConvertOptions) -> (Slog2File, Vec<ConvertWarning>) {
    let mut warnings = Vec::new();

    // 1. Categories from the definitions, plus the synthetic arrow
    //    category ("message") the converter introduces.
    let mut categories = Vec::new();
    let mut roles: HashMap<u32, IdRole> = HashMap::new();
    for d in &clog.state_defs {
        let idx = categories.len() as u32;
        categories.push(Category {
            index: idx,
            name: d.name.clone(),
            color: d.color,
            kind: CategoryKind::State,
        });
        roles.insert(d.start.0, IdRole::StateStart(idx));
        roles.insert(d.end.0, IdRole::StateEnd(idx));
    }
    for d in &clog.event_defs {
        let idx = categories.len() as u32;
        categories.push(Category {
            index: idx,
            name: d.name.clone(),
            color: d.color,
            kind: CategoryKind::Event,
        });
        roles.insert(d.id.0, IdRole::Solo(idx));
    }
    let arrow_cat = categories.len() as u32;
    categories.push(Category {
        index: arrow_cat,
        name: "message".into(),
        color: Color::WHITE,
        kind: CategoryKind::Arrow,
    });

    // 2. Walk each rank's block: pair state events, emit drawables,
    //    collect send/recv records for arrow matching.
    let mut drawables: Vec<Drawable> = Vec::new();
    // key: (src, dst, tag, size) -> FIFO of send timestamps
    let mut sends: BTreeMap<(u32, u32, u32, u32), VecDeque<f64>> = BTreeMap::new();
    let mut recvs: BTreeMap<(u32, u32, u32, u32), VecDeque<f64>> = BTreeMap::new();

    for (&rank, records) in &clog.blocks {
        let mut stack: Vec<(u32, f64, String)> = Vec::new(); // (cat, start, text)
        let mut last_ts = f64::NEG_INFINITY;
        for rec in records {
            last_ts = last_ts.max(rec.ts());
            match rec {
                Record::Event { ts, id, text } => match roles.get(&id.0) {
                    Some(IdRole::StateStart(cat)) => {
                        stack.push((*cat, *ts, text.clone()));
                    }
                    Some(IdRole::StateEnd(cat)) => {
                        // Normally the innermost open state matches; be
                        // tolerant of interleaving by searching downward.
                        match stack.iter().rposition(|(c, _, _)| c == cat) {
                            Some(pos) => {
                                let (c, start, mut start_text) = stack.remove(pos);
                                let nest = pos as u32;
                                if !text.is_empty() {
                                    if !start_text.is_empty() {
                                        start_text.push_str(" | ");
                                    }
                                    start_text.push_str(text);
                                }
                                let mut end = *ts;
                                let mut start = start;
                                if end < start {
                                    warnings.push(ConvertWarning::BackwardState {
                                        rank,
                                        name: categories[c as usize].name.clone(),
                                        end,
                                        start,
                                    });
                                    std::mem::swap(&mut start, &mut end);
                                }
                                drawables.push(Drawable::State(StateDrawable {
                                    category: c,
                                    timeline: rank,
                                    start,
                                    end,
                                    nest_level: nest,
                                    text: start_text,
                                }));
                            }
                            None => warnings.push(ConvertWarning::UnmatchedEnd {
                                rank,
                                id: *id,
                                ts: *ts,
                            }),
                        }
                    }
                    Some(IdRole::Solo(cat)) => {
                        drawables.push(Drawable::Event(EventDrawable {
                            category: *cat,
                            timeline: rank,
                            time: *ts,
                            text: text.clone(),
                        }));
                    }
                    None => warnings.push(ConvertWarning::UnknownEventId { rank, id: *id }),
                },
                Record::Send { ts, dst, tag, size } => {
                    sends
                        .entry((rank, *dst, *tag, *size))
                        .or_default()
                        .push_back(*ts);
                }
                Record::Recv { ts, src, tag, size } => {
                    recvs
                        .entry((*src, rank, *tag, *size))
                        .or_default()
                        .push_back(*ts);
                }
            }
        }
        // Non well-behaved: states still open at end of log. Close them
        // at the block's last timestamp so the file is still displayable.
        for (cat, start, text) in stack.into_iter().rev() {
            let name = categories[cat as usize].name.clone();
            warnings.push(ConvertWarning::UnclosedState { rank, name, start });
            drawables.push(Drawable::State(StateDrawable {
                category: cat,
                timeline: rank,
                start,
                end: last_ts.max(start),
                nest_level: 0,
                text,
            }));
        }
    }

    // 3. Match sends with receives (FIFO per (src, dst, tag, size) key,
    //    mirroring MPE's matching on tag + data length).
    for (key, mut send_ts) in sends {
        let (src, dst, tag, size) = key;
        let mut recv_ts = recvs.remove(&key).unwrap_or_default();
        while let (Some(s), Some(r)) = (send_ts.front().copied(), recv_ts.front().copied()) {
            send_ts.pop_front();
            recv_ts.pop_front();
            if r < s {
                warnings.push(ConvertWarning::BackwardArrow {
                    src,
                    dst,
                    tag,
                    start: s,
                    end: r,
                });
            }
            drawables.push(Drawable::Arrow(ArrowDrawable {
                category: arrow_cat,
                from_timeline: src,
                to_timeline: dst,
                start: s,
                end: r,
                tag,
                size,
            }));
        }
        for _ in send_ts {
            warnings.push(ConvertWarning::UnmatchedSend { src, dst, tag });
        }
        for _ in recv_ts {
            warnings.push(ConvertWarning::UnmatchedRecv { src, dst, tag });
        }
    }
    for ((src, dst, tag, _), leftover) in recvs {
        for _ in leftover {
            warnings.push(ConvertWarning::UnmatchedRecv { src, dst, tag });
        }
    }

    // 4. Equal-Drawables detection: same category, bit-identical
    //    endpoints (and same placement).
    detect_equal_drawables(&drawables, &categories, &mut warnings);

    // 5. Global range and tree.
    let (mut t0, mut t1) = (f64::INFINITY, f64::NEG_INFINITY);
    for d in &drawables {
        t0 = t0.min(d.start());
        t1 = t1.max(d.end());
    }
    if !t0.is_finite() {
        t0 = 0.0;
        t1 = 0.0;
    }

    let timelines = opts.timeline_names.clone().unwrap_or_else(|| {
        (0..clog.nranks)
            .map(|r| if r == 0 { "PI_MAIN".to_string() } else { format!("P{r}") })
            .collect()
    });

    let tree = FrameTree::build(drawables, t0, t1, opts.frame_capacity, opts.max_depth);
    let file = Slog2File {
        timelines,
        categories,
        range: (t0, t1),
        warnings: warnings.iter().map(|w| w.to_string()).collect(),
        tree,
    };
    (file, warnings)
}

fn detect_equal_drawables(
    drawables: &[Drawable],
    categories: &[Category],
    warnings: &mut Vec<ConvertWarning>,
) {
    // Key on (category, placement, bit-exact interval).
    let mut groups: HashMap<(u32, u32, u32, u64, u64), usize> = HashMap::new();
    for d in drawables {
        let key = match d {
            Drawable::State(s) => (
                s.category,
                s.timeline,
                0,
                s.start.to_bits(),
                s.end.to_bits(),
            ),
            Drawable::Event(e) => (e.category, e.timeline, 0, e.time.to_bits(), e.time.to_bits()),
            Drawable::Arrow(a) => (
                a.category,
                a.from_timeline,
                a.to_timeline,
                a.start.to_bits(),
                a.end.to_bits(),
            ),
        };
        *groups.entry(key).or_insert(0) += 1;
    }
    let mut dups: Vec<_> = groups.into_iter().filter(|(_, n)| *n > 1).collect();
    dups.sort_by_key(|((cat, tl, tl2, s, e), _)| (*cat, *tl, *tl2, *s, *e));
    for ((cat, _, _, s, e), n) in dups {
        warnings.push(ConvertWarning::EqualDrawables {
            category: categories
                .get(cat as usize)
                .map(|c| c.name.clone())
                .unwrap_or_else(|| format!("cat{cat}")),
            count: n,
            t0: f64::from_bits(s),
            t1: f64::from_bits(e),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpelog::{Color, Logger};

    /// Build a two-rank CLOG file through the real Logger API.
    fn sample_clog() -> Clog2File {
        let mut lg0 = Logger::new(0);
        let mut lg1 = Logger::new(1);
        // Same definition order on both ranks (MPE rule).
        let (w_s, w_e) = lg0.define_state("PI_Write", Color::GREEN);
        let (r_s, r_e) = lg0.define_state("PI_Read", Color::RED);
        let arr = lg0.define_event("arrival", Color::YELLOW);
        let _ = lg1.define_state("PI_Write", Color::GREEN);
        let _ = lg1.define_state("PI_Read", Color::RED);
        let _ = lg1.define_event("arrival", Color::YELLOW);

        // Rank 0 writes (1.0..1.2), message flies, rank 1 reads (0.9..1.4).
        lg0.log_event(1.0, w_s, "Line: 10");
        lg0.log_send(1.1, 1, 5, 8);
        lg0.log_event(1.2, w_e, "");
        lg1.log_event(0.9, r_s, "Line: 20");
        lg1.log_receive(1.3, 0, 5, 8);
        lg1.log_event(1.3, arr, "Chan: C1");
        lg1.log_event(1.4, r_e, "");

        let mut blocks = std::collections::BTreeMap::new();
        blocks.insert(0u32, lg0.records().to_vec());
        blocks.insert(1u32, lg1.records().to_vec());
        Clog2File {
            nranks: 2,
            state_defs: lg0.state_defs().to_vec(),
            event_defs: lg0.event_defs().to_vec(),
            blocks,
        }
    }

    #[test]
    fn basic_conversion_produces_expected_objects() {
        let (file, warnings) = convert(&sample_clog(), &ConvertOptions::default());
        assert!(warnings.is_empty(), "{warnings:?}");
        let ds = file.tree.query(f64::NEG_INFINITY, f64::INFINITY);
        let states = ds.iter().filter(|d| matches!(d, Drawable::State(_))).count();
        let events = ds.iter().filter(|d| matches!(d, Drawable::Event(_))).count();
        let arrows = ds.iter().filter(|d| matches!(d, Drawable::Arrow(_))).count();
        assert_eq!((states, events, arrows), (2, 1, 1));
        assert_eq!(file.range, (0.9, 1.4));
        assert_eq!(file.timelines, vec!["PI_MAIN".to_string(), "P1".to_string()]);
    }

    #[test]
    fn arrow_connects_send_to_receive() {
        let (file, _) = convert(&sample_clog(), &ConvertOptions::default());
        let ds = file.tree.query(f64::NEG_INFINITY, f64::INFINITY);
        let arrow = ds
            .iter()
            .find_map(|d| match d {
                Drawable::Arrow(a) => Some(a),
                _ => None,
            })
            .unwrap();
        assert_eq!(arrow.from_timeline, 0);
        assert_eq!(arrow.to_timeline, 1);
        assert_eq!(arrow.start, 1.1);
        assert_eq!(arrow.end, 1.3);
        assert_eq!(arrow.tag, 5);
        assert_eq!(arrow.size, 8);
    }

    #[test]
    fn nested_states_get_levels() {
        let mut lg = Logger::new(0);
        let (a_s, a_e) = lg.define_state("A", Color::GRAY);
        let (b_s, b_e) = lg.define_state("B", Color::RED);
        lg.log_event(3.0, a_s, "");
        lg.log_event(5.0, b_s, "");
        lg.log_event(8.0, b_e, "");
        lg.log_event(20.0, a_e, "");
        let mut blocks = std::collections::BTreeMap::new();
        blocks.insert(0u32, lg.records().to_vec());
        let clog = Clog2File {
            nranks: 1,
            state_defs: lg.state_defs().to_vec(),
            event_defs: vec![],
            blocks,
        };
        let (file, warnings) = convert(&clog, &ConvertOptions::default());
        assert!(warnings.is_empty());
        let ds = file.tree.query(0.0, 100.0);
        let mut levels: Vec<(String, u32)> = ds
            .iter()
            .filter_map(|d| match d {
                Drawable::State(s) => {
                    Some((file.categories[s.category as usize].name.clone(), s.nest_level))
                }
                _ => None,
            })
            .collect();
        levels.sort();
        assert_eq!(levels, vec![("A".to_string(), 0), ("B".to_string(), 1)]);
    }

    #[test]
    fn unclosed_state_is_warned_and_closed_at_log_end() {
        let mut lg = Logger::new(0);
        let (a_s, _a_e) = lg.define_state("A", Color::GRAY);
        let ev = lg.define_event("tick", Color::YELLOW);
        lg.log_event(1.0, a_s, "");
        lg.log_event(9.0, ev, "");
        let mut blocks = std::collections::BTreeMap::new();
        blocks.insert(0u32, lg.records().to_vec());
        let clog = Clog2File {
            nranks: 1,
            state_defs: lg.state_defs().to_vec(),
            event_defs: lg.event_defs().to_vec(),
            blocks,
        };
        let (file, warnings) = convert(&clog, &ConvertOptions::default());
        assert!(matches!(
            warnings[0],
            ConvertWarning::UnclosedState { rank: 0, ref name, start } if name == "A" && start == 1.0
        ));
        let ds = file.tree.query(0.0, 100.0);
        let s = ds
            .iter()
            .find_map(|d| match d {
                Drawable::State(s) => Some(s),
                _ => None,
            })
            .unwrap();
        assert_eq!(s.end, 9.0);
    }

    #[test]
    fn unmatched_end_is_warned() {
        let mut lg = Logger::new(0);
        let (_a_s, a_e) = lg.define_state("A", Color::GRAY);
        lg.log_event(2.0, a_e, "");
        let mut blocks = std::collections::BTreeMap::new();
        blocks.insert(0u32, lg.records().to_vec());
        let clog = Clog2File {
            nranks: 1,
            state_defs: lg.state_defs().to_vec(),
            event_defs: vec![],
            blocks,
        };
        let (_, warnings) = convert(&clog, &ConvertOptions::default());
        assert!(matches!(warnings[0], ConvertWarning::UnmatchedEnd { .. }));
    }

    #[test]
    fn unmatched_send_and_recv_are_warned() {
        let mut lg0 = Logger::new(0);
        let mut lg1 = Logger::new(1);
        lg0.log_send(1.0, 1, 7, 16); // never received
        lg1.log_receive(2.0, 0, 8, 16); // never sent
        let mut blocks = std::collections::BTreeMap::new();
        blocks.insert(0u32, lg0.records().to_vec());
        blocks.insert(1u32, lg1.records().to_vec());
        let clog = Clog2File {
            nranks: 2,
            state_defs: vec![],
            event_defs: vec![],
            blocks,
        };
        let (_, warnings) = convert(&clog, &ConvertOptions::default());
        assert!(warnings
            .iter()
            .any(|w| matches!(w, ConvertWarning::UnmatchedSend { tag: 7, .. })));
        assert!(warnings
            .iter()
            .any(|w| matches!(w, ConvertWarning::UnmatchedRecv { tag: 8, .. })));
    }

    #[test]
    fn equal_drawables_detected_for_identical_timestamps() {
        // Two arrows with bit-identical endpoints — the quantized-clock
        // condition from the paper.
        let mut lg0 = Logger::new(0);
        let mut lg1 = Logger::new(1);
        lg0.log_send(1.0, 1, 5, 4);
        lg0.log_send(1.0, 1, 5, 4);
        lg1.log_receive(2.0, 0, 5, 4);
        lg1.log_receive(2.0, 0, 5, 4);
        let mut blocks = std::collections::BTreeMap::new();
        blocks.insert(0u32, lg0.records().to_vec());
        blocks.insert(1u32, lg1.records().to_vec());
        let clog = Clog2File {
            nranks: 2,
            state_defs: vec![],
            event_defs: vec![],
            blocks,
        };
        let (_, warnings) = convert(&clog, &ConvertOptions::default());
        assert!(
            warnings
                .iter()
                .any(|w| matches!(w, ConvertWarning::EqualDrawables { count: 2, .. })),
            "{warnings:?}"
        );
    }

    #[test]
    fn backward_arrow_is_warned() {
        let mut lg0 = Logger::new(0);
        let mut lg1 = Logger::new(1);
        lg0.log_send(5.0, 1, 1, 0);
        lg1.log_receive(4.0, 0, 1, 0); // drifted clock: recv "before" send
        let mut blocks = std::collections::BTreeMap::new();
        blocks.insert(0u32, lg0.records().to_vec());
        blocks.insert(1u32, lg1.records().to_vec());
        let clog = Clog2File {
            nranks: 2,
            state_defs: vec![],
            event_defs: vec![],
            blocks,
        };
        let (_, warnings) = convert(&clog, &ConvertOptions::default());
        assert!(warnings
            .iter()
            .any(|w| matches!(w, ConvertWarning::BackwardArrow { .. })));
    }

    #[test]
    fn empty_log_converts_cleanly() {
        let clog = Clog2File {
            nranks: 3,
            ..Default::default()
        };
        let (file, warnings) = convert(&clog, &ConvertOptions::default());
        assert!(warnings.is_empty());
        assert_eq!(file.range, (0.0, 0.0));
        assert_eq!(file.total_drawables(), 0);
        assert_eq!(file.timelines.len(), 3);
    }

    #[test]
    fn custom_timeline_names_pass_through() {
        let clog = Clog2File {
            nranks: 2,
            ..Default::default()
        };
        let opts = ConvertOptions {
            timeline_names: Some(vec!["master".into(), "compressor".into()]),
            ..Default::default()
        };
        let (file, _) = convert(&clog, &opts);
        assert_eq!(file.timelines, vec!["master".to_string(), "compressor".to_string()]);
    }

    #[test]
    fn slog2_roundtrip_of_converted_file() {
        let (file, _) = convert(&sample_clog(), &ConvertOptions::default());
        let back = Slog2File::from_bytes(&file.to_bytes()).unwrap();
        assert_eq!(back, file);
    }
}
