//! CLOG2 → SLOG2 conversion (the `clog2TOslog2` step).
//!
//! The paper calls converting (rather than logging straight to SLOG-2)
//! the *preferred* route because (a) a "non well-behaved" program can
//! produce a defective file, and (b) the conversion step surfaces
//! diagnostics — most famously the **"Equal Drawables"** warning when
//! two objects with the same event id have identical start and end
//! times, a consequence of `MPI_Wtime`'s limited resolution. We report
//! all of those as typed [`ConvertWarning`]s.
//!
//! ## The `Converter` API
//!
//! All conversion goes through one builder, [`Converter`], driving a
//! [`TraceSource`] — an already-decoded log, a raw byte image, a
//! memory-mapped file, or a streaming reader:
//!
//! ```no_run
//! # use slog2::{Converter, TraceSource};
//! let conv = Converter::new()
//!     .frame_capacity(64)
//!     .parallelism(4)
//!     .convert(TraceSource::mmap("run.clog2".as_ref())?)?;
//! # Ok::<(), mpelog::StreamError>(())
//! ```
//!
//! Salvage (converting the torn log of a failed run) is a *mode* of the
//! same builder — [`Converter::on_torn`] with
//! [`TornPolicy::Salvage`] — not a separate entry point. The historical
//! free functions ([`convert`], [`convert_salvaged`], [`convert_reader`])
//! remain as deprecated wrappers.
//!
//! ## Sharded pipeline
//!
//! Conversion runs as a sequence of phases, each sharded across worker
//! threads ([`Converter::parallelism`]) while producing output
//! **byte-identical** to the serial converter (see DESIGN.md §5 and §15
//! for the determinism argument):
//!
//! 1. **Scan** — blocks are split into fixed-size record chunks that
//!    workers *steal* from a shared queue (so parallelism is not capped
//!    by the rank count), then stitched back per rank
//!    ([`crate::scan`]).
//! 2. **Merge** — shard outputs concatenate in rank order into columnar
//!    storage ([`crate::columnar`]); per-rank send/recv lists are
//!    key-disjoint.
//! 3. **Arrows** — per-shard key-sorted send/recv runs merge (sends by
//!    concatenation, recvs by k-way merge) and match in key order,
//!    sharded by contiguous key chunks.
//! 4. **Diagnostics** — Equal-Drawables counting shards over the
//!    drawable rows (integer counts merge associatively; output is
//!    sorted).
//! 5. **Tree** — the frame-tree recursion partitions row *indices* and
//!    forks independent subtrees onto workers.

use std::collections::{BTreeMap, HashMap};
use std::io::Read;
use std::ops::Range;
use std::sync::Arc;

use mpelog::clog2::{Clog2Blocks, StreamError};
use mpelog::ids::EventId;
use mpelog::Clog2File;

use crate::columnar::DrawableColumns;
use crate::drawable::{Category, CategoryKind};
use crate::file::Slog2File;
use crate::fnv::FnvBuild;
use crate::id::{CategoryId, TimelineId};
use crate::scan::{
    build_categories, scan_sources, BlockInput, CategoryTable, MsgKey, RankScan, CHUNK_RECORDS,
};
use crate::source::TraceSource;
use crate::tree::FrameTree;
use crate::window::TimeWindow;
use mpelog::Color;

/// Conversion parameters for the deprecated free-function entry points.
///
/// New code should use the [`Converter`] builder instead.
#[derive(Debug, Clone)]
pub struct ConvertOptions {
    /// Frame-tree split threshold ("frame size"). Smaller values make a
    /// deeper tree with finer random access; the paper mentions tuning
    /// this to affect the amount of data initially displayed.
    pub frame_capacity: usize,
    /// Frame-tree depth limit.
    pub max_depth: u32,
    /// Timeline display names; defaults to `P0..Pn` with rank 0 called
    /// `PI_MAIN`, matching the paper's convention.
    pub timeline_names: Option<Vec<String>>,
    /// Worker threads for the sharded conversion phases: `0` picks the
    /// machine's available parallelism, `1` forces the serial path, and
    /// any other value caps the worker count. The output is
    /// byte-identical at every setting.
    pub parallelism: usize,
    /// Metrics and span tracing for the conversion. Per-stage spans
    /// (`scan`, `match`, `diagnose`, `tree` — plus per-shard worker
    /// spans when `parallelism > 1`) land in the tracer; the
    /// `convert.*` counters are attributed per rank block, so their
    /// merged totals are identical at every parallelism setting.
    pub obs: Option<std::sync::Arc<obs::Obs>>,
}

impl Default for ConvertOptions {
    fn default() -> Self {
        ConvertOptions {
            frame_capacity: 64,
            max_depth: 16,
            timeline_names: None,
            parallelism: 0,
            obs: None,
        }
    }
}

impl ConvertOptions {
    /// Set the worker-thread count (see
    /// [`parallelism`](Self::parallelism)).
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Attach a metrics registry + tracer (see [`obs`](Self::obs)).
    pub fn with_observability(mut self, obs: std::sync::Arc<obs::Obs>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Resolve `parallelism` to a concrete worker count: `0` asks the
    /// OS, and a machine that reports a single core falls back to the
    /// serial path.
    pub fn effective_parallelism(&self) -> usize {
        match self.parallelism {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        }
    }
}

/// Diagnostics produced during conversion.
#[derive(Debug, Clone, PartialEq)]
pub enum ConvertWarning {
    /// A state was opened but never closed (non well-behaved program);
    /// the converter closes it at the block's last timestamp.
    UnclosedState {
        /// Rank whose log was defective.
        rank: u32,
        /// The state's category name.
        name: String,
        /// When it was opened.
        start: f64,
    },
    /// A state-end event arrived with no matching open state.
    UnmatchedEnd {
        /// Rank whose log was defective.
        rank: u32,
        /// The event id seen.
        id: EventId,
        /// When.
        ts: f64,
    },
    /// An event id that no definition describes.
    UnknownEventId {
        /// Rank.
        rank: u32,
        /// The undefined id.
        id: EventId,
    },
    /// A send record with no matching receive.
    UnmatchedSend {
        /// Sender rank.
        src: u32,
        /// Destination rank.
        dst: u32,
        /// Tag.
        tag: u32,
    },
    /// A receive record with no matching send.
    UnmatchedRecv {
        /// Source rank recorded by the receiver.
        src: u32,
        /// Receiving rank.
        dst: u32,
        /// Tag.
        tag: u32,
    },
    /// Two or more drawables of the same category with bit-identical
    /// start and end times — the paper's "Equal Drawables" condition,
    /// caused by limited clock resolution.
    EqualDrawables {
        /// Category name.
        category: String,
        /// How many coincide.
        count: usize,
        /// The shared start time.
        t0: f64,
        /// The shared end time.
        t1: f64,
    },
    /// A state whose end event carries an earlier timestamp than its
    /// start (out-of-order or clock-anomalous records); the converter
    /// normalizes the interval so the file stays displayable.
    BackwardState {
        /// Rank whose log was anomalous.
        rank: u32,
        /// Category name.
        name: String,
        /// The (earlier) end timestamp seen.
        end: f64,
        /// The (later) start timestamp seen.
        start: f64,
    },
    /// An arrow that goes backwards in time (receive before send) —
    /// clock drift that synchronization failed to remove.
    BackwardArrow {
        /// Sender rank.
        src: u32,
        /// Receiver rank.
        dst: u32,
        /// Tag.
        tag: u32,
        /// Send time.
        start: f64,
        /// Receive time.
        end: f64,
    },
    /// A rank terminated abnormally; the salvage converter drew a
    /// terminal state rectangle on its timeline.
    RankFailure {
        /// The failed rank.
        rank: u32,
        /// How it failed.
        kind: FailureKind,
        /// The failure payload or detector description.
        detail: String,
    },
    /// The run-level failure diagnosis, embedded verbatim so the viewer
    /// can show *why* the timeline ends in a terminal state.
    FailureDiagnosis {
        /// The diagnosis text (may be multi-line).
        text: String,
    },
    /// The input log was torn; only a prefix was recovered.
    SalvagedLog {
        /// Bytes of the CLOG2 input that decoded cleanly.
        bytes_recovered: usize,
        /// Records recovered across all ranks.
        records_recovered: usize,
    },
}

impl std::fmt::Display for ConvertWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConvertWarning::UnclosedState { rank, name, start } => {
                write!(
                    f,
                    "rank {rank}: state '{name}' opened at {start:.6}s never closed"
                )
            }
            ConvertWarning::UnmatchedEnd { rank, id, ts } => {
                write!(
                    f,
                    "rank {rank}: end event {id} at {ts:.6}s has no open state"
                )
            }
            ConvertWarning::UnknownEventId { rank, id } => {
                write!(f, "rank {rank}: event id {id} has no definition")
            }
            ConvertWarning::UnmatchedSend { src, dst, tag } => {
                write!(f, "send {src}->{dst} tag {tag} has no matching receive")
            }
            ConvertWarning::UnmatchedRecv { src, dst, tag } => {
                write!(f, "receive {src}->{dst} tag {tag} has no matching send")
            }
            ConvertWarning::EqualDrawables {
                category,
                count,
                t0,
                t1,
            } => {
                write!(
                    f,
                    "Equal Drawables: {count} '{category}' objects share [{t0:.9}, {t1:.9}]"
                )
            }
            ConvertWarning::BackwardState {
                rank,
                name,
                end,
                start,
            } => {
                write!(
                    f,
                    "rank {rank}: state '{name}' ends at {end:.9} before it starts at {start:.9}; normalized"
                )
            }
            ConvertWarning::BackwardArrow {
                src,
                dst,
                tag,
                start,
                end,
            } => {
                write!(
                    f,
                    "arrow {src}->{dst} tag {tag} goes backward in time ({start:.9} -> {end:.9})"
                )
            }
            ConvertWarning::RankFailure { rank, kind, detail } => {
                write!(f, "rank {rank} {kind}: {detail}")
            }
            ConvertWarning::FailureDiagnosis { text } => write!(f, "diagnosis: {text}"),
            ConvertWarning::SalvagedLog {
                bytes_recovered,
                records_recovered,
            } => {
                write!(
                    f,
                    "salvaged torn log: {records_recovered} records ({bytes_recovered} bytes) recovered"
                )
            }
        }
    }
}

/// How a failed rank's run ended, as rendered on its timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The rank panicked or was aborted mid-run.
    Aborted,
    /// The deadlock (or stall) detector convicted the rank.
    Deadlocked,
}

impl FailureKind {
    /// The synthetic terminal category's display name.
    pub fn category_name(self) -> &'static str {
        match self {
            FailureKind::Aborted => "ABORTED",
            FailureKind::Deadlocked => "DEADLOCKED",
        }
    }

    fn color(self) -> Color {
        match self {
            FailureKind::Aborted => Color::DARK_RED,
            FailureKind::Deadlocked => Color::ORANGE,
        }
    }

    fn slot(self) -> usize {
        match self {
            FailureKind::Aborted => 0,
            FailureKind::Deadlocked => 1,
        }
    }
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.category_name())
    }
}

/// One failed rank's post-mortem, as established by the supervisor
/// ([`minimpi`]'s `RankFailure`) or the deadlock detector.
#[derive(Debug, Clone, PartialEq)]
pub struct RankVerdict {
    /// The failed rank.
    pub rank: u32,
    /// How it failed.
    pub kind: FailureKind,
    /// Panic payload or detector description; drawn (clamped) as the
    /// terminal state's info text.
    pub detail: String,
}

/// Everything the salvage converter embeds beyond the log itself: which
/// ranks failed and how, the detector's diagnosis, and how much of a
/// torn input was recovered.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SalvageReport {
    /// Per-rank failure verdicts; each yields a terminal state.
    pub verdicts: Vec<RankVerdict>,
    /// The run-level diagnosis (e.g. the deadlock report), embedded
    /// verbatim in the file's warning list.
    pub diagnosis: Option<String>,
    /// Records recovered from a torn input (0 if the log was whole).
    pub records_recovered: usize,
    /// Bytes recovered from a torn input.
    pub bytes_recovered: usize,
    /// Whether the input log was torn (stopped at a partial frame).
    pub truncated: bool,
}

/// Info-text clamp for terminal states: long panic payloads stay
/// readable in a state rectangle; the full text lives in the warnings.
fn clamp_terminal_text(s: &str) -> String {
    const MAX: usize = 96;
    if s.len() <= MAX {
        return s.to_string();
    }
    let mut cut = MAX;
    while !s.is_char_boundary(cut) {
        cut -= 1;
    }
    format!("{}…", &s[..cut])
}

/// What to do when the input log is torn or comes from a failed run.
#[derive(Debug, Clone, Default)]
pub enum TornPolicy {
    /// Fail on malformed input (the default). Sources parse strictly;
    /// a truncated stream is an error, not a best-effort file.
    #[default]
    Strict,
    /// Salvage mode: recover what decodes cleanly, draw terminal states
    /// for the failed ranks, and embed the report's forensics as
    /// warnings. An empty report converts byte-identically to strict
    /// mode on a whole log.
    Salvage(SalvageReport),
}

/// A completed conversion: the SLOG2 file plus its typed diagnostics.
#[derive(Debug)]
pub struct Conversion {
    /// The converted file.
    pub file: Slog2File,
    /// Typed diagnostics (also embedded in `file.warnings` as text).
    pub warnings: Vec<ConvertWarning>,
}

/// The unified conversion entry point: a builder over every tuning knob,
/// driving any [`TraceSource`].
///
/// The same builder converts in memory ([`convert`](Self::convert)) or
/// out-of-core to a file under a memory budget
/// ([`convert_to_path`](Self::convert_to_path)); output bytes are
/// identical across source kinds, parallelism settings, and memory
/// budgets.
#[derive(Debug, Clone)]
pub struct Converter {
    pub(crate) frame_capacity: usize,
    pub(crate) max_depth: u32,
    pub(crate) timeline_names: Option<Vec<String>>,
    pub(crate) parallelism: usize,
    pub(crate) obs: Option<Arc<obs::Obs>>,
    pub(crate) torn: TornPolicy,
    pub(crate) memory_budget: Option<usize>,
    pub(crate) spill_dir: Option<std::path::PathBuf>,
}

impl Default for Converter {
    fn default() -> Self {
        Converter {
            frame_capacity: 64,
            max_depth: 16,
            timeline_names: None,
            parallelism: 0,
            obs: None,
            torn: TornPolicy::Strict,
            memory_budget: None,
            spill_dir: None,
        }
    }
}

impl Converter {
    /// A converter with default settings (frame capacity 64, depth 16,
    /// auto parallelism, strict torn-input policy).
    pub fn new() -> Converter {
        Converter::default()
    }

    /// Bridge from the legacy [`ConvertOptions`].
    pub fn from_options(opts: &ConvertOptions) -> Converter {
        Converter {
            frame_capacity: opts.frame_capacity,
            max_depth: opts.max_depth,
            timeline_names: opts.timeline_names.clone(),
            parallelism: opts.parallelism,
            obs: opts.obs.clone(),
            ..Converter::default()
        }
    }

    /// Frame-tree split threshold ("frame size").
    pub fn frame_capacity(mut self, capacity: usize) -> Converter {
        self.frame_capacity = capacity;
        self
    }

    /// Frame-tree depth limit.
    pub fn max_depth(mut self, depth: u32) -> Converter {
        self.max_depth = depth;
        self
    }

    /// Timeline display names (defaults to `PI_MAIN`, `P1`, …).
    pub fn timeline_names(mut self, names: Vec<String>) -> Converter {
        self.timeline_names = Some(names);
        self
    }

    /// Worker threads: `0` = auto, `1` = serial, `n` = cap. Output is
    /// byte-identical at every setting.
    pub fn parallelism(mut self, workers: usize) -> Converter {
        self.parallelism = workers;
        self
    }

    /// Attach a metrics registry + tracer.
    pub fn observability(mut self, obs: Arc<obs::Obs>) -> Converter {
        self.obs = Some(obs);
        self
    }

    /// Torn-input policy; see [`TornPolicy`].
    pub fn on_torn(mut self, policy: TornPolicy) -> Converter {
        self.torn = policy;
        self
    }

    /// Bound the drawable working set of
    /// [`convert_to_path`](Self::convert_to_path) to roughly `bytes`
    /// (sorted runs spill to disk past the budget). Ignored by the
    /// in-memory [`convert`](Self::convert).
    pub fn memory_budget(mut self, bytes: usize) -> Converter {
        self.memory_budget = Some(bytes);
        self
    }

    /// Directory for out-of-core spill files (defaults to the system
    /// temp directory).
    pub fn spill_dir(mut self, dir: std::path::PathBuf) -> Converter {
        self.spill_dir = Some(dir);
        self
    }

    /// The concrete worker count [`convert`](Self::convert) will use:
    /// `0` resolves to the machine's available parallelism.
    pub fn effective_parallelism(&self) -> usize {
        match self.parallelism {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        }
    }

    /// Convert `src` in memory.
    ///
    /// Output bytes are identical for every source kind describing the
    /// same log, at every parallelism setting.
    pub fn convert(&self, src: TraceSource<'_>) -> Result<Conversion, StreamError> {
        match &self.torn {
            TornPolicy::Strict => match src {
                TraceSource::InMemory(clog) => Ok(self.convert_clog(clog, None)),
                TraceSource::Bytes(bytes) => self.convert_image(bytes),
                TraceSource::Mmap(map) => self.convert_image(&map),
                TraceSource::Reader(r) => self.convert_stream(r),
            },
            TornPolicy::Salvage(report) => {
                let report = report.clone();
                match src {
                    TraceSource::InMemory(clog) => Ok(self.convert_clog(clog, Some(&report))),
                    TraceSource::Bytes(bytes) => Ok(self.convert_salvaged_bytes(bytes, &report)),
                    TraceSource::Mmap(map) => Ok(self.convert_salvaged_bytes(&map, &report)),
                    TraceSource::Reader(mut r) => {
                        let mut bytes = Vec::new();
                        r.read_to_end(&mut bytes)?;
                        Ok(self.convert_salvaged_bytes(&bytes, &report))
                    }
                }
            }
        }
    }

    /// Convert an already-decoded log, optionally in salvage mode.
    pub(crate) fn convert_clog(
        &self,
        clog: &Clog2File,
        report: Option<&SalvageReport>,
    ) -> Conversion {
        let workers = self.effective_parallelism();
        let mut table = build_categories(&clog.state_defs, &clog.event_defs);
        let terminal_cats = report.map(|r| register_terminal_categories(&mut table, r));
        let blocks: Vec<BlockInput<'_>> = clog
            .blocks
            .iter()
            .map(|(&rank, records)| BlockInput::Records(rank, records.as_slice()))
            .collect();
        let mut shards = {
            let _span = self.obs.as_deref().map(|o| o.span("scan", "convert", 0));
            scan_sources(&blocks, &table, workers, self.obs.as_deref())
        };
        if let (Some(report), Some(cats)) = (report, terminal_cats) {
            shards.push(terminal_shard(clog, report, &cats));
        }
        self.finish(shards, table, clog.nranks, workers)
    }

    /// Convert a raw CLOG2 byte image, scanning records in place.
    fn convert_image(&self, bytes: &[u8]) -> Result<Conversion, StreamError> {
        let workers = self.effective_parallelism();
        let image = Clog2File::parse_image(bytes, CHUNK_RECORDS)?;
        let table = build_categories(&image.state_defs, &image.event_defs);
        let blocks: Vec<BlockInput<'_>> = image.blocks.iter().map(BlockInput::Image).collect();
        let shards = {
            let _span = self.obs.as_deref().map(|o| o.span("scan", "convert", 0));
            scan_sources(&blocks, &table, workers, self.obs.as_deref())
        };
        Ok(self.finish(shards, table, image.nranks, workers))
    }

    /// Convert a byte stream, holding one block in memory at a time.
    pub(crate) fn convert_stream<R: Read>(&self, src: R) -> Result<Conversion, StreamError> {
        let workers = self.effective_parallelism();
        let mut blocks = Clog2Blocks::open(src)?;
        let table = build_categories(&blocks.state_defs, &blocks.event_defs);
        let nranks = blocks.nranks;
        let mut shards: BTreeMap<u32, RankScan> = BTreeMap::new();
        {
            let _span = self.obs.as_deref().map(|o| o.span("scan", "convert", 0));
            for item in &mut blocks {
                let (rank, records) = item?;
                let input = [BlockInput::Records(rank, records.as_slice())];
                let scan = scan_sources(&input, &table, workers, self.obs.as_deref())
                    .pop()
                    .expect("one block scanned");
                shards.insert(rank, scan);
            }
        }
        blocks.finish()?;
        Ok(self.finish(shards.into_values().collect(), table, nranks, workers))
    }

    /// Salvage a (possibly torn) byte image: recover the clean prefix,
    /// then convert it with the report's forensics.
    fn convert_salvaged_bytes(&self, bytes: &[u8], report: &SalvageReport) -> Conversion {
        let salvaged = Clog2File::salvage_bytes(bytes);
        self.convert_clog(&salvaged.file, Some(report))
    }

    /// Run the post-scan phases — shard merge, arrow matching,
    /// diagnostics, tree build, file assembly — over shards given in
    /// ascending rank order.
    fn finish(
        &self,
        mut shards: Vec<RankScan>,
        table: CategoryTable,
        nranks: u32,
        workers: usize,
    ) -> Conversion {
        let CategoryTable {
            categories,
            arrow_cat,
            ..
        } = table;
        let obs = self.obs.as_deref();

        // Merge: concatenation in rank order reproduces the serial
        // scan's drawable and warning sequences; the per-shard send/recv
        // lists are key-disjoint (each key names its own rank), so
        // rank-ordered merging carries every FIFO queue over intact.
        let mut cols = DrawableColumns::new();
        let mut warnings: Vec<ConvertWarning> = Vec::new();
        {
            let _span = obs.map(|o| o.span("merge", "convert", 0));
            for s in &mut shards {
                cols.append(&s.cols);
                s.cols = DrawableColumns::new();
                warnings.append(&mut s.warnings);
            }
        }
        let scan_warnings = warnings.len();

        // Match sends with receives (FIFO per (src, dst, tag, size) key).
        {
            let _span = obs.map(|o| o.span("arrow-match", "convert", 0));
            match_all_arrows(&shards, arrow_cat, workers, obs, &mut cols, &mut warnings);
        }

        // Equal-Drawables detection: same category, bit-identical
        // endpoints (and same placement).
        {
            let _span = obs.map(|o| o.span("diagnose", "convert", 0));
            detect_equal_drawables(&cols, &categories, workers, &mut warnings);
        }

        // Post-scan totals. The arrow count and the warning sequence are
        // deterministic at any parallelism, so attributing them to shard
        // 0 keeps the merged snapshot thread-count independent.
        if let Some(o) = obs {
            let s = o.shard(0);
            s.counter("convert.drawables.arrow").add(cols.n_arrows());
            s.counter("convert.warnings")
                .add((warnings.len() - scan_warnings) as u64);
        }

        // Global range and tree. The range folds min/max in row order —
        // the same left-to-right fold the serial converter used.
        let _tree_span = obs.map(|o| o.span("tree-build", "convert", 0));
        let range = fold_range(&cols);
        let timelines = self.timeline_names.clone().unwrap_or_else(|| {
            (0..nranks)
                .map(|r| {
                    if r == 0 {
                        "PI_MAIN".to_string()
                    } else {
                        format!("P{r}")
                    }
                })
                .collect()
        });
        let tree = FrameTree::build_columnar(
            &cols,
            range.t0,
            range.t1,
            self.frame_capacity,
            self.max_depth,
            workers,
        );
        let file = Slog2File {
            timelines,
            categories,
            range,
            warnings: warnings.iter().map(|w| w.to_string()).collect(),
            tree,
        };
        Conversion { file, warnings }
    }
}

/// The drawables' global `[min start, max end]` range, `[0, 0]` when
/// empty — the fold `FrameTreeBuilder` performs, over columnar rows.
fn fold_range(cols: &DrawableColumns) -> TimeWindow {
    let mut t0 = f64::INFINITY;
    let mut t1 = f64::NEG_INFINITY;
    for i in 0..cols.len() {
        t0 = t0.min(cols.start(i));
        t1 = t1.max(cols.end(i));
    }
    if t0.is_finite() {
        TimeWindow::new(t0, t1)
    } else {
        TimeWindow::new(0.0, 0.0)
    }
}

/// Append the synthetic terminal categories, in fixed ABORTED-then-
/// DEADLOCKED order and only when some verdict needs them: index
/// assignment stays deterministic and the no-failure file is unchanged.
pub(crate) fn register_terminal_categories(
    table: &mut CategoryTable,
    report: &SalvageReport,
) -> [Option<CategoryId>; 2] {
    let mut terminal_cats: [Option<CategoryId>; 2] = [None, None];
    for kind in [FailureKind::Aborted, FailureKind::Deadlocked] {
        if report.verdicts.iter().any(|v| v.kind == kind) {
            let idx = CategoryId(table.categories.len() as u32);
            table.categories.push(Category {
                index: idx,
                name: kind.category_name().into(),
                color: kind.color(),
                kind: CategoryKind::State,
            });
            terminal_cats[kind.slot()] = Some(idx);
        }
    }
    terminal_cats
}

/// Build the synthetic final shard carrying the terminal drawables and
/// the forensic warnings; concatenating it last keeps everything the
/// plain pipeline emits in its usual order.
pub(crate) fn terminal_shard(
    clog: &Clog2File,
    report: &SalvageReport,
    terminal_cats: &[Option<CategoryId>; 2],
) -> RankScan {
    // The log's time extent and each rank's last recovered timestamp,
    // straight from the raw records (drawable endpoints never exceed
    // these, so terminal states keep the file's range intact).
    let mut t_min = f64::INFINITY;
    let mut t_max = f64::NEG_INFINITY;
    let mut rank_last: HashMap<u32, f64> = HashMap::new();
    for (&rank, records) in &clog.blocks {
        for rec in records {
            let ts = rec.ts();
            t_min = t_min.min(ts);
            t_max = t_max.max(ts);
            let last = rank_last.entry(rank).or_insert(f64::NEG_INFINITY);
            *last = last.max(ts);
        }
    }

    let mut terminal = RankScan::empty(u32::MAX);
    if report.truncated {
        terminal.warnings.push(ConvertWarning::SalvagedLog {
            bytes_recovered: report.bytes_recovered,
            records_recovered: report.records_recovered,
        });
    }
    for v in &report.verdicts {
        terminal.warnings.push(ConvertWarning::RankFailure {
            rank: v.rank,
            kind: v.kind,
            detail: v.detail.clone(),
        });
        if v.rank >= clog.nranks {
            // No timeline to draw on; the warning above still records it.
            continue;
        }
        let cat = terminal_cats[v.kind.slot()].expect("terminal category registered above");
        let start = rank_last
            .get(&v.rank)
            .copied()
            .unwrap_or(if t_min.is_finite() { t_min } else { 0.0 });
        let end = if t_max.is_finite() {
            t_max.max(start)
        } else {
            start
        };
        terminal.cols.push_state(
            cat,
            TimelineId(v.rank),
            start,
            end,
            0,
            &clamp_terminal_text(&v.detail),
        );
    }
    if let Some(diag) = &report.diagnosis {
        terminal
            .warnings
            .push(ConvertWarning::FailureDiagnosis { text: diag.clone() });
    }
    terminal
}

/// Group a key-sorted `(key, ts)` list into contiguous per-key ranges.
fn key_groups(list: &[(MsgKey, f64)]) -> Vec<(MsgKey, Range<usize>)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < list.len() {
        let k = list[i].0;
        let mut j = i + 1;
        while j < list.len() && list[j].0 == k {
            j += 1;
        }
        out.push((k, i..j));
        i = j;
    }
    out
}

/// K-way merge the per-shard key-sorted recv lists into one global
/// key-sorted list. Shard keys are disjoint (each key's `dst` is the
/// owning rank), so within a key the timestamps keep one shard's record
/// order — the FIFO queue the matcher expects. Sends need no heap: each
/// send key leads with the owning rank, so rank-ordered concatenation is
/// already key-sorted.
fn kway_merge_recvs(shards: &[RankScan]) -> Vec<(MsgKey, f64)> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let total: usize = shards.iter().map(|s| s.recvs.len()).sum();
    let mut out = Vec::with_capacity(total);
    let mut cursors = vec![0usize; shards.len()];
    let mut heap: BinaryHeap<Reverse<(MsgKey, usize)>> = BinaryHeap::new();
    for (si, s) in shards.iter().enumerate() {
        if let Some(&(k, _)) = s.recvs.first() {
            heap.push(Reverse((k, si)));
        }
    }
    while let Some(Reverse((_, si))) = heap.pop() {
        let i = cursors[si];
        out.push(shards[si].recvs[i]);
        cursors[si] += 1;
        if let Some(&(k, _)) = shards[si].recvs.get(cursors[si]) {
            heap.push(Reverse((k, si)));
        }
    }
    out
}

/// FIFO-match one key's send timestamps against its receive timestamps.
///
/// Pairing by index is exactly the serial `pop_front` loop: arrow `i`
/// joins `sends[i]` to `recvs[i]`, then surplus sends and surplus
/// receives each warn once, in that order.
fn match_arrows_for_key(
    key: MsgKey,
    send_ts: &[f64],
    recv_ts: &[f64],
    arrow_cat: CategoryId,
    cols: &mut DrawableColumns,
    warnings: &mut Vec<ConvertWarning>,
) {
    let (src, dst, tag, size) = key;
    let matched = send_ts.len().min(recv_ts.len());
    for (&s, &r) in send_ts.iter().zip(recv_ts.iter()) {
        if r < s {
            warnings.push(ConvertWarning::BackwardArrow {
                src,
                dst,
                tag,
                start: s,
                end: r,
            });
        }
        cols.push_arrow(arrow_cat, TimelineId(src), TimelineId(dst), s, r, tag, size);
    }
    for _ in matched..send_ts.len() {
        warnings.push(ConvertWarning::UnmatchedSend { src, dst, tag });
    }
    for _ in matched..recv_ts.len() {
        warnings.push(ConvertWarning::UnmatchedRecv { src, dst, tag });
    }
}

/// Match sends with receives, sharding the (key-ordered) send key
/// groups into contiguous chunks across up to `workers` threads. Chunk
/// outputs concatenate in chunk order, so the drawable and warning
/// sequences equal the serial key-order walk. Receive keys no send key
/// ever touches warn at the end, in key order — exactly the serial
/// leftover drain.
pub(crate) fn match_all_arrows(
    shards: &[RankScan],
    arrow_cat: CategoryId,
    workers: usize,
    obs: Option<&obs::Obs>,
    cols: &mut DrawableColumns,
    warnings: &mut Vec<ConvertWarning>,
) {
    let sends: Vec<(MsgKey, f64)> = shards
        .iter()
        .flat_map(|s| s.sends.iter().copied())
        .collect();
    let recvs = kway_merge_recvs(shards);
    let send_groups = key_groups(&sends);
    let recv_groups = key_groups(&recvs);

    // Pair each send key group with its recv group (if any), walking
    // both key-sorted group lists with two pointers.
    let mut consumed = vec![false; recv_groups.len()];
    let mut pairs: Vec<(MsgKey, Range<usize>, Option<Range<usize>>)> =
        Vec::with_capacity(send_groups.len());
    let mut rp = 0usize;
    for (key, srange) in &send_groups {
        while rp < recv_groups.len() && recv_groups[rp].0 < *key {
            rp += 1;
        }
        let rrange = if rp < recv_groups.len() && recv_groups[rp].0 == *key {
            consumed[rp] = true;
            let r = recv_groups[rp].1.clone();
            rp += 1;
            Some(r)
        } else {
            None
        };
        pairs.push((*key, srange.clone(), rrange));
    }

    let match_one = |(key, srange, rrange): &(MsgKey, Range<usize>, Option<Range<usize>>),
                     cols: &mut DrawableColumns,
                     warnings: &mut Vec<ConvertWarning>| {
        let send_ts: Vec<f64> = sends[srange.clone()].iter().map(|&(_, t)| t).collect();
        let recv_ts: Vec<f64> = rrange
            .clone()
            .map(|r| recvs[r].iter().map(|&(_, t)| t).collect())
            .unwrap_or_default();
        match_arrows_for_key(*key, &send_ts, &recv_ts, arrow_cat, cols, warnings);
    };

    let workers = workers.min(pairs.len().max(1));
    if workers <= 1 {
        for pair in &pairs {
            match_one(pair, cols, warnings);
        }
    } else {
        let chunk = pairs.len().div_ceil(workers);
        std::thread::scope(|s| {
            let handles: Vec<_> = pairs
                .chunks(chunk)
                .enumerate()
                .map(|(w, chunk)| {
                    let match_one = &match_one;
                    s.spawn(move || {
                        let _span = obs.map(|o| o.span("arrow-match.shard", "convert", w as u32));
                        let mut local_cols = DrawableColumns::new();
                        let mut local_warns = Vec::new();
                        for pair in chunk {
                            match_one(pair, &mut local_cols, &mut local_warns);
                        }
                        (local_cols, local_warns)
                    })
                })
                .collect();
            for h in handles {
                let (local_cols, local_warns) = h.join().expect("arrow worker panicked");
                cols.append(&local_cols);
                warnings.extend(local_warns);
            }
        });
    }

    // Receives whose key no send ever matched, in key order.
    for (gi, (key, range)) in recv_groups.iter().enumerate() {
        if !consumed[gi] {
            let (src, dst, tag, _) = *key;
            for _ in range.clone() {
                warnings.push(ConvertWarning::UnmatchedRecv { src, dst, tag });
            }
        }
    }
}

/// Equal-Drawables group key: (category, placement, bit-exact interval).
type EqualKey = (u32, u32, u32, u64, u64);

fn detect_equal_drawables(
    cols: &DrawableColumns,
    categories: &[Category],
    workers: usize,
    warnings: &mut Vec<ConvertWarning>,
) {
    // Count occurrences per key. With multiple workers, each counts a
    // contiguous row chunk and the integer counts merge associatively —
    // chunk order cannot affect a sum, and the report below is sorted.
    const PAR_THRESHOLD: usize = 4096;
    let n = cols.len();
    let mut groups: HashMap<EqualKey, usize, FnvBuild> = HashMap::default();
    if workers <= 1 || n < PAR_THRESHOLD {
        for i in 0..n {
            *groups.entry(cols.equal_key(i)).or_insert(0) += 1;
        }
    } else {
        let chunk = n.div_ceil(workers);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .step_by(chunk)
                .map(|lo| {
                    let hi = (lo + chunk).min(n);
                    s.spawn(move || {
                        let mut local: HashMap<EqualKey, usize, FnvBuild> = HashMap::default();
                        for i in lo..hi {
                            *local.entry(cols.equal_key(i)).or_insert(0) += 1;
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                for (key, count) in h.join().expect("count worker panicked") {
                    *groups.entry(key).or_insert(0) += count;
                }
            }
        });
    }
    let mut dups: Vec<_> = groups.into_iter().filter(|(_, n)| *n > 1).collect();
    dups.sort_by_key(|((cat, tl, tl2, s, e), _)| (*cat, *tl, *tl2, *s, *e));
    for ((cat, _, _, s, e), n) in dups {
        warnings.push(ConvertWarning::EqualDrawables {
            category: categories
                .get(cat as usize)
                .map(|c| c.name.clone())
                .unwrap_or_else(|| format!("cat{cat}")),
            count: n,
            t0: f64::from_bits(s),
            t1: f64::from_bits(e),
        });
    }
}

/// Convert a merged CLOG2 log into an SLOG2 file, reporting diagnostics.
#[deprecated(note = "use `Converter::new().convert(TraceSource::InMemory(clog))`")]
pub fn convert(clog: &Clog2File, opts: &ConvertOptions) -> (Slog2File, Vec<ConvertWarning>) {
    let conv = Converter::from_options(opts).convert_clog(clog, None);
    (conv.file, conv.warnings)
}

/// Convert a (possibly torn) CLOG2 log from a failed run into a valid,
/// viewable SLOG2 file.
#[deprecated(note = "use `Converter::new().on_torn(TornPolicy::Salvage(report)).convert(..)`")]
pub fn convert_salvaged(
    clog: &Clog2File,
    report: &SalvageReport,
    opts: &ConvertOptions,
) -> (Slog2File, Vec<ConvertWarning>) {
    let conv = Converter::from_options(opts).convert_clog(clog, Some(report));
    (conv.file, conv.warnings)
}

/// Convert a CLOG2 byte stream without materializing the whole file.
#[deprecated(note = "use `Converter::new().convert(TraceSource::reader(src))`")]
pub fn convert_reader<R: Read>(
    src: R,
    opts: &ConvertOptions,
) -> Result<(Slog2File, Vec<ConvertWarning>), StreamError> {
    let conv = Converter::from_options(opts).convert_stream(src)?;
    Ok((conv.file, conv.warnings))
}
#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::drawable::Drawable;
    use mpelog::{Color, Logger};

    /// Build a two-rank CLOG file through the real Logger API.
    fn sample_clog() -> Clog2File {
        let mut lg0 = Logger::new(0);
        let mut lg1 = Logger::new(1);
        // Same definition order on both ranks (MPE rule).
        let (w_s, w_e) = lg0.define_state("PI_Write", Color::GREEN);
        let (r_s, r_e) = lg0.define_state("PI_Read", Color::RED);
        let arr = lg0.define_event("arrival", Color::YELLOW);
        let _ = lg1.define_state("PI_Write", Color::GREEN);
        let _ = lg1.define_state("PI_Read", Color::RED);
        let _ = lg1.define_event("arrival", Color::YELLOW);

        // Rank 0 writes (1.0..1.2), message flies, rank 1 reads (0.9..1.4).
        lg0.log_event(1.0, w_s, "Line: 10");
        lg0.log_send(1.1, 1, 5, 8);
        lg0.log_event(1.2, w_e, "");
        lg1.log_event(0.9, r_s, "Line: 20");
        lg1.log_receive(1.3, 0, 5, 8);
        lg1.log_event(1.3, arr, "Chan: C1");
        lg1.log_event(1.4, r_e, "");

        let mut blocks = std::collections::BTreeMap::new();
        blocks.insert(0u32, lg0.records().to_vec());
        blocks.insert(1u32, lg1.records().to_vec());
        Clog2File {
            nranks: 2,
            state_defs: lg0.state_defs().to_vec(),
            event_defs: lg0.event_defs().to_vec(),
            blocks,
        }
    }

    #[test]
    fn basic_conversion_produces_expected_objects() {
        let (file, warnings) = convert(&sample_clog(), &ConvertOptions::default());
        assert!(warnings.is_empty(), "{warnings:?}");
        let ds = file.tree.query(crate::TimeWindow::ALL);
        let states = ds
            .iter()
            .filter(|d| matches!(d, Drawable::State(_)))
            .count();
        let events = ds
            .iter()
            .filter(|d| matches!(d, Drawable::Event(_)))
            .count();
        let arrows = ds
            .iter()
            .filter(|d| matches!(d, Drawable::Arrow(_)))
            .count();
        assert_eq!((states, events, arrows), (2, 1, 1));
        assert_eq!(file.range, crate::TimeWindow::new(0.9, 1.4));
        assert_eq!(
            file.timelines,
            vec!["PI_MAIN".to_string(), "P1".to_string()]
        );
    }

    #[test]
    fn arrow_connects_send_to_receive() {
        let (file, _) = convert(&sample_clog(), &ConvertOptions::default());
        let ds = file.tree.query(crate::TimeWindow::ALL);
        let arrow = ds
            .iter()
            .find_map(|d| match d {
                Drawable::Arrow(a) => Some(a),
                _ => None,
            })
            .unwrap();
        assert_eq!(arrow.from_timeline, TimelineId(0));
        assert_eq!(arrow.to_timeline, TimelineId(1));
        assert_eq!(arrow.start, 1.1);
        assert_eq!(arrow.end, 1.3);
        assert_eq!(arrow.tag, 5);
        assert_eq!(arrow.size, 8);
    }

    #[test]
    fn nested_states_get_levels() {
        let mut lg = Logger::new(0);
        let (a_s, a_e) = lg.define_state("A", Color::GRAY);
        let (b_s, b_e) = lg.define_state("B", Color::RED);
        lg.log_event(3.0, a_s, "");
        lg.log_event(5.0, b_s, "");
        lg.log_event(8.0, b_e, "");
        lg.log_event(20.0, a_e, "");
        let mut blocks = std::collections::BTreeMap::new();
        blocks.insert(0u32, lg.records().to_vec());
        let clog = Clog2File {
            nranks: 1,
            state_defs: lg.state_defs().to_vec(),
            event_defs: vec![],
            blocks,
        };
        let (file, warnings) = convert(&clog, &ConvertOptions::default());
        assert!(warnings.is_empty());
        let ds = file.tree.query(crate::TimeWindow::new(0.0, 100.0));
        let mut levels: Vec<(String, u32)> = ds
            .iter()
            .filter_map(|d| match d {
                Drawable::State(s) => Some((
                    file.categories[s.category.as_usize()].name.clone(),
                    s.nest_level,
                )),
                _ => None,
            })
            .collect();
        levels.sort();
        assert_eq!(levels, vec![("A".to_string(), 0), ("B".to_string(), 1)]);
    }

    #[test]
    fn unclosed_state_is_warned_and_closed_at_log_end() {
        let mut lg = Logger::new(0);
        let (a_s, _a_e) = lg.define_state("A", Color::GRAY);
        let ev = lg.define_event("tick", Color::YELLOW);
        lg.log_event(1.0, a_s, "");
        lg.log_event(9.0, ev, "");
        let mut blocks = std::collections::BTreeMap::new();
        blocks.insert(0u32, lg.records().to_vec());
        let clog = Clog2File {
            nranks: 1,
            state_defs: lg.state_defs().to_vec(),
            event_defs: lg.event_defs().to_vec(),
            blocks,
        };
        let (file, warnings) = convert(&clog, &ConvertOptions::default());
        assert!(matches!(
            warnings[0],
            ConvertWarning::UnclosedState { rank: 0, ref name, start } if name == "A" && start == 1.0
        ));
        let ds = file.tree.query(crate::TimeWindow::new(0.0, 100.0));
        let s = ds
            .iter()
            .find_map(|d| match d {
                Drawable::State(s) => Some(s),
                _ => None,
            })
            .unwrap();
        assert_eq!(s.end, 9.0);
    }

    #[test]
    fn unmatched_end_is_warned() {
        let mut lg = Logger::new(0);
        let (_a_s, a_e) = lg.define_state("A", Color::GRAY);
        lg.log_event(2.0, a_e, "");
        let mut blocks = std::collections::BTreeMap::new();
        blocks.insert(0u32, lg.records().to_vec());
        let clog = Clog2File {
            nranks: 1,
            state_defs: lg.state_defs().to_vec(),
            event_defs: vec![],
            blocks,
        };
        let (_, warnings) = convert(&clog, &ConvertOptions::default());
        assert!(matches!(warnings[0], ConvertWarning::UnmatchedEnd { .. }));
    }

    #[test]
    fn unmatched_send_and_recv_are_warned() {
        let mut lg0 = Logger::new(0);
        let mut lg1 = Logger::new(1);
        lg0.log_send(1.0, 1, 7, 16); // never received
        lg1.log_receive(2.0, 0, 8, 16); // never sent
        let mut blocks = std::collections::BTreeMap::new();
        blocks.insert(0u32, lg0.records().to_vec());
        blocks.insert(1u32, lg1.records().to_vec());
        let clog = Clog2File {
            nranks: 2,
            state_defs: vec![],
            event_defs: vec![],
            blocks,
        };
        let (_, warnings) = convert(&clog, &ConvertOptions::default());
        assert!(warnings
            .iter()
            .any(|w| matches!(w, ConvertWarning::UnmatchedSend { tag: 7, .. })));
        assert!(warnings
            .iter()
            .any(|w| matches!(w, ConvertWarning::UnmatchedRecv { tag: 8, .. })));
    }

    #[test]
    fn equal_drawables_detected_for_identical_timestamps() {
        // Two arrows with bit-identical endpoints — the quantized-clock
        // condition from the paper.
        let mut lg0 = Logger::new(0);
        let mut lg1 = Logger::new(1);
        lg0.log_send(1.0, 1, 5, 4);
        lg0.log_send(1.0, 1, 5, 4);
        lg1.log_receive(2.0, 0, 5, 4);
        lg1.log_receive(2.0, 0, 5, 4);
        let mut blocks = std::collections::BTreeMap::new();
        blocks.insert(0u32, lg0.records().to_vec());
        blocks.insert(1u32, lg1.records().to_vec());
        let clog = Clog2File {
            nranks: 2,
            state_defs: vec![],
            event_defs: vec![],
            blocks,
        };
        let (_, warnings) = convert(&clog, &ConvertOptions::default());
        assert!(
            warnings
                .iter()
                .any(|w| matches!(w, ConvertWarning::EqualDrawables { count: 2, .. })),
            "{warnings:?}"
        );
    }

    #[test]
    fn backward_arrow_is_warned() {
        let mut lg0 = Logger::new(0);
        let mut lg1 = Logger::new(1);
        lg0.log_send(5.0, 1, 1, 0);
        lg1.log_receive(4.0, 0, 1, 0); // drifted clock: recv "before" send
        let mut blocks = std::collections::BTreeMap::new();
        blocks.insert(0u32, lg0.records().to_vec());
        blocks.insert(1u32, lg1.records().to_vec());
        let clog = Clog2File {
            nranks: 2,
            state_defs: vec![],
            event_defs: vec![],
            blocks,
        };
        let (_, warnings) = convert(&clog, &ConvertOptions::default());
        assert!(warnings
            .iter()
            .any(|w| matches!(w, ConvertWarning::BackwardArrow { .. })));
    }

    #[test]
    fn empty_log_converts_cleanly() {
        let clog = Clog2File {
            nranks: 3,
            ..Default::default()
        };
        let (file, warnings) = convert(&clog, &ConvertOptions::default());
        assert!(warnings.is_empty());
        assert_eq!(file.range, crate::TimeWindow::new(0.0, 0.0));
        assert_eq!(file.total_drawables(), 0);
        assert_eq!(file.timelines.len(), 3);
    }

    #[test]
    fn custom_timeline_names_pass_through() {
        let clog = Clog2File {
            nranks: 2,
            ..Default::default()
        };
        let opts = ConvertOptions {
            timeline_names: Some(vec!["master".into(), "compressor".into()]),
            ..Default::default()
        };
        let (file, _) = convert(&clog, &opts);
        assert_eq!(
            file.timelines,
            vec!["master".to_string(), "compressor".to_string()]
        );
    }

    #[test]
    fn slog2_roundtrip_of_converted_file() {
        let (file, _) = convert(&sample_clog(), &ConvertOptions::default());
        let back = Slog2File::from_bytes(&file.to_bytes()).unwrap();
        assert_eq!(back, file);
    }

    /// A messy multi-rank log exercising every warning path: nesting,
    /// backward states, unmatched sends/recvs, equal drawables,
    /// unclosed states, unknown ids.
    fn messy_clog(nranks: u32) -> Clog2File {
        let mut loggers: Vec<Logger> = (0..nranks as usize).map(Logger::new).collect();
        let mut ids = Vec::new();
        for lg in &mut loggers {
            let s = lg.define_state("compute", Color::GREEN);
            let t = lg.define_state("io", Color::RED);
            let _ = lg.define_event("mark", Color::YELLOW);
            if ids.is_empty() {
                ids = vec![s.0, s.1, t.0, t.1];
            }
        }
        let n = nranks as usize;
        for (r, lg) in loggers.iter_mut().enumerate() {
            let base = r as f64;
            // Nested states, one backward.
            lg.log_event(base + 0.1, ids[0], "outer");
            lg.log_event(base + 0.2, ids[2], "inner");
            lg.log_event(base + 0.15, ids[3], ""); // backward io
            lg.log_event(base + 0.9, ids[1], "");
            // Ring messages; rank 0 also sends one nobody receives.
            let dst = (r + 1) % n;
            lg.log_send(base + 0.3, dst, 7, 64);
            lg.log_receive(base + 0.35, (r + n - 1) % n, 7, 64);
            if r == 0 {
                lg.log_send(base + 0.4, dst, 9, 8); // unmatched send
                lg.log_receive(base + 0.5, dst, 11, 8); // unmatched recv
                lg.log_event(base + 0.6, ids[0], "never closed"); // unclosed
            }
            // Equal drawables: identical start/end pairs.
            lg.log_event(base + 0.7, ids[2], "");
            lg.log_event(base + 0.72, ids[3], "");
            lg.log_event(base + 0.7, ids[2], "");
            lg.log_event(base + 0.72, ids[3], "");
        }
        let mut blocks = std::collections::BTreeMap::new();
        for (r, lg) in loggers.iter().enumerate() {
            blocks.insert(r as u32, lg.records().to_vec());
        }
        Clog2File {
            nranks,
            state_defs: loggers[0].state_defs().to_vec(),
            event_defs: loggers[0].event_defs().to_vec(),
            blocks,
        }
    }

    #[test]
    fn parallel_convert_is_byte_identical_to_serial() {
        for nranks in [1u32, 2, 5] {
            let clog = messy_clog(nranks);
            let serial_opts = ConvertOptions::default().with_parallelism(1);
            let (serial, serial_warn) = convert(&clog, &serial_opts);
            let serial_bytes = serial.to_bytes();
            assert!(!serial_warn.is_empty());
            for threads in [2usize, 3, 8] {
                let opts = ConvertOptions::default().with_parallelism(threads);
                let (par, par_warn) = convert(&clog, &opts);
                assert_eq!(par_warn, serial_warn, "{nranks} ranks, {threads} threads");
                assert_eq!(
                    par.to_bytes(),
                    serial_bytes,
                    "{nranks} ranks, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn metrics_totals_are_parallelism_independent() {
        // Satellite: the merged convert.* snapshot (counters AND
        // histogram buckets) must be identical at every worker count.
        let clog = messy_clog(5);
        let snap_at = |threads: usize| {
            let o = obs::Obs::handle();
            let opts = ConvertOptions::default()
                .with_parallelism(threads)
                .with_observability(o.clone());
            let _ = convert(&clog, &opts);
            o.snapshot()
        };
        let base = snap_at(1);
        assert!(base.counter("convert.records_scanned") > 0);
        assert!(base.counter("convert.drawables.arrow") > 0);
        assert!(base.counter("convert.warnings") > 0);
        for threads in [2usize, 8] {
            assert_eq!(snap_at(threads), base, "{threads} threads");
        }
    }

    #[test]
    fn streaming_convert_matches_whole_file() {
        let clog = messy_clog(4);
        let bytes = clog.to_bytes();
        for threads in [1usize, 4] {
            let opts = ConvertOptions::default().with_parallelism(threads);
            let (whole, whole_warn) = convert(&clog, &opts);
            let (streamed, stream_warn) = convert_reader(&bytes[..], &opts).unwrap();
            assert_eq!(stream_warn, whole_warn);
            assert_eq!(streamed.to_bytes(), whole.to_bytes());
        }
    }

    #[test]
    fn streaming_convert_propagates_truncation() {
        let clog = messy_clog(2);
        let bytes = clog.to_bytes();
        let err = convert_reader(&bytes[..bytes.len() - 6], &ConvertOptions::default());
        assert!(err.is_err());
    }

    #[test]
    fn parallelism_zero_resolves_to_a_worker_count() {
        let opts = ConvertOptions::default();
        assert_eq!(opts.parallelism, 0);
        assert!(opts.effective_parallelism() >= 1);
        assert_eq!(opts.clone().with_parallelism(3).effective_parallelism(), 3);
    }

    #[test]
    fn empty_salvage_report_converts_byte_identically() {
        let clog = sample_clog();
        let opts = ConvertOptions::default();
        let (plain, plain_warn) = convert(&clog, &opts);
        let (salvaged, salvage_warn) = convert_salvaged(&clog, &SalvageReport::default(), &opts);
        assert_eq!(salvage_warn, plain_warn);
        assert_eq!(salvaged.to_bytes(), plain.to_bytes());
    }

    #[test]
    fn salvaged_conversion_marks_failed_rank_and_validates() {
        let clog = sample_clog();
        let report = SalvageReport {
            verdicts: vec![RankVerdict {
                rank: 0,
                kind: FailureKind::Aborted,
                detail: "injected fault at send #2".into(),
            }],
            diagnosis: Some("rank 0 panicked (last op: send): injected fault at send #2".into()),
            records_recovered: 7,
            bytes_recovered: 120,
            truncated: true,
        };
        let (file, warnings) = convert_salvaged(&clog, &report, &ConvertOptions::default());
        assert!(
            crate::validate::validate(&file).is_empty(),
            "{:?}",
            crate::validate::validate(&file)
        );
        // The terminal category sits after the normal table, named and
        // typed as a state.
        let term = file.categories.last().unwrap();
        assert_eq!(term.name, "ABORTED");
        assert_eq!(term.kind, CategoryKind::State);
        // The terminal state spans rank 0's last record (1.2) to the
        // global end of the log (1.4).
        let ds = file.tree.query(crate::TimeWindow::ALL);
        let terminal = ds
            .iter()
            .find_map(|d| match d {
                Drawable::State(s) if s.category == term.index => Some(s),
                _ => None,
            })
            .expect("terminal state drawn");
        assert_eq!(terminal.timeline, TimelineId(0));
        assert_eq!(terminal.start, 1.2);
        assert_eq!(terminal.end, 1.4);
        assert_eq!(terminal.text, "injected fault at send #2");
        // Forensic warnings land in the file's warning list verbatim.
        assert!(warnings.iter().any(|w| matches!(
            w,
            ConvertWarning::RankFailure {
                rank: 0,
                kind: FailureKind::Aborted,
                ..
            }
        )));
        assert!(file
            .warnings
            .iter()
            .any(|w| w.contains("diagnosis: rank 0 panicked")));
        assert!(file
            .warnings
            .iter()
            .any(|w| w.contains("salvaged torn log: 7 records (120 bytes) recovered")));
    }

    #[test]
    fn terminal_categories_appended_after_arrow_category() {
        let clog = sample_clog();
        let (plain, _) = convert(&clog, &ConvertOptions::default());
        let report = SalvageReport {
            verdicts: vec![
                RankVerdict {
                    rank: 0,
                    kind: FailureKind::Deadlocked,
                    detail: "blocked in PI_Read".into(),
                },
                RankVerdict {
                    rank: 1,
                    kind: FailureKind::Aborted,
                    detail: "panicked".into(),
                },
            ],
            ..Default::default()
        };
        let (file, _) = convert_salvaged(&clog, &report, &ConvertOptions::default());
        // Prefix of the category table is exactly the plain table (the
        // arrow category keeps its index)...
        let n = plain.categories.len();
        assert_eq!(&file.categories[..n], &plain.categories[..]);
        // ...and the terminal categories follow in fixed order.
        assert_eq!(file.categories[n].name, "ABORTED");
        assert_eq!(file.categories[n + 1].name, "DEADLOCKED");
        assert!(crate::validate::validate(&file).is_empty());
    }

    #[test]
    fn rank_with_no_recovered_records_gets_full_span_terminal_state() {
        // Rank 1 exists but its block was entirely lost: the terminal
        // state covers the whole recovered time range.
        let mut lg0 = Logger::new(0);
        let ev = lg0.define_event("tick", Color::YELLOW);
        lg0.log_event(2.0, ev, "");
        lg0.log_event(5.0, ev, "");
        let mut blocks = std::collections::BTreeMap::new();
        blocks.insert(0u32, lg0.records().to_vec());
        let clog = Clog2File {
            nranks: 2,
            state_defs: vec![],
            event_defs: lg0.event_defs().to_vec(),
            blocks,
        };
        let report = SalvageReport {
            verdicts: vec![RankVerdict {
                rank: 1,
                kind: FailureKind::Aborted,
                detail: "no records recovered".into(),
            }],
            truncated: true,
            ..Default::default()
        };
        let (file, _) = convert_salvaged(&clog, &report, &ConvertOptions::default());
        assert!(crate::validate::validate(&file).is_empty());
        let ds = file.tree.query(crate::TimeWindow::ALL);
        let term = ds
            .iter()
            .find_map(|d| match d {
                Drawable::State(s) if s.timeline == TimelineId(1) => Some(s),
                _ => None,
            })
            .unwrap();
        assert_eq!((term.start, term.end), (2.0, 5.0));
    }

    #[test]
    fn terminal_text_is_clamped_but_warning_keeps_full_detail() {
        let clog = sample_clog();
        let long = "x".repeat(300);
        let report = SalvageReport {
            verdicts: vec![RankVerdict {
                rank: 1,
                kind: FailureKind::Aborted,
                detail: long.clone(),
            }],
            ..Default::default()
        };
        let (file, warnings) = convert_salvaged(&clog, &report, &ConvertOptions::default());
        let ds = file.tree.query(crate::TimeWindow::ALL);
        let term_cat = file.categories.last().unwrap().index;
        let term = ds
            .iter()
            .find_map(|d| match d {
                Drawable::State(s) if s.category == term_cat => Some(s),
                _ => None,
            })
            .unwrap();
        assert!(term.text.len() < 110, "clamped: {}", term.text.len());
        assert!(term.text.ends_with('…'));
        assert!(warnings
            .iter()
            .any(|w| matches!(w, ConvertWarning::RankFailure { detail, .. } if *detail == long)));
    }

    #[test]
    fn salvaged_file_roundtrips() {
        let report = SalvageReport {
            verdicts: vec![RankVerdict {
                rank: 1,
                kind: FailureKind::Deadlocked,
                detail: "blocked in PI_Read on channel C1".into(),
            }],
            diagnosis: Some("1 process(es) cannot proceed".into()),
            ..Default::default()
        };
        let (file, _) = convert_salvaged(&sample_clog(), &report, &ConvertOptions::default());
        let back = Slog2File::from_bytes(&file.to_bytes()).unwrap();
        assert_eq!(back, file);
    }
}
