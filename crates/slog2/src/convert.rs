//! CLOG2 → SLOG2 conversion (the `clog2TOslog2` step).
//!
//! The paper calls converting (rather than logging straight to SLOG-2)
//! the *preferred* route because (a) a "non well-behaved" program can
//! produce a defective file, and (b) the conversion step surfaces
//! diagnostics — most famously the **"Equal Drawables"** warning when
//! two objects with the same event id have identical start and end
//! times, a consequence of `MPI_Wtime`'s limited resolution. We report
//! all of those as typed [`ConvertWarning`]s.
//!
//! ## Sharded pipeline
//!
//! Conversion runs as a sequence of phases, each of which can be
//! sharded across worker threads ([`ConvertOptions::parallelism`])
//! while producing output **byte-identical** to the serial converter
//! (see DESIGN.md §5 for the determinism argument):
//!
//! 1. **Scan** — each rank's block pairs its own state events and
//!    collects its own send/recv queues (a rank is a shard; blocks are
//!    independent by construction).
//! 2. **Merge** — shard outputs concatenate in rank order; per-rank
//!    send/recv maps are key-disjoint, so their union preserves every
//!    FIFO queue exactly.
//! 3. **Arrows** — send keys are matched to receive queues in key
//!    order, sharded by contiguous key chunks.
//! 4. **Diagnostics** — Equal-Drawables counting shards over the
//!    drawable list (integer counts merge associatively; output is
//!    sorted).
//! 5. **Tree** — the frame-tree recursion forks independent subtrees
//!    onto workers.
//!
//! [`convert_reader`] runs the same pipeline over a streaming CLOG2
//! source, holding one block in memory at a time.

use std::collections::{BTreeMap, HashMap, VecDeque};

use mpelog::clog2::{Clog2Blocks, StreamError};
use mpelog::ids::EventId;
use mpelog::record::{EventDef, Record, StateDef};
use mpelog::{Clog2File, Color};

use crate::drawable::{
    ArrowDrawable, Category, CategoryKind, Drawable, EventDrawable, StateDrawable,
};
use crate::file::Slog2File;
use crate::id::{CategoryId, TimelineId};
use crate::tree::FrameTreeBuilder;

/// Conversion parameters.
#[derive(Debug, Clone)]
pub struct ConvertOptions {
    /// Frame-tree split threshold ("frame size"). Smaller values make a
    /// deeper tree with finer random access; the paper mentions tuning
    /// this to affect the amount of data initially displayed.
    pub frame_capacity: usize,
    /// Frame-tree depth limit.
    pub max_depth: u32,
    /// Timeline display names; defaults to `P0..Pn` with rank 0 called
    /// `PI_MAIN`, matching the paper's convention.
    pub timeline_names: Option<Vec<String>>,
    /// Worker threads for the sharded conversion phases: `0` picks the
    /// machine's available parallelism, `1` forces the serial path, and
    /// any other value caps the worker count. The output is
    /// byte-identical at every setting.
    pub parallelism: usize,
    /// Metrics and span tracing for the conversion. Per-stage spans
    /// (`scan`, `match`, `diagnose`, `tree` — plus per-shard worker
    /// spans when `parallelism > 1`) land in the tracer; the
    /// `convert.*` counters are attributed per rank block, so their
    /// merged totals are identical at every parallelism setting.
    pub obs: Option<std::sync::Arc<obs::Obs>>,
}

impl Default for ConvertOptions {
    fn default() -> Self {
        ConvertOptions {
            frame_capacity: 64,
            max_depth: 16,
            timeline_names: None,
            parallelism: 0,
            obs: None,
        }
    }
}

impl ConvertOptions {
    /// Set the worker-thread count (see
    /// [`parallelism`](Self::parallelism)).
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Attach a metrics registry + tracer (see [`obs`](Self::obs)).
    pub fn with_observability(mut self, obs: std::sync::Arc<obs::Obs>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Resolve `parallelism` to a concrete worker count: `0` asks the
    /// OS, and a machine that reports a single core falls back to the
    /// serial path.
    pub fn effective_parallelism(&self) -> usize {
        match self.parallelism {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        }
    }
}

/// Diagnostics produced during conversion.
#[derive(Debug, Clone, PartialEq)]
pub enum ConvertWarning {
    /// A state was opened but never closed (non well-behaved program);
    /// the converter closes it at the block's last timestamp.
    UnclosedState {
        /// Rank whose log was defective.
        rank: u32,
        /// The state's category name.
        name: String,
        /// When it was opened.
        start: f64,
    },
    /// A state-end event arrived with no matching open state.
    UnmatchedEnd {
        /// Rank whose log was defective.
        rank: u32,
        /// The event id seen.
        id: EventId,
        /// When.
        ts: f64,
    },
    /// An event id that no definition describes.
    UnknownEventId {
        /// Rank.
        rank: u32,
        /// The undefined id.
        id: EventId,
    },
    /// A send record with no matching receive.
    UnmatchedSend {
        /// Sender rank.
        src: u32,
        /// Destination rank.
        dst: u32,
        /// Tag.
        tag: u32,
    },
    /// A receive record with no matching send.
    UnmatchedRecv {
        /// Source rank recorded by the receiver.
        src: u32,
        /// Receiving rank.
        dst: u32,
        /// Tag.
        tag: u32,
    },
    /// Two or more drawables of the same category with bit-identical
    /// start and end times — the paper's "Equal Drawables" condition,
    /// caused by limited clock resolution.
    EqualDrawables {
        /// Category name.
        category: String,
        /// How many coincide.
        count: usize,
        /// The shared start time.
        t0: f64,
        /// The shared end time.
        t1: f64,
    },
    /// A state whose end event carries an earlier timestamp than its
    /// start (out-of-order or clock-anomalous records); the converter
    /// normalizes the interval so the file stays displayable.
    BackwardState {
        /// Rank whose log was anomalous.
        rank: u32,
        /// Category name.
        name: String,
        /// The (earlier) end timestamp seen.
        end: f64,
        /// The (later) start timestamp seen.
        start: f64,
    },
    /// An arrow that goes backwards in time (receive before send) —
    /// clock drift that synchronization failed to remove.
    BackwardArrow {
        /// Sender rank.
        src: u32,
        /// Receiver rank.
        dst: u32,
        /// Tag.
        tag: u32,
        /// Send time.
        start: f64,
        /// Receive time.
        end: f64,
    },
    /// A rank terminated abnormally; the salvage converter drew a
    /// terminal state rectangle on its timeline.
    RankFailure {
        /// The failed rank.
        rank: u32,
        /// How it failed.
        kind: FailureKind,
        /// The failure payload or detector description.
        detail: String,
    },
    /// The run-level failure diagnosis, embedded verbatim so the viewer
    /// can show *why* the timeline ends in a terminal state.
    FailureDiagnosis {
        /// The diagnosis text (may be multi-line).
        text: String,
    },
    /// The input log was torn; only a prefix was recovered.
    SalvagedLog {
        /// Bytes of the CLOG2 input that decoded cleanly.
        bytes_recovered: usize,
        /// Records recovered across all ranks.
        records_recovered: usize,
    },
}

impl std::fmt::Display for ConvertWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConvertWarning::UnclosedState { rank, name, start } => {
                write!(
                    f,
                    "rank {rank}: state '{name}' opened at {start:.6}s never closed"
                )
            }
            ConvertWarning::UnmatchedEnd { rank, id, ts } => {
                write!(
                    f,
                    "rank {rank}: end event {id} at {ts:.6}s has no open state"
                )
            }
            ConvertWarning::UnknownEventId { rank, id } => {
                write!(f, "rank {rank}: event id {id} has no definition")
            }
            ConvertWarning::UnmatchedSend { src, dst, tag } => {
                write!(f, "send {src}->{dst} tag {tag} has no matching receive")
            }
            ConvertWarning::UnmatchedRecv { src, dst, tag } => {
                write!(f, "receive {src}->{dst} tag {tag} has no matching send")
            }
            ConvertWarning::EqualDrawables {
                category,
                count,
                t0,
                t1,
            } => {
                write!(
                    f,
                    "Equal Drawables: {count} '{category}' objects share [{t0:.9}, {t1:.9}]"
                )
            }
            ConvertWarning::BackwardState {
                rank,
                name,
                end,
                start,
            } => {
                write!(
                    f,
                    "rank {rank}: state '{name}' ends at {end:.9} before it starts at {start:.9}; normalized"
                )
            }
            ConvertWarning::BackwardArrow {
                src,
                dst,
                tag,
                start,
                end,
            } => {
                write!(
                    f,
                    "arrow {src}->{dst} tag {tag} goes backward in time ({start:.9} -> {end:.9})"
                )
            }
            ConvertWarning::RankFailure { rank, kind, detail } => {
                write!(f, "rank {rank} {kind}: {detail}")
            }
            ConvertWarning::FailureDiagnosis { text } => write!(f, "diagnosis: {text}"),
            ConvertWarning::SalvagedLog {
                bytes_recovered,
                records_recovered,
            } => {
                write!(
                    f,
                    "salvaged torn log: {records_recovered} records ({bytes_recovered} bytes) recovered"
                )
            }
        }
    }
}

/// How a failed rank's run ended, as rendered on its timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The rank panicked or was aborted mid-run.
    Aborted,
    /// The deadlock (or stall) detector convicted the rank.
    Deadlocked,
}

impl FailureKind {
    /// The synthetic terminal category's display name.
    pub fn category_name(self) -> &'static str {
        match self {
            FailureKind::Aborted => "ABORTED",
            FailureKind::Deadlocked => "DEADLOCKED",
        }
    }

    fn color(self) -> Color {
        match self {
            FailureKind::Aborted => Color::DARK_RED,
            FailureKind::Deadlocked => Color::ORANGE,
        }
    }

    fn slot(self) -> usize {
        match self {
            FailureKind::Aborted => 0,
            FailureKind::Deadlocked => 1,
        }
    }
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.category_name())
    }
}

/// One failed rank's post-mortem, as established by the supervisor
/// ([`minimpi`]'s `RankFailure`) or the deadlock detector.
#[derive(Debug, Clone, PartialEq)]
pub struct RankVerdict {
    /// The failed rank.
    pub rank: u32,
    /// How it failed.
    pub kind: FailureKind,
    /// Panic payload or detector description; drawn (clamped) as the
    /// terminal state's info text.
    pub detail: String,
}

/// Everything the salvage converter embeds beyond the log itself: which
/// ranks failed and how, the detector's diagnosis, and how much of a
/// torn input was recovered.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SalvageReport {
    /// Per-rank failure verdicts; each yields a terminal state.
    pub verdicts: Vec<RankVerdict>,
    /// The run-level diagnosis (e.g. the deadlock report), embedded
    /// verbatim in the file's warning list.
    pub diagnosis: Option<String>,
    /// Records recovered from a torn input (0 if the log was whole).
    pub records_recovered: usize,
    /// Bytes recovered from a torn input.
    pub bytes_recovered: usize,
    /// Whether the input log was torn (stopped at a partial frame).
    pub truncated: bool,
}

/// Info-text clamp for terminal states: long panic payloads stay
/// readable in a state rectangle; the full text lives in the warnings.
fn clamp_terminal_text(s: &str) -> String {
    const MAX: usize = 96;
    if s.len() <= MAX {
        return s.to_string();
    }
    let mut cut = MAX;
    while !s.is_char_boundary(cut) {
        cut -= 1;
    }
    format!("{}…", &s[..cut])
}

enum IdRole {
    StateStart(CategoryId),
    StateEnd(CategoryId),
    Solo(CategoryId),
}

/// Message-queue key: `(src, dst, tag, size)`, mirroring MPE's matching
/// on communicating pair + tag + data length.
type MsgKey = (u32, u32, u32, u32);

/// The category list plus the event-id → role index shared by every
/// scan worker (read-only during the scan phase).
struct CategoryTable {
    categories: Vec<Category>,
    roles: HashMap<u32, IdRole>,
    arrow_cat: CategoryId,
}

/// Categories from the definitions, plus the synthetic arrow category
/// ("message") the converter introduces.
fn build_categories(state_defs: &[StateDef], event_defs: &[EventDef]) -> CategoryTable {
    let mut categories = Vec::new();
    let mut roles: HashMap<u32, IdRole> = HashMap::new();
    for d in state_defs {
        let idx = CategoryId(categories.len() as u32);
        categories.push(Category {
            index: idx,
            name: d.name.clone(),
            color: d.color,
            kind: CategoryKind::State,
        });
        roles.insert(d.start.0, IdRole::StateStart(idx));
        roles.insert(d.end.0, IdRole::StateEnd(idx));
    }
    for d in event_defs {
        let idx = CategoryId(categories.len() as u32);
        categories.push(Category {
            index: idx,
            name: d.name.clone(),
            color: d.color,
            kind: CategoryKind::Event,
        });
        roles.insert(d.id.0, IdRole::Solo(idx));
    }
    let arrow_cat = CategoryId(categories.len() as u32);
    categories.push(Category {
        index: arrow_cat,
        name: "message".into(),
        color: Color::WHITE,
        kind: CategoryKind::Arrow,
    });
    CategoryTable {
        categories,
        roles,
        arrow_cat,
    }
}

/// Everything one rank's block contributes: its drawables and warnings
/// in scan order, and its send/recv queues. Send keys carry the shard's
/// own rank as `src` and recv keys carry it as `dst`, so the maps of
/// two different shards are key-disjoint by construction and merge into
/// exactly the queues the serial scan would have built.
#[derive(Debug, Default)]
struct RankShard {
    drawables: Vec<Drawable>,
    warnings: Vec<ConvertWarning>,
    sends: BTreeMap<MsgKey, VecDeque<f64>>,
    recvs: BTreeMap<MsgKey, VecDeque<f64>>,
}

/// Walk one rank's block: pair state events, emit drawables, collect
/// send/recv records for arrow matching. Pure per-rank — this is the
/// unit of work a scan shard runs.
fn scan_rank_block(rank: u32, records: &[Record], table: &CategoryTable) -> RankShard {
    let mut shard = RankShard::default();
    let mut stack: Vec<(CategoryId, f64, String)> = Vec::new(); // (cat, start, text)
    let mut last_ts = f64::NEG_INFINITY;
    for rec in records {
        last_ts = last_ts.max(rec.ts());
        match rec {
            Record::Event { ts, id, text } => match table.roles.get(&id.0) {
                Some(IdRole::StateStart(cat)) => {
                    stack.push((*cat, *ts, text.clone()));
                }
                Some(IdRole::StateEnd(cat)) => {
                    // Normally the innermost open state matches; be
                    // tolerant of interleaving by searching downward.
                    match stack.iter().rposition(|(c, _, _)| c == cat) {
                        Some(pos) => {
                            let (c, start, mut start_text) = stack.remove(pos);
                            let nest = pos as u32;
                            if !text.is_empty() {
                                if !start_text.is_empty() {
                                    start_text.push_str(" | ");
                                }
                                start_text.push_str(text);
                            }
                            let mut end = *ts;
                            let mut start = start;
                            if end < start {
                                shard.warnings.push(ConvertWarning::BackwardState {
                                    rank,
                                    name: table.categories[c.as_usize()].name.clone(),
                                    end,
                                    start,
                                });
                                std::mem::swap(&mut start, &mut end);
                            }
                            shard.drawables.push(Drawable::State(StateDrawable {
                                category: c,
                                timeline: TimelineId(rank),
                                start,
                                end,
                                nest_level: nest,
                                text: start_text,
                            }));
                        }
                        None => shard.warnings.push(ConvertWarning::UnmatchedEnd {
                            rank,
                            id: *id,
                            ts: *ts,
                        }),
                    }
                }
                Some(IdRole::Solo(cat)) => {
                    shard.drawables.push(Drawable::Event(EventDrawable {
                        category: *cat,
                        timeline: TimelineId(rank),
                        time: *ts,
                        text: text.clone(),
                    }));
                }
                None => shard
                    .warnings
                    .push(ConvertWarning::UnknownEventId { rank, id: *id }),
            },
            Record::Send { ts, dst, tag, size } => {
                shard
                    .sends
                    .entry((rank, *dst, *tag, *size))
                    .or_default()
                    .push_back(*ts);
            }
            Record::Recv { ts, src, tag, size } => {
                shard
                    .recvs
                    .entry((*src, rank, *tag, *size))
                    .or_default()
                    .push_back(*ts);
            }
        }
    }
    // Non well-behaved: states still open at end of log. Close them
    // at the block's last timestamp so the file is still displayable.
    for (cat, start, text) in stack.into_iter().rev() {
        let name = table.categories[cat.as_usize()].name.clone();
        shard
            .warnings
            .push(ConvertWarning::UnclosedState { rank, name, start });
        shard.drawables.push(Drawable::State(StateDrawable {
            category: cat,
            timeline: TimelineId(rank),
            start,
            end: last_ts.max(start),
            nest_level: 0,
            text,
        }));
    }
    shard
}

/// Attribute one scanned block's metrics to its rank's shard. Every
/// block is scanned exactly once at any parallelism setting, so the
/// merged `convert.*` totals are thread-count independent (the
/// determinism test pins this down).
fn note_scanned_block(obs: &obs::Obs, rank: u32, records: &[Record], shard: &RankShard) {
    let s = obs.shard(rank as usize);
    s.counter("convert.records_scanned")
        .add(records.len() as u64);
    let (mut states, mut events) = (0u64, 0u64);
    for d in &shard.drawables {
        match d {
            Drawable::State(_) => states += 1,
            Drawable::Event(_) => events += 1,
            Drawable::Arrow(_) => {}
        }
    }
    s.counter("convert.drawables.state").add(states);
    s.counter("convert.drawables.event").add(events);
    s.counter("convert.warnings")
        .add(shard.warnings.len() as u64);
    s.histogram("convert.block_records")
        .record(records.len() as u64);
}

/// Scan every block, striping blocks round-robin over up to `workers`
/// scoped threads (serial when `workers <= 1`). Shards come back in
/// block order regardless of which thread ran them.
fn scan_blocks(
    blocks: &[(u32, &[Record])],
    table: &CategoryTable,
    workers: usize,
    obs: Option<&obs::Obs>,
) -> Vec<RankShard> {
    let workers = workers.min(blocks.len());
    if workers <= 1 {
        return blocks
            .iter()
            .map(|&(rank, records)| {
                let shard = scan_rank_block(rank, records, table);
                if let Some(o) = obs {
                    note_scanned_block(o, rank, records, &shard);
                }
                shard
            })
            .collect();
    }
    let mut out: Vec<Option<RankShard>> = blocks.iter().map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                s.spawn(move || {
                    let _span = obs.map(|o| o.span("scan.shard", "convert", w as u32));
                    blocks
                        .iter()
                        .enumerate()
                        .skip(w)
                        .step_by(workers)
                        .map(|(i, &(rank, records))| {
                            let shard = scan_rank_block(rank, records, table);
                            if let Some(o) = obs {
                                note_scanned_block(o, rank, records, &shard);
                            }
                            (i, shard)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            for (i, shard) in h.join().expect("scan worker panicked") {
                out[i] = Some(shard);
            }
        }
    });
    out.into_iter()
        .map(|s| s.expect("every block scanned"))
        .collect()
}

/// FIFO-match one key's send queue against its receive queue.
///
/// Pairing by index is exactly the serial `pop_front` loop: arrow `i`
/// joins `sends[i]` to `recvs[i]`, then surplus sends and surplus
/// receives each warn once, in that order.
fn match_arrows_for_key(
    key: MsgKey,
    send_ts: &VecDeque<f64>,
    recv_ts: &VecDeque<f64>,
    arrow_cat: CategoryId,
    drawables: &mut Vec<Drawable>,
    warnings: &mut Vec<ConvertWarning>,
) {
    let (src, dst, tag, size) = key;
    let matched = send_ts.len().min(recv_ts.len());
    for (&s, &r) in send_ts.iter().zip(recv_ts.iter()) {
        if r < s {
            warnings.push(ConvertWarning::BackwardArrow {
                src,
                dst,
                tag,
                start: s,
                end: r,
            });
        }
        drawables.push(Drawable::Arrow(ArrowDrawable {
            category: arrow_cat,
            from_timeline: TimelineId(src),
            to_timeline: TimelineId(dst),
            start: s,
            end: r,
            tag,
            size,
        }));
    }
    for _ in matched..send_ts.len() {
        warnings.push(ConvertWarning::UnmatchedSend { src, dst, tag });
    }
    for _ in matched..recv_ts.len() {
        warnings.push(ConvertWarning::UnmatchedRecv { src, dst, tag });
    }
}

/// Match sends with receives, sharding the (key-ordered) send keys into
/// contiguous chunks across up to `workers` threads. Chunk outputs
/// concatenate in chunk order, so the drawable and warning sequences
/// equal the serial key-order walk. Receive queues whose key was
/// matched are removed from `recvs`; the caller drains the leftovers.
fn match_all_arrows(
    sends: BTreeMap<MsgKey, VecDeque<f64>>,
    recvs: &mut BTreeMap<MsgKey, VecDeque<f64>>,
    arrow_cat: CategoryId,
    workers: usize,
    obs: Option<&obs::Obs>,
    drawables: &mut Vec<Drawable>,
    warnings: &mut Vec<ConvertWarning>,
) {
    let pairs: Vec<(MsgKey, VecDeque<f64>, VecDeque<f64>)> = sends
        .into_iter()
        .map(|(key, send_ts)| {
            let recv_ts = recvs.remove(&key).unwrap_or_default();
            (key, send_ts, recv_ts)
        })
        .collect();
    let workers = workers.min(pairs.len());
    if workers <= 1 {
        for (key, send_ts, recv_ts) in &pairs {
            match_arrows_for_key(*key, send_ts, recv_ts, arrow_cat, drawables, warnings);
        }
        return;
    }
    let chunk = pairs.len().div_ceil(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = pairs
            .chunks(chunk)
            .enumerate()
            .map(|(w, chunk)| {
                s.spawn(move || {
                    let _span = obs.map(|o| o.span("arrow-match.shard", "convert", w as u32));
                    let mut ds = Vec::new();
                    let mut ws = Vec::new();
                    for (key, send_ts, recv_ts) in chunk {
                        match_arrows_for_key(*key, send_ts, recv_ts, arrow_cat, &mut ds, &mut ws);
                    }
                    (ds, ws)
                })
            })
            .collect();
        for h in handles {
            let (ds, ws) = h.join().expect("arrow worker panicked");
            drawables.extend(ds);
            warnings.extend(ws);
        }
    });
}

/// Equal-Drawables group key: (category, placement, bit-exact interval).
type EqualKey = (u32, u32, u32, u64, u64);

fn equal_drawable_key(d: &Drawable) -> EqualKey {
    match d {
        Drawable::State(s) => (
            s.category.0,
            s.timeline.0,
            0,
            s.start.to_bits(),
            s.end.to_bits(),
        ),
        Drawable::Event(e) => (
            e.category.0,
            e.timeline.0,
            0,
            e.time.to_bits(),
            e.time.to_bits(),
        ),
        Drawable::Arrow(a) => (
            a.category.0,
            a.from_timeline.0,
            a.to_timeline.0,
            a.start.to_bits(),
            a.end.to_bits(),
        ),
    }
}

fn detect_equal_drawables(
    drawables: &[Drawable],
    categories: &[Category],
    workers: usize,
    warnings: &mut Vec<ConvertWarning>,
) {
    // Count occurrences per key. With multiple workers, each counts a
    // contiguous chunk and the integer counts merge associatively —
    // chunk order cannot affect a sum, and the report below is sorted.
    const PAR_THRESHOLD: usize = 4096;
    let mut groups: HashMap<EqualKey, usize> = HashMap::new();
    if workers <= 1 || drawables.len() < PAR_THRESHOLD {
        for d in drawables {
            *groups.entry(equal_drawable_key(d)).or_insert(0) += 1;
        }
    } else {
        let chunk = drawables.len().div_ceil(workers);
        std::thread::scope(|s| {
            let handles: Vec<_> = drawables
                .chunks(chunk)
                .map(|chunk| {
                    s.spawn(move || {
                        let mut local: HashMap<EqualKey, usize> = HashMap::new();
                        for d in chunk {
                            *local.entry(equal_drawable_key(d)).or_insert(0) += 1;
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                for (key, n) in h.join().expect("count worker panicked") {
                    *groups.entry(key).or_insert(0) += n;
                }
            }
        });
    }
    let mut dups: Vec<_> = groups.into_iter().filter(|(_, n)| *n > 1).collect();
    dups.sort_by_key(|((cat, tl, tl2, s, e), _)| (*cat, *tl, *tl2, *s, *e));
    for ((cat, _, _, s, e), n) in dups {
        warnings.push(ConvertWarning::EqualDrawables {
            category: categories
                .get(cat as usize)
                .map(|c| c.name.clone())
                .unwrap_or_else(|| format!("cat{cat}")),
            count: n,
            t0: f64::from_bits(s),
            t1: f64::from_bits(e),
        });
    }
}

/// Run the post-scan phases — shard merge, arrow matching, diagnostics,
/// tree build, file assembly — over shards given in ascending rank
/// order. Shared by [`convert`] and [`convert_reader`].
fn finish_convert(
    shards: Vec<RankShard>,
    table: CategoryTable,
    opts: &ConvertOptions,
    nranks: u32,
    workers: usize,
) -> (Slog2File, Vec<ConvertWarning>) {
    let CategoryTable {
        categories,
        arrow_cat,
        ..
    } = table;
    let obs = opts.obs.as_deref();

    // Merge: concatenation in rank order reproduces the serial scan's
    // drawable and warning sequences; the per-shard send/recv maps are
    // key-disjoint (each key names its own rank), so the union carries
    // every FIFO queue over intact.
    let mut builder = FrameTreeBuilder::new();
    let mut warnings = Vec::new();
    let mut sends: BTreeMap<MsgKey, VecDeque<f64>> = BTreeMap::new();
    let mut recvs: BTreeMap<MsgKey, VecDeque<f64>> = BTreeMap::new();
    let mut drawables: Vec<Drawable> = Vec::new();
    {
        let _span = obs.map(|o| o.span("merge", "convert", 0));
        for shard in shards {
            drawables.extend(shard.drawables);
            warnings.extend(shard.warnings);
            for (key, q) in shard.sends {
                sends.entry(key).or_default().extend(q);
            }
            for (key, q) in shard.recvs {
                recvs.entry(key).or_default().extend(q);
            }
        }
    }
    let scan_warnings = warnings.len();

    // Match sends with receives (FIFO per (src, dst, tag, size) key).
    {
        let _span = obs.map(|o| o.span("arrow-match", "convert", 0));
        match_all_arrows(
            sends,
            &mut recvs,
            arrow_cat,
            workers,
            obs,
            &mut drawables,
            &mut warnings,
        );
        for ((src, dst, tag, _), leftover) in recvs {
            for _ in leftover {
                warnings.push(ConvertWarning::UnmatchedRecv { src, dst, tag });
            }
        }
    }

    // Equal-Drawables detection: same category, bit-identical
    // endpoints (and same placement).
    {
        let _span = obs.map(|o| o.span("diagnose", "convert", 0));
        detect_equal_drawables(&drawables, &categories, workers, &mut warnings);
    }

    // Post-scan totals. The arrow count and the warning sequence are
    // deterministic at any parallelism, so attributing them to shard 0
    // keeps the merged snapshot thread-count independent.
    if let Some(o) = obs {
        let s = o.shard(0);
        let arrows = drawables
            .iter()
            .filter(|d| matches!(d, Drawable::Arrow(_)))
            .count() as u64;
        s.counter("convert.drawables.arrow").add(arrows);
        s.counter("convert.warnings")
            .add((warnings.len() - scan_warnings) as u64);
    }

    // Global range and tree. The builder folds min/max in push order —
    // the same left-to-right fold the serial converter used.
    let _tree_span = obs.map(|o| o.span("tree-build", "convert", 0));
    builder.extend(drawables);
    let range = builder.range();

    let timelines = opts.timeline_names.clone().unwrap_or_else(|| {
        (0..nranks)
            .map(|r| {
                if r == 0 {
                    "PI_MAIN".to_string()
                } else {
                    format!("P{r}")
                }
            })
            .collect()
    });

    let tree = builder.build(opts.frame_capacity, opts.max_depth, workers);
    let file = Slog2File {
        timelines,
        categories,
        range,
        warnings: warnings.iter().map(|w| w.to_string()).collect(),
        tree,
    };
    (file, warnings)
}

/// Convert a merged CLOG2 log into an SLOG2 file, reporting diagnostics.
///
/// With [`ConvertOptions::parallelism`] above 1 the scan, arrow,
/// diagnostic, and tree phases shard across scoped worker threads; the
/// resulting file is byte-identical to the serial conversion.
pub fn convert(clog: &Clog2File, opts: &ConvertOptions) -> (Slog2File, Vec<ConvertWarning>) {
    let workers = opts.effective_parallelism();
    let table = build_categories(&clog.state_defs, &clog.event_defs);
    let blocks: Vec<(u32, &[Record])> = clog
        .blocks
        .iter()
        .map(|(&rank, records)| (rank, records.as_slice()))
        .collect();
    let shards = {
        let _span = opts.obs.as_deref().map(|o| o.span("scan", "convert", 0));
        scan_blocks(&blocks, &table, workers, opts.obs.as_deref())
    };
    finish_convert(shards, table, opts, clog.nranks, workers)
}

/// Convert a (possibly torn) CLOG2 log from a failed run into a valid,
/// viewable SLOG2 file.
///
/// Beyond the normal pipeline this:
///
/// * appends synthetic `ABORTED` / `DEADLOCKED` state categories
///   **after** the arrow category, so every index the plain converter
///   assigns is unchanged (an empty [`SalvageReport`] converts
///   byte-identically to [`convert`]);
/// * draws one terminal state per failed rank, from that rank's last
///   recovered timestamp to the log's global end, carrying the (clamped)
///   failure detail as info text;
/// * embeds the rank verdicts, the detector's diagnosis, and the torn
///   input's recovery counts as [`ConvertWarning`]s, which land in the
///   file's warning list.
///
/// The output always passes [`crate::validate`]: the point of salvage is
/// a file the viewer can actually open.
pub fn convert_salvaged(
    clog: &Clog2File,
    report: &SalvageReport,
    opts: &ConvertOptions,
) -> (Slog2File, Vec<ConvertWarning>) {
    let workers = opts.effective_parallelism();
    let mut table = build_categories(&clog.state_defs, &clog.event_defs);
    // Terminal categories, in fixed ABORTED-then-DEADLOCKED order and
    // only when some verdict needs them: index assignment stays
    // deterministic and the no-failure file is unchanged.
    let mut terminal_cats: [Option<CategoryId>; 2] = [None, None];
    for kind in [FailureKind::Aborted, FailureKind::Deadlocked] {
        if report.verdicts.iter().any(|v| v.kind == kind) {
            let idx = CategoryId(table.categories.len() as u32);
            table.categories.push(Category {
                index: idx,
                name: kind.category_name().into(),
                color: kind.color(),
                kind: CategoryKind::State,
            });
            terminal_cats[kind.slot()] = Some(idx);
        }
    }

    let blocks: Vec<(u32, &[Record])> = clog
        .blocks
        .iter()
        .map(|(&rank, records)| (rank, records.as_slice()))
        .collect();
    let shards = {
        let _span = opts.obs.as_deref().map(|o| o.span("scan", "convert", 0));
        scan_blocks(&blocks, &table, workers, opts.obs.as_deref())
    };

    // The log's time extent and each rank's last recovered timestamp,
    // straight from the raw records (drawable endpoints never exceed
    // these, so terminal states keep the file's range intact).
    let mut t_min = f64::INFINITY;
    let mut t_max = f64::NEG_INFINITY;
    let mut rank_last: HashMap<u32, f64> = HashMap::new();
    for &(rank, records) in &blocks {
        for rec in records {
            let ts = rec.ts();
            t_min = t_min.min(ts);
            t_max = t_max.max(ts);
            let last = rank_last.entry(rank).or_insert(f64::NEG_INFINITY);
            *last = last.max(ts);
        }
    }

    // A synthetic final shard carries the terminal drawables and the
    // forensic warnings; concatenating it last keeps everything the
    // plain pipeline emits in its usual order.
    let mut terminal = RankShard::default();
    if report.truncated {
        terminal.warnings.push(ConvertWarning::SalvagedLog {
            bytes_recovered: report.bytes_recovered,
            records_recovered: report.records_recovered,
        });
    }
    for v in &report.verdicts {
        terminal.warnings.push(ConvertWarning::RankFailure {
            rank: v.rank,
            kind: v.kind,
            detail: v.detail.clone(),
        });
        if v.rank >= clog.nranks {
            // No timeline to draw on; the warning above still records it.
            continue;
        }
        let cat = terminal_cats[v.kind.slot()].expect("terminal category registered above");
        let start = rank_last
            .get(&v.rank)
            .copied()
            .unwrap_or(if t_min.is_finite() { t_min } else { 0.0 });
        let end = if t_max.is_finite() {
            t_max.max(start)
        } else {
            start
        };
        terminal.drawables.push(Drawable::State(StateDrawable {
            category: cat,
            timeline: TimelineId(v.rank),
            start,
            end,
            nest_level: 0,
            text: clamp_terminal_text(&v.detail),
        }));
    }
    if let Some(diag) = &report.diagnosis {
        terminal
            .warnings
            .push(ConvertWarning::FailureDiagnosis { text: diag.clone() });
    }

    let mut shards = shards;
    shards.push(terminal);
    finish_convert(shards, table, opts, clog.nranks, workers)
}

/// Convert a CLOG2 byte stream without materializing the whole file:
/// blocks are decoded incrementally (one in memory at a time) and
/// reduced to their per-rank shard as they arrive, then the shared
/// pipeline finishes exactly as [`convert`] does. The output is
/// byte-identical to `convert(&Clog2File::from_bytes(..))` for every
/// valid stream — shards are keyed by rank, so even a file whose blocks
/// are not in ascending rank order converts identically.
pub fn convert_reader<R: std::io::Read>(
    src: R,
    opts: &ConvertOptions,
) -> Result<(Slog2File, Vec<ConvertWarning>), StreamError> {
    let workers = opts.effective_parallelism();
    let mut blocks = Clog2Blocks::open(src)?;
    let table = build_categories(&blocks.state_defs, &blocks.event_defs);
    let nranks = blocks.nranks;
    let mut shards: BTreeMap<u32, RankShard> = BTreeMap::new();
    {
        let _span = opts.obs.as_deref().map(|o| o.span("scan", "convert", 0));
        for item in &mut blocks {
            let (rank, records) = item?;
            let shard = scan_rank_block(rank, &records, &table);
            if let Some(o) = opts.obs.as_deref() {
                note_scanned_block(o, rank, &records, &shard);
            }
            shards.insert(rank, shard);
        }
    }
    blocks.finish()?;
    Ok(finish_convert(
        shards.into_values().collect(),
        table,
        opts,
        nranks,
        workers,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpelog::{Color, Logger};

    /// Build a two-rank CLOG file through the real Logger API.
    fn sample_clog() -> Clog2File {
        let mut lg0 = Logger::new(0);
        let mut lg1 = Logger::new(1);
        // Same definition order on both ranks (MPE rule).
        let (w_s, w_e) = lg0.define_state("PI_Write", Color::GREEN);
        let (r_s, r_e) = lg0.define_state("PI_Read", Color::RED);
        let arr = lg0.define_event("arrival", Color::YELLOW);
        let _ = lg1.define_state("PI_Write", Color::GREEN);
        let _ = lg1.define_state("PI_Read", Color::RED);
        let _ = lg1.define_event("arrival", Color::YELLOW);

        // Rank 0 writes (1.0..1.2), message flies, rank 1 reads (0.9..1.4).
        lg0.log_event(1.0, w_s, "Line: 10");
        lg0.log_send(1.1, 1, 5, 8);
        lg0.log_event(1.2, w_e, "");
        lg1.log_event(0.9, r_s, "Line: 20");
        lg1.log_receive(1.3, 0, 5, 8);
        lg1.log_event(1.3, arr, "Chan: C1");
        lg1.log_event(1.4, r_e, "");

        let mut blocks = std::collections::BTreeMap::new();
        blocks.insert(0u32, lg0.records().to_vec());
        blocks.insert(1u32, lg1.records().to_vec());
        Clog2File {
            nranks: 2,
            state_defs: lg0.state_defs().to_vec(),
            event_defs: lg0.event_defs().to_vec(),
            blocks,
        }
    }

    #[test]
    fn basic_conversion_produces_expected_objects() {
        let (file, warnings) = convert(&sample_clog(), &ConvertOptions::default());
        assert!(warnings.is_empty(), "{warnings:?}");
        let ds = file.tree.query(crate::TimeWindow::ALL);
        let states = ds
            .iter()
            .filter(|d| matches!(d, Drawable::State(_)))
            .count();
        let events = ds
            .iter()
            .filter(|d| matches!(d, Drawable::Event(_)))
            .count();
        let arrows = ds
            .iter()
            .filter(|d| matches!(d, Drawable::Arrow(_)))
            .count();
        assert_eq!((states, events, arrows), (2, 1, 1));
        assert_eq!(file.range, crate::TimeWindow::new(0.9, 1.4));
        assert_eq!(
            file.timelines,
            vec!["PI_MAIN".to_string(), "P1".to_string()]
        );
    }

    #[test]
    fn arrow_connects_send_to_receive() {
        let (file, _) = convert(&sample_clog(), &ConvertOptions::default());
        let ds = file.tree.query(crate::TimeWindow::ALL);
        let arrow = ds
            .iter()
            .find_map(|d| match d {
                Drawable::Arrow(a) => Some(a),
                _ => None,
            })
            .unwrap();
        assert_eq!(arrow.from_timeline, TimelineId(0));
        assert_eq!(arrow.to_timeline, TimelineId(1));
        assert_eq!(arrow.start, 1.1);
        assert_eq!(arrow.end, 1.3);
        assert_eq!(arrow.tag, 5);
        assert_eq!(arrow.size, 8);
    }

    #[test]
    fn nested_states_get_levels() {
        let mut lg = Logger::new(0);
        let (a_s, a_e) = lg.define_state("A", Color::GRAY);
        let (b_s, b_e) = lg.define_state("B", Color::RED);
        lg.log_event(3.0, a_s, "");
        lg.log_event(5.0, b_s, "");
        lg.log_event(8.0, b_e, "");
        lg.log_event(20.0, a_e, "");
        let mut blocks = std::collections::BTreeMap::new();
        blocks.insert(0u32, lg.records().to_vec());
        let clog = Clog2File {
            nranks: 1,
            state_defs: lg.state_defs().to_vec(),
            event_defs: vec![],
            blocks,
        };
        let (file, warnings) = convert(&clog, &ConvertOptions::default());
        assert!(warnings.is_empty());
        let ds = file.tree.query(crate::TimeWindow::new(0.0, 100.0));
        let mut levels: Vec<(String, u32)> = ds
            .iter()
            .filter_map(|d| match d {
                Drawable::State(s) => Some((
                    file.categories[s.category.as_usize()].name.clone(),
                    s.nest_level,
                )),
                _ => None,
            })
            .collect();
        levels.sort();
        assert_eq!(levels, vec![("A".to_string(), 0), ("B".to_string(), 1)]);
    }

    #[test]
    fn unclosed_state_is_warned_and_closed_at_log_end() {
        let mut lg = Logger::new(0);
        let (a_s, _a_e) = lg.define_state("A", Color::GRAY);
        let ev = lg.define_event("tick", Color::YELLOW);
        lg.log_event(1.0, a_s, "");
        lg.log_event(9.0, ev, "");
        let mut blocks = std::collections::BTreeMap::new();
        blocks.insert(0u32, lg.records().to_vec());
        let clog = Clog2File {
            nranks: 1,
            state_defs: lg.state_defs().to_vec(),
            event_defs: lg.event_defs().to_vec(),
            blocks,
        };
        let (file, warnings) = convert(&clog, &ConvertOptions::default());
        assert!(matches!(
            warnings[0],
            ConvertWarning::UnclosedState { rank: 0, ref name, start } if name == "A" && start == 1.0
        ));
        let ds = file.tree.query(crate::TimeWindow::new(0.0, 100.0));
        let s = ds
            .iter()
            .find_map(|d| match d {
                Drawable::State(s) => Some(s),
                _ => None,
            })
            .unwrap();
        assert_eq!(s.end, 9.0);
    }

    #[test]
    fn unmatched_end_is_warned() {
        let mut lg = Logger::new(0);
        let (_a_s, a_e) = lg.define_state("A", Color::GRAY);
        lg.log_event(2.0, a_e, "");
        let mut blocks = std::collections::BTreeMap::new();
        blocks.insert(0u32, lg.records().to_vec());
        let clog = Clog2File {
            nranks: 1,
            state_defs: lg.state_defs().to_vec(),
            event_defs: vec![],
            blocks,
        };
        let (_, warnings) = convert(&clog, &ConvertOptions::default());
        assert!(matches!(warnings[0], ConvertWarning::UnmatchedEnd { .. }));
    }

    #[test]
    fn unmatched_send_and_recv_are_warned() {
        let mut lg0 = Logger::new(0);
        let mut lg1 = Logger::new(1);
        lg0.log_send(1.0, 1, 7, 16); // never received
        lg1.log_receive(2.0, 0, 8, 16); // never sent
        let mut blocks = std::collections::BTreeMap::new();
        blocks.insert(0u32, lg0.records().to_vec());
        blocks.insert(1u32, lg1.records().to_vec());
        let clog = Clog2File {
            nranks: 2,
            state_defs: vec![],
            event_defs: vec![],
            blocks,
        };
        let (_, warnings) = convert(&clog, &ConvertOptions::default());
        assert!(warnings
            .iter()
            .any(|w| matches!(w, ConvertWarning::UnmatchedSend { tag: 7, .. })));
        assert!(warnings
            .iter()
            .any(|w| matches!(w, ConvertWarning::UnmatchedRecv { tag: 8, .. })));
    }

    #[test]
    fn equal_drawables_detected_for_identical_timestamps() {
        // Two arrows with bit-identical endpoints — the quantized-clock
        // condition from the paper.
        let mut lg0 = Logger::new(0);
        let mut lg1 = Logger::new(1);
        lg0.log_send(1.0, 1, 5, 4);
        lg0.log_send(1.0, 1, 5, 4);
        lg1.log_receive(2.0, 0, 5, 4);
        lg1.log_receive(2.0, 0, 5, 4);
        let mut blocks = std::collections::BTreeMap::new();
        blocks.insert(0u32, lg0.records().to_vec());
        blocks.insert(1u32, lg1.records().to_vec());
        let clog = Clog2File {
            nranks: 2,
            state_defs: vec![],
            event_defs: vec![],
            blocks,
        };
        let (_, warnings) = convert(&clog, &ConvertOptions::default());
        assert!(
            warnings
                .iter()
                .any(|w| matches!(w, ConvertWarning::EqualDrawables { count: 2, .. })),
            "{warnings:?}"
        );
    }

    #[test]
    fn backward_arrow_is_warned() {
        let mut lg0 = Logger::new(0);
        let mut lg1 = Logger::new(1);
        lg0.log_send(5.0, 1, 1, 0);
        lg1.log_receive(4.0, 0, 1, 0); // drifted clock: recv "before" send
        let mut blocks = std::collections::BTreeMap::new();
        blocks.insert(0u32, lg0.records().to_vec());
        blocks.insert(1u32, lg1.records().to_vec());
        let clog = Clog2File {
            nranks: 2,
            state_defs: vec![],
            event_defs: vec![],
            blocks,
        };
        let (_, warnings) = convert(&clog, &ConvertOptions::default());
        assert!(warnings
            .iter()
            .any(|w| matches!(w, ConvertWarning::BackwardArrow { .. })));
    }

    #[test]
    fn empty_log_converts_cleanly() {
        let clog = Clog2File {
            nranks: 3,
            ..Default::default()
        };
        let (file, warnings) = convert(&clog, &ConvertOptions::default());
        assert!(warnings.is_empty());
        assert_eq!(file.range, crate::TimeWindow::new(0.0, 0.0));
        assert_eq!(file.total_drawables(), 0);
        assert_eq!(file.timelines.len(), 3);
    }

    #[test]
    fn custom_timeline_names_pass_through() {
        let clog = Clog2File {
            nranks: 2,
            ..Default::default()
        };
        let opts = ConvertOptions {
            timeline_names: Some(vec!["master".into(), "compressor".into()]),
            ..Default::default()
        };
        let (file, _) = convert(&clog, &opts);
        assert_eq!(
            file.timelines,
            vec!["master".to_string(), "compressor".to_string()]
        );
    }

    #[test]
    fn slog2_roundtrip_of_converted_file() {
        let (file, _) = convert(&sample_clog(), &ConvertOptions::default());
        let back = Slog2File::from_bytes(&file.to_bytes()).unwrap();
        assert_eq!(back, file);
    }

    /// A messy multi-rank log exercising every warning path: nesting,
    /// backward states, unmatched sends/recvs, equal drawables,
    /// unclosed states, unknown ids.
    fn messy_clog(nranks: u32) -> Clog2File {
        let mut loggers: Vec<Logger> = (0..nranks as usize).map(Logger::new).collect();
        let mut ids = Vec::new();
        for lg in &mut loggers {
            let s = lg.define_state("compute", Color::GREEN);
            let t = lg.define_state("io", Color::RED);
            let _ = lg.define_event("mark", Color::YELLOW);
            if ids.is_empty() {
                ids = vec![s.0, s.1, t.0, t.1];
            }
        }
        let n = nranks as usize;
        for (r, lg) in loggers.iter_mut().enumerate() {
            let base = r as f64;
            // Nested states, one backward.
            lg.log_event(base + 0.1, ids[0], "outer");
            lg.log_event(base + 0.2, ids[2], "inner");
            lg.log_event(base + 0.15, ids[3], ""); // backward io
            lg.log_event(base + 0.9, ids[1], "");
            // Ring messages; rank 0 also sends one nobody receives.
            let dst = (r + 1) % n;
            lg.log_send(base + 0.3, dst, 7, 64);
            lg.log_receive(base + 0.35, (r + n - 1) % n, 7, 64);
            if r == 0 {
                lg.log_send(base + 0.4, dst, 9, 8); // unmatched send
                lg.log_receive(base + 0.5, dst, 11, 8); // unmatched recv
                lg.log_event(base + 0.6, ids[0], "never closed"); // unclosed
            }
            // Equal drawables: identical start/end pairs.
            lg.log_event(base + 0.7, ids[2], "");
            lg.log_event(base + 0.72, ids[3], "");
            lg.log_event(base + 0.7, ids[2], "");
            lg.log_event(base + 0.72, ids[3], "");
        }
        let mut blocks = std::collections::BTreeMap::new();
        for (r, lg) in loggers.iter().enumerate() {
            blocks.insert(r as u32, lg.records().to_vec());
        }
        Clog2File {
            nranks,
            state_defs: loggers[0].state_defs().to_vec(),
            event_defs: loggers[0].event_defs().to_vec(),
            blocks,
        }
    }

    #[test]
    fn parallel_convert_is_byte_identical_to_serial() {
        for nranks in [1u32, 2, 5] {
            let clog = messy_clog(nranks);
            let serial_opts = ConvertOptions::default().with_parallelism(1);
            let (serial, serial_warn) = convert(&clog, &serial_opts);
            let serial_bytes = serial.to_bytes();
            assert!(!serial_warn.is_empty());
            for threads in [2usize, 3, 8] {
                let opts = ConvertOptions::default().with_parallelism(threads);
                let (par, par_warn) = convert(&clog, &opts);
                assert_eq!(par_warn, serial_warn, "{nranks} ranks, {threads} threads");
                assert_eq!(
                    par.to_bytes(),
                    serial_bytes,
                    "{nranks} ranks, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn metrics_totals_are_parallelism_independent() {
        // Satellite: the merged convert.* snapshot (counters AND
        // histogram buckets) must be identical at every worker count.
        let clog = messy_clog(5);
        let snap_at = |threads: usize| {
            let o = obs::Obs::handle();
            let opts = ConvertOptions::default()
                .with_parallelism(threads)
                .with_observability(o.clone());
            let _ = convert(&clog, &opts);
            o.snapshot()
        };
        let base = snap_at(1);
        assert!(base.counter("convert.records_scanned") > 0);
        assert!(base.counter("convert.drawables.arrow") > 0);
        assert!(base.counter("convert.warnings") > 0);
        for threads in [2usize, 8] {
            assert_eq!(snap_at(threads), base, "{threads} threads");
        }
    }

    #[test]
    fn streaming_convert_matches_whole_file() {
        let clog = messy_clog(4);
        let bytes = clog.to_bytes();
        for threads in [1usize, 4] {
            let opts = ConvertOptions::default().with_parallelism(threads);
            let (whole, whole_warn) = convert(&clog, &opts);
            let (streamed, stream_warn) = convert_reader(&bytes[..], &opts).unwrap();
            assert_eq!(stream_warn, whole_warn);
            assert_eq!(streamed.to_bytes(), whole.to_bytes());
        }
    }

    #[test]
    fn streaming_convert_propagates_truncation() {
        let clog = messy_clog(2);
        let bytes = clog.to_bytes();
        let err = convert_reader(&bytes[..bytes.len() - 6], &ConvertOptions::default());
        assert!(err.is_err());
    }

    #[test]
    fn parallelism_zero_resolves_to_a_worker_count() {
        let opts = ConvertOptions::default();
        assert_eq!(opts.parallelism, 0);
        assert!(opts.effective_parallelism() >= 1);
        assert_eq!(opts.clone().with_parallelism(3).effective_parallelism(), 3);
    }

    #[test]
    fn empty_salvage_report_converts_byte_identically() {
        let clog = sample_clog();
        let opts = ConvertOptions::default();
        let (plain, plain_warn) = convert(&clog, &opts);
        let (salvaged, salvage_warn) = convert_salvaged(&clog, &SalvageReport::default(), &opts);
        assert_eq!(salvage_warn, plain_warn);
        assert_eq!(salvaged.to_bytes(), plain.to_bytes());
    }

    #[test]
    fn salvaged_conversion_marks_failed_rank_and_validates() {
        let clog = sample_clog();
        let report = SalvageReport {
            verdicts: vec![RankVerdict {
                rank: 0,
                kind: FailureKind::Aborted,
                detail: "injected fault at send #2".into(),
            }],
            diagnosis: Some("rank 0 panicked (last op: send): injected fault at send #2".into()),
            records_recovered: 7,
            bytes_recovered: 120,
            truncated: true,
        };
        let (file, warnings) = convert_salvaged(&clog, &report, &ConvertOptions::default());
        assert!(
            crate::validate::validate(&file).is_empty(),
            "{:?}",
            crate::validate::validate(&file)
        );
        // The terminal category sits after the normal table, named and
        // typed as a state.
        let term = file.categories.last().unwrap();
        assert_eq!(term.name, "ABORTED");
        assert_eq!(term.kind, CategoryKind::State);
        // The terminal state spans rank 0's last record (1.2) to the
        // global end of the log (1.4).
        let ds = file.tree.query(crate::TimeWindow::ALL);
        let terminal = ds
            .iter()
            .find_map(|d| match d {
                Drawable::State(s) if s.category == term.index => Some(s),
                _ => None,
            })
            .expect("terminal state drawn");
        assert_eq!(terminal.timeline, TimelineId(0));
        assert_eq!(terminal.start, 1.2);
        assert_eq!(terminal.end, 1.4);
        assert_eq!(terminal.text, "injected fault at send #2");
        // Forensic warnings land in the file's warning list verbatim.
        assert!(warnings.iter().any(|w| matches!(
            w,
            ConvertWarning::RankFailure {
                rank: 0,
                kind: FailureKind::Aborted,
                ..
            }
        )));
        assert!(file
            .warnings
            .iter()
            .any(|w| w.contains("diagnosis: rank 0 panicked")));
        assert!(file
            .warnings
            .iter()
            .any(|w| w.contains("salvaged torn log: 7 records (120 bytes) recovered")));
    }

    #[test]
    fn terminal_categories_appended_after_arrow_category() {
        let clog = sample_clog();
        let (plain, _) = convert(&clog, &ConvertOptions::default());
        let report = SalvageReport {
            verdicts: vec![
                RankVerdict {
                    rank: 0,
                    kind: FailureKind::Deadlocked,
                    detail: "blocked in PI_Read".into(),
                },
                RankVerdict {
                    rank: 1,
                    kind: FailureKind::Aborted,
                    detail: "panicked".into(),
                },
            ],
            ..Default::default()
        };
        let (file, _) = convert_salvaged(&clog, &report, &ConvertOptions::default());
        // Prefix of the category table is exactly the plain table (the
        // arrow category keeps its index)...
        let n = plain.categories.len();
        assert_eq!(&file.categories[..n], &plain.categories[..]);
        // ...and the terminal categories follow in fixed order.
        assert_eq!(file.categories[n].name, "ABORTED");
        assert_eq!(file.categories[n + 1].name, "DEADLOCKED");
        assert!(crate::validate::validate(&file).is_empty());
    }

    #[test]
    fn rank_with_no_recovered_records_gets_full_span_terminal_state() {
        // Rank 1 exists but its block was entirely lost: the terminal
        // state covers the whole recovered time range.
        let mut lg0 = Logger::new(0);
        let ev = lg0.define_event("tick", Color::YELLOW);
        lg0.log_event(2.0, ev, "");
        lg0.log_event(5.0, ev, "");
        let mut blocks = std::collections::BTreeMap::new();
        blocks.insert(0u32, lg0.records().to_vec());
        let clog = Clog2File {
            nranks: 2,
            state_defs: vec![],
            event_defs: lg0.event_defs().to_vec(),
            blocks,
        };
        let report = SalvageReport {
            verdicts: vec![RankVerdict {
                rank: 1,
                kind: FailureKind::Aborted,
                detail: "no records recovered".into(),
            }],
            truncated: true,
            ..Default::default()
        };
        let (file, _) = convert_salvaged(&clog, &report, &ConvertOptions::default());
        assert!(crate::validate::validate(&file).is_empty());
        let ds = file.tree.query(crate::TimeWindow::ALL);
        let term = ds
            .iter()
            .find_map(|d| match d {
                Drawable::State(s) if s.timeline == TimelineId(1) => Some(s),
                _ => None,
            })
            .unwrap();
        assert_eq!((term.start, term.end), (2.0, 5.0));
    }

    #[test]
    fn terminal_text_is_clamped_but_warning_keeps_full_detail() {
        let clog = sample_clog();
        let long = "x".repeat(300);
        let report = SalvageReport {
            verdicts: vec![RankVerdict {
                rank: 1,
                kind: FailureKind::Aborted,
                detail: long.clone(),
            }],
            ..Default::default()
        };
        let (file, warnings) = convert_salvaged(&clog, &report, &ConvertOptions::default());
        let ds = file.tree.query(crate::TimeWindow::ALL);
        let term_cat = file.categories.last().unwrap().index;
        let term = ds
            .iter()
            .find_map(|d| match d {
                Drawable::State(s) if s.category == term_cat => Some(s),
                _ => None,
            })
            .unwrap();
        assert!(term.text.len() < 110, "clamped: {}", term.text.len());
        assert!(term.text.ends_with('…'));
        assert!(warnings
            .iter()
            .any(|w| matches!(w, ConvertWarning::RankFailure { detail, .. } if *detail == long)));
    }

    #[test]
    fn salvaged_file_roundtrips() {
        let report = SalvageReport {
            verdicts: vec![RankVerdict {
                rank: 1,
                kind: FailureKind::Deadlocked,
                detail: "blocked in PI_Read on channel C1".into(),
            }],
            diagnosis: Some("1 process(es) cannot proceed".into()),
            ..Default::default()
        };
        let (file, _) = convert_salvaged(&sample_clog(), &report, &ConvertOptions::default());
        let back = Slog2File::from_bytes(&file.to_bytes()).unwrap();
        assert_eq!(back, file);
    }
}
