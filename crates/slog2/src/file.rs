//! The SLOG-2 container file.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic        8   b"PSLOG2\x00\x01"
//! capacity     u32     frame-tree split threshold
//! max_depth    u32
//! range        f64 x2  (t_min, t_max)
//! timelines    u32 count + strings (index = rank)
//! categories   u32 count + Category...
//! warnings     u32 count + strings (converter diagnostics)
//! n_nodes      u32
//! directory    n_nodes x u64  absolute byte offset of each node (pre-order)
//! nodes        pre-order; each: t0 f64, t1 f64, depth u32,
//!              has_children u8, n_drawables u32 + Drawable...,
//!              preview: u32 count + (cat u32, count u64, coverage f64)...
//! ```
//!
//! The directory gives random access to any frame without parsing the
//! whole tree — the property that makes real SLOG-2 scrollable at any
//! zoom level. [`Slog2File::read_node_at`] demonstrates it.

use std::path::Path;

use mpelog::wire::{Reader, WireError, Writer};

use crate::drawable::{Category, Drawable};
use crate::error::Slog2Error;
use crate::id::{CategoryId, CategoryMap, TimelineId};
use crate::tree::{FrameNode, FrameTree, Preview, PreviewEntry};
use crate::window::{Query, TimeWindow};

const MAGIC: &[u8; 8] = b"PSLOG2\x00\x01";

/// A complete SLOG-2 log: timelines, legend categories, frame tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Slog2File {
    /// Timeline display names, indexed by rank (`"P0"`, or a
    /// `PI_SetName` name).
    pub timelines: Vec<String>,
    /// Legend categories.
    pub categories: Vec<Category>,
    /// Global time range `[t_min, t_max]`.
    pub range: TimeWindow,
    /// Converter diagnostics ("Equal Drawables", unmatched sends, …).
    pub warnings: Vec<String>,
    /// The frame tree.
    pub tree: FrameTree,
}

impl Slog2File {
    /// Total drawable count.
    pub fn total_drawables(&self) -> usize {
        self.tree.total_drawables()
    }

    /// Look a category up by name.
    pub fn category_by_name(&self, name: &str) -> Option<&Category> {
        self.categories.iter().find(|c| c.name == name)
    }

    /// Look a category up by id. This resolves by the category's
    /// declared `index` field, not by table position (the two coincide
    /// for converter output but a hand-built file may differ).
    pub fn category(&self, id: CategoryId) -> Option<&Category> {
        self.categories
            .get(id.as_usize())
            .filter(|c| c.index == id)
            .or_else(|| self.categories.iter().find(|c| c.index == id))
    }

    /// A timeline's display name.
    pub fn timeline_name(&self, id: TimelineId) -> Option<&str> {
        self.timelines.get(id.as_usize()).map(String::as_str)
    }

    /// Every timeline id in table order.
    pub fn timeline_ids(&self) -> impl Iterator<Item = TimelineId> + '_ {
        (0..self.timelines.len() as u32).map(TimelineId)
    }

    /// Resolve the file's [`WellKnownCategory`] table once.
    ///
    /// [`WellKnownCategory`]: crate::WellKnownCategory
    pub fn category_map(&self) -> CategoryMap {
        CategoryMap::resolve(self)
    }

    /// Serialize to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(4096);
        w.put_bytes(MAGIC);
        w.put_u32(self.tree.capacity as u32);
        w.put_u32(self.tree.max_depth);
        w.put_f64(self.range.t0);
        w.put_f64(self.range.t1);
        w.put_u32(self.timelines.len() as u32);
        for t in &self.timelines {
            w.put_str(t);
        }
        w.put_u32(self.categories.len() as u32);
        for c in &self.categories {
            c.encode(&mut w);
        }
        w.put_u32(self.warnings.len() as u32);
        for s in &self.warnings {
            w.put_str(s);
        }

        // Count nodes, reserve directory, then write nodes patching
        // their offsets in.
        let mut n_nodes = 0u32;
        self.tree.visit(&mut |_| n_nodes += 1);
        w.put_u32(n_nodes);
        let dir_start = w.len();
        for _ in 0..n_nodes {
            w.put_u64(0);
        }
        let mut idx = 0usize;
        encode_node(&self.tree.root, &mut w, dir_start, &mut idx);
        w.into_bytes()
    }

    /// Whether `bytes` begin with the SLOG2 magic — a cheap format
    /// sniff for upload endpoints that accept several wire formats.
    /// A `true` here promises nothing about the rest of the bytes.
    pub fn sniff(bytes: &[u8]) -> bool {
        bytes.len() >= MAGIC.len() && &bytes[..MAGIC.len()] == MAGIC
    }

    /// Parse from bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Slog2File, WireError> {
        let mut r = Reader::new(bytes);
        let magic = r.get_bytes(8)?;
        if magic != MAGIC {
            return Err(WireError::BadMagic(format!("{magic:02x?}")));
        }
        let capacity = r.get_u32()? as usize;
        let max_depth = r.get_u32()?;
        let range = TimeWindow::new(r.get_f64()?, r.get_f64()?);
        let ntl = checked_count(r.get_u32()?, bytes.len())?;
        let mut timelines = Vec::with_capacity(ntl);
        for _ in 0..ntl {
            timelines.push(r.get_str()?);
        }
        let ncat = checked_count(r.get_u32()?, bytes.len())?;
        let mut categories = Vec::with_capacity(ncat);
        for _ in 0..ncat {
            categories.push(Category::decode(&mut r)?);
        }
        let nwarn = checked_count(r.get_u32()?, bytes.len())?;
        let mut warnings = Vec::with_capacity(nwarn);
        for _ in 0..nwarn {
            warnings.push(r.get_str()?);
        }
        let n_nodes = checked_count(r.get_u32()?, bytes.len())?;
        // Skip the directory; sequential parse doesn't need it.
        let _dir = r.get_bytes(n_nodes * 8)?;
        let mut consumed = 0usize;
        let root = decode_node(&mut r, &mut consumed, n_nodes)?;
        if consumed != n_nodes {
            return Err(WireError::Corrupt(format!(
                "directory says {n_nodes} nodes, parsed {consumed}"
            )));
        }
        Ok(Slog2File {
            timelines,
            categories,
            range,
            warnings,
            tree: FrameTree {
                root,
                capacity,
                max_depth,
            },
        })
    }

    /// Random access: read the `idx`-th node (pre-order) straight from
    /// the byte image using the directory, without parsing anything else.
    /// Children are not attached (`children: None`); this is the frame-
    /// level access a scrolling viewer performs.
    pub fn read_node_at(bytes: &[u8], idx: usize) -> Result<FrameNode, WireError> {
        let mut r = Reader::new(bytes);
        let magic = r.get_bytes(8)?;
        if magic != MAGIC {
            return Err(WireError::BadMagic(format!("{magic:02x?}")));
        }
        let _capacity = r.get_u32()?;
        let _max_depth = r.get_u32()?;
        let _range = (r.get_f64()?, r.get_f64()?);
        for _ in 0..r.get_u32()? {
            r.get_str()?;
        }
        for _ in 0..r.get_u32()? {
            Category::decode(&mut r)?;
        }
        for _ in 0..r.get_u32()? {
            r.get_str()?;
        }
        let n_nodes = r.get_u32()? as usize;
        if idx >= n_nodes {
            return Err(WireError::Corrupt(format!(
                "node {idx} out of range ({n_nodes} nodes)"
            )));
        }
        let dir_pos = r.position() + idx * 8;
        let mut dr = Reader::new(bytes);
        dr.seek(dir_pos)?;
        let off = dr.get_u64()? as usize;
        let mut nr = Reader::new(bytes);
        nr.seek(off)?;
        let (node, _has_children) = decode_one_node(&mut nr)?;
        Ok(node)
    }

    /// Write to a file.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Read from a file. I/O and decode failures both surface through
    /// the single [`Slog2Error`], so `?` works at every call site.
    pub fn read_from(path: &Path) -> Result<Slog2File, Slog2Error> {
        Ok(Slog2File::from_bytes(&std::fs::read(path)?)?)
    }

    /// Read from a file and insist it passes
    /// [`validate`](crate::validate::validate); defects surface as
    /// [`Slog2Error::Validate`]. This is what long-running consumers
    /// (the `pilotd` query service) use, so a defective file is refused
    /// at load instead of rendering a wrong picture later.
    pub fn read_validated(path: &Path) -> Result<Slog2File, Slog2Error> {
        let file = Slog2File::read_from(path)?;
        let defects = crate::validate::validate(&file);
        if defects.is_empty() {
            Ok(file)
        } else {
            Err(Slog2Error::Validate(defects))
        }
    }
}

impl Query for Slog2File {
    fn drawables_in(&self, w: TimeWindow) -> Vec<&Drawable> {
        self.tree.drawables_in(w)
    }

    fn preview_in(&self, w: TimeWindow) -> Preview {
        self.tree.preview_in(w)
    }
}

fn checked_count(v: u32, bound: usize) -> Result<usize, WireError> {
    let n = v as usize;
    if n > bound {
        return Err(WireError::Corrupt(format!("count {n} exceeds file size")));
    }
    Ok(n)
}

fn encode_node(node: &FrameNode, w: &mut Writer, dir_start: usize, idx: &mut usize) {
    w.patch_u64(dir_start + *idx * 8, w.len() as u64);
    *idx += 1;
    w.put_f64(node.t0);
    w.put_f64(node.t1);
    w.put_u32(node.depth);
    w.put_u8(node.children.is_some() as u8);
    w.put_u32(node.drawables.len() as u32);
    for d in &node.drawables {
        d.encode(w);
    }
    w.put_u32(node.preview.entries.len() as u32);
    for e in &node.preview.entries {
        w.put_u32(e.category.0);
        w.put_u64(e.count);
        w.put_f64(e.coverage);
    }
    if let Some(ch) = &node.children {
        encode_node(&ch.0, w, dir_start, idx);
        encode_node(&ch.1, w, dir_start, idx);
    }
}

fn decode_one_node(r: &mut Reader<'_>) -> Result<(FrameNode, bool), WireError> {
    let t0 = r.get_f64()?;
    let t1 = r.get_f64()?;
    let depth = r.get_u32()?;
    let has_children = r.get_u8()? != 0;
    let nd = r.get_u32()? as usize;
    if nd > r.remaining() {
        return Err(WireError::Corrupt("drawable count".into()));
    }
    let mut drawables = Vec::with_capacity(nd);
    for _ in 0..nd {
        drawables.push(Drawable::decode(r)?);
    }
    let np = r.get_u32()? as usize;
    if np > r.remaining() {
        return Err(WireError::Corrupt("preview count".into()));
    }
    let mut entries = Vec::with_capacity(np);
    for _ in 0..np {
        entries.push(PreviewEntry {
            category: CategoryId(r.get_u32()?),
            count: r.get_u64()?,
            coverage: r.get_f64()?,
        });
    }
    Ok((
        FrameNode {
            t0,
            t1,
            depth,
            drawables,
            preview: Preview { entries },
            children: None,
        },
        has_children,
    ))
}

fn decode_node(
    r: &mut Reader<'_>,
    consumed: &mut usize,
    limit: usize,
) -> Result<FrameNode, WireError> {
    if *consumed >= limit {
        return Err(WireError::Corrupt(
            "more nodes than directory entries".into(),
        ));
    }
    *consumed += 1;
    let (mut node, has_children) = decode_one_node(r)?;
    if has_children {
        let l = decode_node(r, consumed, limit)?;
        let rr = decode_node(r, consumed, limit)?;
        node.children = Some(Box::new((l, rr)));
    }
    Ok(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drawable::{CategoryKind, EventDrawable, StateDrawable};
    use mpelog::Color;

    fn sample() -> Slog2File {
        let ds: Vec<Drawable> = (0..40)
            .map(|i| {
                if i % 2 == 0 {
                    Drawable::State(StateDrawable {
                        category: CategoryId(0),
                        timeline: TimelineId((i % 3) as u32),
                        start: i as f64 * 0.1,
                        end: i as f64 * 0.1 + 0.05,
                        nest_level: 0,
                        text: format!("Line: {i}"),
                    })
                } else {
                    Drawable::Event(EventDrawable {
                        category: CategoryId(1),
                        timeline: TimelineId((i % 3) as u32),
                        time: i as f64 * 0.1,
                        text: String::new(),
                    })
                }
            })
            .collect();
        let tree = FrameTree::build(ds, 0.0, 4.0, 4, 8);
        Slog2File {
            timelines: vec!["PI_MAIN".into(), "P1".into(), "P2".into()],
            categories: vec![
                Category {
                    index: CategoryId(0),
                    name: "PI_Read".into(),
                    color: Color::RED,
                    kind: CategoryKind::State,
                },
                Category {
                    index: CategoryId(1),
                    name: "arrival".into(),
                    color: Color::YELLOW,
                    kind: CategoryKind::Event,
                },
            ],
            range: TimeWindow::new(0.0, 4.0),
            warnings: vec!["Equal Drawables: 2 x arrival".into()],
            tree,
        }
    }

    #[test]
    fn bytes_roundtrip_preserves_everything() {
        let f = sample();
        let back = Slog2File::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[1] = b'Z';
        assert!(matches!(
            Slog2File::from_bytes(&bytes),
            Err(WireError::BadMagic(_))
        ));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = sample().to_bytes();
        // Cut at a spread of positions; parsing must error, never panic.
        for cut in (0..bytes.len()).step_by(97) {
            assert!(Slog2File::from_bytes(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn directory_random_access_matches_tree() {
        let f = sample();
        let bytes = f.to_bytes();
        // Collect pre-order nodes from the in-memory tree.
        let mut nodes = Vec::new();
        f.tree.visit(&mut |n| nodes.push(n));
        for (i, want) in nodes.iter().enumerate() {
            let got = Slog2File::read_node_at(&bytes, i).unwrap();
            assert_eq!(got.t0, want.t0);
            assert_eq!(got.t1, want.t1);
            assert_eq!(got.depth, want.depth);
            assert_eq!(got.drawables, want.drawables);
            assert_eq!(got.preview, want.preview);
        }
    }

    #[test]
    fn read_node_out_of_range_errors() {
        let bytes = sample().to_bytes();
        assert!(Slog2File::read_node_at(&bytes, 10_000).is_err());
    }

    #[test]
    fn file_io_roundtrip() {
        let dir = std::env::temp_dir().join("slog2-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.pslog2");
        let f = sample();
        f.write_to(&path).unwrap();
        assert_eq!(Slog2File::read_from(&path).unwrap(), f);
        assert_eq!(Slog2File::read_validated(&path).unwrap(), f);
    }

    #[test]
    fn read_from_missing_file_is_io_error() {
        let err = Slog2File::read_from(Path::new("/nonexistent/nope.pslog2")).unwrap_err();
        assert!(matches!(err, Slog2Error::Io(_)));
    }

    #[test]
    fn read_validated_rejects_defective_file() {
        let dir = std::env::temp_dir().join("slog2-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("defective.pslog2");
        let mut f = sample();
        // Claim a range that excludes every drawable: OutOfRange defects.
        f.range = TimeWindow::new(100.0, 101.0);
        f.write_to(&path).unwrap();
        assert!(Slog2File::read_from(&path).is_ok());
        let err = Slog2File::read_validated(&path).unwrap_err();
        assert!(matches!(err, Slog2Error::Validate(ref d) if !d.is_empty()));
    }

    #[test]
    fn category_lookup() {
        let f = sample();
        assert_eq!(f.category_by_name("PI_Read").unwrap().index, CategoryId(0));
        assert_eq!(f.category(CategoryId(0)).unwrap().name, "PI_Read");
        assert!(f.category(CategoryId(9)).is_none());
        assert_eq!(f.timeline_name(TimelineId(1)), Some("P1"));
        assert_eq!(f.timeline_ids().count(), 3);
        assert!(f.category_by_name("PI_Write").is_none());
    }
}
