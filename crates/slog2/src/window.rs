//! Time windows and the query API.
//!
//! Every layer of the stack — the frame tree, the legend stats, the
//! renderers, and the `pilotd` query service — used to pass `(f64, f64)`
//! pairs around with each call site deciding for itself whether the
//! boundaries were open or closed. [`TimeWindow`] gives the window a
//! type and pins the inclusivity down in exactly one place:
//!
//! * A window is the **closed** interval `[t0, t1]`.
//! * A drawable overlaps a window iff `start <= t1 && end >= t0` —
//!   touching at either boundary counts, so an event sitting exactly on
//!   a window edge is drawn, matching Jumpshot's behaviour.
//!
//! [`Query`] is the read-side trait over that definition: anything that
//! can answer "what is in this window?" — a [`FrameTree`], a whole
//! [`Slog2File`], or the service's per-rank index — implements it, and
//! callers (renderers, the HTTP server, benchmarks) stay agnostic about
//! which one they are talking to.

use crate::drawable::Drawable;
use crate::tree::Preview;

/// A closed time interval `[t0, t1]`, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeWindow {
    /// Inclusive start.
    pub t0: f64,
    /// Inclusive end.
    pub t1: f64,
}

impl TimeWindow {
    /// The window covering all of time.
    pub const ALL: TimeWindow = TimeWindow {
        t0: f64::NEG_INFINITY,
        t1: f64::INFINITY,
    };

    /// A window from `t0` to `t1`. Swaps the endpoints if given in
    /// descending order, so a window is always non-inverted.
    pub fn new(t0: f64, t1: f64) -> TimeWindow {
        if t1 < t0 {
            TimeWindow { t0: t1, t1: t0 }
        } else {
            TimeWindow { t0, t1 }
        }
    }

    /// Width of the window (0 for an instant).
    pub fn span(&self) -> f64 {
        self.t1 - self.t0
    }

    /// Does the instant `t` lie inside (boundaries included)?
    pub fn contains(&self, t: f64) -> bool {
        self.t0 <= t && t <= self.t1
    }

    /// Is `other` entirely inside this window?
    pub fn contains_window(&self, other: TimeWindow) -> bool {
        self.t0 <= other.t0 && other.t1 <= self.t1
    }

    /// Do two closed windows share at least one instant?
    pub fn intersects(&self, other: TimeWindow) -> bool {
        self.t0 <= other.t1 && other.t0 <= self.t1
    }

    /// **The** drawable-vs-window overlap rule: closed on both sides, so
    /// touching counts. Every query path in the workspace goes through
    /// here; there is deliberately no second definition.
    pub fn overlaps(&self, d: &Drawable) -> bool {
        d.start() <= self.t1 && d.end() >= self.t0
    }

    /// The intersection of two windows, or `None` if they are disjoint.
    pub fn intersect(&self, other: TimeWindow) -> Option<TimeWindow> {
        let t0 = self.t0.max(other.t0);
        let t1 = self.t1.min(other.t1);
        (t0 <= t1).then_some(TimeWindow { t0, t1 })
    }

    /// How much of `[start, end]` lies inside the window, in seconds.
    pub fn clip_span(&self, start: f64, end: f64) -> f64 {
        (end.min(self.t1) - start.max(self.t0)).max(0.0)
    }

    /// Linear interpolation: the time at fraction `f` across the window.
    pub fn lerp(&self, f: f64) -> f64 {
        self.t0 + self.span() * f
    }
}

impl From<(f64, f64)> for TimeWindow {
    fn from((t0, t1): (f64, f64)) -> TimeWindow {
        TimeWindow::new(t0, t1)
    }
}

/// Read-side query API over a time-indexed drawable collection.
///
/// Implemented by [`FrameTree`](crate::FrameTree) and
/// [`Slog2File`](crate::Slog2File) here, and by the `pilotd` service's
/// per-rank interval index in `crates/timeline`.
pub trait Query {
    /// All drawables overlapping `w` (per [`TimeWindow::overlaps`]), in
    /// the implementation's deterministic traversal order.
    fn drawables_in(&self, w: TimeWindow) -> Vec<&Drawable>;

    /// Exact per-category count/coverage aggregate, durations clipped to
    /// `w`. Implementations may satisfy this from precomputed node
    /// previews without touching individual drawables.
    fn preview_in(&self, w: TimeWindow) -> Preview;

    /// Number of drawables overlapping `w` without materializing them.
    fn count_in(&self, w: TimeWindow) -> usize {
        self.drawables_in(w).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drawable::{EventDrawable, StateDrawable};
    use crate::id::{CategoryId, TimelineId};

    fn state(start: f64, end: f64) -> Drawable {
        Drawable::State(StateDrawable {
            category: CategoryId(0),
            timeline: TimelineId(0),
            start,
            end,
            nest_level: 0,
            text: String::new(),
        })
    }

    #[test]
    fn new_normalizes_order() {
        assert_eq!(TimeWindow::new(3.0, 1.0), TimeWindow::new(1.0, 3.0));
        assert_eq!(TimeWindow::new(1.0, 3.0).span(), 2.0);
    }

    #[test]
    fn boundaries_are_closed() {
        let w = TimeWindow::new(1.0, 2.0);
        // Touching at either edge counts.
        assert!(w.overlaps(&state(0.0, 1.0)));
        assert!(w.overlaps(&state(2.0, 3.0)));
        assert!(!w.overlaps(&state(0.0, 0.999)));
        assert!(!w.overlaps(&state(2.001, 3.0)));
        // Instants (events) on the edge count too.
        let e = Drawable::Event(EventDrawable {
            category: CategoryId(0),
            timeline: TimelineId(0),
            time: 2.0,
            text: String::new(),
        });
        assert!(w.overlaps(&e));
    }

    #[test]
    fn contains_and_intersect() {
        let w = TimeWindow::new(0.0, 10.0);
        assert!(w.contains(0.0) && w.contains(10.0) && !w.contains(10.1));
        assert!(w.contains_window(TimeWindow::new(2.0, 3.0)));
        assert!(!w.contains_window(TimeWindow::new(2.0, 11.0)));
        assert_eq!(
            w.intersect(TimeWindow::new(5.0, 15.0)),
            Some(TimeWindow::new(5.0, 10.0))
        );
        assert_eq!(w.intersect(TimeWindow::new(11.0, 12.0)), None);
        // Touching windows intersect in a single instant.
        assert_eq!(
            w.intersect(TimeWindow::new(10.0, 12.0)),
            Some(TimeWindow::new(10.0, 10.0))
        );
    }

    #[test]
    fn clip_span_clamps() {
        let w = TimeWindow::new(1.0, 2.0);
        assert_eq!(w.clip_span(0.0, 3.0), 1.0);
        assert_eq!(w.clip_span(1.5, 3.0), 0.5);
        assert_eq!(w.clip_span(5.0, 6.0), 0.0);
    }

    #[test]
    fn all_window_overlaps_everything() {
        assert!(TimeWindow::ALL.overlaps(&state(-1e300, -1e300)));
        assert!(TimeWindow::ALL.overlaps(&state(1e300, 1e300)));
    }
}
