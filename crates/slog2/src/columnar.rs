//! Columnar drawable storage for the converter's hot path.
//!
//! The scan/merge/tree phases used to shuffle `Vec<Drawable>` around —
//! an 80-byte enum per row plus a heap `String` each, so every
//! partition step moved wide rows and every text carried an allocation.
//! [`DrawableColumns`] stores the same rows struct-of-arrays with one
//! shared text arena: pushes are plain array appends, the frame-tree
//! build permutes `u32` indices instead of rows, and texts are
//! materialized into owned [`Drawable`]s only when a row reaches its
//! final tree node (or is encoded straight to bytes on the out-of-core
//! path, which never materializes at all).
//!
//! Row semantics mirror [`Drawable`] exactly — in particular an arrow's
//! `(t0, t1)` are the *raw* send/receive timestamps (possibly
//! backward), while [`DrawableColumns::start`]/[`DrawableColumns::end`]
//! normalize them the way `Drawable::start`/`end` do.

use mpelog::wire::Writer;

use crate::drawable::{ArrowDrawable, Drawable, EventDrawable, StateDrawable};
use crate::id::{CategoryId, TimelineId};

/// Row kind tags — same values as the wire encoding's kind byte.
pub(crate) const KIND_STATE: u8 = 0;
pub(crate) const KIND_EVENT: u8 = 1;
pub(crate) const KIND_ARROW: u8 = 2;

/// Struct-of-arrays drawable store. See the module docs.
#[derive(Debug, Default, Clone)]
pub(crate) struct DrawableColumns {
    kinds: Vec<u8>,
    cats: Vec<u32>,
    /// Timeline (state/event) or from-timeline (arrow).
    tls: Vec<u32>,
    /// Nest level (state), 0 (event), to-timeline (arrow).
    aux1: Vec<u32>,
    /// Tag (arrow), else 0.
    aux2: Vec<u32>,
    /// Size (arrow), else 0.
    aux3: Vec<u32>,
    /// Raw start: state start, event time, send timestamp.
    t0s: Vec<f64>,
    /// Raw end: state end, event time, receive timestamp.
    t1s: Vec<f64>,
    text_off: Vec<u64>,
    text_len: Vec<u32>,
    texts: String,
    n_states: u64,
    n_events: u64,
    n_arrows: u64,
}

impl DrawableColumns {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn len(&self) -> usize {
        self.kinds.len()
    }

    pub(crate) fn n_states(&self) -> u64 {
        self.n_states
    }

    pub(crate) fn n_events(&self) -> u64 {
        self.n_events
    }

    pub(crate) fn n_arrows(&self) -> u64 {
        self.n_arrows
    }

    fn push_text(&mut self, text: &str) {
        self.text_off.push(self.texts.len() as u64);
        self.text_len.push(text.len() as u32);
        self.texts.push_str(text);
    }

    pub(crate) fn push_state(
        &mut self,
        cat: CategoryId,
        tl: TimelineId,
        start: f64,
        end: f64,
        nest: u32,
        text: &str,
    ) {
        self.kinds.push(KIND_STATE);
        self.cats.push(cat.0);
        self.tls.push(tl.0);
        self.aux1.push(nest);
        self.aux2.push(0);
        self.aux3.push(0);
        self.t0s.push(start);
        self.t1s.push(end);
        self.push_text(text);
        self.n_states += 1;
    }

    pub(crate) fn push_event(&mut self, cat: CategoryId, tl: TimelineId, time: f64, text: &str) {
        self.kinds.push(KIND_EVENT);
        self.cats.push(cat.0);
        self.tls.push(tl.0);
        self.aux1.push(0);
        self.aux2.push(0);
        self.aux3.push(0);
        self.t0s.push(time);
        self.t1s.push(time);
        self.push_text(text);
        self.n_events += 1;
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn push_arrow(
        &mut self,
        cat: CategoryId,
        from: TimelineId,
        to: TimelineId,
        start: f64,
        end: f64,
        tag: u32,
        size: u32,
    ) {
        self.kinds.push(KIND_ARROW);
        self.cats.push(cat.0);
        self.tls.push(from.0);
        self.aux1.push(to.0);
        self.aux2.push(tag);
        self.aux3.push(size);
        self.t0s.push(start);
        self.t1s.push(end);
        self.push_text("");
        self.n_arrows += 1;
    }

    /// Append one row of a [`Drawable`] — the reference against which
    /// the typed `push_*` methods are tested.
    #[cfg(test)]
    pub(crate) fn push(&mut self, d: &Drawable) {
        match d {
            Drawable::State(s) => self.push_state(
                s.category,
                s.timeline,
                s.start,
                s.end,
                s.nest_level,
                &s.text,
            ),
            Drawable::Event(e) => self.push_event(e.category, e.timeline, e.time, &e.text),
            Drawable::Arrow(a) => self.push_arrow(
                a.category,
                a.from_timeline,
                a.to_timeline,
                a.start,
                a.end,
                a.tag,
                a.size,
            ),
        }
    }

    pub(crate) fn kind(&self, i: usize) -> u8 {
        self.kinds[i]
    }

    pub(crate) fn category(&self, i: usize) -> CategoryId {
        CategoryId(self.cats[i])
    }

    /// Earliest time — arrows normalized like [`Drawable::start`].
    pub(crate) fn start(&self, i: usize) -> f64 {
        if self.kinds[i] == KIND_ARROW {
            self.t0s[i].min(self.t1s[i])
        } else {
            self.t0s[i]
        }
    }

    /// Latest time — arrows normalized like [`Drawable::end`].
    pub(crate) fn end(&self, i: usize) -> f64 {
        if self.kinds[i] == KIND_ARROW {
            self.t1s[i].max(self.t0s[i])
        } else {
            self.t1s[i]
        }
    }

    pub(crate) fn duration(&self, i: usize) -> f64 {
        self.end(i) - self.start(i)
    }

    pub(crate) fn text(&self, i: usize) -> &str {
        let off = self.text_off[i] as usize;
        &self.texts[off..off + self.text_len[i] as usize]
    }

    /// Add `delta` to a state row's nest level (the stitch pass uses
    /// this to lift chunk-local nest positions onto the carry stack).
    pub(crate) fn bump_nest(&mut self, i: usize, delta: u32) {
        debug_assert_eq!(self.kinds[i], KIND_STATE);
        self.aux1[i] += delta;
    }

    /// The Equal-Drawables grouping key for row `i` — identical to
    /// `equal_drawable_key(&self.to_drawable(i))`.
    pub(crate) fn equal_key(&self, i: usize) -> (u32, u32, u32, u64, u64) {
        match self.kinds[i] {
            KIND_ARROW => (
                self.cats[i],
                self.tls[i],
                self.aux1[i],
                self.t0s[i].to_bits(),
                self.t1s[i].to_bits(),
            ),
            _ => (
                self.cats[i],
                self.tls[i],
                0,
                self.t0s[i].to_bits(),
                self.t1s[i].to_bits(),
            ),
        }
    }

    /// Materialize row `i` as an owned [`Drawable`].
    pub(crate) fn to_drawable(&self, i: usize) -> Drawable {
        match self.kinds[i] {
            KIND_STATE => Drawable::State(StateDrawable {
                category: CategoryId(self.cats[i]),
                timeline: TimelineId(self.tls[i]),
                start: self.t0s[i],
                end: self.t1s[i],
                nest_level: self.aux1[i],
                text: self.text(i).to_string(),
            }),
            KIND_EVENT => Drawable::Event(EventDrawable {
                category: CategoryId(self.cats[i]),
                timeline: TimelineId(self.tls[i]),
                time: self.t0s[i],
                text: self.text(i).to_string(),
            }),
            _ => Drawable::Arrow(ArrowDrawable {
                category: CategoryId(self.cats[i]),
                from_timeline: TimelineId(self.tls[i]),
                to_timeline: TimelineId(self.aux1[i]),
                start: self.t0s[i],
                end: self.t1s[i],
                tag: self.aux2[i],
                size: self.aux3[i],
            }),
        }
    }

    /// Encode row `i` — byte-for-byte what `Drawable::encode` writes.
    pub(crate) fn encode(&self, i: usize, w: &mut Writer) {
        let kind = self.kinds[i];
        w.put_u8(kind);
        w.put_u32(self.cats[i]);
        w.put_u32(self.tls[i]);
        match kind {
            KIND_STATE => {
                w.put_f64(self.t0s[i]);
                w.put_f64(self.t1s[i]);
                w.put_u32(self.aux1[i]);
                w.put_str(self.text(i));
            }
            KIND_EVENT => {
                w.put_f64(self.t0s[i]);
                w.put_str(self.text(i));
            }
            _ => {
                w.put_u32(self.aux1[i]);
                w.put_f64(self.t0s[i]);
                w.put_f64(self.t1s[i]);
                w.put_u32(self.aux2[i]);
                w.put_u32(self.aux3[i]);
            }
        }
    }

    /// Copy row `i` of `src` onto the end of `self`.
    pub(crate) fn push_row(&mut self, src: &DrawableColumns, i: usize) {
        self.kinds.push(src.kinds[i]);
        self.cats.push(src.cats[i]);
        self.tls.push(src.tls[i]);
        self.aux1.push(src.aux1[i]);
        self.aux2.push(src.aux2[i]);
        self.aux3.push(src.aux3[i]);
        self.t0s.push(src.t0s[i]);
        self.t1s.push(src.t1s[i]);
        self.push_text(src.text(i));
        match src.kinds[i] {
            KIND_STATE => self.n_states += 1,
            KIND_EVENT => self.n_events += 1,
            _ => self.n_arrows += 1,
        }
    }

    /// Append all rows of `other`, rebasing its text offsets.
    pub(crate) fn append(&mut self, other: &DrawableColumns) {
        let base = self.texts.len() as u64;
        self.kinds.extend_from_slice(&other.kinds);
        self.cats.extend_from_slice(&other.cats);
        self.tls.extend_from_slice(&other.tls);
        self.aux1.extend_from_slice(&other.aux1);
        self.aux2.extend_from_slice(&other.aux2);
        self.aux3.extend_from_slice(&other.aux3);
        self.t0s.extend_from_slice(&other.t0s);
        self.t1s.extend_from_slice(&other.t1s);
        self.text_off
            .extend(other.text_off.iter().map(|o| o + base));
        self.text_len.extend_from_slice(&other.text_len);
        self.texts.push_str(&other.texts);
        self.n_states += other.n_states;
        self.n_events += other.n_events;
        self.n_arrows += other.n_arrows;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Drawable> {
        vec![
            Drawable::State(StateDrawable {
                category: CategoryId(0),
                timeline: TimelineId(1),
                start: 1.0,
                end: 2.5,
                nest_level: 3,
                text: "Line: 7".into(),
            }),
            Drawable::Event(EventDrawable {
                category: CategoryId(4),
                timeline: TimelineId(0),
                time: 1.25,
                text: "Chan: C0".into(),
            }),
            // Backward arrow: raw order preserved, accessors normalize.
            Drawable::Arrow(ArrowDrawable {
                category: CategoryId(5),
                from_timeline: TimelineId(0),
                to_timeline: TimelineId(1),
                start: 3.0,
                end: 2.0,
                tag: 9,
                size: 64,
            }),
        ]
    }

    #[test]
    fn roundtrip_and_accessors_match_enum() {
        let ds = sample();
        let mut cols = DrawableColumns::new();
        for d in &ds {
            cols.push(d);
        }
        assert_eq!(cols.len(), ds.len());
        assert_eq!(
            (cols.n_states(), cols.n_events(), cols.n_arrows()),
            (1, 1, 1)
        );
        for (i, d) in ds.iter().enumerate() {
            assert_eq!(&cols.to_drawable(i), d);
            assert_eq!(cols.start(i), d.start());
            assert_eq!(cols.end(i), d.end());
            assert_eq!(cols.duration(i), d.duration());
            assert_eq!(cols.category(i), d.category());
            let mut a = Writer::new();
            let mut b = Writer::new();
            cols.encode(i, &mut a);
            d.encode(&mut b);
            assert_eq!(a.into_bytes(), b.into_bytes());
        }
    }

    #[test]
    fn append_and_push_row_rebase_texts() {
        let ds = sample();
        let mut a = DrawableColumns::new();
        a.push(&ds[0]);
        let mut b = DrawableColumns::new();
        b.push(&ds[1]);
        b.push(&ds[2]);
        let mut merged = DrawableColumns::new();
        merged.append(&a);
        merged.append(&b);
        let mut copied = DrawableColumns::new();
        for i in 0..merged.len() {
            copied.push_row(&merged, i);
        }
        for (i, d) in ds.iter().enumerate() {
            assert_eq!(&merged.to_drawable(i), d);
            assert_eq!(&copied.to_drawable(i), d);
        }
    }

    #[test]
    fn bump_nest_lifts_state_rows() {
        let mut cols = DrawableColumns::new();
        cols.push(&sample()[0]);
        cols.bump_nest(0, 2);
        match cols.to_drawable(0) {
            Drawable::State(s) => assert_eq!(s.nest_level, 5),
            other => panic!("wrong kind: {other:?}"),
        }
    }
}
