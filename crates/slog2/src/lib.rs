//! # slog2 — the SLOG-2 container and the CLOG2→SLOG2 converter
//!
//! Jumpshot does not read CLOG-2 directly: a converter (`clog2TOslog2`)
//! first pairs raw event records into *drawables* — state rectangles,
//! solo-event bubbles, and message arrows — and organizes them into a
//! binary tree of *frames* over time so a viewer can fetch any zoom
//! window without scanning the whole file. This crate reproduces both
//! halves:
//!
//! * [`convert`](mod@convert): pairs state start/end events (with nesting), matches
//!   send/receive records into arrows, detects the **Equal Drawables**
//!   condition the paper hits (identical timestamps from a
//!   limited-resolution `MPI_Wtime`), and reports "non-well-behaved"
//!   logs (unclosed states, unmatched sends) as warnings rather than
//!   producing a silently defective file.
//! * [`tree`]: the frame tree. Each drawable lives in the shallowest
//!   node whose time interval fully contains it; every node carries a
//!   per-category *preview* histogram so a zoomed-out view can draw
//!   proportional colour stripes — the outlined rectangles of the
//!   paper's Fig. 1 — without touching the leaves.
//! * [`file`](mod@file): a binary container with a node directory (byte offsets),
//!   allowing random access to any frame, plus whole-file round-trip.
//! * [`stats`]: the legend-table numbers Jumpshot shows — per-category
//!   instance count, *inclusive* duration, and *exclusive* duration
//!   (inclusive minus nested states).

pub(crate) mod columnar;
pub mod convert;
pub mod drawable;
pub mod error;
pub mod file;
pub(crate) mod fnv;
pub mod id;
pub mod oocore;
pub(crate) mod scan;
pub mod source;
pub mod stats;
pub mod tree;
pub mod validate;
pub mod window;

#[allow(deprecated)]
pub use convert::{convert, convert_reader, convert_salvaged};
pub use convert::{
    Conversion, ConvertOptions, ConvertWarning, Converter, FailureKind, RankVerdict, SalvageReport,
    TornPolicy,
};
pub use drawable::{ArrowDrawable, Category, CategoryKind, Drawable, EventDrawable, StateDrawable};
pub use error::Slog2Error;
pub use file::Slog2File;
pub use id::{CategoryId, CategoryMap, TimelineId, WellKnownCategory};
pub use oocore::ConvertSummary;
pub use source::{Mmap, TraceSource};
pub use stats::{legend_stats, CategoryStats};
pub use tree::{FrameNode, FrameTree, FrameTreeBuilder, Preview};
pub use validate::{validate, Defect};
pub use window::{Query, TimeWindow};
