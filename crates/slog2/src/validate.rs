//! SLOG2 integrity validation.
//!
//! The paper warns that a "non well-behaved" program can "produce a
//! defective SLOG-2 file that cannot be properly displayed". Our
//! converter refuses to emit structurally invalid files, but files also
//! arrive from disk; [`validate`] checks every structural invariant the
//! viewer relies on so a defect is reported as a diagnosis instead of a
//! wrong picture.

use crate::drawable::{CategoryKind, Drawable};
use crate::file::Slog2File;
use crate::id::{CategoryId, TimelineId};
use crate::tree::FrameNode;

/// A structural defect found in an SLOG2 file.
#[derive(Debug, Clone, PartialEq)]
pub enum Defect {
    /// A drawable references a category index with no definition.
    UnknownCategory {
        /// The dangling index.
        category: CategoryId,
    },
    /// A drawable references a timeline beyond the timeline table.
    UnknownTimeline {
        /// The dangling rank.
        timeline: TimelineId,
    },
    /// A drawable's kind disagrees with its category's kind.
    KindMismatch {
        /// Category index.
        category: CategoryId,
        /// The category's declared kind.
        declared: CategoryKind,
    },
    /// A state with `end < start`.
    NegativeDuration {
        /// Category index.
        category: CategoryId,
        /// Start.
        start: f64,
        /// End.
        end: f64,
    },
    /// A drawable outside its frame node's interval.
    OutOfFrame {
        /// Node interval.
        node: (f64, f64),
        /// Drawable interval.
        drawable: (f64, f64),
    },
    /// Children do not partition their parent's interval.
    BrokenPartition {
        /// Parent interval.
        parent: (f64, f64),
    },
    /// A node's preview count disagrees with its subtree contents.
    PreviewMismatch {
        /// Node interval.
        node: (f64, f64),
        /// Preview total.
        preview: u64,
        /// Actual drawables in subtree.
        actual: u64,
    },
    /// A drawable outside the file's declared global range.
    OutOfRange {
        /// Drawable interval.
        drawable: (f64, f64),
    },
    /// Category indices are not unique.
    DuplicateCategoryIndex {
        /// The repeated index.
        category: CategoryId,
    },
    /// A non-finite timestamp.
    NonFiniteTime,
}

impl std::fmt::Display for Defect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Defect::UnknownCategory { category } => {
                write!(f, "drawable references undefined category {category}")
            }
            Defect::UnknownTimeline { timeline } => {
                write!(f, "drawable references undefined timeline {timeline}")
            }
            Defect::KindMismatch { category, declared } => {
                write!(
                    f,
                    "drawable kind disagrees with category {category} ({declared:?})"
                )
            }
            Defect::NegativeDuration {
                category,
                start,
                end,
            } => {
                write!(
                    f,
                    "state of category {category} runs backward: [{start}, {end}]"
                )
            }
            Defect::OutOfFrame { node, drawable } => write!(
                f,
                "drawable [{}, {}] outside its frame [{}, {}]",
                drawable.0, drawable.1, node.0, node.1
            ),
            Defect::BrokenPartition { parent } => {
                write!(
                    f,
                    "children do not partition frame [{}, {}]",
                    parent.0, parent.1
                )
            }
            Defect::PreviewMismatch {
                node,
                preview,
                actual,
            } => write!(
                f,
                "frame [{}, {}] preview says {preview} drawables, subtree has {actual}",
                node.0, node.1
            ),
            Defect::OutOfRange { drawable } => write!(
                f,
                "drawable [{}, {}] outside the file's declared range",
                drawable.0, drawable.1
            ),
            Defect::DuplicateCategoryIndex { category } => {
                write!(f, "category index {category} defined more than once")
            }
            Defect::NonFiniteTime => write!(f, "non-finite timestamp"),
        }
    }
}

fn subtree_count(node: &FrameNode) -> u64 {
    let mut n = node.drawables.len() as u64;
    if let Some(ch) = &node.children {
        n += subtree_count(&ch.0) + subtree_count(&ch.1);
    }
    n
}

/// Validate a file, returning every defect found (empty = sound).
pub fn validate(file: &Slog2File) -> Vec<Defect> {
    let mut defects = Vec::new();

    // Category table.
    let mut seen = std::collections::HashSet::new();
    for c in &file.categories {
        if !seen.insert(c.index) {
            defects.push(Defect::DuplicateCategoryIndex { category: c.index });
        }
    }
    let cat_kind = |idx: CategoryId| {
        file.categories
            .iter()
            .find(|c| c.index == idx)
            .map(|c| c.kind)
    };
    let ntl = file.timelines.len() as u32;

    // Per-drawable checks + frame containment + previews, via the tree.
    let mut stack = vec![&file.tree.root];
    while let Some(node) = stack.pop() {
        let actual = subtree_count(node);
        let preview = node.preview.total_count();
        if actual != preview {
            defects.push(Defect::PreviewMismatch {
                node: (node.t0, node.t1),
                preview,
                actual,
            });
        }
        if let Some(ch) = &node.children {
            if ch.0.t0 != node.t0 || ch.0.t1 != ch.1.t0 || ch.1.t1 != node.t1 {
                defects.push(Defect::BrokenPartition {
                    parent: (node.t0, node.t1),
                });
            }
            stack.push(&ch.0);
            stack.push(&ch.1);
        }
        for d in &node.drawables {
            if !d.start().is_finite() || !d.end().is_finite() {
                defects.push(Defect::NonFiniteTime);
                continue;
            }
            if d.start() < node.t0 || d.end() > node.t1 {
                defects.push(Defect::OutOfFrame {
                    node: (node.t0, node.t1),
                    drawable: (d.start(), d.end()),
                });
            }
            if d.start() < file.range.t0 || d.end() > file.range.t1 {
                defects.push(Defect::OutOfRange {
                    drawable: (d.start(), d.end()),
                });
            }
            let (cat, timelines, want_kind): (CategoryId, Vec<TimelineId>, CategoryKind) = match d {
                Drawable::State(s) => {
                    if s.end < s.start {
                        defects.push(Defect::NegativeDuration {
                            category: s.category,
                            start: s.start,
                            end: s.end,
                        });
                    }
                    (s.category, vec![s.timeline], CategoryKind::State)
                }
                Drawable::Event(e) => (e.category, vec![e.timeline], CategoryKind::Event),
                Drawable::Arrow(a) => (
                    a.category,
                    vec![a.from_timeline, a.to_timeline],
                    CategoryKind::Arrow,
                ),
            };
            match cat_kind(cat) {
                None => defects.push(Defect::UnknownCategory { category: cat }),
                Some(k) if k != want_kind => defects.push(Defect::KindMismatch {
                    category: cat,
                    declared: k,
                }),
                _ => {}
            }
            for tl in timelines {
                if tl.as_u32() >= ntl {
                    defects.push(Defect::UnknownTimeline { timeline: tl });
                }
            }
        }
    }
    defects
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drawable::{Category, StateDrawable};
    use crate::tree::FrameTree;
    use crate::window::TimeWindow;
    use mpelog::Color;

    fn sound_file() -> Slog2File {
        let ds = vec![Drawable::State(StateDrawable {
            category: CategoryId(0),
            timeline: TimelineId(0),
            start: 1.0,
            end: 2.0,
            nest_level: 0,
            text: String::new(),
        })];
        Slog2File {
            timelines: vec!["P0".into()],
            categories: vec![Category {
                index: CategoryId(0),
                name: "s".into(),
                color: Color::RED,
                kind: CategoryKind::State,
            }],
            range: TimeWindow::new(0.0, 3.0),
            warnings: vec![],
            tree: FrameTree::build(ds, 0.0, 3.0, 8, 4),
        }
    }

    #[test]
    fn sound_file_has_no_defects() {
        assert!(validate(&sound_file()).is_empty());
    }

    #[test]
    fn converted_files_are_sound() {
        // Anything the converter produces must validate.
        use mpelog::Logger;
        let mut lg = Logger::new(0);
        let (s, e) = lg.define_state("PI_Write", Color::GREEN);
        lg.log_event(1.0, s, "");
        lg.log_send(1.1, 1, 5, 4);
        lg.log_event(1.2, e, "");
        let mut lg1 = Logger::new(1);
        let _ = lg1.define_state("PI_Write", Color::GREEN);
        lg1.log_receive(1.3, 0, 5, 4);
        let mut blocks = std::collections::BTreeMap::new();
        blocks.insert(0u32, lg.records().to_vec());
        blocks.insert(1u32, lg1.records().to_vec());
        let clog = mpelog::Clog2File {
            nranks: 2,
            state_defs: lg.state_defs().to_vec(),
            event_defs: vec![],
            blocks,
        };
        let file = crate::Converter::new()
            .convert(crate::TraceSource::InMemory(&clog))
            .unwrap()
            .file;
        assert!(validate(&file).is_empty(), "{:?}", validate(&file));
    }

    #[test]
    fn unknown_category_is_flagged() {
        let mut f = sound_file();
        f.categories.clear();
        let defects = validate(&f);
        assert!(defects.iter().any(|d| matches!(
            d,
            Defect::UnknownCategory {
                category: CategoryId(0)
            }
        )));
    }

    #[test]
    fn unknown_timeline_is_flagged() {
        let mut f = sound_file();
        f.timelines.clear();
        assert!(validate(&f).iter().any(|d| matches!(
            d,
            Defect::UnknownTimeline {
                timeline: TimelineId(0)
            }
        )));
    }

    #[test]
    fn kind_mismatch_is_flagged() {
        let mut f = sound_file();
        f.categories[0].kind = CategoryKind::Event;
        assert!(validate(&f).iter().any(|d| matches!(
            d,
            Defect::KindMismatch {
                category: CategoryId(0),
                ..
            }
        )));
    }

    #[test]
    fn out_of_range_is_flagged() {
        let mut f = sound_file();
        f.range = TimeWindow::new(1.5, 1.6);
        assert!(validate(&f)
            .iter()
            .any(|d| matches!(d, Defect::OutOfRange { .. })));
    }

    #[test]
    fn duplicate_category_is_flagged() {
        let mut f = sound_file();
        let dup = f.categories[0].clone();
        f.categories.push(dup);
        assert!(validate(&f).iter().any(|d| matches!(
            d,
            Defect::DuplicateCategoryIndex {
                category: CategoryId(0)
            }
        )));
    }

    #[test]
    fn tampered_preview_is_flagged() {
        let mut f = sound_file();
        f.tree.root.preview.entries[0].count += 5;
        assert!(validate(&f)
            .iter()
            .any(|d| matches!(d, Defect::PreviewMismatch { .. })));
    }

    #[test]
    fn negative_duration_is_flagged() {
        let ds = vec![Drawable::State(StateDrawable {
            category: CategoryId(0),
            timeline: TimelineId(0),
            start: 2.0,
            end: 1.0,
            nest_level: 0,
            text: String::new(),
        })];
        let mut f = sound_file();
        f.tree = FrameTree::build(ds, 0.0, 3.0, 8, 4);
        assert!(validate(&f)
            .iter()
            .any(|d| matches!(d, Defect::NegativeDuration { .. })));
    }
}
