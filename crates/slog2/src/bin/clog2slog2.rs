//! `clog2slog2` — the standalone converter, mirroring Argonne's
//! `clog2TOslog2` (including the "adjusting conversion parameters"
//! use-case the paper describes: tuning the frame size affects the
//! amount of data initially displayed).
//!
//! ```text
//! clog2slog2 <input.pclog2> [-o out.pslog2] [--frame-size N] [--max-depth D]
//!            [--parallel N] [--stream] [--mmap] [--budget-mb N]
//!            [--salvage] [--metrics] [-q]
//! ```
//!
//! The binary is a thin shell over [`slog2::Converter`]: each flag maps
//! to one builder knob, and every combination produces byte-identical
//! output for the same input log. `--parallel N` shards the conversion
//! over N worker threads (0 = one per core, 1 = serial). `--stream`
//! decodes the CLOG2 input incrementally instead of loading it whole;
//! `--mmap` memory-maps it and scans records zero-copy. `--budget-mb N`
//! converts *out-of-core*: drawables spill to temporary files and the
//! output is written under a ~N MiB drawable working set, which is how
//! a log bigger than RAM gets converted at all. `--metrics` attaches
//! the `obs` registry and prints the merged `convert.*` counters
//! (Prometheus-style text) after the conversion. `--salvage` accepts a
//! *torn* CLOG2 file (e.g. from an aborted run): the tolerant reader
//! recovers the record-aligned prefix, the rank whose block was cut
//! mid-frame gets an `ABORTED` terminal state, and the recovery counts
//! are embedded in the output's warning list. The salvaged file always
//! validates.
//!
//! Exit code 0 on a clean conversion, 1 on warnings (the "non
//! well-behaved program" case), 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use mpelog::Clog2File;
use slog2::{
    Conversion, Converter, FailureKind, RankVerdict, SalvageReport, TornPolicy, TraceSource,
};

struct Args {
    input: PathBuf,
    output: PathBuf,
    frame_size: usize,
    max_depth: u32,
    parallel: usize,
    stream: bool,
    mmap: bool,
    budget_mb: Option<usize>,
    metrics: bool,
    salvage: bool,
    quiet: bool,
}

const USAGE: &str = "usage: clog2slog2 <input.pclog2> [-o out.pslog2] [--frame-size N] [--max-depth D] [--parallel N] [--stream] [--mmap] [--budget-mb N] [--salvage] [--metrics] [-q]";

fn parse_args() -> Result<Args, String> {
    let mut input = None;
    let mut output = None;
    let mut frame_size = 64usize;
    let mut max_depth = 16u32;
    let mut parallel = 0usize;
    let mut stream = false;
    let mut mmap = false;
    let mut budget_mb = None;
    let mut metrics = false;
    let mut salvage = false;
    let mut quiet = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" | "--output" => {
                output = Some(PathBuf::from(it.next().ok_or("missing value for -o")?))
            }
            "--frame-size" => {
                frame_size = it
                    .next()
                    .ok_or("missing value for --frame-size")?
                    .parse()
                    .map_err(|_| "bad --frame-size value")?
            }
            "--max-depth" => {
                max_depth = it
                    .next()
                    .ok_or("missing value for --max-depth")?
                    .parse()
                    .map_err(|_| "bad --max-depth value")?
            }
            "--parallel" => {
                parallel = it
                    .next()
                    .ok_or("missing value for --parallel")?
                    .parse()
                    .map_err(|_| "bad --parallel value")?
            }
            "--budget-mb" => {
                budget_mb = Some(
                    it.next()
                        .ok_or("missing value for --budget-mb")?
                        .parse()
                        .map_err(|_| "bad --budget-mb value")?,
                )
            }
            "--stream" => stream = true,
            "--mmap" => mmap = true,
            "--metrics" => metrics = true,
            "--salvage" => salvage = true,
            "-q" | "--quiet" => quiet = true,
            other if !other.starts_with('-') && input.is_none() => {
                input = Some(PathBuf::from(other))
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    let input = input.ok_or(USAGE)?;
    if salvage && stream {
        return Err("--salvage needs the whole file; drop --stream".into());
    }
    if stream && mmap {
        return Err("--stream and --mmap are exclusive input modes".into());
    }
    let output = output.unwrap_or_else(|| input.with_extension("pslog2"));
    Ok(Args {
        input,
        output,
        frame_size,
        max_depth,
        parallel,
        stream,
        mmap,
        budget_mb,
        metrics,
        salvage,
        quiet,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("clog2slog2: {e}");
            return ExitCode::from(2);
        }
    };
    let obs = args.metrics.then(obs::Obs::handle);
    let mut conv = Converter::new()
        .frame_capacity(args.frame_size)
        .max_depth(args.max_depth)
        .parallelism(args.parallel);
    if let Some(o) = &obs {
        conv = conv.observability(o.clone());
    }
    if let Some(mb) = args.budget_mb {
        conv = conv.memory_budget(mb << 20);
    }

    // Pick the trace source; owned carriers outlive the borrow.
    let salvaged_clog;
    let whole_clog;
    let (source, provenance) = if args.salvage {
        let bytes = match std::fs::read(&args.input) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("clog2slog2: cannot read {}: {e}", args.input.display());
                return ExitCode::from(2);
            }
        };
        let s = Clog2File::salvage_bytes(&bytes);
        let mut report = SalvageReport {
            records_recovered: s.records_recovered,
            bytes_recovered: s.bytes_recovered,
            truncated: s.truncated,
            ..Default::default()
        };
        if let Some(rank) = s.torn_rank {
            report.verdicts.push(RankVerdict {
                rank,
                kind: FailureKind::Aborted,
                detail: "log truncated mid-block".into(),
            });
        }
        let provenance = format!(
            "salvaged {} records ({} of {} bytes) over {} ranks",
            s.records_recovered,
            s.bytes_recovered,
            bytes.len(),
            s.file.nranks
        );
        conv = conv.on_torn(TornPolicy::Salvage(report));
        salvaged_clog = s.file;
        (TraceSource::InMemory(&salvaged_clog), provenance)
    } else if args.stream {
        let file = match std::fs::File::open(&args.input) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("clog2slog2: cannot read {}: {e}", args.input.display());
                return ExitCode::from(2);
            }
        };
        (
            TraceSource::reader(std::io::BufReader::new(file)),
            "streamed".to_string(),
        )
    } else if args.mmap {
        let src = match TraceSource::mmap(&args.input) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("clog2slog2: cannot map {}: {e}", args.input.display());
                return ExitCode::from(2);
            }
        };
        let provenance = format!("{src:?}");
        (src, provenance)
    } else {
        let clog = match Clog2File::read_from(&args.input) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("clog2slog2: cannot load {}: {e}", args.input.display());
                return ExitCode::from(2);
            }
        };
        let provenance = format!(
            "{} records over {} ranks",
            clog.total_records(),
            clog.nranks
        );
        whole_clog = clog;
        (TraceSource::InMemory(&whole_clog), provenance)
    };

    // Out-of-core: the converter writes the file itself under the
    // memory budget; no Slog2File is ever resident.
    if args.budget_mb.is_some() {
        let summary = match conv.convert_to_path(source, &args.output) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("clog2slog2: {}: {e}", args.input.display());
                return ExitCode::from(2);
            }
        };
        if let Some(o) = &obs {
            print!("{}", o.snapshot().to_prometheus_text());
        }
        if !args.quiet {
            println!(
                "{}: {} -> {} drawables, {} tree nodes, {} bytes (digest {:016x}) -> {}",
                args.input.display(),
                provenance,
                summary.drawables,
                summary.nodes,
                summary.bytes_written,
                summary.digest,
                args.output.display(),
            );
            for w in &summary.warnings {
                eprintln!("warning: {w}");
            }
        }
        return if summary.warnings.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }

    let Conversion {
        file: slog,
        warnings,
    } = match conv.convert(source) {
        Ok(c) => c,
        Err(e) => {
            eprintln!(
                "clog2slog2: {} is not a valid CLOG2 input: {e}",
                args.input.display()
            );
            return ExitCode::from(2);
        }
    };
    let write_result = {
        let _span = obs.as_deref().map(|o| o.span("write", "convert", 0));
        slog.write_to(&args.output)
    };
    if let Err(e) = write_result {
        eprintln!("clog2slog2: cannot write {}: {e}", args.output.display());
        return ExitCode::from(2);
    }
    if let Some(o) = &obs {
        print!("{}", o.snapshot().to_prometheus_text());
    }
    if !args.quiet {
        println!(
            "{}: {} -> {} drawables, {} tree nodes (depth {}), range [{:.6}s, {:.6}s] -> {}",
            args.input.display(),
            provenance,
            slog.total_drawables(),
            slog.tree.node_count(),
            slog.tree.depth(),
            slog.range.t0,
            slog.range.t1,
            args.output.display(),
        );
        for w in &warnings {
            eprintln!("warning: {w}");
        }
    }
    if warnings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
