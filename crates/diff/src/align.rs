//! Timeline alignment between two traces.
//!
//! Two runs of the same program rarely produce byte-compatible traces:
//! ranks may be renamed, a rank count may differ (a fix that changes
//! the worker pool), and a crashed run carries a salvaged tail ending
//! in an `ABORTED` or `DEADLOCKED` terminal state. Alignment pairs
//! timelines by **name first**, then the leftovers **by position**,
//! and scores every pair with a longest-common-subsequence similarity
//! over the two category sequences — so a report can say "W2 before ≈
//! W2 after (0.93)" instead of silently comparing unrelated rows.

use std::collections::BTreeMap;

use slog2::{Drawable, Slog2File, TimeWindow, TimelineId};

/// Category sequences longer than this are stride-downsampled before
/// the `O(n·m)` LCS table is filled, bounding alignment cost for
/// full-size production traces. Similarity becomes approximate above
/// the cap — fine for a pairing score.
pub const MAX_SEQ_LEN: usize = 1024;

/// Terminal categories a salvaged torn log appends; they mark a
/// truncated timeline rather than real program behaviour, so they are
/// excluded from the similarity sequence.
const TERMINAL_CATEGORIES: [&str; 2] = ["ABORTED", "DEADLOCKED"];

/// One aligned row of the comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct AlignedPair {
    /// Display name (the before-side name when both exist).
    pub name: String,
    /// Timeline in the before trace, if present.
    pub before: Option<TimelineId>,
    /// Timeline in the after trace, if present.
    pub after: Option<TimelineId>,
    /// `2·LCS/(n+m)` over the category sequences (1.0 when both are
    /// empty or the pair is one-sided-empty-vs-empty; 0.0 marks a
    /// one-sided pair).
    pub similarity: f64,
    /// The before side ends in a terminal (`ABORTED`/`DEADLOCKED`)
    /// state — a salvaged torn log.
    pub truncated_before: bool,
    /// Same for the after side.
    pub truncated_after: bool,
}

/// The full pairing of two traces' timelines.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Alignment {
    /// All rows: matched pairs first (before-trace order), then
    /// after-only leftovers.
    pub pairs: Vec<AlignedPair>,
}

impl Alignment {
    /// Rows present in both traces.
    pub fn matched(&self) -> impl Iterator<Item = &AlignedPair> {
        self.pairs
            .iter()
            .filter(|p| p.before.is_some() && p.after.is_some())
    }

    /// Timelines only the before trace has.
    pub fn unmatched_before(&self) -> usize {
        self.pairs.iter().filter(|p| p.after.is_none()).count()
    }

    /// Timelines only the after trace has.
    pub fn unmatched_after(&self) -> usize {
        self.pairs.iter().filter(|p| p.before.is_none()).count()
    }
}

/// Per-timeline category-name sequence (states only, in start order,
/// terminal categories stripped) plus the truncation flag.
fn sequences(file: &Slog2File) -> BTreeMap<TimelineId, (Vec<String>, bool)> {
    let mut raw: BTreeMap<TimelineId, Vec<(f64, f64, String)>> = BTreeMap::new();
    let mut truncated: BTreeMap<TimelineId, bool> = BTreeMap::new();
    for tl in file.timeline_ids() {
        raw.insert(tl, Vec::new());
        truncated.insert(tl, false);
    }
    for d in file.tree.query(TimeWindow::ALL) {
        if let Drawable::State(s) = d {
            let name = file
                .category(s.category)
                .map(|c| c.name.as_str())
                .unwrap_or("?");
            if TERMINAL_CATEGORIES.contains(&name) {
                truncated.insert(s.timeline, true);
                continue;
            }
            raw.entry(s.timeline)
                .or_default()
                .push((s.start, s.end, name.to_string()));
        }
    }
    raw.into_iter()
        .map(|(tl, mut states)| {
            states.sort_by(|a, b| {
                a.0.total_cmp(&b.0)
                    .then(a.1.total_cmp(&b.1))
                    .then(a.2.cmp(&b.2))
            });
            let mut seq: Vec<String> = states.into_iter().map(|(_, _, n)| n).collect();
            if seq.len() > MAX_SEQ_LEN {
                let stride = seq.len().div_ceil(MAX_SEQ_LEN);
                seq = seq.into_iter().step_by(stride).collect();
            }
            let trunc = truncated.get(&tl).copied().unwrap_or(false);
            (tl, (seq, trunc))
        })
        .collect()
}

/// Longest common subsequence length of two name sequences.
fn lcs_len(a: &[String], b: &[String]) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    for x in a {
        for (j, y) in b.iter().enumerate() {
            cur[j + 1] = if x == y {
                prev[j] + 1
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

fn similarity(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    2.0 * lcs_len(a, b) as f64 / (a.len() + b.len()) as f64
}

/// Pair up the two traces' timelines and score every pair.
pub fn align(before: &Slog2File, after: &Slog2File) -> Alignment {
    let seq_b = sequences(before);
    let seq_a = sequences(after);

    // Name-first matching: each before timeline claims the first
    // unclaimed after timeline with the same name.
    let mut claimed = vec![false; after.timelines.len()];
    let mut partner: Vec<Option<TimelineId>> = vec![None; before.timelines.len()];
    for (bi, bname) in before.timelines.iter().enumerate() {
        if let Some(ai) = after
            .timelines
            .iter()
            .enumerate()
            .position(|(ai, aname)| !claimed[ai] && aname == bname)
        {
            claimed[ai] = true;
            partner[bi] = Some(TimelineId(ai as u32));
        }
    }
    // Positional matching for the leftovers, in index order.
    let mut free_after: Vec<u32> = claimed
        .iter()
        .enumerate()
        .filter(|(_, c)| !**c)
        .map(|(i, _)| i as u32)
        .collect();
    free_after.reverse(); // pop() from the front
    for p in partner.iter_mut() {
        if p.is_none() {
            if let Some(ai) = free_after.pop() {
                *p = Some(TimelineId(ai));
            }
        }
    }

    let empty = (Vec::new(), false);
    let mut pairs = Vec::new();
    let mut taken = vec![false; after.timelines.len()];
    for (bi, p) in partner.iter().enumerate() {
        let b_tl = TimelineId(bi as u32);
        let (b_seq, b_trunc) = seq_b.get(&b_tl).unwrap_or(&empty);
        match p {
            Some(a_tl) => {
                taken[a_tl.as_usize()] = true;
                let (a_seq, a_trunc) = seq_a.get(a_tl).unwrap_or(&empty);
                pairs.push(AlignedPair {
                    name: before.timelines[bi].clone(),
                    before: Some(b_tl),
                    after: Some(*a_tl),
                    similarity: similarity(b_seq, a_seq),
                    truncated_before: *b_trunc,
                    truncated_after: *a_trunc,
                });
            }
            None => pairs.push(AlignedPair {
                name: before.timelines[bi].clone(),
                before: Some(b_tl),
                after: None,
                similarity: 0.0,
                truncated_before: *b_trunc,
                truncated_after: false,
            }),
        }
    }
    for (ai, name) in after.timelines.iter().enumerate() {
        if !taken[ai] {
            let a_tl = TimelineId(ai as u32);
            let (_, a_trunc) = seq_a.get(&a_tl).unwrap_or(&empty);
            pairs.push(AlignedPair {
                name: name.clone(),
                before: None,
                after: Some(a_tl),
                similarity: 0.0,
                truncated_before: false,
                truncated_after: *a_trunc,
            });
        }
    }
    Alignment { pairs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::fixtures::{instance_a, instance_fixed};

    fn s(names: &[&str]) -> Vec<String> {
        names.iter().map(|n| n.to_string()).collect()
    }

    #[test]
    fn lcs_and_similarity_basics() {
        assert_eq!(lcs_len(&s(&["a", "b", "c"]), &s(&["a", "c"])), 2);
        assert_eq!(lcs_len(&s(&[]), &s(&["a"])), 0);
        assert_eq!(similarity(&s(&[]), &s(&[])), 1.0);
        assert_eq!(similarity(&s(&["a", "b"]), &s(&["a", "b"])), 1.0);
        assert_eq!(similarity(&s(&["a"]), &s(&["b"])), 0.0);
    }

    #[test]
    fn same_names_align_one_to_one() {
        let al = align(&instance_a(), &instance_fixed());
        assert_eq!(al.pairs.len(), 5);
        assert_eq!(al.unmatched_before(), 0);
        assert_eq!(al.unmatched_after(), 0);
        for p in &al.pairs {
            assert_eq!(p.before.map(|t| t.as_u32()), p.after.map(|t| t.as_u32()));
            assert!(p.similarity > 0.3, "{p:?}");
            assert!(!p.truncated_before && !p.truncated_after);
        }
    }

    #[test]
    fn self_alignment_scores_full_similarity() {
        let f = instance_a();
        let al = align(&f, &f);
        for p in &al.pairs {
            assert!((p.similarity - 1.0).abs() < 1e-12, "{p:?}");
        }
    }

    #[test]
    fn long_sequences_are_downsampled_not_quadratic() {
        use analysis::fixtures::{file_with, state};
        let mut ds = Vec::new();
        for i in 0..20_000 {
            let t = i as f64 * 1e-4;
            ds.push(state(u32::from(i % 2 == 0), 1, t, t + 5e-5));
        }
        let f = file_with(ds);
        let al = align(&f, &f);
        let p = al.pairs.iter().find(|p| p.name == "W0").unwrap();
        assert!((p.similarity - 1.0).abs() < 1e-12, "{p:?}");
    }
}
