//! Perf-regression gating over `BENCH_*.json` reports.
//!
//! CI has always uploaded `BENCH_convert.json` / `BENCH_serve.json`
//! as artifacts without comparing them to anything, so a perf
//! regression merges silently. This module applies the same
//! delta/verdict shape as the trace diff to a pair of bench reports:
//! each numeric metric is classified by *direction* (lower-is-better
//! timings, higher-is-better ratios, informational configuration
//! counts), its worsening percentage is computed, and anything beyond
//! the gate threshold is pronounced `Regressed` — which `repro
//! bench-diff` turns into exit 1.

use pilot_vis::json::Json;

use crate::issue::DeltaVerdict;

/// Baseline values with magnitude below this are treated as zero when
/// computing percentages.
const ZERO_EPS: f64 = 1e-12;

/// Which way a metric should move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Timings, overheads, error counts: growth is a regression.
    LowerIsBetter,
    /// Speedups, hit rates: shrinkage is a regression.
    HigherIsBetter,
    /// Configuration echoes (ranks, reps, request counts): never
    /// gated, reported for context only.
    Informational,
}

impl Direction {
    /// Stable wire name.
    pub const fn name(self) -> &'static str {
        match self {
            Direction::LowerIsBetter => "lower-is-better",
            Direction::HigherIsBetter => "higher-is-better",
            Direction::Informational => "informational",
        }
    }
}

/// Classify a metric key from the `BENCH_*.json` vocabulary: `*_s` /
/// `*_ms` / `*_us` / `*_pct` suffixes and failure counters gate
/// downward, known ratios gate upward, everything else is
/// informational.
///
/// Two serve-obs exceptions stay informational despite their suffixes:
/// the tracing-overhead percentages are already gated *inside*
/// `serve-bench --obs` with paired-pass medians (re-gating one noisy
/// reading against a baseline double-counts), and queue-phase waits
/// measure client concurrency against pool size — a workload shape,
/// not code speed. Cache-phase microseconds get the same treatment:
/// the cache phase's tail is the single-flight wait distribution
/// (how long losers of a cold-tile race block on the winner's render),
/// which swings with thread interleaving run to run — the
/// `singleflight_waits` count is informational for the same reason.
/// A real cache slowdown still gates through `tile_p99_us` / `p99_ms`.
pub fn direction(key: &str) -> Direction {
    match key {
        "speedup" | "hit_rate" => Direction::HigherIsBetter,
        k if k.ends_with("_per_sec") || k.ends_with("_per_sec_per_core") => {
            Direction::HigherIsBetter
        }
        "errors" | "parity_mismatches" | "cache_evictions" | "bad_rejects" => {
            Direction::LowerIsBetter
        }
        // Admission-control outcomes are workload shape, not code speed:
        // how many requests a burst sheds (429/503) and how many cold
        // traces the registry evicts depend on client concurrency and
        // upload mix, so they never gate. Malformed rejects
        // (`bad_rejects`, a 429/503 missing Retry-After) stay a failure
        // counter above.
        "shed_rejects" | "registry_evictions" => Direction::Informational,
        k if k.ends_with("_overhead_pct") && k != "metrics_overhead_pct" => {
            Direction::Informational
        }
        k if k.contains("_queue_") => Direction::Informational,
        k if k.contains("_cache_") && k.ends_with("_us") => Direction::Informational,
        k if k.ends_with("_s")
            || k.ends_with("_ms")
            || k.ends_with("_us")
            || k.ends_with("_pct") =>
        {
            Direction::LowerIsBetter
        }
        _ => Direction::Informational,
    }
}

/// Microsecond metrics need an absolute effect on top of the relative
/// gate: a 3µs → 5µs parse-phase blip is +66%, and even a sub-ms shift
/// in a phase p99 is inside the run-to-run scheduler noise of a loaded
/// worker pool. Regressions that matter at request scale (cold-render
/// p99, total tile p99) move by multiple milliseconds.
const US_EFFECT_FLOOR: f64 = 1_000.0;

/// Percentage-point metrics get the same treatment: an overhead
/// reading like `metrics_overhead_pct` is the ratio of two noisy
/// medians, so its run-to-run jitter is a couple of points even when
/// nothing changed. Gate only moves of at least three absolute
/// percentage points; a real instrumentation regression (a counter in
/// a hot loop) shifts the overhead by far more — the bug this gate
/// exists for moved it from ≈3 % to 12.8 %.
const PCT_EFFECT_FLOOR: f64 = 3.0;

/// One metric's fate between baseline and current.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDiff {
    /// The JSON key.
    pub name: String,
    /// Baseline value.
    pub before: f64,
    /// Current value.
    pub after: f64,
    /// Raw percent change `(after-before)/|before|·100` (±100 when
    /// the baseline is zero and the value moved).
    pub change_pct: f64,
    /// Percent change in the *worsening* direction (negative =
    /// improvement; always 0 for informational metrics).
    pub regress_pct: f64,
    /// Metric direction class.
    pub direction: Direction,
    /// The pronouncement, against the gate threshold.
    pub verdict: DeltaVerdict,
}

/// One bench report's comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDiff {
    /// Report name (e.g. `BENCH_serve.json`).
    pub name: String,
    /// The gate threshold this diff was judged against (percent).
    pub max_regress_pct: f64,
    /// All shared numeric metrics, in baseline key order.
    pub metrics: Vec<MetricDiff>,
    /// Baseline keys absent from the current report.
    pub missing_in_current: Vec<String>,
    /// Current keys absent from the baseline.
    pub missing_in_baseline: Vec<String>,
}

impl BenchDiff {
    /// Metrics that breached the gate.
    pub fn regressed(&self) -> Vec<&MetricDiff> {
        self.metrics
            .iter()
            .filter(|m| m.verdict == DeltaVerdict::Regressed)
            .collect()
    }

    /// Deterministic JSON for `BENCH_DIFF.json`.
    pub fn to_json_value(&self) -> Json {
        let metrics: Vec<Json> = self
            .metrics
            .iter()
            .map(|m| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(m.name.clone())),
                    ("before".into(), Json::Num(m.before)),
                    ("after".into(), Json::Num(m.after)),
                    ("change_pct".into(), Json::Num(m.change_pct)),
                    ("regress_pct".into(), Json::Num(m.regress_pct)),
                    (
                        "direction".into(),
                        Json::Str(m.direction.name().to_string()),
                    ),
                    ("verdict".into(), Json::Str(m.verdict.name().to_string())),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("max_regress_pct".into(), Json::Num(self.max_regress_pct)),
            ("metrics".into(), Json::Arr(metrics)),
            (
                "missing_in_current".into(),
                Json::Arr(
                    self.missing_in_current
                        .iter()
                        .map(|s| Json::Str(s.clone()))
                        .collect(),
                ),
            ),
            (
                "missing_in_baseline".into(),
                Json::Arr(
                    self.missing_in_baseline
                        .iter()
                        .map(|s| Json::Str(s.clone()))
                        .collect(),
                ),
            ),
            ("regressed".into(), Json::Num(self.regressed().len() as f64)),
        ])
    }
}

fn numeric_fields(v: &Json) -> Vec<(String, f64)> {
    match v {
        Json::Obj(fields) => fields
            .iter()
            .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n)))
            .collect(),
        _ => Vec::new(),
    }
}

/// Compare two parsed bench reports against a gate threshold.
pub fn diff_bench(name: &str, baseline: &Json, current: &Json, max_regress_pct: f64) -> BenchDiff {
    let base = numeric_fields(baseline);
    let cur = numeric_fields(current);
    let cur_get = |k: &str| cur.iter().find(|(ck, _)| ck == k).map(|(_, v)| *v);

    let mut metrics = Vec::new();
    let mut missing_in_current = Vec::new();
    for (key, before) in &base {
        let Some(after) = cur_get(key) else {
            missing_in_current.push(key.clone());
            continue;
        };
        let change_pct = if before.abs() < ZERO_EPS {
            if (after - before).abs() < ZERO_EPS {
                0.0
            } else {
                100.0 * (after - before).signum()
            }
        } else {
            (after - before) / before.abs() * 100.0
        };
        let dir = direction(key);
        let regress_pct = match dir {
            Direction::LowerIsBetter => change_pct,
            Direction::HigherIsBetter => -change_pct,
            Direction::Informational => 0.0,
        };
        let meaningful = if key.ends_with("_us") {
            (after - before).abs() >= US_EFFECT_FLOOR
        } else if key.ends_with("_pct") {
            (after - before).abs() >= PCT_EFFECT_FLOOR
        } else {
            true
        };
        let verdict = if dir == Direction::Informational || !meaningful {
            DeltaVerdict::Unchanged
        } else if regress_pct > max_regress_pct {
            DeltaVerdict::Regressed
        } else if regress_pct < -max_regress_pct {
            DeltaVerdict::Fixed
        } else {
            DeltaVerdict::Unchanged
        };
        metrics.push(MetricDiff {
            name: key.clone(),
            before: *before,
            after,
            change_pct,
            regress_pct,
            direction: dir,
            verdict,
        });
    }
    let missing_in_baseline = cur
        .iter()
        .filter(|(k, _)| !base.iter().any(|(bk, _)| bk == k))
        .map(|(k, _)| k.clone())
        .collect();
    BenchDiff {
        name: name.to_string(),
        max_regress_pct,
        metrics,
        missing_in_current,
        missing_in_baseline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(p99: f64, speedup: f64) -> Json {
        Json::parse(&format!(
            r#"{{"clients": 8, "p50_ms": 1.5, "p99_ms": {p99}, "speedup": {speedup}, "errors": 0}}"#
        ))
        .unwrap()
    }

    #[test]
    fn directions_classify_the_bench_vocabulary() {
        for k in [
            "serial_s",
            "wall_s",
            "p99_ms",
            "tile_p99_us",
            "tile_render_p50_us",
            "metrics_overhead_pct",
            "errors",
            "parity_mismatches",
        ] {
            assert_eq!(direction(k), Direction::LowerIsBetter, "{k}");
        }
        assert_eq!(direction("speedup"), Direction::HigherIsBetter);
        assert_eq!(direction("hit_rate"), Direction::HigherIsBetter);
        assert_eq!(
            direction("drawables_per_sec_per_core"),
            Direction::HigherIsBetter
        );
        assert_eq!(direction("events_per_sec"), Direction::HigherIsBetter);
        assert_eq!(direction("bad_rejects"), Direction::LowerIsBetter);
        for k in [
            "ranks",
            "clients",
            "requests",
            "drawables",
            "threads",
            "shed_rejects",
            "registry_evictions",
        ] {
            assert_eq!(direction(k), Direction::Informational, "{k}");
        }
        // Self-gated / workload-shape metrics are never re-gated here.
        for k in [
            "obs_overhead_pct",
            "p50_overhead_pct",
            "tile_queue_p99_us",
            "tile_cache_p99_us",
        ] {
            assert_eq!(direction(k), Direction::Informational, "{k}");
        }
    }

    #[test]
    fn microsecond_metrics_need_an_absolute_effect() {
        let base =
            Json::parse(r#"{"tile_parse_p99_us": 3.0, "tile_render_p99_us": 6000.0}"#).unwrap();
        let cur =
            Json::parse(r#"{"tile_parse_p99_us": 5.5, "tile_render_p99_us": 9000.0}"#).unwrap();
        let d = diff_bench("BENCH_serve.json", &base, &cur, 15.0);
        let get = |k: &str| d.metrics.iter().find(|m| m.name == k).unwrap();
        // +83% but only 2.5µs: scheduler noise, not a regression.
        assert_eq!(get("tile_parse_p99_us").verdict, DeltaVerdict::Unchanged);
        // +50% and 3ms: a real regression.
        assert_eq!(get("tile_render_p99_us").verdict, DeltaVerdict::Regressed);
    }

    #[test]
    fn pct_metrics_need_an_absolute_effect() {
        // +9% relative but only 1.2 points (< the 3-point floor): jitter.
        let base = Json::parse(r#"{"metrics_overhead_pct": 12.8}"#).unwrap();
        let cur = Json::parse(r#"{"metrics_overhead_pct": 14.0}"#).unwrap();
        let d = diff_bench("BENCH_convert.json", &base, &cur, 5.0);
        assert_eq!(d.metrics[0].verdict, DeltaVerdict::Unchanged);
        // 12.8 -> 16.0 is 3.2 points and +25%: a real regression.
        let bad = Json::parse(r#"{"metrics_overhead_pct": 16.0}"#).unwrap();
        let d = diff_bench("BENCH_convert.json", &base, &bad, 5.0);
        assert_eq!(d.metrics[0].verdict, DeltaVerdict::Regressed);
        // A big drop reads as Fixed once it clears the same floor.
        let good = Json::parse(r#"{"metrics_overhead_pct": 1.0}"#).unwrap();
        let d = diff_bench("BENCH_convert.json", &base, &good, 5.0);
        assert_eq!(d.metrics[0].verdict, DeltaVerdict::Fixed);
    }

    #[test]
    fn per_core_rate_gates_upward() {
        let base = Json::parse(r#"{"drawables_per_sec_per_core": 2000000.0}"#).unwrap();
        let slower = Json::parse(r#"{"drawables_per_sec_per_core": 1200000.0}"#).unwrap();
        let d = diff_bench("BENCH_convert.json", &base, &slower, 15.0);
        assert_eq!(d.metrics[0].verdict, DeltaVerdict::Regressed);
    }

    #[test]
    fn doctored_two_x_p99_regresses() {
        let base = report(4.0, 3.0);
        let doctored = report(8.0, 3.0);
        let d = diff_bench("BENCH_serve.json", &base, &doctored, 15.0);
        let p99 = d.metrics.iter().find(|m| m.name == "p99_ms").unwrap();
        assert_eq!(p99.verdict, DeltaVerdict::Regressed);
        assert!((p99.regress_pct - 100.0).abs() < 1e-9, "{p99:?}");
        assert_eq!(d.regressed().len(), 1);
    }

    #[test]
    fn identical_reports_are_unchanged() {
        let base = report(4.0, 3.0);
        let d = diff_bench("x", &base, &base, 15.0);
        assert!(d.regressed().is_empty());
        assert!(d
            .metrics
            .iter()
            .all(|m| m.verdict == DeltaVerdict::Unchanged));
    }

    #[test]
    fn speedup_gates_upward() {
        let base = report(4.0, 3.0);
        let slower = report(4.0, 1.5); // speedup halved
        let d = diff_bench("x", &base, &slower, 15.0);
        let s = d.metrics.iter().find(|m| m.name == "speedup").unwrap();
        assert_eq!(s.verdict, DeltaVerdict::Regressed);
        // And a big improvement reads as Fixed.
        let faster = report(4.0, 6.0);
        let d = diff_bench("x", &base, &faster, 15.0);
        let s = d.metrics.iter().find(|m| m.name == "speedup").unwrap();
        assert_eq!(s.verdict, DeltaVerdict::Fixed);
    }

    #[test]
    fn zero_baseline_errors_growing_regresses() {
        let base = Json::parse(r#"{"errors": 0}"#).unwrap();
        let bad = Json::parse(r#"{"errors": 3}"#).unwrap();
        let d = diff_bench("x", &base, &bad, 15.0);
        assert_eq!(d.metrics[0].verdict, DeltaVerdict::Regressed);
        let same = diff_bench("x", &base, &base, 15.0);
        assert_eq!(same.metrics[0].verdict, DeltaVerdict::Unchanged);
    }

    #[test]
    fn informational_metrics_never_gate() {
        let base = Json::parse(r#"{"clients": 8}"#).unwrap();
        let cur = Json::parse(r#"{"clients": 64}"#).unwrap();
        let d = diff_bench("x", &base, &cur, 15.0);
        assert_eq!(d.metrics[0].verdict, DeltaVerdict::Unchanged);
        assert_eq!(d.metrics[0].regress_pct, 0.0);
    }

    #[test]
    fn missing_keys_are_surfaced() {
        let base = Json::parse(r#"{"p99_ms": 4.0, "old_s": 1.0}"#).unwrap();
        let cur = Json::parse(r#"{"p99_ms": 4.0, "new_s": 1.0}"#).unwrap();
        let d = diff_bench("x", &base, &cur, 15.0);
        assert_eq!(d.missing_in_current, vec!["old_s".to_string()]);
        assert_eq!(d.missing_in_baseline, vec!["new_s".to_string()]);
    }

    #[test]
    fn json_round_trips() {
        let base = report(4.0, 3.0);
        let d = diff_bench("BENCH_serve.json", &base, &report(8.0, 3.0), 15.0);
        let v = d.to_json_value();
        assert_eq!(v.get("regressed").and_then(Json::as_u64), Some(1));
        assert!(Json::parse(&v.pretty()).is_ok());
    }
}
