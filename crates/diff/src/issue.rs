//! Verdict-level diffing and per-phase measurements.
//!
//! The before and after traces are each diagnosed by the `analysis`
//! engine; this module matches the two verdict lists by kind and
//! pronounces every detected issue [`DeltaVerdict::Fixed`],
//! [`DeltaVerdict::Regressed`], or [`DeltaVerdict::Unchanged`], with
//! the recoverable-seconds delta as evidence. It also measures each
//! issue's window on both sides (parallel overlap, busy, blocked), so
//! the report can show "overlap 0.02 → 0.97" for a de-serialized
//! query phase.

use analysis::{busy_intervals, parallel_overlap, worker_timelines, Diagnosis, VerdictKind};
use slog2::{Slog2File, TimeWindow};

/// A recoverable-seconds change within this fraction of the before
/// value counts as noise, not a fix or regression.
pub const UNCHANGED_REL_TOL: f64 = 0.10;
/// Absolute floor for the same tolerance, seconds.
pub const UNCHANGED_ABS_TOL_S: f64 = 0.05;

/// Detection order — fixed, so reports are deterministic.
pub const KINDS: [VerdictKind; 4] = [
    VerdictKind::SerializedPhase,
    VerdictKind::LateProducer,
    VerdictKind::LoadImbalance,
    VerdictKind::CriticalRankDominance,
];

/// What happened to one issue between the two runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaVerdict {
    /// Gone after, or recoverable seconds dropped beyond tolerance.
    Fixed,
    /// New after, or recoverable seconds grew beyond tolerance.
    Regressed,
    /// Present on both sides with ~equal recoverable seconds (or a
    /// bench metric inside the gate threshold).
    Unchanged,
}

impl DeltaVerdict {
    /// Stable wire name (used in `DIFF.json` / `BENCH_DIFF.json`).
    pub const fn name(self) -> &'static str {
        match self {
            DeltaVerdict::Fixed => "Fixed",
            DeltaVerdict::Regressed => "Regressed",
            DeltaVerdict::Unchanged => "Unchanged",
        }
    }
}

impl std::fmt::Display for DeltaVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One issue's fate across the two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct IssueDiff {
    /// Which detector.
    pub kind: VerdictKind,
    /// The pronouncement.
    pub verdict: DeltaVerdict,
    /// Recoverable seconds before (None = not detected).
    pub recoverable_before: Option<f64>,
    /// Recoverable seconds after (None = not detected).
    pub recoverable_after: Option<f64>,
    /// `before - after` recoverable seconds (positive = improvement;
    /// a missing side counts as zero).
    pub recovered_seconds: f64,
    /// Human-readable evidence.
    pub detail: String,
}

/// Match the two diagnoses' verdicts by kind and judge each.
pub fn diff_issues(before: &Diagnosis, after: &Diagnosis) -> Vec<IssueDiff> {
    let mut out = Vec::new();
    for kind in KINDS {
        let vb = before.verdict(kind);
        let va = after.verdict(kind);
        let issue = match (vb, va) {
            (None, None) => continue,
            (Some(b), None) => IssueDiff {
                kind,
                verdict: DeltaVerdict::Fixed,
                recoverable_before: Some(b.recoverable_seconds),
                recoverable_after: None,
                recovered_seconds: b.recoverable_seconds,
                detail: format!("present before ({}); absent after", b.detail),
            },
            (None, Some(a)) => IssueDiff {
                kind,
                verdict: DeltaVerdict::Regressed,
                recoverable_before: None,
                recoverable_after: Some(a.recoverable_seconds),
                recovered_seconds: -a.recoverable_seconds,
                detail: format!("absent before; new after ({})", a.detail),
            },
            (Some(b), Some(a)) => {
                let d = b.recoverable_seconds - a.recoverable_seconds;
                let tol = UNCHANGED_ABS_TOL_S.max(UNCHANGED_REL_TOL * b.recoverable_seconds);
                let verdict = if d.abs() <= tol {
                    DeltaVerdict::Unchanged
                } else if d > 0.0 {
                    DeltaVerdict::Fixed
                } else {
                    DeltaVerdict::Regressed
                };
                let detail = format!(
                    "present on both sides: recoverable {:.3}s -> {:.3}s{}",
                    b.recoverable_seconds,
                    a.recoverable_seconds,
                    if verdict == DeltaVerdict::Fixed {
                        " (partially fixed, still detected)"
                    } else {
                        ""
                    }
                );
                IssueDiff {
                    kind,
                    verdict,
                    recoverable_before: Some(b.recoverable_seconds),
                    recoverable_after: Some(a.recoverable_seconds),
                    recovered_seconds: d,
                    detail,
                }
            }
        };
        out.push(issue);
    }
    out
}

/// One phase (the whole run, or one detected issue's window) measured
/// on both sides.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseDelta {
    /// `"whole-run"` or a `VerdictKind` name.
    pub label: String,
    /// The before-side window (None = issue absent there; metrics
    /// then cover the whole range).
    pub window_before: Option<TimeWindow>,
    /// Same for the after side.
    pub window_after: Option<TimeWindow>,
    /// Worker parallel-overlap fraction, `(before, after)`.
    pub overlap: (f64, f64),
    /// Total worker busy seconds inside the window.
    pub busy_s: (f64, f64),
    /// Total worker blocked seconds inside the window.
    pub blocked_s: (f64, f64),
}

/// `(overlap, busy, blocked)` of the workers within `w` (whole range
/// when `None`).
fn lane_metrics(file: &Slog2File, w: Option<TimeWindow>) -> (f64, f64, f64) {
    let workers = worker_timelines(file);
    let window = w.unwrap_or(file.range);
    let overlap = parallel_overlap(file, &workers, Some(window));
    let mut busy = 0.0;
    let mut blocked = 0.0;
    let stats = jumpshot::duration_stats(file, window);
    let read = file.category_by_name("PI_Read").map(|c| c.index);
    let select = file.category_by_name("PI_Select").map(|c| c.index);
    for &tl in &workers {
        for (s, e) in busy_intervals(file, tl) {
            busy += (e.min(window.t1) - s.max(window.t0)).max(0.0);
        }
        if let Some(h) = stats.get(&tl) {
            for id in [read, select].into_iter().flatten() {
                blocked += h.coverage.get(&id).copied().unwrap_or(0.0);
            }
        }
    }
    (overlap, busy, blocked)
}

/// Build the phase table: the whole run first, then one row per issue
/// kind either diagnosis detected, each side measured over its own
/// verdict window.
pub fn measure_phases(
    before: &Slog2File,
    after: &Slog2File,
    diag_before: &Diagnosis,
    diag_after: &Diagnosis,
) -> Vec<PhaseDelta> {
    let mut phases = Vec::new();
    let mut push = |label: String, wb: Option<TimeWindow>, wa: Option<TimeWindow>| {
        let (ob, bb, kb) = lane_metrics(before, wb);
        let (oa, ba, ka) = lane_metrics(after, wa);
        phases.push(PhaseDelta {
            label,
            window_before: wb,
            window_after: wa,
            overlap: (ob, oa),
            busy_s: (bb, ba),
            blocked_s: (kb, ka),
        });
    };
    push(
        "whole-run".to_string(),
        Some(before.range),
        Some(after.range),
    );
    for kind in KINDS {
        let vb = diag_before.verdict(kind);
        let va = diag_after.verdict(kind);
        if vb.is_some() || va.is_some() {
            push(
                kind.name().to_string(),
                vb.map(|v| v.window),
                va.map(|v| v.window),
            );
        }
    }
    phases
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::fixtures::{instance_a, instance_fixed};
    use analysis::TraceAnalyzer;

    #[test]
    fn a_vs_fixed_pronounces_serialized_phase_fixed() {
        let a = instance_a();
        let fixed = instance_fixed();
        let da = TraceAnalyzer::new(&a).diagnose("a");
        let df = TraceAnalyzer::new(&fixed).diagnose("fixed");
        let issues = diff_issues(&da, &df);
        let sp = issues
            .iter()
            .find(|i| i.kind == VerdictKind::SerializedPhase)
            .expect("SerializedPhase issue");
        assert_eq!(sp.verdict, DeltaVerdict::Fixed);
        assert!(sp.recovered_seconds > 0.0, "{sp:?}");
        assert!(sp.recoverable_after.is_none());
        // Nothing regressed.
        assert!(
            issues.iter().all(|i| i.verdict != DeltaVerdict::Regressed),
            "{issues:?}"
        );
    }

    #[test]
    fn reversed_direction_regresses() {
        let a = instance_a();
        let fixed = instance_fixed();
        let da = TraceAnalyzer::new(&a).diagnose("a");
        let df = TraceAnalyzer::new(&fixed).diagnose("fixed");
        let issues = diff_issues(&df, &da);
        assert!(issues.iter().any(|i| i.kind == VerdictKind::SerializedPhase
            && i.verdict == DeltaVerdict::Regressed
            && i.recovered_seconds < 0.0));
    }

    #[test]
    fn self_diff_is_unchanged() {
        let a = instance_a();
        let d = TraceAnalyzer::new(&a).diagnose("a");
        let issues = diff_issues(&d, &d);
        assert!(!issues.is_empty());
        for i in &issues {
            assert_eq!(i.verdict, DeltaVerdict::Unchanged, "{i:?}");
            assert_eq!(i.recovered_seconds, 0.0);
        }
    }

    #[test]
    fn phases_show_overlap_recovered() {
        let a = instance_a();
        let fixed = instance_fixed();
        let da = TraceAnalyzer::new(&a).diagnose("a");
        let df = TraceAnalyzer::new(&fixed).diagnose("fixed");
        let phases = measure_phases(&a, &fixed, &da, &df);
        assert_eq!(phases[0].label, "whole-run");
        let sp = phases
            .iter()
            .find(|p| p.label == "SerializedPhase")
            .expect("phase row");
        // Before: the serialized window has ~zero overlap. After: the
        // same issue is absent, so the whole (parallel) run is measured.
        assert!(sp.overlap.0 < 0.05, "{sp:?}");
        assert!(sp.overlap.1 > 0.5, "{sp:?}");
        assert!(sp.window_after.is_none());
    }
}
