//! The assembled trace comparison and its `DIFF.json` form.
//!
//! [`diff_traces`] is the crate's front door: feed it two loaded
//! files and it returns a [`TraceDiff`] carrying the alignment, the
//! deltas, the phase table, and the issue verdicts. `to_json()` is
//! deterministic — pretty-printed with insertion-ordered keys and
//! shortest-round-trip floats (non-finite values become `null`), so
//! the same input pair yields a byte-identical report, which is what
//! lets CI cache and assert on it.

use analysis::{Diagnosis, TraceAnalyzer, VerdictKind};
use pilot_vis::json::Json;
use slog2::{Slog2File, TimeWindow};

use crate::align::{align, Alignment};
use crate::delta::{trace_delta, TraceDelta};
use crate::issue::{diff_issues, measure_phases, DeltaVerdict, IssueDiff, PhaseDelta};

/// FNV-1a over the serialized file — the digest that identifies each
/// side of the comparison (same constants as the timeline service's
/// trace digest, duplicated here because `timeline` depends on this
/// crate, not the other way around).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The complete comparison of two traces.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDiff {
    /// Labels for the two sides (file paths or workload names).
    pub before_label: String,
    /// After-side label.
    pub after_label: String,
    /// FNV-1a digests of the two serialized files.
    pub digests: (u64, u64),
    /// The before diagnosis.
    pub diag_before: Diagnosis,
    /// The after diagnosis.
    pub diag_after: Diagnosis,
    /// Timeline pairing.
    pub alignment: Alignment,
    /// Per-timeline and trace-level deltas.
    pub delta: TraceDelta,
    /// Whole-run and per-issue-window measurements.
    pub phases: Vec<PhaseDelta>,
    /// Fixed/Regressed/Unchanged per detected issue.
    pub issues: Vec<IssueDiff>,
}

impl TraceDiff {
    /// The issue row for this kind, if either side detected it.
    pub fn issue(&self, kind: VerdictKind) -> Option<&IssueDiff> {
        self.issues.iter().find(|i| i.kind == kind)
    }

    /// How many issues got this verdict.
    pub fn count(&self, v: DeltaVerdict) -> usize {
        self.issues.iter().filter(|i| i.verdict == v).count()
    }

    /// `after - before` makespan (negative = the fix made it faster).
    pub fn makespan_delta(&self) -> f64 {
        self.delta.makespan.1 - self.delta.makespan.0
    }

    /// Deterministic pretty JSON.
    pub fn to_json(&self) -> String {
        let mut s = self.json_value().pretty();
        s.push('\n');
        s
    }

    fn json_value(&self) -> Json {
        let num = |v: f64| {
            if v.is_finite() {
                Json::Num(v)
            } else {
                Json::Null
            }
        };
        let count = |v: u64| Json::Num(v as f64);
        let window = |w: Option<TimeWindow>| match w {
            Some(w) => Json::Obj(vec![("t0".into(), num(w.t0)), ("t1".into(), num(w.t1))]),
            None => Json::Null,
        };
        let pair = |label: &str, b: f64, a: f64| {
            (
                label.to_string(),
                Json::Obj(vec![
                    ("before".into(), num(b)),
                    ("after".into(), num(a)),
                    ("delta".into(), num(a - b)),
                ]),
            )
        };
        let side = |label: &str, digest: u64, diag: &Diagnosis, drawables: usize| {
            Json::Obj(vec![
                ("label".into(), Json::Str(label.to_string())),
                ("digest".into(), Json::Str(format!("{digest:016x}"))),
                ("makespan_seconds".into(), num(diag.makespan)),
                ("verdicts".into(), count(diag.verdicts.len() as u64)),
                ("drawables".into(), count(drawables as u64)),
            ])
        };

        let pairs: Vec<Json> = self
            .alignment
            .pairs
            .iter()
            .map(|p| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(p.name.clone())),
                    (
                        "before".into(),
                        p.before
                            .map_or(Json::Null, |t| count(u64::from(t.as_u32()))),
                    ),
                    (
                        "after".into(),
                        p.after.map_or(Json::Null, |t| count(u64::from(t.as_u32()))),
                    ),
                    ("similarity".into(), num(p.similarity)),
                    ("truncated_before".into(), Json::Bool(p.truncated_before)),
                    ("truncated_after".into(), Json::Bool(p.truncated_after)),
                ])
            })
            .collect();

        let timelines: Vec<Json> = self
            .delta
            .timelines
            .iter()
            .map(|td| {
                let states: Vec<Json> = td
                    .states
                    .iter()
                    .map(|c| {
                        Json::Obj(vec![
                            ("category".into(), Json::Str(c.category.clone())),
                            ("before_s".into(), num(c.before_s)),
                            ("after_s".into(), num(c.after_s)),
                            ("delta_s".into(), num(c.delta_s())),
                        ])
                    })
                    .collect();
                Json::Obj(vec![
                    ("name".into(), Json::Str(td.name.clone())),
                    ("states".into(), Json::Arr(states)),
                    pair("busy_s", td.busy_s.0, td.busy_s.1),
                    pair("blocked_s", td.blocked_s.0, td.blocked_s.1),
                    pair("sent", td.sent.0 as f64, td.sent.1 as f64),
                    pair("received", td.received.0 as f64, td.received.1 as f64),
                ])
            })
            .collect();

        let phases: Vec<Json> = self
            .phases
            .iter()
            .map(|p| {
                Json::Obj(vec![
                    ("label".into(), Json::Str(p.label.clone())),
                    ("window_before".into(), window(p.window_before)),
                    ("window_after".into(), window(p.window_after)),
                    pair("parallel_overlap", p.overlap.0, p.overlap.1),
                    pair("busy_s", p.busy_s.0, p.busy_s.1),
                    pair("blocked_s", p.blocked_s.0, p.blocked_s.1),
                ])
            })
            .collect();

        let issues: Vec<Json> = self
            .issues
            .iter()
            .map(|i| {
                Json::Obj(vec![
                    ("kind".into(), Json::Str(i.kind.name().to_string())),
                    ("verdict".into(), Json::Str(i.verdict.name().to_string())),
                    (
                        "recoverable_before_s".into(),
                        i.recoverable_before.map_or(Json::Null, num),
                    ),
                    (
                        "recoverable_after_s".into(),
                        i.recoverable_after.map_or(Json::Null, num),
                    ),
                    ("recovered_seconds".into(), num(i.recovered_seconds)),
                    ("detail".into(), Json::Str(i.detail.clone())),
                ])
            })
            .collect();

        Json::Obj(vec![
            ("schema".into(), Json::Str("pilot-vis-diff-v1".into())),
            (
                "before".into(),
                side(
                    &self.before_label,
                    self.digests.0,
                    &self.diag_before,
                    self.delta.drawables.0,
                ),
            ),
            (
                "after".into(),
                side(
                    &self.after_label,
                    self.digests.1,
                    &self.diag_after,
                    self.delta.drawables.1,
                ),
            ),
            ("makespan_delta_seconds".into(), num(self.makespan_delta())),
            (
                "messages".into(),
                Json::Obj(vec![
                    ("before".into(), count(self.delta.messages.0)),
                    ("after".into(), count(self.delta.messages.1)),
                ]),
            ),
            (
                "alignment".into(),
                Json::Obj(vec![
                    ("pairs".into(), Json::Arr(pairs)),
                    (
                        "unmatched_before".into(),
                        count(self.alignment.unmatched_before() as u64),
                    ),
                    (
                        "unmatched_after".into(),
                        count(self.alignment.unmatched_after() as u64),
                    ),
                ]),
            ),
            ("timelines".into(), Json::Arr(timelines)),
            ("phases".into(), Json::Arr(phases)),
            ("issues".into(), Json::Arr(issues)),
            (
                "summary".into(),
                Json::Obj(vec![
                    (
                        "fixed".into(),
                        count(self.count(DeltaVerdict::Fixed) as u64),
                    ),
                    (
                        "regressed".into(),
                        count(self.count(DeltaVerdict::Regressed) as u64),
                    ),
                    (
                        "unchanged".into(),
                        count(self.count(DeltaVerdict::Unchanged) as u64),
                    ),
                ]),
            ),
        ])
    }
}

/// Align, measure, diagnose, and judge: the whole comparison.
pub fn diff_traces(before: &Slog2File, after: &Slog2File, labels: (&str, &str)) -> TraceDiff {
    let diag_before = TraceAnalyzer::new(before).diagnose(labels.0);
    let diag_after = TraceAnalyzer::new(after).diagnose(labels.1);
    let alignment = align(before, after);
    let delta = trace_delta(
        before,
        after,
        &alignment,
        (diag_before.makespan, diag_after.makespan),
    );
    let phases = measure_phases(before, after, &diag_before, &diag_after);
    let issues = diff_issues(&diag_before, &diag_after);
    TraceDiff {
        before_label: labels.0.to_string(),
        after_label: labels.1.to_string(),
        digests: (fnv1a(&before.to_bytes()), fnv1a(&after.to_bytes())),
        diag_before,
        diag_after,
        alignment,
        delta,
        phases,
        issues,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::fixtures::{instance_a, instance_fixed};

    #[test]
    fn a_vs_fixed_reports_the_fix() {
        let d = diff_traces(&instance_a(), &instance_fixed(), ("a", "fixed"));
        let sp = d.issue(VerdictKind::SerializedPhase).expect("issue");
        assert_eq!(sp.verdict, DeltaVerdict::Fixed);
        assert!(sp.recovered_seconds > 0.0);
        assert!(d.makespan_delta() < -5.0, "{}", d.makespan_delta());
        assert_eq!(d.count(DeltaVerdict::Regressed), 0);
    }

    #[test]
    fn json_is_deterministic_and_parses_back() {
        let a = instance_a();
        let f = instance_fixed();
        let j1 = diff_traces(&a, &f, ("a", "fixed")).to_json();
        let j2 = diff_traces(&a, &f, ("a", "fixed")).to_json();
        assert_eq!(j1, j2);
        let v = Json::parse(&j1).expect("valid JSON");
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some("pilot-vis-diff-v1")
        );
        let issues = v.get("issues").and_then(Json::as_arr).unwrap();
        assert!(issues.iter().any(|i| {
            i.get("kind").and_then(Json::as_str) == Some("SerializedPhase")
                && i.get("verdict").and_then(Json::as_str) == Some("Fixed")
        }));
        assert!(v.get("summary").unwrap().get("fixed").unwrap().as_u64() >= Some(1));
    }

    #[test]
    fn digests_differ_between_sides_and_match_self() {
        let a = instance_a();
        let f = instance_fixed();
        let d = diff_traces(&a, &f, ("a", "fixed"));
        assert_ne!(d.digests.0, d.digests.1);
        let s = diff_traces(&a, &a, ("a", "a"));
        assert_eq!(s.digests.0, s.digests.1);
    }
}
