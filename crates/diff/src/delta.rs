//! Per-timeline and trace-level deltas.
//!
//! For every aligned timeline pair: per-category state seconds (keyed
//! by category *name*, since the two files may number their legends
//! differently), busy/blocked seconds from the `analysis` activity
//! sweeps, and sent/received message counts. Absent sides contribute
//! zero, so one-sided rows (rank-count mismatch) still report.

use std::collections::BTreeMap;

use analysis::{busy_intervals, timeline_activity, total_seconds};
use slog2::{Drawable, Slog2File, TimeWindow, TimelineId};

use crate::align::Alignment;

/// One category's seconds on a timeline, before vs after.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoryDelta {
    /// Category display name.
    pub category: String,
    /// Seconds before.
    pub before_s: f64,
    /// Seconds after.
    pub after_s: f64,
}

impl CategoryDelta {
    /// `after - before`.
    pub fn delta_s(&self) -> f64 {
        self.after_s - self.before_s
    }
}

/// One aligned timeline's measurements, `(before, after)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineDelta {
    /// Display name (from the alignment).
    pub name: String,
    /// Timeline in the before trace.
    pub before: Option<TimelineId>,
    /// Timeline in the after trace.
    pub after: Option<TimelineId>,
    /// Alignment similarity score.
    pub similarity: f64,
    /// `(before, after)` truncation flags (salvaged torn tails).
    pub truncated: (bool, bool),
    /// Per-category state seconds, sorted by category name.
    pub states: Vec<CategoryDelta>,
    /// Busy (computing, unblocked) seconds.
    pub busy_s: (f64, f64),
    /// Blocked (`PI_Read`/`PI_Select`) seconds.
    pub blocked_s: (f64, f64),
    /// Messages sent from this timeline.
    pub sent: (u64, u64),
    /// Messages received by this timeline.
    pub received: (u64, u64),
}

/// The trace-level comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDelta {
    /// Makespans (from the diagnoses' critical paths).
    pub makespan: (f64, f64),
    /// Total drawable counts.
    pub drawables: (usize, usize),
    /// Total message-arrow counts.
    pub messages: (u64, u64),
    /// One row per aligned pair.
    pub timelines: Vec<TimelineDelta>,
}

/// Per-category state seconds of one timeline, keyed by name.
fn state_seconds(file: &Slog2File, tl: TimelineId) -> BTreeMap<String, f64> {
    let stats = jumpshot::duration_stats(file, file.range);
    let mut out = BTreeMap::new();
    if let Some(hist) = stats.get(&tl) {
        for (cat, secs) in &hist.coverage {
            let name = file
                .category(*cat)
                .map(|c| c.name.clone())
                .unwrap_or_else(|| format!("category-{}", cat.as_u32()));
            *out.entry(name).or_insert(0.0) += secs;
        }
    }
    out
}

/// `(sent, received)` arrow counts per timeline.
fn arrow_counts(file: &Slog2File) -> (BTreeMap<TimelineId, u64>, BTreeMap<TimelineId, u64>, u64) {
    let mut sent = BTreeMap::new();
    let mut received = BTreeMap::new();
    let mut total = 0;
    for d in file.tree.query(TimeWindow::ALL) {
        if let Drawable::Arrow(a) = d {
            *sent.entry(a.from_timeline).or_insert(0) += 1;
            *received.entry(a.to_timeline).or_insert(0) += 1;
            total += 1;
        }
    }
    (sent, received, total)
}

/// Measure every aligned pair. `makespans` come from the two
/// diagnoses so the trace delta and the verdict delta agree.
pub fn trace_delta(
    before: &Slog2File,
    after: &Slog2File,
    alignment: &Alignment,
    makespans: (f64, f64),
) -> TraceDelta {
    let (sent_b, recv_b, msgs_b) = arrow_counts(before);
    let (sent_a, recv_a, msgs_a) = arrow_counts(after);

    let timelines = alignment
        .pairs
        .iter()
        .map(|p| {
            let states_b = p
                .before
                .map(|tl| state_seconds(before, tl))
                .unwrap_or_default();
            let states_a = p
                .after
                .map(|tl| state_seconds(after, tl))
                .unwrap_or_default();
            let mut names: Vec<&String> = states_b.keys().chain(states_a.keys()).collect();
            names.sort();
            names.dedup();
            let states = names
                .into_iter()
                .map(|n| CategoryDelta {
                    category: n.clone(),
                    before_s: states_b.get(n).copied().unwrap_or(0.0),
                    after_s: states_a.get(n).copied().unwrap_or(0.0),
                })
                .collect();
            let busy = |file: &Slog2File, tl: Option<TimelineId>| {
                tl.map(|tl| total_seconds(&busy_intervals(file, tl)))
                    .unwrap_or(0.0)
            };
            let blocked = |file: &Slog2File, tl: Option<TimelineId>| {
                tl.map(|tl| timeline_activity(file, tl).blocked)
                    .unwrap_or(0.0)
            };
            let count = |m: &BTreeMap<TimelineId, u64>, tl: Option<TimelineId>| {
                tl.and_then(|tl| m.get(&tl).copied()).unwrap_or(0)
            };
            TimelineDelta {
                name: p.name.clone(),
                before: p.before,
                after: p.after,
                similarity: p.similarity,
                truncated: (p.truncated_before, p.truncated_after),
                states,
                busy_s: (busy(before, p.before), busy(after, p.after)),
                blocked_s: (blocked(before, p.before), blocked(after, p.after)),
                sent: (count(&sent_b, p.before), count(&sent_a, p.after)),
                received: (count(&recv_b, p.before), count(&recv_a, p.after)),
            }
        })
        .collect();

    TraceDelta {
        makespan: makespans,
        drawables: (before.total_drawables(), after.total_drawables()),
        messages: (msgs_b, msgs_a),
        timelines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align::align;
    use analysis::fixtures::{instance_a, instance_fixed};

    #[test]
    fn self_delta_is_exactly_zero() {
        let f = instance_a();
        let al = align(&f, &f);
        let d = trace_delta(&f, &f, &al, (15.0, 15.0));
        for td in &d.timelines {
            assert_eq!(td.busy_s.0, td.busy_s.1);
            assert_eq!(td.blocked_s.0, td.blocked_s.1);
            assert_eq!(td.sent, (td.sent.0, td.sent.0));
            for c in &td.states {
                assert_eq!(c.delta_s(), 0.0, "{c:?}");
            }
        }
        assert_eq!(d.drawables.0, d.drawables.1);
        assert_eq!(d.messages.0, d.messages.1);
    }

    #[test]
    fn fix_shrinks_blocked_time() {
        let a = instance_a();
        let fixed = instance_fixed();
        let al = align(&a, &fixed);
        let d = trace_delta(&a, &fixed, &al, (15.0, 6.0));
        // Every worker spends far less time blocked after the fix.
        for td in d.timelines.iter().filter(|t| t.name.starts_with('W')) {
            assert!(
                td.blocked_s.1 < td.blocked_s.0,
                "{}: {:?}",
                td.name,
                td.blocked_s
            );
        }
        // Message counts are identical: same protocol, better schedule.
        assert_eq!(d.messages.0, d.messages.1);
    }
}
