//! Side-by-side rendering of two traces.
//!
//! Rather than teaching every `jumpshot` backend about pairs of
//! files, the two traces are *stacked* into one synthetic
//! [`Slog2File`]: the before trace's rows on top (names prefixed
//! `A:`), the after trace's rows below (`B:`), categories merged by
//! name, and the lane boundary passed to the renderer via
//! `RenderOptions::lane_split` — so every existing backend (svg,
//! html, ascii, histogram) renders the comparison for free, overlay
//! and all.

use std::collections::BTreeMap;

use jumpshot::{renderer_by_name, RenderOptions};
use slog2::{CategoryId, Drawable, FrameTree, Slog2File, TimeWindow, TimelineId};

use crate::delta::TraceDelta;

/// Stack `before` over `after` into one renderable file. Returns the
/// merged file and the lane-split row (= `before.timelines.len()`).
pub fn stacked(before: &Slog2File, after: &Slog2File) -> (Slog2File, u32) {
    // Merge legends by name; the before trace's colours win ties.
    let mut categories = before.categories.clone();
    let mut by_name: BTreeMap<&str, CategoryId> = BTreeMap::new();
    for c in &categories {
        by_name.entry(c.name.as_str()).or_insert(c.index);
    }
    let mut remap: BTreeMap<CategoryId, CategoryId> = BTreeMap::new();
    let mut fresh: Vec<slog2::Category> = Vec::new();
    for c in &after.categories {
        match by_name.get(c.name.as_str()) {
            Some(&id) => {
                remap.insert(c.index, id);
            }
            None => {
                let id = CategoryId((categories.len() + fresh.len()) as u32);
                remap.insert(c.index, id);
                let mut nc = c.clone();
                nc.index = id;
                fresh.push(nc);
            }
        }
    }
    categories.extend(fresh);

    let split = before.timelines.len() as u32;
    let mut timelines: Vec<String> = before.timelines.iter().map(|n| format!("A:{n}")).collect();
    timelines.extend(after.timelines.iter().map(|n| format!("B:{n}")));

    let shift = |tl: TimelineId| TimelineId(tl.as_u32() + split);
    let recat = |cat: CategoryId| remap.get(&cat).copied().unwrap_or(cat);
    let mut ds: Vec<Drawable> = before
        .tree
        .query(TimeWindow::ALL)
        .into_iter()
        .cloned()
        .collect();
    for d in after.tree.query(TimeWindow::ALL) {
        let mut d = d.clone();
        match &mut d {
            Drawable::State(s) => {
                s.timeline = shift(s.timeline);
                s.category = recat(s.category);
            }
            Drawable::Event(e) => {
                e.timeline = shift(e.timeline);
                e.category = recat(e.category);
            }
            Drawable::Arrow(a) => {
                a.from_timeline = shift(a.from_timeline);
                a.to_timeline = shift(a.to_timeline);
                a.category = recat(a.category);
            }
        }
        ds.push(d);
    }

    let t0 = before.range.t0.min(after.range.t0);
    let t1 = before.range.t1.max(after.range.t1);
    let mut warnings: Vec<String> = before.warnings.iter().map(|w| format!("A: {w}")).collect();
    warnings.extend(after.warnings.iter().map(|w| format!("B: {w}")));
    let file = Slog2File {
        timelines,
        categories,
        range: TimeWindow::new(t0, t1),
        warnings,
        tree: FrameTree::build(ds, t0, t1, 64, 8),
    };
    (file, split)
}

/// Render the two traces side by side through any `Renderer` backend
/// (`svg`, `html`, `ascii`, `hist`), annotating the after-lane rows
/// with busy/blocked deltas. `None` for an unknown backend name.
pub fn render_side_by_side(
    before: &Slog2File,
    after: &Slog2File,
    delta: &TraceDelta,
    backend: &str,
    width: u32,
) -> Option<(&'static str, String)> {
    let renderer = renderer_by_name(backend)?;
    let (merged, split) = stacked(before, after);
    let notes: Vec<(TimelineId, String)> = delta
        .timelines
        .iter()
        .filter_map(|td| {
            td.after.map(|a| {
                (
                    TimelineId(split + a.as_u32()),
                    format!(
                        "Δbusy {:+.3}s Δblocked {:+.3}s",
                        td.busy_s.1 - td.busy_s.0,
                        td.blocked_s.1 - td.blocked_s.0
                    ),
                )
            })
        })
        .collect();
    let opts = RenderOptions::default()
        .with_width(width)
        .with_lane_split(split)
        .with_row_notes(notes);
    Some((renderer.content_type(), renderer.render(&merged, &opts)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align::align;
    use crate::delta::trace_delta;
    use analysis::fixtures::{instance_a, instance_fixed};

    #[test]
    fn stacked_file_holds_both_lanes() {
        let a = instance_a();
        let f = instance_fixed();
        let (m, split) = stacked(&a, &f);
        assert_eq!(split, 5);
        assert_eq!(m.timelines.len(), 10);
        assert_eq!(m.timelines[0], "A:PI_MAIN");
        assert_eq!(m.timelines[5], "B:PI_MAIN");
        // Same legend names on both sides: merged, not duplicated.
        assert_eq!(m.categories.len(), a.categories.len());
        assert_eq!(
            m.total_drawables(),
            a.total_drawables() + f.total_drawables()
        );
        assert!(slog2::validate(&m).is_empty());
    }

    #[test]
    fn every_backend_renders_the_comparison() {
        let a = instance_a();
        let f = instance_fixed();
        let al = align(&a, &f);
        let d = trace_delta(&a, &f, &al, (15.0, 6.0));
        for backend in ["svg", "html", "ascii", "hist"] {
            let (ct, body) = render_side_by_side(&a, &f, &d, backend, 800).expect("known backend");
            assert!(!ct.is_empty());
            assert!(
                body.contains("A:PI_MAIN") || body.contains("A:PI_MAI"),
                "{backend}"
            );
            assert!(body.contains("B:W0") || body.contains("B:W"), "{backend}");
        }
        assert!(render_side_by_side(&a, &f, &d, "nope", 800).is_none());
    }

    #[test]
    fn ascii_comparison_carries_delta_columns() {
        let a = instance_a();
        let f = instance_fixed();
        let al = align(&a, &f);
        let d = trace_delta(&a, &f, &al, (15.0, 6.0));
        let (_, txt) = render_side_by_side(&a, &f, &d, "ascii", 64).unwrap();
        assert!(txt.contains("Δbusy"), "{txt}");
        assert!(txt.contains("Δblocked"), "{txt}");
    }
}
